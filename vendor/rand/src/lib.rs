//! Minimal offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors a small, high-quality implementation of exactly the
//! surface the code uses:
//!
//! * [`RngCore`] / [`SeedableRng`] / the [`Rng`] extension trait
//!   (`gen`, `gen_bool`, `gen_range`);
//! * [`rngs::SmallRng`] — xoshiro256++ (the same family the real
//!   `SmallRng` uses on 64-bit targets), seeded via SplitMix64 exactly as
//!   `rand_core`'s `seed_from_u64` does.
//!
//! Determinism contract: all simulations in this workspace are a pure
//! function of their master seed *and this generator*. Replacing this stub
//! with the real `rand` crate keeps the API compiling but changes the
//! stream values, so recorded experiment numbers would shift (within
//! statistical error).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number generation trait (object-safe).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Uniform draw from `[0, span)` (`span > 0`, `span <= 2^64`) by widening
/// multiply; bias is at most 2^-64 and irrelevant at simulation scales.
#[inline]
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    if span == (1u128 << 64) {
        return rng.next_u64();
    }
    let x = rng.next_u64() as u128;
    ((x * span) >> 64) as u64
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }

    /// Sample uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 (identical to
    /// `rand_core`'s implementation, so seeds mean the same thing).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, out) in z.to_le_bytes().iter().zip(chunk.iter_mut()) {
                *out = *b;
            }
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the same
    /// family the real `SmallRng` uses on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(5u64..=10);
            assert!((5..=10).contains(&x));
            let y = r.gen_range(0u64..7);
            assert!(y < 7);
        }
    }

    #[test]
    fn gen_range_mean_is_central() {
        let mut r = SmallRng::seed_from_u64(4);
        let n = 100_000u64;
        let sum: u64 = (0..n).map(|_| r.gen_range(0u64..100)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 49.5).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut r = SmallRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut r;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
        assert!(dyn_rng.next_u64() != dyn_rng.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SmallRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
