//! Minimal offline stand-in for `criterion`.
//!
//! Implements the subset used by this workspace's benches —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`, and
//! `Bencher::iter` — with a plain wall-clock measurement loop (median of a
//! few batches) instead of criterion's full statistical machinery.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level bench context.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{id}"), f);
        self
    }
}

/// A named benchmark group.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{id}", self.name), f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{id}", self.name), |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by `iter`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Measure `f` by running timed batches and keeping the median rate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, and calibrate a batch size targeting ~5 ms per batch.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().as_nanos().max(1);
        let batch = ((5_000_000 / once).clamp(1, 1_000_000)) as u64;

        let mut rates = Vec::with_capacity(5);
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            rates.push(elapsed / batch as f64);
        }
        rates.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.ns_per_iter = rates[rates.len() / 2];
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    println!("bench {label:<48} {:>12.1} ns/iter", b.ns_per_iter);
}

/// Collect benchmark functions into a runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(10);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_with_input(BenchmarkId::new("mul", 3u32), &3u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
