//! Minimal offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest API used in this workspace:
//!
//! * integer / float range strategies (`0u64..1000`, `0.0f64..0.6`, …);
//! * [`prop::bool::weighted`];
//! * functions returning `impl Strategy<Value = T>`;
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Sampling is deterministic (SplitMix64 keyed by test name and case
//! index) so failures reproduce; there is no shrinking — the failure
//! message reports the sampled inputs instead.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic sampling stream (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream keyed by `key` (test name hash ^ case index).
    pub fn new(key: u64) -> Self {
        TestRng {
            state: key ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a, used to key each test's sampling stream by its name.
pub fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value: std::fmt::Debug;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                let x = rng.next_u64() as u128;
                self.start + ((x * span) >> 64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128) - (lo as u128) + 1;
                let x = rng.next_u64() as u128;
                lo + ((x * span) >> 64) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Weighted boolean strategy (see [`prop::bool::weighted`]).
#[derive(Debug, Clone, Copy)]
pub struct WeightedBool {
    p: f64,
}

impl Strategy for WeightedBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_f64() < self.p
    }
}

/// Strategy producing `Vec`s of another strategy's values (see
/// [`prop::collection::vec`]).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = Strategy::sample(&self.len, rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use super::super::WeightedBool;

        /// `true` with probability `p`.
        pub fn weighted(p: f64) -> WeightedBool {
            assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
            WeightedBool { p }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, VecStrategy};
        use std::ops::Range;

        /// Vectors of `element` values with length drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

/// Everything a property test needs in one import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Assert inside a property; failure aborts the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                a,
                b
            ));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            ));
        }
    }};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled instances of the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = { $cfg }; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = { $crate::ProptestConfig::default() }; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = { $cfg:expr };) => {};
    (cfg = { $cfg:expr };
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let key = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new(
                    key ^ (u64::from(case)).wrapping_mul(0x2545_F491_4F6C_DD1D),
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> = {
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    })()
                };
                if let Err(message) = outcome {
                    panic!(
                        "property {} failed at case {}/{}:\n{}\ninputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        message,
                        [$(format!("{} = {:?}", stringify!($arg), $arg)),*].join(", "),
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = { $cfg }; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn tiny() -> impl Strategy<Value = u8> {
        0u8..4
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in 0.25f64..0.75, z in tiny()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!(z < 4);
        }

        #[test]
        fn eq_assertion_passes(a in 0u32..100) {
            prop_assert_eq!(a, a);
            prop_assert_ne!(a, a + 1);
        }
    }

    #[test]
    fn weighted_bool_frequency() {
        let strat = prop::bool::weighted(0.2);
        let mut rng = crate::TestRng::new(9);
        let hits = (0..10_000).filter(|_| strat.sample(&mut rng)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.2).abs() < 0.02, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unreachable_code)]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
