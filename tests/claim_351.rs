//! Integration: Claim 3.5.1 at test scale, with rank-sum significance.
//!
//! The claim: `h_data`-batch (smoothed binary exponential backoff) cannot
//! deliver all `n` batch messages in `O(n)` slots — completion is
//! `Θ(n log n)`. We compare normalized completion times (slots/n) at two
//! batch sizes: if completion were linear, the distributions would
//! coincide; the claim predicts the larger batch is stochastically slower,
//! and a Mann–Whitney test should call the separation significant.

use contention::analysis::{rank_sum, Summary};
use contention::prelude::*;

fn completion_per_node(algo: &AlgoSpec, n: u32, seed: u64) -> f64 {
    let out = ScenarioRunner::new(
        ScenarioSpec::batch(n, 0.0)
            .algos([algo.clone()])
            .until_drained(200_000_000),
    )
    .run_seed(algo, seed);
    assert!(out.drained, "{} must drain eventually", algo.name());
    out.slots as f64 / f64::from(n)
}

#[test]
fn smoothed_beb_completion_is_superlinear_and_significant() {
    let beb = AlgoSpec::Baseline(BaselineSpec::SmoothedBeb);
    let small: Vec<f64> = (0..8).map(|s| completion_per_node(&beb, 32, s)).collect();
    let large: Vec<f64> = (0..8)
        .map(|s| completion_per_node(&beb, 256, 100 + s))
        .collect();

    let s_small = Summary::of(&small).unwrap();
    let s_large = Summary::of(&large).unwrap();
    assert!(
        s_large.mean > 1.4 * s_small.mean,
        "slots/n should grow markedly with n: {} vs {}",
        s_small.mean,
        s_large.mean
    );

    let r = rank_sum(&small, &large).unwrap();
    assert!(
        r.p_value < 0.05,
        "separation should be significant: p = {}",
        r.p_value
    );
    // Completion is dominated by the last straggler and is heavy-tailed
    // (a lone node at slot i waits ~i for its next send), so a few small-
    // batch runs land above large-batch ones; 0.75 is a robust separation.
    assert!(
        r.effect > 0.75,
        "most small-batch runs should beat large-batch runs: {}",
        r.effect
    );
}

#[test]
fn cjz_completion_per_node_stays_bounded() {
    // Contrast: the paper's protocol drains in O(n·f), so slots/n grows
    // only mildly (≤ log factor) over the same range.
    let cjz = AlgoSpec::cjz_constant_jamming();
    let small: Vec<f64> = (0..5).map(|s| completion_per_node(&cjz, 32, s)).collect();
    let large: Vec<f64> = (0..5)
        .map(|s| completion_per_node(&cjz, 256, 100 + s))
        .collect();
    let s_small = Summary::of(&small).unwrap();
    let s_large = Summary::of(&large).unwrap();
    // An 8x batch growth may cost at most ~log(8x)/log(x) ≈ 1.6x per-node
    // time for the n·log n bound; certainly below 2x.
    assert!(
        s_large.mean < 2.0 * s_small.mean,
        "cjz per-node drain must stay near-constant: {} vs {}",
        s_small.mean,
        s_large.mean
    );
}
