//! Integration: memory-bounded endurance runs.
//!
//! A million-slot run in aggregate-only mode must preserve every invariant
//! the slot-recorded mode guarantees, while storing no per-slot state.
//! Record-mode policy comes from the scenario spec (`aggregate_only`);
//! O(1) memory additionally requires bounding the adversary-visible
//! history window (`history_retention`) — the two knobs are deliberately
//! independent, because capping the window changes what deep-history
//! adaptive adversaries can see (it defaults to unlimited for that
//! reason).

use contention::prelude::*;

#[test]
fn million_slot_run_is_memory_bounded_and_consistent() {
    let algo = AlgoSpec::cjz_constant_jamming();
    let horizon = 1_000_000u64;
    let spec = ScenarioSpec::new("poisson/0.01")
        .algo(algo.clone())
        .arrivals(ArrivalSpec::Poisson {
            rate: 0.01,
            horizon: None,
        })
        .jamming(JammingSpec::random(0.25))
        .fixed_horizon(horizon)
        .aggregate_only()
        // Bounded adversary window: O(1) history memory over the million
        // slots (this workload's adversary is not history-dependent).
        .history_retention(4096);
    let runner = ScenarioRunner::new(spec);

    // Stream the run manually to fold StreamingStats alongside the trace.
    let (stream, alive, trace) = runner
        .collect_sim(&algo, |_seed, mut sim| {
            let mut stream = StreamingStats::new();
            for _ in 0..horizon {
                let rec = sim.step();
                stream.record(&rec);
            }
            let alive = sim.active_count() as u64;
            (stream, alive, sim.into_trace())
        })
        .into_iter()
        .next()
        .unwrap();

    // Aggregates agree between the trace counters and the streaming fold.
    assert_eq!(trace.len(), horizon);
    assert_eq!(trace.recorded_len(), 0, "no per-slot records stored");
    assert_eq!(stream.slots(), horizon);
    assert_eq!(stream.arrivals(), trace.total_arrivals());
    assert_eq!(stream.jammed(), trace.total_jammed());
    assert_eq!(stream.successes(), trace.total_successes());
    assert_eq!(stream.active(), trace.total_active());

    // Conservation and sanity at scale.
    assert_eq!(trace.total_arrivals(), trace.total_successes() + alive);
    let jam_frac = trace.total_jammed() as f64 / horizon as f64;
    assert!((jam_frac - 0.25).abs() < 0.01, "jam fraction {jam_frac}");
    // ~10k Poisson(0.01) arrivals; the protocol keeps up easily at this
    // load, so the backlog stays tiny.
    assert!(trace.total_arrivals() > 9_000);
    assert!(alive < 50, "backlog exploded: {alive}");

    // Dyadic checkpoints cover the run.
    let last_cp = stream.checkpoints().last().copied().unwrap();
    assert_eq!(last_cp.0, 1 << 19);
}

#[test]
fn light_and_heavy_modes_agree_exactly() {
    // Same seed, same adversary: per-slot recording must not perturb the
    // dynamics in any way (recording is pure observation).
    let algo = AlgoSpec::cjz_constant_jamming();
    let spec = ScenarioSpec::new("bursty")
        .algo(algo.clone())
        .arrivals(ArrivalSpec::Bursty {
            period: 97,
            phase: 1,
            size: 5,
            bursts: 50,
        })
        .jamming(JammingSpec::random(0.3))
        .fixed_horizon(20_000);
    let run = |light: bool| {
        let spec = if light {
            spec.clone().aggregate_only()
        } else {
            spec.clone()
        };
        ScenarioRunner::new(spec).run_seed(&algo, 5).trace
    };
    let heavy = run(false);
    let light = run(true);
    assert_eq!(heavy.departures(), light.departures());
    assert_eq!(heavy.total_arrivals(), light.total_arrivals());
    assert_eq!(heavy.total_jammed(), light.total_jammed());
    assert_eq!(heavy.total_active(), light.total_active());
    assert_eq!(heavy.survivors(), light.survivors());
}

#[test]
fn latency_histogram_of_long_run_is_heavy_tail_free_for_cjz() {
    use contention::analysis::LogHistogram;
    let algo = AlgoSpec::cjz_constant_jamming();
    let spec = ScenarioSpec::new("poisson/0.02")
        .algo(algo.clone())
        .arrivals(ArrivalSpec::Poisson {
            rate: 0.02,
            horizon: Some(150_000),
        })
        .jamming(JammingSpec::random(0.25))
        .fixed_horizon(200_000)
        .aggregate_only();
    let out = ScenarioRunner::new(spec).run_seed(&algo, 3);
    let hist: LogHistogram = out
        .trace
        .departures()
        .iter()
        .map(|d| d.latency() as f64)
        .collect();
    assert!(hist.count() > 2_500);
    // Under light dynamic load, cjz latencies concentrate: less than 2% of
    // deliveries should take 512+ slots (contrast E4's smoothed-beb, whose
    // completion tail is power-law).
    assert!(
        hist.tail_fraction(512.0) < 0.02,
        "tail fraction {}",
        hist.tail_fraction(512.0)
    );
}
