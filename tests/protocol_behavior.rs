//! Integration: fine-grained behavioral checks of the three-phase protocol
//! driven through the real engine, with workloads built as scenario specs.

use contention::prelude::*;

fn cjz() -> AlgoSpec {
    AlgoSpec::cjz_constant_jamming()
}

fn run(spec: ScenarioSpec, seed: u64) -> TrialOutcome {
    let algo = cjz();
    ScenarioRunner::new(spec.algos([algo.clone()])).run_seed(&algo, seed)
}

/// Drive a small cluster and inspect the phase machinery indirectly via
/// delivery patterns.
#[test]
fn lone_node_succeeds_immediately_on_clean_channel() {
    // A fresh Phase-1 node runs backoff stage 0 (length 1) on its arrival
    // slot: it must broadcast at once and, alone on a clean channel,
    // deliver in its very first slot.
    let out = run(ScenarioSpec::batch(1, 0.0).fixed_horizon(1), 1);
    assert_eq!(out.trace.total_successes(), 1);
    assert_eq!(out.trace.departures()[0].departure_slot, 1);
    assert_eq!(out.trace.departures()[0].accesses, 1);
}

#[test]
fn two_nodes_arriving_together_both_deliver() {
    let out = run(ScenarioSpec::batch(2, 0.0).until_drained(100_000), 2);
    assert!(out.drained);
    assert_eq!(out.trace.total_successes(), 2);
}

#[test]
fn late_arrival_joins_running_system() {
    // One node arrives at slot 1; another at slot 1000 (mid-Phase-3 of the
    // first). Both must deliver.
    let spec = ScenarioSpec::new("staggered")
        .arrivals(ArrivalSpec::Scripted {
            slots: vec![(1, 1), (1000, 1)],
        })
        .until_drained(200_000);
    let out = run(spec, 3);
    assert_eq!(out.trace.total_successes(), 2);
}

#[test]
fn arrival_during_full_jam_survives() {
    // A node arriving inside a long jam wall must not deadlock; it delivers
    // after the wall.
    let spec = ScenarioSpec::new("jam-wall-arrival")
        .arrivals(ArrivalSpec::Scripted {
            slots: vec![(50, 1)],
        })
        .jamming(JammingSpec::FrontLoaded { until: 5000 })
        .until_drained(500_000);
    let out = run(spec, 4);
    assert_eq!(out.trace.total_successes(), 1);
    assert!(out.trace.departures()[0].departure_slot > 5000);
}

#[test]
fn alternating_odd_even_arrivals_agree_on_channels() {
    // Arrivals on both parities: the Phase-1 agreement logic must converge
    // regardless of each node's private parity view.
    let spec = ScenarioSpec::new("alternating")
        .arrivals(ArrivalSpec::Scripted {
            slots: (0..12).map(|i| (1 + i, 1)).collect(),
        })
        .until_drained(200_000);
    let out = run(spec, 5);
    assert_eq!(out.trace.total_successes(), 12);
}

#[test]
fn oracle_variant_also_drains_dynamic_arrivals() {
    let algo = AlgoSpec::CjzOracle(ParamsSpec::constant_jamming());
    let spec = ScenarioSpec::new("staggered-oracle")
        .algo(algo.clone())
        .arrivals(ArrivalSpec::Scripted {
            slots: (0..10).map(|i| (1 + 31 * i, 1)).collect(),
        })
        .jamming(JammingSpec::random(0.2))
        .until_drained(500_000);
    let out = ScenarioRunner::new(spec).run_seed(&algo, 6);
    assert_eq!(out.trace.total_successes(), 10);
}

#[test]
fn heavier_jamming_slows_but_does_not_stop_progress() {
    let drain = |jam: f64| {
        let out = run(ScenarioSpec::batch(64, jam).until_drained(10_000_000), 7);
        assert!(out.drained, "jam={jam}");
        out.slots
    };
    let clean = drain(0.0);
    let jammed = drain(0.5);
    assert!(jammed > clean, "jamming must cost something");
    assert!(
        (jammed as f64) < 40.0 * clean as f64,
        "50% jamming must not cause catastrophic blowup: {clean} -> {jammed}"
    );
}

#[test]
fn throughput_improves_with_cleaner_channel() {
    // Classical throughput n_t / a_t after drain should not degrade when
    // jamming is removed.
    let tp = |jam: f64| {
        let out = run(ScenarioSpec::batch(128, jam).until_drained(10_000_000), 8);
        let cum = out.trace.cumulative();
        let t = cum.len();
        cum.classical_throughput(t)
    };
    assert!(tp(0.0) >= tp(0.4));
}

#[test]
fn energy_grows_with_jamming() {
    let acc = |jam: f64| {
        let out = run(ScenarioSpec::batch(64, jam).until_drained(10_000_000), 9);
        out.trace.mean_accesses().unwrap()
    };
    // More jamming -> longer residence -> more accesses.
    assert!(acc(0.4) > acc(0.0));
}
