//! Integration: fine-grained behavioral checks of the three-phase protocol
//! driven through the real engine.

use contention::prelude::*;
use contention::core::OracleParityFactory;

/// Drive a small cluster and inspect the phase machinery indirectly via
/// delivery patterns.
#[test]
fn lone_node_succeeds_immediately_on_clean_channel() {
    // A fresh Phase-1 node runs backoff stage 0 (length 1) on its arrival
    // slot: it must broadcast at once and, alone on a clean channel,
    // deliver in its very first slot.
    let factory = CjzFactory::new(ProtocolParams::constant_jamming());
    let adv = CompositeAdversary::new(BatchArrival::at_start(1), NoJamming);
    let mut sim = Simulator::new(SimConfig::with_seed(1), factory, adv);
    sim.step();
    let trace = sim.trace();
    assert_eq!(trace.total_successes(), 1);
    assert_eq!(trace.departures()[0].departure_slot, 1);
    assert_eq!(trace.departures()[0].accesses, 1);
}

#[test]
fn two_nodes_arriving_together_both_deliver() {
    let factory = CjzFactory::new(ProtocolParams::constant_jamming());
    let adv = CompositeAdversary::new(BatchArrival::at_start(2), NoJamming);
    let mut sim = Simulator::new(SimConfig::with_seed(2), factory, adv);
    let stop = sim.run_until_drained(100_000);
    assert_eq!(stop, StopReason::Drained);
    assert_eq!(sim.trace().total_successes(), 2);
}

#[test]
fn late_arrival_joins_running_system() {
    // One node arrives at slot 1; another at slot 1000 (mid-Phase-3 of the
    // first). Both must deliver.
    let factory = CjzFactory::new(ProtocolParams::constant_jamming());
    let adv = CompositeAdversary::new(ScriptedArrival::new([(1, 1), (1000, 1)]), NoJamming);
    let mut sim = Simulator::new(SimConfig::with_seed(3), factory, adv);
    sim.run_until_drained(200_000);
    assert_eq!(sim.trace().total_successes(), 2);
}

#[test]
fn arrival_during_full_jam_survives() {
    // A node arriving inside a long jam wall must not deadlock; it delivers
    // after the wall.
    let factory = CjzFactory::new(ProtocolParams::constant_jamming());
    let adv = CompositeAdversary::new(
        ScriptedArrival::new([(50, 1)]),
        FrontLoadedJamming::new(5000),
    );
    let mut sim = Simulator::new(SimConfig::with_seed(4), factory, adv);
    sim.run_until_drained(500_000);
    let trace = sim.trace();
    assert_eq!(trace.total_successes(), 1);
    assert!(trace.departures()[0].departure_slot > 5000);
}

#[test]
fn alternating_odd_even_arrivals_agree_on_channels() {
    // Arrivals on both parities: the Phase-1 agreement logic must converge
    // regardless of each node's private parity view.
    let script: Vec<(u64, u32)> = (0..12).map(|i| (1 + i, 1)).collect();
    let factory = CjzFactory::new(ProtocolParams::constant_jamming());
    let adv = CompositeAdversary::new(ScriptedArrival::new(script), NoJamming);
    let mut sim = Simulator::new(SimConfig::with_seed(5), factory, adv);
    sim.run_until_drained(200_000);
    assert_eq!(sim.trace().total_successes(), 12);
}

#[test]
fn oracle_variant_also_drains_dynamic_arrivals() {
    let factory = OracleParityFactory::new(ProtocolParams::constant_jamming());
    let script: Vec<(u64, u32)> = (0..10).map(|i| (1 + 31 * i, 1)).collect();
    let adv = CompositeAdversary::new(ScriptedArrival::new(script), RandomJamming::new(0.2));
    let mut sim = Simulator::new(SimConfig::with_seed(6), factory, adv);
    sim.run_until_drained(500_000);
    assert_eq!(sim.trace().total_successes(), 10);
}

#[test]
fn heavier_jamming_slows_but_does_not_stop_progress() {
    let drain = |jam: f64| {
        let factory = CjzFactory::new(ProtocolParams::constant_jamming());
        let adv = CompositeAdversary::new(BatchArrival::at_start(64), RandomJamming::new(jam));
        let mut sim = Simulator::new(SimConfig::with_seed(7), factory, adv);
        let stop = sim.run_until_drained(10_000_000);
        assert_eq!(stop, StopReason::Drained, "jam={jam}");
        sim.current_slot()
    };
    let clean = drain(0.0);
    let jammed = drain(0.5);
    assert!(jammed > clean, "jamming must cost something");
    assert!(
        (jammed as f64) < 40.0 * clean as f64,
        "50% jamming must not cause catastrophic blowup: {clean} -> {jammed}"
    );
}

#[test]
fn throughput_improves_with_cleaner_channel() {
    // Classical throughput n_t / a_t after drain should not degrade when
    // jamming is removed.
    let tp = |jam: f64| {
        let factory = CjzFactory::new(ProtocolParams::constant_jamming());
        let adv = CompositeAdversary::new(BatchArrival::at_start(128), RandomJamming::new(jam));
        let mut sim = Simulator::new(SimConfig::with_seed(8), factory, adv);
        sim.run_until_drained(10_000_000);
        let cum = sim.into_trace().cumulative();
        let t = cum.len();
        cum.classical_throughput(t)
    };
    assert!(tp(0.0) >= tp(0.4));
}

#[test]
fn energy_grows_with_jamming() {
    let acc = |jam: f64| {
        let factory = CjzFactory::new(ProtocolParams::constant_jamming());
        let adv = CompositeAdversary::new(BatchArrival::at_start(64), RandomJamming::new(jam));
        let mut sim = Simulator::new(SimConfig::with_seed(9), factory, adv);
        sim.run_until_drained(10_000_000);
        sim.into_trace().mean_accesses().unwrap()
    };
    // More jamming -> longer residence -> more accesses.
    assert!(acc(0.4) > acc(0.0));
}
