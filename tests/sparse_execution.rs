//! Integration: the event-driven sparse execution engine
//! (`Execution::SkipAhead`).
//!
//! * distribution equivalence against the exact engine over 512 seeds
//!   per workload class (oblivious schedules, windowed backoff,
//!   restart-on-success, constant-probability, polynomial);
//! * automatic fallback to the exact engine for adaptive adversaries,
//!   non-default channel models, and dynamic protocols — regression-
//!   pinned by trace equality;
//! * the static-phase hooks (`current_prob`,
//!   `static_until_feedback`, `next_send_within`) across the baseline
//!   registry;
//! * record modes, observers, deterministic workloads, and the
//!   mega-scale registry entries.

use contention::bench::scenario::lookup;
use contention::prelude::*;
use contention::sim::{Execution, SeedSequence};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Per-seed `(successes, slots)` samples of one execution mode.
type Samples = Vec<(f64, f64)>;

/// Exact-vs-sparse sample statistics of one scenario: per-seed
/// successes and executed slots.
fn run_modes(spec: &ScenarioSpec, seeds: u64) -> (Samples, Samples) {
    let mut out = Vec::new();
    for execution in [Execution::Exact, Execution::SkipAhead] {
        let spec = spec.clone().seeds(seeds).execution(execution);
        let algo = spec.algos[0].clone();
        let runner = ScenarioRunner::new(spec);
        out.push(runner.collect(&algo, |_, o| {
            (o.trace.total_successes() as f64, o.slots as f64)
        }));
    }
    let sparse = out.pop().unwrap();
    let exact = out.pop().unwrap();
    (exact, sparse)
}

fn mean_var(xs: impl Iterator<Item = f64> + Clone) -> (f64, f64, f64) {
    let n = xs.clone().count() as f64;
    let mean = xs.clone().sum::<f64>() / n;
    let var = xs.map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var, n)
}

/// Assert two per-seed samples agree in the mean within a 6σ Welch band
/// (plus a tiny absolute slack for near-degenerate samples). The runs
/// are fully deterministic (fixed seeds), so this never flakes: it
/// either pins equivalence or exposes a real distributional shift.
fn assert_same_mean(label: &str, exact: &[f64], sparse: &[f64]) {
    let (me, ve, n) = mean_var(exact.iter().copied());
    let (ms, vs, _) = mean_var(sparse.iter().copied());
    let band = 6.0 * ((ve + vs) / n).sqrt() + 1e-9 + 0.02 * me.abs().max(1.0) / n.sqrt();
    assert!(
        (me - ms).abs() <= band,
        "{label}: exact mean {me} vs sparse mean {ms} (band {band})"
    );
}

#[test]
fn distribution_equivalence_over_512_seeds() {
    const SEEDS: u64 = 512;
    let configs: Vec<(&str, ScenarioSpec)> = vec![
        (
            "smoothed-beb batch",
            ScenarioSpec::new("eq/smoothed-beb")
                .algo(AlgoSpec::Baseline(BaselineSpec::SmoothedBeb))
                .arrivals(ArrivalSpec::batch(16))
                .until_drained(30_000)
                .aggregate_only(),
        ),
        (
            "windowed beb behind a jam wall",
            ScenarioSpec::new("eq/beb-wall")
                .algo(AlgoSpec::Baseline(BaselineSpec::BinaryExponential))
                .arrivals(ArrivalSpec::batch(12))
                .jamming(JammingSpec::FrontLoaded { until: 256 })
                .fixed_horizon(2_048)
                .aggregate_only(),
        ),
        (
            "reset-beb (restart on success)",
            ScenarioSpec::new("eq/reset-beb")
                .algo(AlgoSpec::Baseline(BaselineSpec::ResetBeb))
                .arrivals(ArrivalSpec::batch(10))
                .until_drained(16_000)
                .aggregate_only(),
        ),
        (
            "reset-window-beb (restart on success)",
            ScenarioSpec::new("eq/reset-window")
                .algo(AlgoSpec::Baseline(BaselineSpec::ResetWindowBeb))
                .arrivals(ArrivalSpec::batch(8))
                .fixed_horizon(2_048)
                .aggregate_only(),
        ),
        (
            "aloha (constant schedule)",
            ScenarioSpec::new("eq/aloha")
                .algo(AlgoSpec::Baseline(BaselineSpec::Aloha(0.05)))
                .arrivals(ArrivalSpec::batch(8))
                .fixed_horizon(2_048)
                .aggregate_only(),
        ),
        (
            "poly-schedule (power-law)",
            ScenarioSpec::new("eq/poly")
                .algo(AlgoSpec::Baseline(BaselineSpec::PolySchedule(1.5)))
                .arrivals(ArrivalSpec::batch(32))
                .fixed_horizon(2_048)
                .aggregate_only(),
        ),
        (
            "scripted arrivals under periodic jams",
            ScenarioSpec::new("eq/eventful")
                .algo(AlgoSpec::Baseline(BaselineSpec::SmoothedBeb))
                .arrivals(ArrivalSpec::Scripted {
                    slots: vec![(1, 6), (400, 4), (900, 2)],
                })
                .jamming(JammingSpec::Periodic {
                    period: 7,
                    phase: 3,
                })
                .fixed_horizon(1_500)
                .aggregate_only(),
        ),
    ];
    for (label, spec) in configs {
        let (exact, sparse) = run_modes(&spec, SEEDS);
        let successes = |v: &[(f64, f64)]| v.iter().map(|x| x.0).collect::<Vec<_>>();
        let slots = |v: &[(f64, f64)]| v.iter().map(|x| x.1).collect::<Vec<_>>();
        assert_same_mean(
            &format!("{label} / successes"),
            &successes(&exact),
            &successes(&sparse),
        );
        assert_same_mean(&format!("{label} / slots"), &slots(&exact), &slots(&sparse));
    }
}

/// Deterministic observables must be *equal*, not just statistically
/// close: fixed-horizon slot counts, arrival totals, and jam totals are
/// adversary-driven and identical across engines.
#[test]
fn deterministic_observables_match_exactly() {
    let spec = ScenarioSpec::new("eq/deterministic")
        .algo(AlgoSpec::Baseline(BaselineSpec::SmoothedBeb))
        .arrivals(ArrivalSpec::Scripted {
            slots: vec![(1, 3), (200, 5)],
        })
        .jamming(JammingSpec::Periodic {
            period: 5,
            phase: 2,
        })
        .fixed_horizon(1_000);
    for seed in 0..8 {
        let run = |execution: Execution| {
            let spec = spec.clone().execution(execution);
            let algo = spec.algos[0].clone();
            ScenarioRunner::new(spec).run_seed(&algo, seed)
        };
        let exact = run(Execution::Exact);
        let sparse = run(Execution::SkipAhead);
        assert_eq!(exact.slots, sparse.slots);
        assert_eq!(exact.trace.total_arrivals(), sparse.trace.total_arrivals());
        assert_eq!(exact.trace.total_jammed(), sparse.trace.total_jammed());
        assert_eq!(exact.trace.len(), sparse.trace.len());
        // Full record mode: the sparse engine stores every slot too.
        assert_eq!(sparse.trace.recorded_len(), sparse.slots);
    }
}

/// Fully deterministic protocols leave no randomness at all: the sparse
/// trace must replicate the exact engine slot for slot.
#[test]
fn deterministic_protocols_replay_identically() {
    let adv = || {
        ScenarioSpec::new("always")
            .arrivals(ArrivalSpec::batch(1))
            .jamming(JammingSpec::FrontLoaded { until: 100 })
    };
    let run = |execution: Execution| {
        let factory = (|_: NodeId| -> Box<dyn Protocol> { Box::new(AlwaysBroadcast) }).named("a");
        let mut sim = Simulator::new(
            SimConfig::with_seed(3).with_execution(execution),
            factory,
            adv().build_adversary(),
        );
        sim.run_until_drained(10_000);
        sim.into_trace()
    };
    let exact = run(Execution::Exact);
    let sparse = run(Execution::SkipAhead);
    assert_eq!(exact.slots(), sparse.slots());
    assert_eq!(exact.departures(), sparse.departures());
    assert_eq!(exact.departures()[0].departure_slot, 101);
    // The always-broadcaster paid one access per slot, jammed or not.
    assert_eq!(exact.departures()[0].accesses, 101);
}

fn fingerprint(trace: &Trace) -> u64 {
    use contention::sim::SlotOutcome;
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for rec in trace.slots() {
        fold(u64::from(rec.arrivals));
        fold(u64::from(rec.broadcasters));
        fold(u64::from(rec.jammed));
        fold(rec.population);
        fold(match rec.outcome {
            SlotOutcome::Silence => 1,
            SlotOutcome::Delivered(id) => 2u64.wrapping_add(id.raw() << 8),
            SlotOutcome::Collision { broadcasters } => {
                3u64.wrapping_add(u64::from(broadcasters) << 8)
            }
            SlotOutcome::Jammed { broadcasters } => 4u64.wrapping_add(u64::from(broadcasters) << 8),
        });
    }
    for d in trace.departures() {
        fold(d.node.raw());
        fold(d.arrival_slot);
        fold(d.departure_slot);
        fold(d.accesses);
    }
    h
}

/// Requesting skip-ahead against a slot-adaptive adversary must fall
/// back to the exact engine — byte-identical traces, not merely
/// equivalent ones.
#[test]
fn adaptive_adversary_falls_back_to_exact() {
    let spec = ScenarioSpec::new("fallback/reactive")
        .algo(AlgoSpec::Baseline(BaselineSpec::SmoothedBeb))
        .arrivals(ArrivalSpec::batch(8))
        .jamming(JammingSpec::Reactive { burst: 3 })
        .fixed_horizon(1_500);
    for seed in 0..4 {
        let run = |execution: Execution| {
            let spec = spec.clone().execution(execution);
            let algo = spec.algos[0].clone();
            ScenarioRunner::new(spec).run_seed(&algo, seed)
        };
        assert_eq!(
            fingerprint(&run(Execution::Exact).trace),
            fingerprint(&run(Execution::SkipAhead).trace),
            "seed {seed}: reactive jamming must force the exact engine"
        );
    }
    // The fallback is introspectable on the simulator itself.
    let algo = spec.algos[0].clone();
    let mut sim = ScenarioRunner::new(spec.clone().execution(Execution::SkipAhead)).sim(&algo, 0);
    assert_eq!(sim.execution_in_effect(), Execution::Exact);
    // Random jamming (per-slot RNG) falls back too.
    let random = spec
        .clone()
        .jamming(JammingSpec::Random { p: 0.3 })
        .execution(Execution::SkipAhead);
    let mut sim = ScenarioRunner::new(random).sim(&algo, 0);
    assert_eq!(sim.execution_in_effect(), Execution::Exact);
    // While a forecastable workload engages.
    let quiet = spec
        .jamming(JammingSpec::FrontLoaded { until: 64 })
        .execution(Execution::SkipAhead);
    let mut sim = ScenarioRunner::new(quiet).sim(&algo, 0);
    assert_eq!(sim.execution_in_effect(), Execution::SkipAhead);
}

#[test]
fn non_default_channel_and_dynamic_protocols_fall_back() {
    // Ternary collision detection distinguishes silence from noise: not
    // covered by the static-phase contract, so exact it is.
    let cd = ScenarioSpec::new("fallback/cd")
        .algo(AlgoSpec::Baseline(BaselineSpec::SmoothedBeb))
        .arrivals(ArrivalSpec::batch(6))
        .channel(ChannelSpec::collision_detection())
        .fixed_horizon(500);
    let algo = cd.algos[0].clone();
    let mut sim = ScenarioRunner::new(cd.clone().execution(Execution::SkipAhead)).sim(&algo, 1);
    assert_eq!(sim.execution_in_effect(), Execution::Exact);
    let exact = ScenarioRunner::new(cd.clone()).run_seed(&algo, 7);
    let sparse = ScenarioRunner::new(cd.execution(Execution::SkipAhead)).run_seed(&algo, 7);
    assert_eq!(fingerprint(&exact.trace), fingerprint(&sparse.trace));

    // The paper's phase-structured protocol is not static until
    // feedback: skip-ahead must decline it.
    let cjz = ScenarioSpec::batch(8, 0.0).fixed_horizon(500);
    let algo = cjz.algos[0].clone();
    let mut sim = ScenarioRunner::new(cjz.clone().execution(Execution::SkipAhead)).sim(&algo, 1);
    assert_eq!(sim.execution_in_effect(), Execution::Exact);
    let exact = ScenarioRunner::new(cjz.clone()).run_seed(&algo, 3);
    let sparse = ScenarioRunner::new(cjz.execution(Execution::SkipAhead)).run_seed(&algo, 3);
    assert_eq!(fingerprint(&exact.trace), fingerprint(&sparse.trace));
}

/// Satellite: `current_prob()` must match the empirical broadcast
/// frequency of `act_fast` for every static-phase registry protocol.
/// 256 instances × 300 slots per protocol; the per-slot probabilities
/// are accumulated *before* acting, so divergent per-instance states
/// (window positions, schedule indices) are handled by the martingale
/// sum. Deterministic seeds — never flakes.
#[test]
fn current_prob_matches_empirical_act_frequency() {
    let roster: Vec<Baseline> = Baseline::roster()
        .into_iter()
        .chain([
            Baseline::Linear,
            Baseline::ResetWindowBeb,
            Baseline::PolySchedule(1.5),
            Baseline::Aloha(0.3),
        ])
        .collect();
    let seeds = SeedSequence::new(0xFEED);
    let mut covered = 0;
    for baseline in roster {
        let probe = baseline.spawn(NodeId::new(0));
        if !probe.static_until_feedback() {
            // Dynamic protocols are exempt from the hook contract; they
            // simply must not claim a probability they cannot honour.
            continue;
        }
        covered += 1;
        const INSTANCES: u64 = 256;
        const SLOTS: u64 = 300;
        let mut expected = 0.0f64;
        let mut variance = 0.0f64;
        let mut sends = 0u64;
        for i in 0..INSTANCES {
            let mut proto = baseline.spawn(NodeId::new(i));
            let mut rng = seeds.node_rng(i);
            for slot in 0..SLOTS {
                let p = proto.current_prob().unwrap_or_else(|| {
                    panic!(
                        "{}: static_until_feedback() requires current_prob()",
                        baseline.name()
                    )
                });
                assert!((0.0..=1.0).contains(&p), "{}: p={p}", baseline.name());
                expected += p;
                variance += p * (1.0 - p);
                sends += u64::from(proto.act_fast(slot, &mut rng).is_broadcast());
            }
        }
        let band = 6.0 * variance.sqrt() + 1.0;
        assert!(
            (sends as f64 - expected).abs() <= band,
            "{}: {sends} sends vs {expected:.1} expected (band {band:.1})",
            baseline.name()
        );
    }
    assert!(covered >= 8, "static registry coverage shrank: {covered}");
}

/// The `next_send_within` hook must respect its bound and consume
/// exactly what it reports, including the degenerate protocols.
#[test]
fn next_send_within_contract_edges() {
    let mut rng = SmallRng::seed_from_u64(5);
    let mut never = NeverBroadcast;
    assert!(never.static_until_feedback());
    assert_eq!(never.next_send_within(1_000, &mut rng), None);
    let mut always = AlwaysBroadcast;
    assert!(always.static_until_feedback());
    assert_eq!(always.next_send_within(1, &mut rng), Some(0));
    assert_eq!(always.next_send_within(0, &mut rng), None);
    for baseline in [
        Baseline::SmoothedBeb,
        Baseline::BinaryExponential,
        Baseline::PolySchedule(1.5),
        Baseline::Aloha(0.02),
    ] {
        let mut proto = baseline.spawn(NodeId::new(0));
        for within in [1u64, 7, 64, 1_000] {
            if let Some(gap) = proto.next_send_within(within, &mut rng) {
                assert!(gap < within, "{}: gap {gap} ≥ {within}", baseline.name());
            }
        }
    }
}

/// A listening-only population exercises the dormant path: the engine
/// must cross a million silent slots in one bound without touching the
/// nodes, while keeping trace, history, and survivors exact.
#[test]
fn silent_megahorizon_is_resolved_in_bulk() {
    let factory = (|_: NodeId| -> Box<dyn Protocol> { Box::new(NeverBroadcast) }).named("never");
    let config = SimConfig::with_seed(11)
        .without_slot_records()
        .with_history_retention(128)
        .with_execution(Execution::SkipAhead);
    let mut sim = Simulator::new(config, factory, NullAdversary);
    sim.seed_nodes(5);
    let start = std::time::Instant::now();
    sim.run_for(1_000_000);
    assert!(
        start.elapsed().as_secs_f64() < 5.0,
        "silent horizon took {:?}",
        start.elapsed()
    );
    assert_eq!(sim.current_slot(), 1_000_000);
    assert_eq!(sim.active_count(), 5);
    assert_eq!(sim.trace().len(), 1_000_000);
    assert_eq!(sim.trace().total_active(), 1_000_000);
    assert_eq!(sim.history().len(), 1_000_000);
    assert_eq!(sim.survivor_ages(), vec![1_000_000; 5]);
    let trace = sim.into_trace();
    assert_eq!(trace.survivors().len(), 5);
    assert_eq!(trace.survivors()[0].accesses, 0);
}

/// Nodes seeded *after* the sparse engine has engaged must join its
/// calendar: they broadcast and drain like adversary-injected ones.
/// (Regression: mid-run `seed_nodes` used to leave them planless and
/// permanently silent.)
#[test]
fn seed_nodes_after_engagement_joins_the_calendar() {
    let factory = (|_: NodeId| -> Box<dyn Protocol> { Box::new(AlwaysBroadcast) }).named("a");
    let mut sim = Simulator::new(
        SimConfig::with_seed(21).with_execution(Execution::SkipAhead),
        factory,
        NullAdversary,
    );
    assert_eq!(sim.execution_in_effect(), Execution::SkipAhead);
    sim.run_for(10); // engage and advance with an empty system
    sim.seed_nodes(1);
    assert_eq!(sim.run_until_drained(1_000), StopReason::Drained);
    let trace = sim.into_trace();
    assert_eq!(trace.total_successes(), 1);
    // The always-broadcaster seeded at slot 11 delivers immediately.
    assert_eq!(trace.departures()[0].arrival_slot, 11);
    assert_eq!(trace.departures()[0].departure_slot, 11);

    // Randomized protocols drain too, and repeated seeding keeps the
    // id-indexed plans aligned.
    let factory = AlgoSpec::Baseline(BaselineSpec::SmoothedBeb);
    let mut sim = Simulator::new(
        SimConfig::with_seed(22).with_execution(Execution::SkipAhead),
        factory,
        NullAdversary,
    );
    sim.run_for(5);
    sim.seed_nodes(4);
    sim.run_for(50);
    sim.seed_nodes(4);
    assert_eq!(sim.execution_in_effect(), Execution::SkipAhead);
    sim.run_until_drained(500_000);
    let trace = sim.into_trace();
    assert_eq!(
        trace.total_successes() + trace.survivors().len() as u64,
        8,
        "every seeded node is accounted for"
    );
    assert!(
        trace.total_successes() >= 6,
        "seeded nodes must actually transmit (got {})",
        trace.total_successes()
    );
}

/// Sparse runs honour the observer APIs: streamed records are never
/// stored, aggregates stay exact, and `step()` keeps working.
#[test]
fn sparse_observers_and_step_semantics() {
    let spec = ScenarioSpec::new("obs")
        .algo(AlgoSpec::Baseline(BaselineSpec::SmoothedBeb))
        .arrivals(ArrivalSpec::batch(4))
        .execution(Execution::SkipAhead);
    let algo = spec.algos[0].clone();
    let mut sim = ScenarioRunner::new(spec).sim(&algo, 9);
    let mut seen = 0u64;
    let mut last_slot = 0u64;
    sim.run_for_with(2_000, |slot, rec| {
        seen += 1;
        assert!(slot > last_slot, "slots stream in order");
        last_slot = slot;
        assert!(!rec.jammed);
    });
    assert_eq!(seen, 2_000);
    assert_eq!(sim.current_slot(), 2_000);
    assert_eq!(sim.trace().recorded_len(), 0, "streamed, never stored");
    assert_eq!(sim.trace().len(), 2_000);
    // step() advances exactly one slot at a time on the sparse path.
    let rec = sim.step();
    assert_eq!(sim.current_slot(), 2_001);
    assert!(rec.population <= 4);
    assert_eq!(sim.trace().recorded_len(), 1, "step records in full mode");
}

/// The mega-scale registry entries resolve, engage skip-ahead, and a
/// scaled instance drains a four-digit population in test time.
#[test]
fn mega_scale_registry_entries_run_under_skip_ahead() {
    for name in [
        "sparse-wall/65536",
        "sparse-batch/100000",
        "sparse-poly/1000000",
    ] {
        let spec = lookup(name).unwrap_or_else(|| panic!("{name} must resolve"));
        assert_eq!(spec.execution, Execution::SkipAhead, "{name}");
    }
    // A scaled-down instance of the mega family: 4000 nodes drain almost
    // completely inside the capped horizon, in seconds even unoptimized.
    let spec = lookup("sparse-batch/4000").unwrap().seeds(1);
    let algo = spec.algos[0].clone();
    let out = ScenarioRunner::new(spec).run_seed(&algo, 0);
    assert!(
        out.trace.total_successes() >= 3_800,
        "only {} of 4000 delivered",
        out.trace.total_successes()
    );
    let mut sim = ScenarioRunner::new(lookup("sparse-batch/4000").unwrap()).sim(&algo, 0);
    assert_eq!(sim.execution_in_effect(), Execution::SkipAhead);
}

#[test]
fn execution_knob_round_trips_in_scenario_json() {
    let spec = ScenarioSpec::new("x")
        .algo(AlgoSpec::Baseline(BaselineSpec::SmoothedBeb))
        .arrivals(ArrivalSpec::batch(3))
        .skip_ahead();
    let parsed = ScenarioSpec::from_json_str(&spec.to_json_string()).unwrap();
    assert_eq!(parsed, spec);
    assert_eq!(parsed.execution, Execution::SkipAhead);
    // Documents written before the knob existed parse as exact.
    let mut doc = spec.to_json();
    if let contention::bench::scenario::Json::Obj(pairs) = &mut doc {
        pairs.retain(|(k, _)| k != "execution");
    }
    let parsed = ScenarioSpec::from_json(&doc).unwrap();
    assert_eq!(parsed.execution, Execution::Exact);
    // Unknown strategies are rejected, not defaulted.
    let text = spec
        .to_json_string()
        .replace("\"skip-ahead\"", "\"warp-drive\"");
    assert!(ScenarioSpec::from_json_str(&text).is_err());
}
