//! Property-based integration tests: simulator invariants that must hold
//! for arbitrary seeds, populations, jamming rates and protocol choices.
//! Scenario-shaped workloads are built as `ScenarioSpec`s; only the
//! closure-adversary budget test drives the simulator directly.

use contention::prelude::*;
use contention::sim::Execution;
use proptest::prelude::*;

/// Pick one of the protocol stacks under test.
fn algo_strategy() -> impl Strategy<Value = u8> {
    0u8..6
}

fn algo_spec(which: u8) -> AlgoSpec {
    match which {
        0 => AlgoSpec::cjz_constant_jamming(),
        1 => AlgoSpec::cjz_constant_throughput(),
        2 => AlgoSpec::Baseline(BaselineSpec::BinaryExponential),
        3 => AlgoSpec::Baseline(BaselineSpec::SmoothedBeb),
        4 => AlgoSpec::Baseline(BaselineSpec::Sawtooth),
        _ => AlgoSpec::Baseline(BaselineSpec::FBackoff(GSpec::Constant(2.0))),
    }
}

fn jammed_batch(algo: &AlgoSpec, n: u32, jam: f64, horizon: u64) -> ScenarioSpec {
    ScenarioSpec::batch(n, jam)
        .algos([algo.clone()])
        .fixed_horizon(horizon)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every injected node is either delivered or survives.
    /// Drives the spec-built simulator manually so the engine's live
    /// population can be cross-checked against the trace's survivor log.
    #[test]
    fn conservation(seed in 0u64..1000, n in 1u32..40, jam in 0.0f64..0.6, which in algo_strategy()) {
        let algo = algo_spec(which);
        let runner = ScenarioRunner::new(jammed_batch(&algo, n, jam, 3000));
        let mut sim = runner.sim(&algo, seed);
        sim.run_for(3000);
        let alive = sim.active_count() as u64;
        let trace = sim.into_trace();
        prop_assert_eq!(trace.total_arrivals(), u64::from(n));
        prop_assert_eq!(trace.total_successes() + alive, u64::from(n));
        prop_assert_eq!(trace.survivors().len() as u64, alive);
    }

    /// Exactly-one-broadcaster in an unjammed slot if and only if success.
    #[test]
    fn resolution_rule(seed in 0u64..500, n in 1u32..30, jam in 0.0f64..0.5) {
        let algo = AlgoSpec::cjz_constant_jamming();
        let out = ScenarioRunner::new(jammed_batch(&algo, n, jam, 1500)).run_seed(&algo, seed);
        for rec in out.trace.slots() {
            let success = rec.is_success();
            let expected = !rec.jammed && rec.broadcasters == 1;
            prop_assert_eq!(success, expected, "slot record {:?}", rec);
            // Jam/collision/silence all produce NoSuccess feedback.
            prop_assert_eq!(rec.outcome.feedback().is_success(), success);
        }
    }

    /// Cumulative counters agree with raw slot records at every prefix.
    #[test]
    fn cumulative_consistency(seed in 0u64..200, n in 1u32..20) {
        let algo = AlgoSpec::Baseline(BaselineSpec::SmoothedBeb);
        let spec = ScenarioSpec::new("periodic-jam")
            .algo(algo.clone())
            .arrivals(ArrivalSpec::batch(n))
            .jamming(JammingSpec::Periodic { period: 7, phase: 3 })
            .fixed_horizon(600);
        let out = ScenarioRunner::new(spec).run_seed(&algo, seed);
        let trace = out.trace;
        let cum = trace.cumulative();
        let mut arrivals = 0u64;
        let mut jammed = 0u64;
        let mut active = 0u64;
        for (i, rec) in trace.slots().iter().enumerate() {
            arrivals += u64::from(rec.arrivals);
            jammed += u64::from(rec.jammed);
            active += u64::from(rec.active);
            let t = i as u64 + 1;
            prop_assert_eq!(cum.arrivals(t), arrivals);
            prop_assert_eq!(cum.jammed(t), jammed);
            prop_assert_eq!(cum.active(t), active);
        }
    }

    /// The engine is a pure function of the seed.
    #[test]
    fn determinism(seed in 0u64..300, n in 1u32..20, jam in 0.0f64..0.5, which in algo_strategy()) {
        let algo = algo_spec(which);
        let go = || {
            ScenarioRunner::new(jammed_batch(&algo, n, jam, 800)).run_seed(&algo, seed).trace
        };
        let a = go();
        let b = go();
        prop_assert_eq!(a.slots(), b.slots());
        prop_assert_eq!(a.departures(), b.departures());
    }

    /// A spec survives the JSON round-trip for arbitrary parameters.
    #[test]
    fn spec_json_round_trip(n in 1u32..10_000, jam in 0.0f64..1.0, seeds in 1u64..50, which in algo_strategy(), retention in 0u64..10_000) {
        let mut spec = ScenarioSpec::batch(n, jam)
            .algos([algo_spec(which)])
            .seeds(seeds)
            .aggregate_only();
        if retention % 2 == 0 {
            spec = spec.history_retention(retention);
        }
        let parsed = ScenarioSpec::from_json_str(&spec.to_json_string());
        prop_assert_eq!(parsed.as_ref(), Ok(&spec));
    }

    /// Rendered specs are always *valid JSON*, even when parameters are
    /// non-finite (regression: `NaN`/`inf` used to be emitted verbatim,
    /// which the parser then rejected). Finite specs additionally
    /// round-trip exactly.
    #[test]
    fn spec_json_render_is_always_parseable(which in 0u8..8, raw in -4.0f64..4.0) {
        let p = match which {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => raw,
        };
        let spec = ScenarioSpec::batch(4, 0.2)
            .algos([AlgoSpec::Baseline(BaselineSpec::Aloha(p))]);
        let text = spec.to_json_string();
        let parsed = contention::bench::scenario::Json::parse(&text);
        prop_assert!(parsed.is_ok(), "rendered spec must stay parseable: {text}");
        if p.is_finite() {
            let round = ScenarioSpec::from_json_str(&text);
            prop_assert_eq!(round.as_ref(), Ok(&spec));
        } else {
            // Non-finite parameters degrade to null; parsing then fails
            // with a *typed* SpecError (expected number), not a JSON
            // syntax error.
            prop_assert!(ScenarioSpec::from_json_str(&text).is_err());
        }
    }

    /// Budget wrappers never exceed their curves.
    #[test]
    fn budget_enforcement(seed in 0u64..200, arr_cap in 1u64..50, jam_div in 2u64..10) {
        use contention::sim::adversary::{ArrivalBudget, BudgetedAdversary, JamBudget, FnAdversary};
        let greedy = FnAdversary::new("greedy", |_s, _h, _r| SlotDecision { jam: true, inject: 10 });
        let cap = arr_cap;
        let div = jam_div;
        let adv = BudgetedAdversary::new(
            greedy,
            ArrivalBudget::new(move |_t| cap as f64),
            JamBudget::new(move |t| t as f64 / div as f64),
        );
        let factory = |_: NodeId| -> Box<dyn Protocol> {
            Box::new(contention::sim::node::NeverBroadcast)
        };
        let mut sim = Simulator::new(SimConfig::with_seed(seed), factory, adv);
        let horizon = 500u64;
        sim.run_for(horizon);
        let cum = sim.trace().cumulative();
        prop_assert!(cum.arrivals(horizon) <= cap);
        for t in 1..=horizon {
            prop_assert!(cum.jammed(t) as f64 <= t as f64 / div as f64 + 1.0);
        }
    }

    /// Latency of every delivered node is at least 1 and accesses at least 1.
    #[test]
    fn departure_sanity(seed in 0u64..300, n in 1u32..30, which in algo_strategy()) {
        let algo = algo_spec(which);
        let out = ScenarioRunner::new(jammed_batch(&algo, n, 0.0, 4000)).run_seed(&algo, seed);
        for d in out.trace.departures() {
            prop_assert!(d.latency() >= 1);
            prop_assert!(d.accesses >= 1);
            prop_assert!(d.departure_slot <= 4000);
        }
    }

    /// The (f,g) verifier's budget is monotone in t for non-decreasing
    /// inputs (arrivals/jams only accumulate).
    #[test]
    fn verifier_budget_monotone(seed in 0u64..100, n in 1u32..20) {
        let params = ProtocolParams::constant_jamming();
        let algo = AlgoSpec::cjz_constant_jamming();
        let out = ScenarioRunner::new(jammed_batch(&algo, n, 0.3, 512)).run_seed(&algo, seed);
        let cum = out.trace.cumulative();
        let v = ThroughputVerifier::for_params(&params);
        let mut prev = 0.0f64;
        for t in 1..=512u64 {
            let b = v.budget(&cum, t);
            prop_assert!(b >= prev - 1e-9, "budget dipped at t={t}: {b} < {prev}");
            prev = b;
        }
    }

    /// The lane engine replays each seed's scalar run bit-for-bit for
    /// arbitrary lane-eligible workloads: random population, forecastable
    /// jamming, either horizon kind, random seed base, and partial lane
    /// blocks (including single-lane blocks).
    #[test]
    fn lane_engine_matches_scalar(
        n in 1u32..20,
        which in 0u8..3,
        jam in 0u8..3,
        horizon in 0u8..2,
        lanes in 1u64..8,
        base in 0u64..10_000,
    ) {
        let algo = match which {
            0 => AlgoSpec::Baseline(BaselineSpec::SmoothedBeb),
            1 => AlgoSpec::Baseline(BaselineSpec::ResetBeb),
            _ => AlgoSpec::Baseline(BaselineSpec::BinaryExponential),
        };
        let mut spec = ScenarioSpec::new("lane-prop")
            .algo(algo.clone())
            .arrivals(ArrivalSpec::batch(n))
            .execution(Execution::BitParallel)
            .seed_base(base);
        spec = match jam {
            0 => spec,
            1 => spec.jamming(JammingSpec::Periodic { period: 5, phase: 1 }),
            _ => spec.jamming(JammingSpec::FrontLoaded { until: 128 }),
        };
        spec = if horizon == 0 {
            spec.fixed_horizon(512)
        } else {
            spec.until_drained(20_000)
        };
        let runner = ScenarioRunner::new(spec);
        prop_assert_eq!(runner.lane_block(&algo), 64, "spec must be lane-eligible");
        let block = runner.run_seed_block(&algo, base, lanes);
        prop_assert_eq!(block.len() as u64, lanes);
        for (j, got) in block.iter().enumerate() {
            let want = runner.run_seed(&algo, base + j as u64);
            prop_assert_eq!(got.slots, want.slots, "lane {}", j);
            prop_assert_eq!(got.drained, want.drained, "lane {}", j);
            prop_assert_eq!(got.trace.slots(), want.trace.slots(), "lane {}", j);
            prop_assert_eq!(got.trace.departures(), want.trace.departures(), "lane {}", j);
            prop_assert_eq!(got.trace.survivors(), want.trace.survivors(), "lane {}", j);
        }
    }

    /// During a drain run the active lane set only shrinks: every lane
    /// reports slot 1, a frozen lane never reports again, and each lane's
    /// last reported slot is exactly its drain slot.
    #[test]
    fn lane_active_set_monotone(n in 2u32..16, lanes in 2u64..33, base in 0u64..5_000) {
        let algo = AlgoSpec::Baseline(BaselineSpec::SmoothedBeb);
        let spec = ScenarioSpec::new("lane-monotone")
            .algo(algo.clone())
            .arrivals(ArrivalSpec::batch(n))
            .until_drained(30_000)
            .execution(Execution::BitParallel)
            .seed_base(base);
        let runner = ScenarioRunner::new(spec);
        prop_assert_eq!(runner.lane_block(&algo), 64);
        let mut sim = runner.lane_sim(&algo, base, lanes);
        let mut masks: Vec<u64> = Vec::new();
        sim.run_until_drained_with(30_000, |j, slot, _rec| {
            let k = slot as usize - 1;
            if masks.len() <= k {
                masks.resize(k + 1, 0);
            }
            masks[k] |= 1 << j;
        });
        prop_assert!(!masks.is_empty());
        prop_assert_eq!(masks[0], (1u64 << lanes) - 1, "every lane reports slot 1");
        for w in masks.windows(2) {
            prop_assert_eq!(
                w[1] & !w[0], 0,
                "frozen lane reappeared: {:#x} -> {:#x}", w[0], w[1]
            );
        }
        for j in 0..lanes as usize {
            let last = masks
                .iter()
                .rposition(|m| m >> j & 1 == 1)
                .expect("lane reported at least slot 1");
            prop_assert_eq!(sim.lane_slots(j), last as u64 + 1, "lane {} trace length", j);
            if !sim.lane_drained(j) {
                // A lane that never drained must have run to the cap —
                // only drained lanes may vanish from the active set.
                prop_assert_eq!(last + 1, masks.len(), "live lane {} vanished early", j);
            }
        }
    }
}
