//! Integration: the campaign subsystem — deterministic grid expansion,
//! property-based `SweepSpec` JSON round-trips (matching the
//! `tests/scenario_api.rs` style), CSV escaping, and byte-stable report
//! generation.

use contention::bench::campaign::{
    self, to_csv, to_jsonl, Axis, AxisPoint, CampaignRunner, Edit, SweepSpec,
};
use contention::prelude::*;
use proptest::prelude::*;

fn base() -> ScenarioSpec {
    ScenarioSpec::batch(8, 0.0)
        .algos([AlgoSpec::cjz_constant_jamming()])
        .until_drained(100_000)
}

#[test]
fn grid_cardinality_and_ordering_are_deterministic() {
    let sweep = SweepSpec::new("grid", "Grid", base())
        .axis(Axis::jam([0.0, 0.25, 0.4]))
        .axis(Axis::n([4, 8]));
    assert_eq!(sweep.cell_count(), 6);
    let cells = sweep.cells();
    assert_eq!(cells.len(), 6);
    // Row-major, first axis slowest; names carry the coordinates.
    let names: Vec<&str> = cells.iter().map(|c| c.spec.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "batch/8[jam=0,n=4]",
            "batch/8[jam=0,n=8]",
            "batch/8[jam=0.25,n=4]",
            "batch/8[jam=0.25,n=8]",
            "batch/8[jam=0.4,n=4]",
            "batch/8[jam=0.4,n=8]",
        ]
    );
    // Expansion is pure.
    assert_eq!(sweep.cells(), cells);
}

#[test]
fn every_registry_campaign_round_trips_through_json() {
    for entry in campaign::entries() {
        let sweep = campaign::lookup(entry.name).expect(entry.name);
        let parsed = SweepSpec::from_json_str(&sweep.to_json_string())
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        assert_eq!(parsed, sweep, "{} changed across round-trip", entry.name);
    }
}

#[test]
fn campaign_csv_escapes_algorithm_names_and_labels() {
    // An axis label with a comma and a multi-entry roster: the CSV must
    // quote both without breaking row arity.
    let sweep = SweepSpec::new(
        "csv",
        "CSV",
        base().algos([
            AlgoSpec::cjz_constant_jamming(),
            AlgoSpec::Baseline(BaselineSpec::BinaryExponential),
        ]),
    )
    .axis(Axis::new(
        "combo",
        vec![AxisPoint::coupled(
            "n=4,jam=0.1",
            [Edit::N(4), Edit::Jam(0.1)],
        )],
    ));
    let result = CampaignRunner::new(sweep).run();
    let csv = to_csv(&result);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 3, "header + 2 algo rows:\n{csv}");
    assert!(
        lines[1].contains("\"n=4,jam=0.1\""),
        "comma-bearing label is quoted: {}",
        lines[1]
    );
    // Quoting keeps the unquoted column structure parseable: strip quoted
    // segments and the remaining field count matches the header.
    let header_cols = lines[0].split(',').count();
    for line in &lines[1..] {
        let mut depth_free = String::new();
        let mut in_quotes = false;
        for ch in line.chars() {
            match ch {
                '"' => in_quotes = !in_quotes,
                ',' if in_quotes => depth_free.push(';'),
                c => depth_free.push(c),
            }
        }
        assert_eq!(
            depth_free.split(',').count(),
            header_cols,
            "row arity survives quoting: {line}"
        );
    }
    // JSONL rows stay parseable too.
    for line in to_jsonl(&result).lines() {
        contention::bench::scenario::Json::parse(line).expect("valid JSONL row");
    }
}

#[test]
fn smoke_report_is_byte_stable_and_contains_the_tradeoff_table() {
    let a = campaign::render_results_md(true);
    let b = campaign::render_results_md(true);
    assert_eq!(a, b, "RESULTS.md must be byte-identical across runs");
    assert!(
        a.contains("## Theorem 1.2 — the (f,g) trade-off at the critical budget"),
        "trade-off section present"
    );
    assert!(
        a.contains("| g(x) | jam | f(t) |"),
        "trade-off table present"
    );
    assert!(
        a.contains("accesses to 1st success"),
        "Theorem 1.3 section present"
    );
    assert!(
        a.contains("## Batch robustness — drain and delivery vs jamming rate"),
        "jamming sweep present"
    );
}

#[test]
fn campaign_runner_matches_scenario_runner_totals() {
    // A single-cell campaign must agree with the plain ScenarioRunner on
    // the same spec: streaming aggregation is an implementation detail,
    // not a semantic change.
    let spec = base().seeds(2);
    let algo = spec.algos[0].clone();
    let campaign_out = CampaignRunner::new(SweepSpec::new("x", "X", spec.clone())).run();
    let scenario_out = ScenarioRunner::new(spec).run_algo(&algo);
    let mean_successes = scenario_out
        .iter()
        .map(|o| o.trace.total_successes() as f64)
        .sum::<f64>()
        / scenario_out.len() as f64;
    let mean_slots =
        scenario_out.iter().map(|o| o.slots as f64).sum::<f64>() / scenario_out.len() as f64;
    assert_eq!(campaign_out.cells[0].mean_delivered, mean_successes);
    assert_eq!(campaign_out.cells[0].mean_slots, mean_slots);
    assert_eq!(campaign_out.cells[0].drained_frac, 1.0);
}

/// Build an arbitrary-ish sweep from proptest-driven raw values.
fn sweep_from(raw_axes: Vec<(u8, u32, f64)>, seeds: u64) -> SweepSpec {
    let mut sweep = SweepSpec::new("prop", "Prop", base().seeds(seeds.max(1)));
    for (i, (kind, n, p)) in raw_axes.into_iter().enumerate() {
        let axis = match kind % 6 {
            0 => Axis::n([n.max(1), n.max(1) * 2]),
            1 => Axis::jam([p, (p * 0.5).min(1.0)]),
            2 => Axis::horizons_pow2([4 + (n % 8), 5 + (n % 8)]),
            3 => Axis::g_spectrum(),
            4 => Axis::algos([
                AlgoSpec::cjz_constant_jamming(),
                AlgoSpec::Baseline(BaselineSpec::Sawtooth),
            ]),
            _ => Axis::new(
                format!("misc{i}"),
                vec![AxisPoint::coupled(
                    "pt",
                    [Edit::Rate(p), Edit::Seeds(seeds % 7 + 1)],
                )],
            ),
        };
        sweep = sweep.axis(axis);
    }
    sweep
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any sweep the axis constructors can build survives a JSON
    /// round-trip exactly, and its grid size is the axis-length product.
    #[test]
    fn sweep_json_round_trip(
        k1 in 0u8..6, k2 in 0u8..6, n in 1u32..512, p in 0.0f64..1.0, seeds in 1u64..9
    ) {
        let sweep = sweep_from(vec![(k1, n, p), (k2, n / 2 + 1, p * 0.7)], seeds);
        let json = sweep.to_json_string();
        let parsed = SweepSpec::from_json_str(&json).expect("round-trip parse");
        prop_assert_eq!(&parsed, &sweep);
        // Canonical encoding: serializing again is stable.
        prop_assert_eq!(parsed.to_json_string(), json);
        let expected: usize = sweep.axes.iter().map(|a| a.points.len()).product();
        prop_assert_eq!(sweep.cell_count(), expected);
        prop_assert_eq!(sweep.cells().len(), expected);
    }
}
