//! Cross-engine conformance: the bit-parallel lane engine
//! (`Execution::BitParallel`) against the scalar exact engine.
//!
//! The lane engine advances 64 seeds per engine pass; its contract is
//! not statistical equivalence but **bit-for-bit equality** — every
//! per-seed observable (slot records, departures, survivors, drain
//! slot, success count, first-access) must equal what the scalar engine
//! produces for the same seed, one at a time. This suite pins that over
//! 512 seeds spanning the workload classes the engine claims:
//!
//! * lockstep batches (shared-protocol fast path),
//! * jamming walls and periodic jams (forecast-driven decide caching),
//! * window protocols (split path: per-lane protocol instances),
//! * restart-on-success schedules (feedback-dependent lane divergence);
//!
//! plus the fallback envelope: adaptive adversaries, non-default
//! channel models, and the paper's dynamic protocol must decline the
//! lane engine and replay the exact engine trace-for-trace, and
//! `seed_base` must offset 64-wide lane blocks exactly like scalar
//! replication.

use contention::bench::campaign::{Axis, CampaignRunner, SweepSpec};
use contention::prelude::*;
use contention::sim::{Execution, SlotOutcome};

/// Seeds per equivalence family; four families make the 512 total.
const SEEDS_PER_FAMILY: u64 = 128;

/// Everything one seed produced, folded to one number. Covers slot
/// records (in full record mode), departures, and survivors, so two
/// equal fingerprints mean the engines agreed on every observable.
fn fingerprint(outcome: &TrialOutcome) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    fold(outcome.slots);
    fold(u64::from(outcome.drained));
    for rec in outcome.trace.slots() {
        fold(u64::from(rec.arrivals));
        fold(u64::from(rec.broadcasters));
        fold(u64::from(rec.jammed));
        fold(rec.population);
        fold(match rec.outcome {
            SlotOutcome::Silence => 1,
            SlotOutcome::Delivered(id) => 2u64.wrapping_add(id.raw() << 8),
            SlotOutcome::Collision { broadcasters } => {
                3u64.wrapping_add(u64::from(broadcasters) << 8)
            }
            SlotOutcome::Jammed { broadcasters } => 4u64.wrapping_add(u64::from(broadcasters) << 8),
        });
    }
    for d in outcome.trace.departures() {
        fold(d.node.raw());
        fold(d.arrival_slot);
        fold(d.departure_slot);
        fold(d.accesses);
    }
    for s in outcome.trace.survivors() {
        fold(s.node.raw());
        fold(s.arrival_slot);
        fold(s.accesses);
    }
    h
}

/// The per-seed observables named by the engine's contract, extracted
/// the same way from either engine's outcome.
#[derive(Debug, Clone, PartialEq)]
struct Observables {
    drain_slot: u64,
    drained: bool,
    successes: u64,
    arrivals: u64,
    jammed: u64,
    first_access: Option<u64>,
    first_success_slot: Option<u64>,
    fingerprint: u64,
}

fn observables(outcome: &TrialOutcome) -> Observables {
    Observables {
        drain_slot: outcome.slots,
        drained: outcome.drained,
        successes: outcome.trace.total_successes(),
        arrivals: outcome.trace.total_arrivals(),
        jammed: outcome.trace.total_jammed(),
        first_access: outcome
            .trace
            .departures()
            .first()
            .map(|d| d.accesses)
            .or_else(|| outcome.trace.survivors().first().map(|s| s.accesses)),
        first_success_slot: outcome.trace.departures().first().map(|d| d.departure_slot),
        fingerprint: fingerprint(outcome),
    }
}

/// Per-seed observables of `spec` under one execution mode, in seed
/// order. The BitParallel run goes through `ScenarioRunner::collect`'s
/// 64-wide block dispatch; the Exact run replicates seed by seed.
fn run_mode(spec: &ScenarioSpec, execution: Execution) -> Vec<(u64, Observables)> {
    let spec = spec.clone().execution(execution);
    let algo = spec.algos[0].clone();
    ScenarioRunner::new(spec).collect(&algo, |seed, o| (seed, observables(&o)))
}

/// The four equivalence families: batch, jamming, window, and
/// restart-on-success workloads. Each must be lane-eligible (asserted,
/// so a gate change can never make this suite pass vacuously).
fn families() -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        (
            "batch (shared lockstep schedules)",
            ScenarioSpec::new("lane-eq/batch")
                .algo(AlgoSpec::Baseline(BaselineSpec::SmoothedBeb))
                .arrivals(ArrivalSpec::batch(16))
                .until_drained(30_000),
        ),
        (
            "jamming (front-loaded wall + quiet forecast)",
            ScenarioSpec::new("lane-eq/jam-wall")
                .algo(AlgoSpec::Baseline(BaselineSpec::SmoothedBeb))
                .arrivals(ArrivalSpec::batch(12))
                .jamming(JammingSpec::FrontLoaded { until: 256 })
                .fixed_horizon(2_048),
        ),
        (
            "window (split path: per-lane window protocols)",
            ScenarioSpec::new("lane-eq/window")
                .algo(AlgoSpec::Baseline(BaselineSpec::BinaryExponential))
                .arrivals(ArrivalSpec::batch(12))
                .jamming(JammingSpec::Periodic {
                    period: 7,
                    phase: 3,
                })
                .fixed_horizon(2_048),
        ),
        (
            "restart-on-success (feedback-dependent divergence)",
            ScenarioSpec::new("lane-eq/reset-beb")
                .algo(AlgoSpec::Baseline(BaselineSpec::ResetBeb))
                .arrivals(ArrivalSpec::batch(10))
                .until_drained(16_000),
        ),
    ]
}

#[test]
fn bitparallel_matches_exact_bit_for_bit_over_512_seeds() {
    let mut total = 0u64;
    for (label, spec) in families() {
        let spec = spec.seeds(SEEDS_PER_FAMILY);
        let runner = ScenarioRunner::new(spec.clone().execution(Execution::BitParallel));
        assert_eq!(
            runner.lane_block(&spec.algos[0]),
            64,
            "{label}: family must be lane-eligible, not a scalar-vs-scalar tautology"
        );
        let exact = run_mode(&spec, Execution::Exact);
        let lanes = run_mode(&spec, Execution::BitParallel);
        assert_eq!(exact.len(), lanes.len(), "{label}: seed count");
        for ((se, oe), (sl, ol)) in exact.iter().zip(&lanes) {
            assert_eq!(se, sl, "{label}: seed order");
            assert_eq!(oe, ol, "{label}: seed {se} observables diverged");
        }
        total += exact.len() as u64;
        // Non-degenerate: the family actually delivered something.
        assert!(
            exact.iter().any(|(_, o)| o.successes > 0),
            "{label}: no seed delivered anything"
        );
    }
    assert!(total >= 512, "only {total} seeds covered");
}

/// A partial final block (seeds not a multiple of 64) and a nonzero
/// `seed_base` must both map lanes to the same absolute seeds scalar
/// replication uses — the PR 6 `seed_base` bug class, now 64 seeds wide.
#[test]
fn seed_base_offsets_lane_blocks_exactly() {
    let spec = ScenarioSpec::new("lane-eq/seed-base")
        .algo(AlgoSpec::Baseline(BaselineSpec::SmoothedBeb))
        .arrivals(ArrivalSpec::batch(8))
        .until_drained(20_000)
        .seeds(130) // two full blocks + a 2-lane tail
        .seed_base(1_000);
    let algo = spec.algos[0].clone();

    let lanes = run_mode(&spec, Execution::BitParallel);
    let seeds: Vec<u64> = lanes.iter().map(|(s, _)| *s).collect();
    assert_eq!(seeds, (1_000..1_130).collect::<Vec<u64>>());

    // Reference: the scalar engine run one absolute seed at a time.
    let exact_runner = ScenarioRunner::new(spec.clone().execution(Execution::Exact));
    for (seed, obs) in &lanes {
        let reference = observables(&exact_runner.run_seed(&algo, *seed));
        assert_eq!(&reference, obs, "absolute seed {seed} diverged");
    }

    // Sanity: base 1000 is distinguishable from base 0, so a dispatch
    // that dropped the offset could not pass by coincidence.
    let zero = run_mode(&spec.clone().seed_base(0), Execution::BitParallel);
    assert_ne!(
        zero.iter().map(|(_, o)| o.fingerprint).collect::<Vec<_>>(),
        lanes.iter().map(|(_, o)| o.fingerprint).collect::<Vec<_>>(),
    );
}

/// The campaign scheduler hands lane-eligible units out as 64-seed
/// block tasks; cell rows must equal the exact engine's byte for byte
/// (same folds, same checkpoint curves), whatever the task layout.
#[test]
fn campaign_lane_blocks_match_exact_cells() {
    let sweep = |execution: Execution| {
        SweepSpec::new(
            "lane-eq",
            "Lane equivalence",
            ScenarioSpec::new("lane-eq/campaign")
                .algo(AlgoSpec::Baseline(BaselineSpec::SmoothedBeb))
                .algo(AlgoSpec::Baseline(BaselineSpec::ResetBeb))
                .arrivals(ArrivalSpec::batch(12))
                .until_drained(20_000)
                .seeds(70) // one full block + a 6-lane tail per unit
                .seed_base(40)
                .execution(execution),
        )
        .axis(Axis::n([8, 12]))
    };
    let exact = CampaignRunner::new(sweep(Execution::Exact)).run();
    let lanes = CampaignRunner::new(sweep(Execution::BitParallel)).run();
    assert_eq!(exact.cells.len(), lanes.cells.len());
    for (e, l) in exact.cells.iter().zip(&lanes.cells) {
        assert_eq!(e.coords, l.coords);
        assert_eq!(e.algo_name, l.algo_name);
        assert_eq!(e.seeds, l.seeds);
        assert_eq!(e.mean_slots, l.mean_slots, "{}", e.spec.name);
        assert_eq!(e.drained_frac, l.drained_frac);
        assert_eq!(e.mean_delivered, l.mean_delivered);
        assert_eq!(e.mean_broadcasts, l.mean_broadcasts);
        assert_eq!(e.mean_silence, l.mean_silence);
        assert_eq!(e.mean_collisions, l.mean_collisions);
        assert_eq!(e.mean_jammed, l.mean_jammed);
        assert_eq!(e.mean_latency, l.mean_latency);
        assert_eq!(e.mean_energy, l.mean_energy);
        assert_eq!(e.mean_first_access, l.mean_first_access);
        assert_eq!(e.mean_first_success_slot, l.mean_first_success_slot);
        assert_eq!(e.checkpoints, l.checkpoints, "{}", e.spec.name);
    }
}

/// Workloads outside the lane envelope — adaptive adversaries,
/// non-default channels, the paper's dynamic protocol — must fall back
/// to the exact engine under `Execution::BitParallel`:
/// fingerprint-identical outcomes and a scalar block size.
#[test]
fn ineligible_workloads_fall_back_to_exact() {
    let ineligible: Vec<(&str, ScenarioSpec)> = vec![
        (
            "reactive jamming (adaptive adversary)",
            ScenarioSpec::new("lane-fb/reactive")
                .algo(AlgoSpec::Baseline(BaselineSpec::SmoothedBeb))
                .arrivals(ArrivalSpec::batch(8))
                .jamming(JammingSpec::Reactive { burst: 3 })
                .fixed_horizon(1_500),
        ),
        (
            "random jamming (per-slot rng, unforecastable)",
            ScenarioSpec::new("lane-fb/random")
                .algo(AlgoSpec::Baseline(BaselineSpec::SmoothedBeb))
                .arrivals(ArrivalSpec::batch(8))
                .jamming(JammingSpec::Random { p: 0.3 })
                .fixed_horizon(1_500),
        ),
        (
            "collision-detection channel",
            ScenarioSpec::new("lane-fb/cd")
                .algo(AlgoSpec::Baseline(BaselineSpec::SmoothedBeb))
                .arrivals(ArrivalSpec::batch(6))
                .channel(ChannelSpec::collision_detection())
                .fixed_horizon(500),
        ),
        (
            "cjz (dynamic phase-structured protocol)",
            ScenarioSpec::batch(8, 0.0).fixed_horizon(500),
        ),
    ];
    for (label, spec) in ineligible {
        let spec = spec.seeds(4);
        let algo = spec.algos[0].clone();
        let runner = ScenarioRunner::new(spec.clone().execution(Execution::BitParallel));
        assert_eq!(
            runner.lane_block(&algo),
            1,
            "{label}: must not engage lanes"
        );
        let exact = run_mode(&spec, Execution::Exact);
        let fallback = run_mode(&spec, Execution::BitParallel);
        assert_eq!(exact, fallback, "{label}: fallback must replay exact");
    }
}

/// The registry's lane families resolve, request bit-parallel, and are
/// actually eligible with their shipped rosters.
#[test]
fn lane_registry_families_are_eligible() {
    use contention::bench::scenario::lookup;
    for name in ["lane-batch/256", "lane-batch-jammed/256"] {
        let spec = lookup(name).unwrap_or_else(|| panic!("{name} must resolve"));
        assert_eq!(spec.execution, Execution::BitParallel, "{name}");
        let runner = ScenarioRunner::new(spec.clone());
        for algo in &spec.algos {
            assert_eq!(runner.lane_block(algo), 64, "{name}/{}", algo.name());
        }
    }
    // A scaled instance runs through the lane path. The poly-schedule
    // roster never drains (each node's lifetime send count is the
    // finite ζ(1.5)), so the fixed horizon is the stop condition.
    let spec = lookup("lane-batch/32").unwrap().seeds(96);
    let algo = spec.algos[0].clone();
    let outs = ScenarioRunner::new(spec.clone()).run_algo(&algo);
    assert_eq!(outs.len(), 96);
    assert!(outs.iter().all(|o| !o.drained && o.slots == 1024));
    assert!(outs.iter().any(|o| o.trace.total_successes() > 0));
    // Bit-for-bit on this roster too: the power law has no interned
    // ProbTable, so this pins the computed-threshold path (shared
    // per-cell `bernoulli_threshold(prob(i))`) against the scalar
    // engine's float compare on every seed.
    let exact = run_mode(&spec, Execution::Exact);
    let lanes = run_mode(&spec, Execution::BitParallel);
    assert_eq!(exact, lanes);
}

/// Observer streaming on the lane path: `run_seed_block`'s streamed
/// slots must match scalar `run_for_with` streams lane for lane.
#[test]
fn lane_streaming_matches_scalar_observers() {
    let spec = ScenarioSpec::new("lane-eq/stream")
        .algo(AlgoSpec::Baseline(BaselineSpec::SmoothedBeb))
        .arrivals(ArrivalSpec::batch(6))
        .fixed_horizon(600)
        .aggregate_only()
        .execution(Execution::BitParallel);
    let algo = spec.algos[0].clone();
    let runner = ScenarioRunner::new(spec.clone());
    let n = 5u64; // deliberately partial block
    let mut sim = runner.lane_sim(&algo, 10, n);
    let mut streamed: Vec<Vec<(u64, u32, u64)>> = vec![Vec::new(); n as usize];
    sim.run_for_with(600, |j, slot, rec| {
        streamed[j].push((slot, rec.broadcasters, rec.population));
    });
    for (j, lane) in streamed.iter().enumerate() {
        let seed = 10 + j as u64;
        let mut scalar = runner.sim(&algo, seed);
        let mut reference = Vec::new();
        scalar.run_for_with(600, |slot, rec| {
            reference.push((slot, rec.broadcasters, rec.population));
        });
        assert_eq!(lane, &reference, "lane {j} (seed {seed}) stream diverged");
    }
}
