//! Tier-1 guard: the engine's steady-state hot path performs no per-slot
//! heap allocation.
//!
//! A counting global allocator wraps the system allocator; after a warmup
//! phase (scratch buffers at capacity, backoff stages drawn, schedule
//! tables interned), stepping the simulator must allocate nothing at all.
//! This pins the zero-allocation property the hot-path rewrite introduced:
//! reusable broadcaster scratch, derived local clocks, and aggregate-mode
//! recording that never materializes per-slot storage.
//!
//! The counter is **per-thread**: the libtest harness runs its own
//! threads concurrently with the test body and occasionally allocates
//! (observed as a rare flake on loaded single-core machines, where a
//! process-global counter picked up 1–2 foreign allocations inside the
//! measured window). A const-initialized thread-local (`Cell<u64>` has
//! no destructor, so first access neither allocates nor registers a TLS
//! dtor) counts only this thread's allocations, keeping the assertions
//! exact and immune to harness noise.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use contention::prelude::*;
use contention::sim::adversary::{BatchArrival, CompositeAdversary, NullAdversary, RandomJamming};
use contention::sim::node::{AlwaysBroadcast, NeverBroadcast};
use contention::sim::{NodeId, Protocol, SimConfig, Simulator};

struct CountingAllocator;

std::thread_local! {
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Count one allocator call on the current thread. `try_with` because
/// allocation can happen during thread teardown, after TLS destruction;
/// those calls are outside any measured window and safe to drop.
fn count_one() {
    let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: delegates every operation to the system allocator unchanged; the
// counter is a side effect only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocations made by the current thread so far.
fn allocations() -> u64 {
    THREAD_ALLOCATIONS.with(|c| c.get())
}

/// Run `steps` slots and return how many allocations they performed.
fn allocations_during<F, A>(sim: &mut Simulator<F, A>, steps: u64) -> u64
where
    F: contention::sim::ProtocolFactory,
    A: contention::sim::Adversary,
{
    let before = allocations();
    sim.run_for(steps);
    allocations() - before
}

#[test]
fn steady_state_step_is_allocation_free() {
    // Case 1: listening population, empty channel — the minimal loop.
    // Bounded history retention keeps the adversary window a fixed-size
    // ring; unlimited retention would show (amortized, logarithmically
    // rare) VecDeque growth instead.
    let factory = |_: NodeId| -> Box<dyn Protocol> { Box::new(NeverBroadcast) };
    let mut sim = Simulator::new(
        SimConfig::with_seed(11)
            .without_slot_records()
            .with_history_retention(64),
        factory,
        NullAdversary,
    );
    sim.seed_nodes(64);
    sim.run_for(256); // warmup: scratch buffers and the history ring fill
    let allocs = allocations_during(&mut sim, 10_000);
    assert_eq!(
        allocs, 0,
        "listening steady state allocated {allocs} times in 10k slots"
    );

    // Case 2: permanent collisions — broadcaster scratch reused every slot.
    let factory = |_: NodeId| -> Box<dyn Protocol> { Box::new(AlwaysBroadcast) };
    let mut sim = Simulator::new(
        SimConfig::with_seed(12)
            .without_slot_records()
            .with_history_retention(64),
        factory,
        NullAdversary,
    );
    sim.seed_nodes(32);
    sim.run_for(256);
    let allocs = allocations_during(&mut sim, 10_000);
    assert_eq!(
        allocs, 0,
        "colliding steady state allocated {allocs} times in 10k slots"
    );

    // Case 3: the paper's protocol under jamming, bounded history window —
    // the realistic endurance configuration. Jamming keeps the population
    // alive (no successes ⇒ no departures or phase churn) while every
    // per-slot subsystem (adversary RNG, backoff draws, history ring)
    // still runs. Backoff stage redraws double in period, so a long
    // warmup lets `HBackoff`'s send buffers reach their final capacity.
    let algo = AlgoSpec::cjz_constant_jamming();
    let spec = ScenarioSpec::batch(16, 1.0)
        .algos([algo.clone()])
        .fixed_horizon(1)
        .aggregate_only();
    let runner = ScenarioRunner::new(spec.history_retention(256));
    let mut sim = runner.sim(&algo, 17);
    sim.run_for(40_000);
    let allocs = allocations_during(&mut sim, 20_000);
    // Backoff stages double in period, so a stage boundary inside the
    // window may legitimately grow a node's send buffer — logarithmically
    // rare and amortized. The guard is against *per-slot* allocation: the
    // pre-rewrite engine allocated a broadcasters Vec on nearly every one
    // of these 20k slots.
    assert!(
        allocs < 64,
        "cjz-under-jamming steady state allocated {allocs} times in 20k slots"
    );

    // Sanity: the counter itself works (cold-start must allocate).
    let before = allocations();
    let factory = |_: NodeId| -> Box<dyn Protocol> { Box::new(NeverBroadcast) };
    let adv = CompositeAdversary::new(BatchArrival::new(1, 8), RandomJamming::new(0.5));
    let mut cold = Simulator::new(SimConfig::with_seed(13), factory, adv);
    cold.run_for(10);
    assert!(
        allocations() > before,
        "counting allocator failed to observe cold-start allocations"
    );
}
