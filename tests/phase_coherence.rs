//! Integration: phase coherence across a synchronized cluster.
//!
//! The algorithm's correctness hinges on an emergent agreement: after a
//! shared success, all nodes in Phase 2/3 anchor on the same slot and hence
//! agree (up to their private local-clock offsets) on which *global* parity
//! class is the control channel. These tests drive a cluster of protocol
//! instances in lockstep — bypassing the engine so we can inspect each
//! node's state — and check the agreement invariants directly.

use contention::core::{CjzProtocol, PhaseKind, ProtocolParams};
use contention::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A hand-rolled lockstep cluster: nodes with arbitrary global arrival
/// slots, a perfect channel (we script the successes).
struct Cluster {
    nodes: Vec<(u64 /* arrival */, CjzProtocol, SmallRng)>,
    slot: u64,
}

impl Cluster {
    fn new(arrivals: &[u64]) -> Self {
        let nodes = arrivals
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                (
                    a,
                    CjzProtocol::new(ProtocolParams::constant_jamming()),
                    SmallRng::seed_from_u64(1000 + i as u64),
                )
            })
            .collect();
        Cluster { nodes, slot: 0 }
    }

    /// Advance one global slot; `success` scripts the channel outcome.
    fn step(&mut self, success: bool) {
        self.slot += 1;
        let slot = self.slot;
        for (arrival, proto, rng) in &mut self.nodes {
            if *arrival > slot {
                continue;
            }
            let local = slot - *arrival;
            let _ = proto.act(local, rng);
            let fb = if success {
                Feedback::Success(NodeId::new(0))
            } else {
                Feedback::NoSuccess
            };
            proto.observe(local, fb);
        }
    }
}

#[test]
fn all_nodes_reach_phase_two_on_first_success() {
    // Nodes arriving at mixed parities; one scripted success synchronizes
    // every active node into Phase 2 in the same global slot.
    let mut c = Cluster::new(&[1, 2, 3, 4]);
    for _ in 0..6 {
        c.step(false);
    }
    assert!(c.nodes.iter().all(|(_, p, _)| p.phase() == PhaseKind::One));
    c.step(true);
    assert!(
        c.nodes.iter().all(|(_, p, _)| p.phase() == PhaseKind::Two),
        "one success must synchronize everyone"
    );
}

#[test]
fn phase_three_entry_is_simultaneous_and_ctrl_parity_agrees() {
    let mut c = Cluster::new(&[1, 2, 5, 8]);
    for _ in 0..8 {
        c.step(false);
    }
    c.step(true); // global slot 9: everyone -> Phase 2
                  // In Phase 2 everyone's control channel is global parity of 10 (even):
                  // a success on an even global slot moves everyone to Phase 3; an odd
                  // one is ignored by all.
    c.step(true); // global slot 10 (even): ctrl success
    for (arrival, p, _) in &c.nodes {
        assert_eq!(
            p.phase(),
            PhaseKind::Three,
            "node arrived at {arrival} did not enter phase 3"
        );
    }
    // Everyone's Phase-3 anchor is global slot 10, so all agree the new
    // ctrl channel is global-odd. A success on an even slot (data channel)
    // must not restart anyone; one on an odd slot must restart everyone.
    c.step(false); // slot 11
    c.step(true); // slot 12 (even = data): no restart
    assert!(c
        .nodes
        .iter()
        .all(|(_, p, _)| p.stats().phase3_restarts == 0));
    c.step(true); // slot 13 (odd = ctrl): restart for all
    assert!(
        c.nodes
            .iter()
            .all(|(_, p, _)| p.stats().phase3_restarts == 1),
        "ctrl-channel success must restart every batch node"
    );
}

#[test]
fn phase2_node_ignores_data_channel_successes_cluster_wide() {
    let mut c = Cluster::new(&[1, 2]);
    c.step(true); // slot 1: both (only node 1 active? node2 arrives slot 2)
                  // Node 1 active at slot 1, heard success -> Phase 2. Node 2 arrives at
                  // slot 2 in Phase 1.
    assert_eq!(c.nodes[0].1.phase(), PhaseKind::Two);
    assert_eq!(c.nodes[1].1.phase(), PhaseKind::One);
    // Node 1's ctrl = global parity of 2 (even). A success at odd slot 3 is
    // its data channel: stays Phase 2; but node 2 (Phase 1) jumps to 2.
    c.step(false); // slot 2
    c.step(true); // slot 3
    assert_eq!(c.nodes[0].1.phase(), PhaseKind::Two, "data success ignored");
    assert_eq!(c.nodes[1].1.phase(), PhaseKind::Two, "phase-1 node syncs");
}

#[test]
fn late_arrival_disagrees_until_next_ctrl_success() {
    // A node arriving after the cluster is in Phase 3 starts in Phase 1;
    // the next success (whatever channel) moves it to Phase 2 — it need
    // not agree with the incumbents until a ctrl success aligns it. This
    // test documents the transient rather than asserting agreement.
    let mut c = Cluster::new(&[1, 20]);
    c.step(true); // slot 1: node1 -> Phase 2 (ctrl = even)
    c.step(true); // slot 2: even => node1 -> Phase 3 (anchor 2, ctrl odd)
    assert_eq!(c.nodes[0].1.phase(), PhaseKind::Three);
    for _ in 2..25 {
        c.step(false);
    }
    // Node 2 arrived at slot 20, still Phase 1.
    assert_eq!(c.nodes[1].1.phase(), PhaseKind::One);
    c.step(true); // slot 26: node2 -> Phase 2; node2's ctrl = parity 27 (odd)
    assert_eq!(c.nodes[1].1.phase(), PhaseKind::Two);
    // Node1 (anchor 2, ctrl odd): hmm — slot 26 is even = node1's data; no
    // restart. Next odd success aligns both: node2 Phase 2 ctrl odd -> 3,
    // node1 restarts on ctrl odd.
    c.step(true); // slot 27 (odd)
    assert_eq!(c.nodes[1].1.phase(), PhaseKind::Three);
    assert_eq!(c.nodes[0].1.stats().phase3_restarts, 1);
}
