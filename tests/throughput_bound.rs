//! Integration: the (f,g)-throughput verifier against real executions,
//! with every workload described as a scenario spec.

use contention::prelude::*;

const TOLERANCE: f64 = 8.0;

fn check_spec(params: &ProtocolParams, spec: ScenarioSpec, seed: u64) -> ThroughputReport {
    let algo = AlgoSpec::cjz_constant_jamming();
    let out = ScenarioRunner::new(spec.algos([algo.clone()])).run_seed(&algo, seed);
    ThroughputVerifier::for_params(params).check(&out.trace, TOLERANCE)
}

#[test]
fn bound_holds_on_clean_batch() {
    let params = ProtocolParams::constant_jamming();
    let spec = ScenarioSpec::batch(128, 0.0).fixed_horizon(1 << 14);
    let report = check_spec(&params, spec, 1);
    assert!(
        report.ok,
        "ratio {} at t={}",
        report.max_ratio, report.worst_t
    );
}

#[test]
fn bound_holds_under_random_jamming() {
    let params = ProtocolParams::constant_jamming();
    let spec = ScenarioSpec::batch(128, 0.3).fixed_horizon(1 << 14);
    let report = check_spec(&params, spec, 2);
    assert!(
        report.ok,
        "ratio {} at t={}",
        report.max_ratio, report.worst_t
    );
}

#[test]
fn bound_holds_at_critical_budget_load() {
    let params = ProtocolParams::constant_jamming();
    let spec = ScenarioSpec::new("saturated-budgeted/const")
        .arrivals(ArrivalSpec::saturated())
        .jamming(JammingSpec::random(0.5))
        .budget(BudgetSpec::critical(ParamsSpec::constant_jamming(), 4.0))
        .fixed_horizon(1 << 14);
    let report = check_spec(&params, spec, 3);
    assert!(
        report.ok,
        "ratio {} at t={}",
        report.max_ratio, report.worst_t
    );
}

#[test]
fn bound_holds_under_reactive_jamming() {
    let params = ProtocolParams::constant_jamming();
    // Reactive spite jamming, bounded by the budget wrapper.
    let spec = ScenarioSpec::new("reactive")
        .arrivals(ArrivalSpec::Bursty {
            period: 512,
            phase: 1,
            size: 32,
            bursts: 16,
        })
        .jamming(JammingSpec::Reactive { burst: 8 })
        .budget(BudgetSpec {
            params: ParamsSpec::constant_jamming(),
            arrivals: CurveSpec::Unlimited,
            jams: CurveSpec::CriticalJams { scale: 2.0 },
        })
        .fixed_horizon(1 << 14);
    let report = check_spec(&params, spec, 4);
    assert!(
        report.ok,
        "ratio {} at t={}",
        report.max_ratio, report.worst_t
    );
}

#[test]
fn bound_holds_for_exp_sqrt_tuning_without_jamming() {
    // The clean-channel tuning has f(t) ≈ 1 at laptop scales (the clamp in
    // FFunction::eval), so the entire drain constant (~10 slots per node,
    // E3b) lands in the ratio. 16 is the calibrated constant for this
    // regime; the check is that it does not grow with t (E3b verifies the
    // Θ(n) shape).
    let params = ProtocolParams::constant_throughput();
    let algo = AlgoSpec::cjz_constant_throughput();
    let out = ScenarioRunner::new(
        ScenarioSpec::batch(256, 0.0)
            .algos([algo.clone()])
            .fixed_horizon(1 << 14),
    )
    .run_seed(&algo, 5);
    let report = ThroughputVerifier::for_params(&params).check(&out.trace, 16.0);
    assert!(
        report.ok,
        "ratio {} at t={}",
        report.max_ratio, report.worst_t
    );
}

#[test]
fn verifier_flags_a_broken_protocol() {
    // A protocol that never sends keeps slots active forever: with steady
    // arrivals, a_t outgrows the budget and the verifier must flag it.
    // (A never-broadcast "protocol" is not a roster member, so this one
    // test drives the simulator directly through a named closure factory.)
    let params = ProtocolParams::constant_jamming();
    let factory =
        (|_: NodeId| -> Box<dyn Protocol> { Box::new(contention::sim::node::NeverBroadcast) })
            .named("never-broadcast");
    let adv = ScenarioSpec::batch(1, 0.0).build_adversary();
    let mut sim = Simulator::new(SimConfig::with_seed(6), factory, adv);
    sim.run_for(1 << 14);
    let report = ThroughputVerifier::for_params(&params).check(&sim.into_trace(), TOLERANCE);
    assert!(!report.ok, "a silent protocol must violate the bound");
    assert!(report.max_ratio > TOLERANCE);
}

#[test]
fn report_samples_cover_the_horizon() {
    let params = ProtocolParams::constant_jamming();
    let spec = ScenarioSpec::batch(16, 0.0).fixed_horizon(4096);
    let report = check_spec(&params, spec, 7);
    let last = report.samples.last().expect("samples");
    assert_eq!(last.0, 4096);
    // Dyadic sampling: 1, 2, 4, …, 4096.
    assert_eq!(report.samples.len(), 13);
}
