//! Integration: the (f,g)-throughput verifier against real executions.

use contention::prelude::*;
use contention::sim::adversary::{ArrivalBudget, BudgetedAdversary, JamBudget};

const TOLERANCE: f64 = 8.0;

fn check_scenario<A: Adversary>(params: &ProtocolParams, adversary: A, slots: u64, seed: u64) -> ThroughputReport {
    let factory = CjzFactory::new(params.clone());
    let mut sim = Simulator::new(SimConfig::with_seed(seed), factory, adversary);
    sim.run_for(slots);
    ThroughputVerifier::for_params(params).check(&sim.into_trace(), TOLERANCE)
}

#[test]
fn bound_holds_on_clean_batch() {
    let params = ProtocolParams::constant_jamming();
    let adv = CompositeAdversary::new(BatchArrival::at_start(128), NoJamming);
    let report = check_scenario(&params, adv, 1 << 14, 1);
    assert!(report.ok, "ratio {} at t={}", report.max_ratio, report.worst_t);
}

#[test]
fn bound_holds_under_random_jamming() {
    let params = ProtocolParams::constant_jamming();
    let adv = CompositeAdversary::new(BatchArrival::at_start(128), RandomJamming::new(0.3));
    let report = check_scenario(&params, adv, 1 << 14, 2);
    assert!(report.ok, "ratio {} at t={}", report.max_ratio, report.worst_t);
}

#[test]
fn bound_holds_at_critical_budget_load() {
    let params = ProtocolParams::constant_jamming();
    let f = params.f();
    let g = params.g().clone();
    let inner = CompositeAdversary::new(SaturatedArrival::new(u64::MAX), RandomJamming::new(0.5));
    let adv = BudgetedAdversary::new(
        inner,
        ArrivalBudget::new(move |t| t as f64 / (4.0 * f.at(t))),
        JamBudget::new(move |t| t as f64 / (4.0 * g.at(t))),
    );
    let report = check_scenario(&params, adv, 1 << 14, 3);
    assert!(report.ok, "ratio {} at t={}", report.max_ratio, report.worst_t);
}

#[test]
fn bound_holds_under_reactive_jamming() {
    let params = ProtocolParams::constant_jamming();
    let adv = CompositeAdversary::new(
        BurstyArrival::new(512, 1, 32, 16),
        // Reactive spite jamming, bounded by the budget wrapper.
        contention::sim::adversary::ReactiveJamming::new(8),
    );
    let g = params.g().clone();
    let adv = BudgetedAdversary::new(
        adv,
        ArrivalBudget::unlimited(),
        JamBudget::new(move |t| t as f64 / (2.0 * g.at(t))),
    );
    let report = check_scenario(&params, adv, 1 << 14, 4);
    assert!(report.ok, "ratio {} at t={}", report.max_ratio, report.worst_t);
}

#[test]
fn bound_holds_for_exp_sqrt_tuning_without_jamming() {
    // The clean-channel tuning has f(t) ≈ 1 at laptop scales (the clamp in
    // FFunction::eval), so the entire drain constant (~10 slots per node,
    // E3b) lands in the ratio. 16 is the calibrated constant for this
    // regime; the check is that it does not grow with t (E3b verifies the
    // Θ(n) shape).
    let params = ProtocolParams::constant_throughput();
    let adv = CompositeAdversary::new(BatchArrival::at_start(256), NoJamming);
    let factory = CjzFactory::new(params.clone());
    let mut sim = Simulator::new(SimConfig::with_seed(5), factory, adv);
    sim.run_for(1 << 14);
    let report = ThroughputVerifier::for_params(&params).check(&sim.into_trace(), 16.0);
    assert!(report.ok, "ratio {} at t={}", report.max_ratio, report.worst_t);
}

#[test]
fn verifier_flags_a_broken_protocol() {
    // A protocol that never sends keeps slots active forever: with steady
    // arrivals, a_t outgrows the budget and the verifier must flag it.
    let params = ProtocolParams::constant_jamming();
    let factory = |_: NodeId| -> Box<dyn Protocol> {
        Box::new(contention::sim::node::NeverBroadcast)
    };
    let adv = CompositeAdversary::new(BatchArrival::at_start(1), NoJamming);
    let mut sim = Simulator::new(SimConfig::with_seed(6), factory, adv);
    sim.run_for(1 << 14);
    let report = ThroughputVerifier::for_params(&params).check(&sim.into_trace(), TOLERANCE);
    assert!(!report.ok, "a silent protocol must violate the bound");
    assert!(report.max_ratio > TOLERANCE);
}

#[test]
fn report_samples_cover_the_horizon() {
    let params = ProtocolParams::constant_jamming();
    let adv = CompositeAdversary::new(BatchArrival::at_start(16), NoJamming);
    let report = check_scenario(&params, adv, 4096, 7);
    let last = report.samples.last().expect("samples");
    assert_eq!(last.0, 4096);
    // Dyadic sampling: 1, 2, 4, …, 4096.
    assert_eq!(report.samples.len(), 13);
}
