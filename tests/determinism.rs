//! Integration: determinism and seed-sensitivity of the full stack.

use contention::prelude::*;

fn run(seed: u64, jam: f64) -> Trace {
    let factory = CjzFactory::new(ProtocolParams::constant_jamming());
    let adversary = CompositeAdversary::new(
        BurstyArrival::new(100, 1, 8, 10),
        RandomJamming::new(jam),
    );
    let mut sim = Simulator::new(SimConfig::with_seed(seed), factory, adversary);
    sim.run_for(4000);
    sim.into_trace()
}

#[test]
fn identical_seeds_identical_traces() {
    let a = run(42, 0.25);
    let b = run(42, 0.25);
    assert_eq!(a.slots(), b.slots());
    assert_eq!(a.departures(), b.departures());
    assert_eq!(a.survivors(), b.survivors());
}

#[test]
fn different_seeds_differ() {
    let a = run(42, 0.25);
    let b = run(43, 0.25);
    assert_ne!(a.slots(), b.slots());
}

#[test]
fn trace_replay_is_stable_across_protocol_mix() {
    // Baselines as well: the whole roster must replay byte-identically.
    for b in Baseline::roster() {
        let go = |seed: u64| {
            let adversary =
                CompositeAdversary::new(BatchArrival::at_start(16), RandomJamming::new(0.2));
            let mut sim = Simulator::new(SimConfig::with_seed(seed), b.clone(), adversary);
            sim.run_for(2000);
            sim.into_trace()
        };
        let t1 = go(7);
        let t2 = go(7);
        assert_eq!(t1.slots(), t2.slots(), "baseline {}", b.name());
        assert_eq!(t1.departures(), t2.departures(), "baseline {}", b.name());
    }
}

#[test]
fn node_rng_streams_are_stable_under_population_changes() {
    // Adding extra nodes later must not perturb earlier nodes' RNG streams:
    // run A injects 1 node; run B injects the same node plus 4 more at slot
    // 100. Until slot 100 both traces must agree exactly.
    let go = |extra: bool| {
        let factory = CjzFactory::new(ProtocolParams::constant_jamming());
        let script = if extra {
            ScriptedArrival::new([(1u64, 1u32), (100, 4)])
        } else {
            ScriptedArrival::new([(1u64, 1u32)])
        };
        let adversary = CompositeAdversary::new(script, NoJamming);
        let mut sim = Simulator::new(SimConfig::with_seed(11), factory, adversary);
        sim.run_for(99);
        sim.into_trace()
    };
    let without = go(false);
    let with = go(true);
    assert_eq!(without.slots(), with.slots());
}
