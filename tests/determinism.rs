//! Integration: determinism and seed-sensitivity of the full stack,
//! driven through the declarative scenario API.

use contention::prelude::*;

fn bursty_spec(jam: f64) -> ScenarioSpec {
    ScenarioSpec::new("bursty")
        .arrivals(ArrivalSpec::Bursty {
            period: 100,
            phase: 1,
            size: 8,
            bursts: 10,
        })
        .jamming(JammingSpec::random(jam))
        .fixed_horizon(4000)
}

fn run(seed: u64, jam: f64) -> Trace {
    let algo = AlgoSpec::cjz_constant_jamming();
    ScenarioRunner::new(bursty_spec(jam).algos([algo.clone()]))
        .run_seed(&algo, seed)
        .trace
}

#[test]
fn identical_seeds_identical_traces() {
    let a = run(42, 0.25);
    let b = run(42, 0.25);
    assert_eq!(a.slots(), b.slots());
    assert_eq!(a.departures(), b.departures());
    assert_eq!(a.survivors(), b.survivors());
}

#[test]
fn different_seeds_differ() {
    let a = run(42, 0.25);
    let b = run(43, 0.25);
    assert_ne!(a.slots(), b.slots());
}

#[test]
fn trace_replay_is_stable_across_protocol_mix() {
    // Baselines as well: the whole roster must replay byte-identically.
    for b in BaselineSpec::roster() {
        let algo = AlgoSpec::Baseline(b);
        let go = |seed: u64| {
            ScenarioRunner::new(
                ScenarioSpec::batch(16, 0.2)
                    .algos([algo.clone()])
                    .fixed_horizon(2000),
            )
            .run_seed(&algo, seed)
            .trace
        };
        let t1 = go(7);
        let t2 = go(7);
        assert_eq!(t1.slots(), t2.slots(), "baseline {}", algo.name());
        assert_eq!(t1.departures(), t2.departures(), "baseline {}", algo.name());
    }
}

#[test]
fn node_rng_streams_are_stable_under_population_changes() {
    // Adding extra nodes later must not perturb earlier nodes' RNG streams:
    // run A injects 1 node; run B injects the same node plus 4 more at slot
    // 100. Until slot 100 both traces must agree exactly.
    let algo = AlgoSpec::cjz_constant_jamming();
    let go = |extra: bool| {
        let slots = if extra {
            vec![(1u64, 1u32), (100, 4)]
        } else {
            vec![(1u64, 1u32)]
        };
        ScenarioRunner::new(
            ScenarioSpec::new("staggered")
                .algos([algo.clone()])
                .arrivals(ArrivalSpec::Scripted { slots })
                .fixed_horizon(99),
        )
        .run_seed(&algo, 11)
        .trace
    };
    let without = go(false);
    let with = go(true);
    assert_eq!(without.slots(), with.slots());
}
