//! Integration: the pluggable channel-feedback model layer.
//!
//! Pins the three contracts of the redesign:
//!
//! 1. **Default equivalence** — the no-collision-detection model is the
//!    default and behaves exactly like the pre-redesign engine (the golden
//!    fingerprints in `tests/determinism.rs` pin the byte-identity; here
//!    we pin spec-level equivalence and cross-model ground-truth parity).
//! 2. **Model-dependent visibility** — listeners and the adversary hear
//!    exactly what the configured model says, nothing more.
//! 3. **Serialization** — `ChannelSpec` round-trips through JSON,
//!    property-tested over the whole model × listen-cost space.

use contention::bench::scenario::lookup;
use contention::prelude::*;
use proptest::prelude::*;

/// Slot-outcome fingerprint of a trace (ground truth only, no feedback).
fn outcome_fingerprint(trace: &Trace) -> Vec<(u32, bool, u64)> {
    trace
        .slots()
        .iter()
        .map(|r| (r.broadcasters, r.jammed, r.population))
        .collect()
}

fn batch_spec(channel: ChannelSpec, algo: AlgoSpec) -> ScenarioSpec {
    ScenarioSpec::new("cross-model")
        .algos([algo])
        .arrivals(ArrivalSpec::batch(16))
        .jamming(JammingSpec::Scripted {
            slots: (1..200).step_by(7).collect(),
        })
        .channel(channel)
        .fixed_horizon(600)
}

/// CD and no-CD agree on ground truth for identical seeds when the
/// protocol ignores feedback content: aloha never reads feedback, and the
/// scripted adversary cannot adapt. Only what listeners *hear* differs.
#[test]
fn feedback_oblivious_runs_agree_on_ground_truth_across_models() {
    let algo = AlgoSpec::Baseline(BaselineSpec::Aloha(0.2));
    let run = |channel: ChannelSpec| {
        let runner = ScenarioRunner::new(batch_spec(channel, algo.clone()));
        runner.run_seed(&algo, 42).trace
    };
    let nocd = run(ChannelSpec::no_collision_detection());
    let cd = run(ChannelSpec::collision_detection());
    let ack = run(ChannelSpec::ack_only());
    assert_eq!(outcome_fingerprint(&nocd), outcome_fingerprint(&cd));
    assert_eq!(outcome_fingerprint(&nocd), outcome_fingerprint(&ack));
    assert_eq!(nocd.departures(), cd.departures());
    assert_eq!(nocd.departures(), ack.departures());
    assert!(nocd.total_successes() > 0, "the run must actually deliver");
}

/// The cross-model scenarios diverge when the protocol *does* read
/// feedback: cd-beb under CD reacts to silence/noise it never hears under
/// the paper's model.
#[test]
fn feedback_aware_runs_diverge_across_models() {
    let algo = AlgoSpec::Baseline(BaselineSpec::CdBackoff);
    let run = |channel: ChannelSpec| {
        let runner = ScenarioRunner::new(batch_spec(channel, algo.clone()));
        let out = runner.run_seed(&algo, 42);
        (outcome_fingerprint(&out.trace), out.trace.total_successes())
    };
    let (nocd, _) = run(ChannelSpec::no_collision_detection());
    let (cd, cd_successes) = run(ChannelSpec::collision_detection());
    assert_ne!(nocd, cd, "richer feedback must change cd-beb's behaviour");
    assert!(cd_successes > 0);
}

/// The adversary sees exactly what the model says: a reactive jammer
/// (jams after every *observed* success) fires under no-CD and CD but is
/// structurally blind under ack-only feedback.
#[test]
fn reactive_jamming_is_blind_under_ack_only() {
    let algo = AlgoSpec::Baseline(BaselineSpec::Aloha(0.3));
    let run = |channel: ChannelSpec| {
        let spec = ScenarioSpec::new("reactive-visibility")
            .algos([algo.clone()])
            .arrivals(ArrivalSpec::batch(8))
            .jamming(JammingSpec::Reactive { burst: 3 })
            .channel(channel)
            .fixed_horizon(2000);
        let out = ScenarioRunner::new(spec).run_seed(&algo, 7);
        out.trace.total_jammed()
    };
    assert!(run(ChannelSpec::no_collision_detection()) > 0);
    assert!(run(ChannelSpec::collision_detection()) > 0);
    assert_eq!(run(ChannelSpec::ack_only()), 0, "nothing to react to");
}

/// Registry entries select models end to end, and the default path is the
/// paper's model.
#[test]
fn registry_cross_model_scenarios_run() {
    for (name, model) in [
        ("cd-batch/8", ChannelModel::CollisionDetection),
        ("ack-only-batch/8", ChannelModel::AckOnly),
    ] {
        let spec = lookup(name).unwrap_or_else(|| panic!("{name} must resolve"));
        assert_eq!(spec.channel.model, model);
        let algo = spec.algos[0].clone();
        let out = ScenarioRunner::new(spec.seeds(1)).run_seed(&algo, 1);
        assert!(out.drained, "{name} must drain at smoke scale");
    }
}

/// Model-aware energy: with a positive listening cost, energy strictly
/// exceeds the access count whenever any delivered node ever listened.
#[test]
fn listen_cost_prices_energy() {
    let algo = AlgoSpec::cjz_constant_jamming();
    let spec = ScenarioSpec::batch(8, 0.0)
        .algos([algo.clone()])
        .until_drained(100_000);
    let trace = ScenarioRunner::new(spec).run_seed(&algo, 3).trace;
    let free = trace.mean_energy(0.0).unwrap();
    let costly = trace.mean_energy(0.5).unwrap();
    assert_eq!(Some(free), trace.mean_accesses());
    assert!(costly > free, "listening slots must be priced in");
}

proptest! {
    /// `ChannelSpec` JSON round-trips across the whole model ×
    /// listen-cost space, embedded in a full scenario document.
    #[test]
    fn channel_spec_round_trips_through_json(
        model_idx in 0usize..3,
        listen_cost in 0.0f64..4.0,
        n in 1u32..512,
    ) {
        let model = ChannelModel::all()[model_idx];
        let channel = ChannelSpec::by_name(model.name())
            .unwrap()
            .with_listen_cost(listen_cost);
        let spec = ScenarioSpec::batch(n, 0.1)
            .algo(AlgoSpec::Baseline(BaselineSpec::CdAloha(0.25)))
            .channel(channel);
        let json = spec.to_json_string();
        let parsed = ScenarioSpec::from_json_str(&json).unwrap();
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(parsed.channel.model, model);
        // Canonical encoding: re-serializing is stable.
        prop_assert_eq!(parsed.to_json_string(), json);
    }
}
