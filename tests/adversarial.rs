//! Integration: adversarial strategies end-to-end, including the
//! lower-bound constructions of Section 4 and failure injection.

use contention::prelude::*;
use contention::sim::adversary::lowerbound::{
    Lemma41Adversary, Theorem13Adversary, Theorem42Adversary,
};
use contention::sim::adversary::{ReactiveJamming, SmoothAdversary, SmoothConfig};

#[test]
fn reactive_jammer_cannot_stall_the_protocol_forever() {
    // Jam 3 slots after every success — the protocol must still drain a
    // batch (the jammer only reacts, it cannot keep the budget up forever).
    let factory = CjzFactory::new(ProtocolParams::constant_jamming());
    let adversary =
        CompositeAdversary::new(BatchArrival::at_start(32), ReactiveJamming::new(3));
    let mut sim = Simulator::new(SimConfig::with_seed(1), factory, adversary);
    let stop = sim.run_until_drained(5_000_000);
    assert_eq!(stop, StopReason::Drained);
    assert_eq!(sim.trace().total_successes(), 32);
}

#[test]
fn lemma41_flood_suppresses_early_successes() {
    // The Lemma 4.1 flood: heavy per-slot batches in the first √t slots.
    // Against an *aggressive* schedule (ALOHA p=0.5) no success should
    // appear during the flood window — the contention argument in action.
    let horizon = 1u64 << 12;
    let adv = Lemma41Adversary::new(horizon, 20, 100);
    let mut sim = Simulator::new(
        SimConfig::with_seed(2),
        Baseline::Aloha(0.5),
        adv,
    );
    let sqrt_t = (horizon as f64).sqrt() as u64;
    sim.run_for(sqrt_t);
    assert_eq!(
        sim.trace().total_successes(),
        0,
        "dense flood + aggressive schedule must collide throughout"
    );
}

#[test]
fn theorem13_adversary_executes_its_script() {
    let horizon = 1u64 << 10;
    let adv = Theorem13Adversary::new(horizon, 2.0);
    let factory = CjzFactory::new(ProtocolParams::constant_jamming());
    let mut sim = Simulator::new(SimConfig::with_seed(3), factory, adv);
    sim.run_for(horizon);
    let trace = sim.trace();
    assert_eq!(trace.total_arrivals(), 1);
    // Prefix t/(4g) = 128 slots jammed, plus the last slot, plus randoms.
    let cum = trace.cumulative();
    assert!(cum.jammed(128) == 128, "prefix fully jammed");
    assert!(trace.slot(horizon).unwrap().jammed, "last slot jammed");
    let expected_max = 2 * 128 + 1;
    assert!(trace.total_jammed() <= expected_max as u64);
}

#[test]
fn theorem42_adversary_defeats_nonadaptive_schedule_in_window() {
    // Jam prefix + inject crowd at the end: a monotone schedule (smoothed
    // beb) should fail to deliver its slot-1 nodes quickly; measure that
    // its first success comes only well after the prefix.
    let horizon = 1u64 << 10;
    let prefix = horizon / 8; // g(t) = 2 => t/(4*2)
    let adv = Theorem42Adversary::new(horizon, 2.0, 1.0);
    assert_eq!(adv.prefix(), prefix);
    let mut sim = Simulator::new(SimConfig::with_seed(4), Baseline::SmoothedBeb, adv);
    sim.run_for(horizon);
    let trace = sim.trace();
    if let Some(d) = trace.departures().first() {
        assert!(
            d.departure_slot > prefix,
            "no delivery can precede the jammed prefix"
        );
    }
}

#[test]
fn smooth_adversary_respects_its_own_windows() {
    let params = ProtocolParams::constant_jamming();
    let f = params.f();
    let g = params.g().clone();
    let inner = CompositeAdversary::new(SaturatedArrival::new(u64::MAX), RandomJamming::new(0.5));
    let adv = SmoothAdversary::new(
        inner,
        SmoothConfig::from_fg(move |j| f.at(j), move |j| g.at(j), 1.0, 0.5),
    );
    let factory = CjzFactory::new(params.clone());
    let mut sim = Simulator::new(SimConfig::with_seed(5), factory, adv);
    let horizon = 1u64 << 12;
    sim.run_for(horizon);
    let cum = sim.trace().cumulative();
    // Global counts obey the largest-window constraint (clamped curves).
    let f2 = params.f();
    let max_arr = (horizon as f64 / f2.at(horizon)).max(1.0) * 2.0;
    assert!(
        (cum.arrivals(horizon) as f64) <= max_arr + 1.0,
        "arrivals {} exceed smooth budget {max_arr}",
        cum.arrivals(horizon)
    );
    // And the protocol delivers the bulk of them.
    assert!(cum.successes(horizon) as f64 >= 0.8 * cum.arrivals(horizon) as f64);
}

#[test]
fn injection_on_success_slots_cannot_break_conservation() {
    // Failure injection: Eve injects exactly when she hears a success
    // (trying to race the phase transitions). Conservation must hold and
    // the system must still make progress.
    let factory = CjzFactory::new(ProtocolParams::constant_jamming());
    let adv = contention::sim::adversary::FnAdversary::new("spawn-on-success", |slot, h, _r| {
        if slot == 1 {
            SlotDecision::inject(4)
        } else if h.last_feedback().is_some_and(|f| f.is_success()) && h.injected() < 40 {
            SlotDecision::inject(2)
        } else {
            SlotDecision::IDLE
        }
    });
    let mut sim = Simulator::new(SimConfig::with_seed(6), factory, adv);
    sim.run_for(200_000);
    let trace = sim.trace();
    let alive = sim.active_count() as u64;
    assert_eq!(trace.total_arrivals(), trace.total_successes() + alive);
    assert!(trace.total_successes() >= 30, "progress despite spite spawning");
}
