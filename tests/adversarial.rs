//! Integration: adversarial strategies end-to-end, including the
//! lower-bound constructions of Section 4 and failure injection. The
//! scenario-shaped workloads go through the declarative API; the
//! closure-adversary failure injection drives the simulator directly.

use contention::prelude::*;

#[test]
fn reactive_jammer_cannot_stall_the_protocol_forever() {
    // Jam 3 slots after every success — the protocol must still drain a
    // batch (the jammer only reacts, it cannot keep the budget up forever).
    let algo = AlgoSpec::cjz_constant_jamming();
    let spec = ScenarioSpec::new("reactive/3")
        .algo(algo.clone())
        .arrivals(ArrivalSpec::batch(32))
        .jamming(JammingSpec::Reactive { burst: 3 })
        .until_drained(5_000_000);
    let out = ScenarioRunner::new(spec).run_seed(&algo, 1);
    assert!(out.drained);
    assert_eq!(out.trace.total_successes(), 32);
}

#[test]
fn lemma41_flood_suppresses_early_successes() {
    // The Lemma 4.1 flood: heavy per-slot batches in the first √t slots.
    // Against an *aggressive* schedule (ALOHA p=0.5) no success should
    // appear during the flood window — the contention argument in action.
    let horizon = 1u64 << 12;
    let sqrt_t = (horizon as f64).sqrt() as u64;
    let algo = AlgoSpec::Baseline(BaselineSpec::Aloha(0.5));
    let spec = ScenarioSpec::new("lowerbound/lemma41")
        .algo(algo.clone())
        .adversary(AdversarySpec::Lemma41 {
            horizon,
            batch_per_slot: 20,
            random_total: 100,
        })
        .fixed_horizon(sqrt_t);
    let out = ScenarioRunner::new(spec).run_seed(&algo, 2);
    assert_eq!(
        out.trace.total_successes(),
        0,
        "dense flood + aggressive schedule must collide throughout"
    );
}

#[test]
fn theorem13_adversary_executes_its_script() {
    let horizon = 1u64 << 10;
    let algo = AlgoSpec::cjz_constant_jamming();
    let spec = ScenarioSpec::new("lowerbound/theorem13")
        .algo(algo.clone())
        .adversary(AdversarySpec::Theorem13 {
            horizon,
            g_of_t: 2.0,
        })
        .fixed_horizon(horizon);
    let out = ScenarioRunner::new(spec).run_seed(&algo, 3);
    let trace = &out.trace;
    assert_eq!(trace.total_arrivals(), 1);
    // Prefix t/(4g) = 128 slots jammed, plus the last slot, plus randoms.
    let cum = trace.cumulative();
    assert!(cum.jammed(128) == 128, "prefix fully jammed");
    assert!(trace.slot(horizon).unwrap().jammed, "last slot jammed");
    let expected_max = 2 * 128 + 1;
    assert!(trace.total_jammed() <= expected_max as u64);
}

#[test]
fn theorem42_adversary_defeats_nonadaptive_schedule_in_window() {
    // Jam prefix + inject crowd at the end: a monotone schedule (smoothed
    // beb) should fail to deliver its slot-1 nodes quickly; measure that
    // its first success comes only well after the prefix.
    let horizon = 1u64 << 10;
    let prefix = horizon / 8; // g(t) = 2 => t/(4*2)
    let algo = AlgoSpec::Baseline(BaselineSpec::SmoothedBeb);
    let spec = ScenarioSpec::new("lowerbound/theorem42")
        .algo(algo.clone())
        .adversary(AdversarySpec::Theorem42 {
            horizon,
            g_of_t: 2.0,
            f_of_t: 1.0,
        })
        .fixed_horizon(horizon);
    let out = ScenarioRunner::new(spec).run_seed(&algo, 4);
    if let Some(d) = out.trace.departures().first() {
        assert!(
            d.departure_slot > prefix,
            "no delivery can precede the jammed prefix"
        );
    }
}

#[test]
fn smooth_adversary_respects_its_own_windows() {
    let params = ProtocolParams::constant_jamming();
    let algo = AlgoSpec::cjz_constant_jamming();
    let horizon = 1u64 << 12;
    let spec = ScenarioSpec::new("smooth")
        .algo(algo.clone())
        .arrivals(ArrivalSpec::saturated())
        .jamming(JammingSpec::random(0.5))
        .smooth(SmoothSpec {
            params: ParamsSpec::constant_jamming(),
            ca: 1.0,
            cd: 0.5,
        })
        .fixed_horizon(horizon);
    let out = ScenarioRunner::new(spec).run_seed(&algo, 5);
    let cum = out.trace.cumulative();
    // Global counts obey the largest-window constraint (clamped curves).
    let f = params.f();
    let max_arr = (horizon as f64 / f.at(horizon)).max(1.0) * 2.0;
    assert!(
        (cum.arrivals(horizon) as f64) <= max_arr + 1.0,
        "arrivals {} exceed smooth budget {max_arr}",
        cum.arrivals(horizon)
    );
    // And the protocol delivers the bulk of them.
    assert!(cum.successes(horizon) as f64 >= 0.8 * cum.arrivals(horizon) as f64);
}

#[test]
fn injection_on_success_slots_cannot_break_conservation() {
    // Failure injection: Eve injects exactly when she hears a success
    // (trying to race the phase transitions). Closure adversaries are not
    // serializable, so this one drives the simulator directly.
    let factory = CjzFactory::new(ProtocolParams::constant_jamming());
    let adv = contention::sim::adversary::FnAdversary::new("spawn-on-success", |slot, h, _r| {
        if slot == 1 {
            SlotDecision::inject(4)
        } else if h.last_feedback().is_some_and(|f| f.is_success()) && h.injected() < 40 {
            SlotDecision::inject(2)
        } else {
            SlotDecision::IDLE
        }
    });
    let mut sim = Simulator::new(SimConfig::with_seed(6), factory, adv);
    sim.run_for(200_000);
    let trace = sim.trace();
    let alive = sim.active_count() as u64;
    assert_eq!(trace.total_arrivals(), trace.total_successes() + alive);
    assert!(
        trace.total_successes() >= 30,
        "progress despite spite spawning"
    );
}
