//! Integration: the declarative scenario API itself — JSON round-trips of
//! rich specs, the named registry, and registry-wide smoke execution with
//! determinism checks.

use contention::bench::scenario::{entries, lookup, names};
use contention::prelude::*;

/// A spec exercising every optional layer: multi-algo roster, budget,
/// fixed horizon, aggregate recording.
fn rich_spec() -> ScenarioSpec {
    ScenarioSpec::new("rich")
        .algo(AlgoSpec::Cjz(
            ParamsSpec::new(GSpec::PolyLog(2)).with_a(1.5).with_c2(0.5),
        ))
        .algo(AlgoSpec::CjzNoSwap(ParamsSpec::constant_jamming()))
        .algo(AlgoSpec::CjzOracle(ParamsSpec::constant_throughput()))
        .algo(AlgoSpec::Baseline(BaselineSpec::LogBackoff(2.0)))
        .algo(AlgoSpec::Baseline(BaselineSpec::FBackoff(
            GSpec::ExpSqrtLog(1.0),
        )))
        .arrivals(ArrivalSpec::Saturated {
            target: Some(32),
            budget: Some(4096),
            horizon: None,
        })
        .jamming(JammingSpec::GilbertElliott {
            fraction: 0.25,
            burst_len: 64.0,
        })
        .budget(BudgetSpec {
            params: ParamsSpec::new(GSpec::Log),
            arrivals: CurveSpec::CriticalArrivals { scale: 4.0 },
            jams: CurveSpec::PerSlot(0.125),
        })
        .fixed_horizon(1 << 12)
        .seeds(3)
        .seed_base(17)
        .aggregate_only()
}

#[test]
fn rich_spec_round_trips_through_json() {
    let spec = rich_spec();
    let json = spec.to_json_string();
    let parsed = ScenarioSpec::from_json_str(&json).expect("round-trip parse");
    assert_eq!(parsed, spec);
    // Re-serializing is stable (canonical encoding).
    assert_eq!(parsed.to_json_string(), json);
}

#[test]
fn smooth_and_lowerbound_specs_round_trip() {
    let smooth = ScenarioSpec::new("smooth")
        .algo(AlgoSpec::cjz_constant_jamming())
        .arrivals(ArrivalSpec::saturated())
        .jamming(JammingSpec::random(0.4))
        .smooth(SmoothSpec {
            params: ParamsSpec::constant_jamming(),
            ca: 1.0,
            cd: 0.5,
        })
        .fixed_horizon(2048);
    let parsed = ScenarioSpec::from_json_str(&smooth.to_json_string()).unwrap();
    assert_eq!(parsed, smooth);

    for adv in [
        AdversarySpec::Theorem13 {
            horizon: 4096,
            g_of_t: 2.0,
        },
        AdversarySpec::Theorem42 {
            horizon: 4096,
            g_of_t: 2.0,
            f_of_t: 1.0,
        },
        AdversarySpec::Lemma41 {
            horizon: 4096,
            batch_per_slot: 8,
            random_total: 64,
        },
    ] {
        let spec = ScenarioSpec::new("lb")
            .algo(AlgoSpec::cjz_constant_jamming())
            .adversary(adv)
            .fixed_horizon(4096);
        let parsed = ScenarioSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(parsed, spec);
    }
}

#[test]
fn every_registry_spec_round_trips_through_json() {
    for entry in entries() {
        let spec = lookup(entry.name).expect(entry.name);
        let parsed = ScenarioSpec::from_json_str(&spec.to_json_string())
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        assert_eq!(parsed, spec, "{} changed across round-trip", entry.name);
    }
}

#[test]
fn from_json_rejects_malformed_specs() {
    assert!(ScenarioSpec::from_json_str("not json").is_err());
    assert!(ScenarioSpec::from_json_str("{}").is_err());
    let spec = rich_spec();
    // Renaming a required field must surface as a missing-field error.
    let json = spec
        .to_json_string()
        .replace("\"burst_len\"", "\"bogus_len\"");
    assert_ne!(json, spec.to_json_string(), "replacement must hit a field");
    assert!(ScenarioSpec::from_json_str(&json).is_err());
    let bad_kind = spec
        .to_json_string()
        .replace("\"kind\":\"gilbert-elliott\"", "\"kind\":\"nope\"");
    assert!(ScenarioSpec::from_json_str(&bad_kind).is_err());
}

#[test]
fn registry_smoke_every_scenario_runs_and_is_deterministic() {
    assert!(names().len() >= 10, "registry must stay ≥ 10 scenarios");
    for entry in entries() {
        let spec = lookup(entry.name)
            .unwrap_or_else(|| panic!("registry name {} must resolve", entry.name))
            .smoke();
        let runner = ScenarioRunner::new(spec.clone());
        for algo in &spec.algos {
            let seed = spec.seed_base;
            let a = runner.run_seed(algo, seed);
            let b = runner.run_seed(algo, seed);
            assert_eq!(
                a.trace.total_successes(),
                b.trace.total_successes(),
                "{}/{} not deterministic",
                entry.name,
                algo.name()
            );
            assert_eq!(a.slots, b.slots, "{}/{}", entry.name, algo.name());
            // The smoke run must execute at least one slot and stay within
            // the smoke caps.
            assert!(a.slots > 0, "{} executed no slots", entry.name);
            assert!(
                a.slots <= 200_000,
                "{} ran too long: {}",
                entry.name,
                a.slots
            );
        }
    }
}

#[test]
fn named_factory_names_flow_into_reports() {
    // The AlgoSpec roster reports real names (satellite of the closure
    // blanket-impl fix): every registry scenario's report carries them.
    let spec = lookup("lowerbound/lemma41").unwrap().smoke();
    let report = ScenarioRunner::new(spec).run();
    let names: Vec<&str> = report.algos.iter().map(|a| a.name.as_str()).collect();
    assert!(names.contains(&"aloha"));
    assert!(names.iter().any(|n| n.starts_with("cjz[")));
    assert!(!names.contains(&"unnamed"));
}
