//! Integration: full-stack batch-drain scenarios across protocols, driven
//! through the declarative scenario API.

use contention::prelude::*;

fn drain(algo: &AlgoSpec, n: u32, jam: f64, seed: u64, max: u64) -> (bool, Trace) {
    let out = ScenarioRunner::new(
        ScenarioSpec::batch(n, jam)
            .algos([algo.clone()])
            .until_drained(max),
    )
    .run_seed(algo, seed);
    (out.drained, out.trace)
}

#[test]
fn cjz_drains_batch_without_jamming() {
    let algo = AlgoSpec::cjz_constant_jamming();
    let (drained, trace) = drain(&algo, 64, 0.0, 1, 1_000_000);
    assert!(drained);
    assert_eq!(trace.total_successes(), 64);
    assert!(trace.survivors().is_empty());
}

#[test]
fn cjz_drains_batch_with_heavy_jamming() {
    let algo = AlgoSpec::cjz_constant_jamming();
    let (drained, trace) = drain(&algo, 64, 0.4, 2, 5_000_000);
    assert!(drained);
    assert_eq!(trace.total_successes(), 64);
}

#[test]
fn cjz_constant_throughput_tuning_drains_linear_time() {
    let algo = AlgoSpec::cjz_constant_throughput();
    let (drained, trace) = drain(&algo, 256, 0.0, 3, 60 * 256);
    assert!(drained, "expected drain within 60n slots");
    assert_eq!(trace.total_successes(), 256);
}

#[test]
fn every_baseline_drains_a_small_clean_batch() {
    for b in BaselineSpec::roster() {
        // ALOHA with fixed p cannot reliably drain large batches; small is
        // fine for all roster members.
        let algo = AlgoSpec::Baseline(b);
        let (drained, trace) = drain(&algo, 8, 0.0, 4, 10_000_000);
        assert!(drained, "baseline {} failed to drain", algo.name());
        assert_eq!(trace.total_successes(), 8, "baseline {}", algo.name());
    }
}

#[test]
fn departures_have_consistent_bookkeeping() {
    let algo = AlgoSpec::cjz_constant_jamming();
    let (_, trace) = drain(&algo, 32, 0.2, 5, 1_000_000);
    for d in trace.departures() {
        assert!(d.arrival_slot >= 1);
        assert!(d.departure_slot >= d.arrival_slot);
        assert!(d.accesses >= 1, "a delivered node broadcast at least once");
        assert!(d.latency() >= 1);
    }
    // Node ids are unique.
    let mut ids: Vec<_> = trace.departures().iter().map(|d| d.node).collect();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), trace.departures().len());
}

#[test]
fn success_slots_match_departures() {
    let algo = AlgoSpec::cjz_constant_jamming();
    let (_, trace) = drain(&algo, 16, 0.1, 6, 1_000_000);
    let success_slots: Vec<u64> = trace
        .slots()
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_success())
        .map(|(i, _)| i as u64 + 1)
        .collect();
    let departure_slots: Vec<u64> = trace
        .departures()
        .iter()
        .map(|d| d.departure_slot)
        .collect();
    assert_eq!(success_slots, departure_slots);
}

#[test]
fn jammed_slots_never_deliver() {
    let algo = AlgoSpec::cjz_constant_jamming();
    let (_, trace) = drain(&algo, 32, 0.5, 7, 5_000_000);
    for rec in trace.slots() {
        if rec.jammed {
            assert!(!rec.is_success(), "a jammed slot cannot carry a success");
        }
    }
}

#[test]
fn staggered_arrivals_all_deliver() {
    // Nodes arrive one at a time while earlier ones are still working —
    // the registry's `staggered` scenario shape.
    let algo = AlgoSpec::cjz_constant_jamming();
    let spec = ScenarioSpec::new("staggered")
        .algo(algo.clone())
        .arrivals(ArrivalSpec::Scripted {
            slots: (0..20).map(|i| (1 + i * 37, 1)).collect(),
        })
        .jamming(JammingSpec::random(0.2))
        .fixed_horizon(100_000);
    let out = ScenarioRunner::new(spec).run_seed(&algo, 8);
    assert_eq!(out.trace.total_successes(), 20);
    assert!(out.trace.survivors().is_empty());
}
