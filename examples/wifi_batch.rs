//! A Wi-Fi-style saturation scenario: many stations wake at once.
//!
//! The intro's motivating workload (Ethernet/802.11 congestion): `n`
//! stations become ready simultaneously and contend for one shared medium
//! with no collision detection. This example compares the paper's protocol
//! against classical binary exponential backoff and smoothed BEB at
//! increasing station counts — first on a clean channel, then with
//! electromagnetic interference modeled as 20% random jamming.
//!
//! ```sh
//! cargo run --release --example wifi_batch
//! ```

use contention::prelude::*;

fn drain_slots<F: ProtocolFactory + Clone>(factory: &F, n: u32, jam: f64, seed: u64) -> u64 {
    let adversary = CompositeAdversary::new(
        BatchArrival::at_start(n),
        RandomJamming::new(jam),
    );
    let mut sim = Simulator::new(SimConfig::with_seed(seed), factory.clone(), adversary);
    sim.run_until_drained(500_000_000);
    sim.current_slot()
}

fn main() {
    let stations = [32u32, 128, 512];
    let seeds = [1u64, 2, 3];

    for jam in [0.0, 0.2] {
        let mut table = Table::new(["stations", "cjz", "beb", "smoothed-beb"]).with_title(
            format!("slots until every station has transmitted (jam = {jam})"),
        );
        for &n in &stations {
            let mut cells = vec![format!("{n}")];
            let cjz = CjzFactory::new(ProtocolParams::constant_jamming());
            let mean = |f: &dyn Fn(u64) -> u64| {
                seeds.iter().map(|&s| f(s) as f64).sum::<f64>() / seeds.len() as f64
            };
            cells.push(fnum(mean(&|s| drain_slots(&cjz, n, jam, s))));
            cells.push(fnum(mean(&|s| {
                drain_slots(&Baseline::BinaryExponential, n, jam, s)
            })));
            cells.push(fnum(mean(&|s| drain_slots(&Baseline::SmoothedBeb, n, jam, s))));
            table.row(cells);
        }
        println!("{}", table.render());
    }

    println!(
        "Note how the smoothed-BEB column grows super-linearly in the station count \
         (Claim 3.5.1: its stragglers take ω(n) slots), while the paper's protocol \
         drains in O(n·log n) even under interference."
    );
}
