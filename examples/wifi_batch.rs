//! A Wi-Fi-style saturation scenario: many stations wake at once.
//!
//! The intro's motivating workload (Ethernet/802.11 congestion): `n`
//! stations become ready simultaneously and contend for one shared medium
//! with no collision detection. This example compares the paper's protocol
//! against classical binary exponential backoff and smoothed BEB at
//! increasing station counts — first on a clean channel, then with
//! electromagnetic interference modeled as 20% random jamming. The
//! workload is the registry's `batch`/`batch-jammed` family.
//!
//! ```sh
//! cargo run --release --example wifi_batch
//! ```

use contention::prelude::*;

fn main() {
    let stations = [32u32, 128, 512];
    let seeds = 3u64;

    let algos = [
        AlgoSpec::cjz_constant_jamming(),
        AlgoSpec::Baseline(BaselineSpec::BinaryExponential),
        AlgoSpec::Baseline(BaselineSpec::SmoothedBeb),
    ];

    for jam in [0.0, 0.2] {
        let mut table = Table::new(["stations", "cjz", "beb", "smoothed-beb"]).with_title(format!(
            "slots until every station has transmitted (jam = {jam})"
        ));
        for &n in &stations {
            let runner = ScenarioRunner::new(
                ScenarioSpec::batch(n, jam)
                    .until_drained(500_000_000)
                    .seeds(seeds)
                    .seed_base(1),
            );
            let mut cells = vec![format!("{n}")];
            for algo in &algos {
                let outs = runner.run_algo(algo);
                let mean = outs.iter().map(|o| o.slots as f64).sum::<f64>() / outs.len() as f64;
                cells.push(fnum(mean));
            }
            table.row(cells);
        }
        println!("{}", table.render());
    }

    println!(
        "Note how the smoothed-BEB column grows super-linearly in the station count \
         (Claim 3.5.1: its stragglers take ω(n) slots), while the paper's protocol \
         drains in O(n·log n) even under interference."
    );
}
