//! Quickstart: run the paper's protocol on a jammed batch and verify the
//! (f,g)-throughput bound.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use contention::prelude::*;

fn main() {
    // 1. Pick the jamming regime. `constant_jamming` tunes the protocol for
    //    the worst case: Eve may jam a constant fraction of all slots.
    let params = ProtocolParams::constant_jamming();
    println!("protocol: {}", params.label());

    // 2. Describe the workload as data: 256 nodes arrive at once, and 25%
    //    of all slots are jammed at random. (`batch/256` in the registry.)
    let algo = AlgoSpec::cjz_constant_jamming();
    let spec = ScenarioSpec::batch(256, 0.25).until_drained(10_000_000);

    // 3. Run. The whole simulation is a deterministic function of the seed.
    let out = ScenarioRunner::new(spec).run_seed(&algo, 2024);
    println!(
        "drained: {} after {} slots; delivered {} / 256 messages",
        out.drained,
        out.slots,
        out.trace.total_successes()
    );

    // 4. Inspect per-node statistics.
    let trace = &out.trace;
    println!(
        "mean latency {:.1} slots, mean channel accesses {:.1}, max accesses {}",
        trace.mean_latency().unwrap_or(f64::NAN),
        trace.mean_accesses().unwrap_or(f64::NAN),
        trace.max_accesses().unwrap_or(0),
    );

    // 5. Check Definition 1.1 on every prefix: active slots must stay below
    //    n_t·f(t) + d_t·g(t) (up to the implementation's constant).
    let report = ThroughputVerifier::for_params(&params).check(trace, 8.0);
    println!(
        "(f,g)-throughput: worst prefix ratio {:.3} at t={} -> {}",
        report.max_ratio,
        report.worst_t,
        if report.ok { "OK" } else { "VIOLATED" }
    );

    assert_eq!(trace.total_successes(), 256, "every message must deliver");
    assert!(report.ok, "the throughput bound must hold");
    println!("quickstart finished successfully");
}
