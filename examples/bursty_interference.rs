//! A sensor network under bursty (Gilbert–Elliott) interference.
//!
//! Real wireless interference arrives in bursts, not i.i.d. coin flips.
//! This example runs dynamically arriving sensor reports through the
//! paper's protocol while a two-state Markov jammer alternates between
//! clean spells and interference bursts, at the same long-run jammed
//! fraction as an i.i.d. jammer — and shows the burstiness is what hurts.
//! The bursty half is the registry's `gilbert-elliott` scenario.
//!
//! ```sh
//! cargo run --release --example bursty_interference
//! ```

use contention::prelude::*;

fn run(label: &str, bursty: bool) -> (u64, f64, f64) {
    let horizon = 60_000u64;
    let fraction = 0.25;
    // One sensor report every 25 slots on average.
    let arrivals = ArrivalSpec::Poisson {
        rate: 0.04,
        horizon: Some(horizon - 5_000),
    };
    let jamming = if bursty {
        JammingSpec::GilbertElliott {
            fraction,
            burst_len: 64.0,
        }
    } else {
        JammingSpec::Random { p: fraction }
    };
    let algo = AlgoSpec::cjz_constant_jamming();
    let spec = ScenarioSpec::new(label)
        .algo(algo.clone())
        .arrivals(arrivals)
        .jamming(jamming)
        .fixed_horizon(horizon);
    let out = ScenarioRunner::new(spec).run_seed(&algo, 11);
    let trace = &out.trace;
    let delivered = trace.total_successes();
    let p50 = trace.latency_quantile(0.5).unwrap_or(f64::NAN);
    let p99 = trace.latency_quantile(0.99).unwrap_or(f64::NAN);
    println!(
        "{label:>14}: delivered {delivered:4} | jammed fraction {:.3} | latency p50 {p50:6.1} p99 {p99:8.1}",
        trace.total_jammed() as f64 / trace.len() as f64,
    );
    (delivered, p50, p99)
}

fn main() {
    println!("sensor reports vs 25% interference, i.i.d. vs bursts of ~64 slots\n");
    let (d_iid, _, p99_iid) = run("i.i.d. jam", false);
    let (d_burst, _, p99_burst) = run("bursty jam", true);
    println!(
        "\nSame average interference, different shape: bursts stretch the tail \
         (p99 {p99_iid:.0} → {p99_burst:.0} slots) because a report arriving at the \
         start of a 64-slot burst must out-wait it — exactly why the paper measures \
         robustness against *adversarial* jamming budgets, not average rates."
    );
    assert_eq!(
        d_iid, d_burst,
        "both channels eventually deliver everything"
    );
}
