//! An adversarial jamming attack against a lone sensor node.
//!
//! The scenario behind the lower bounds (Section 4): a single node wakes up
//! and an attacker jams the channel continuously for `J` slots, hoping the
//! node's backoff decays so far that it stays silent long after the attack
//! ends. Classical monotone backoff falls for this; the paper's
//! stage-based `(f/a)`-backoff keeps enough sending density to recover in
//! `o(J)` slots. The workload is the registry's `front-loaded/J` family.
//!
//! ```sh
//! cargo run --release --example jamming_attack
//! ```

use contention::prelude::*;

fn main() {
    println!("A single node arrives; the attacker jams slots 1..=J.\n");

    let algos = [
        AlgoSpec::cjz_constant_jamming(),
        AlgoSpec::Baseline(BaselineSpec::FBackoff(GSpec::Constant(2.0))),
        AlgoSpec::Baseline(BaselineSpec::BinaryExponential),
        AlgoSpec::Baseline(BaselineSpec::SmoothedBeb),
    ];

    let mut table = Table::new([
        "J (jam wall)",
        "cjz",
        "f-backoff",
        "beb (window)",
        "smoothed-beb",
    ])
    .with_title("slots from end of attack to delivery (mean of 5 seeds)");

    for p in [8u32, 10, 12, 14] {
        let j = 1u64 << p;
        let runner = ScenarioRunner::new(
            ScenarioSpec::new(format!("front-loaded/{j}"))
                .arrivals(ArrivalSpec::batch(1))
                .jamming(JammingSpec::FrontLoaded { until: j })
                .until_drained(128 * j)
                .seeds(5),
        );
        let mut row = vec![format!("2^{p}")];
        for algo in &algos {
            let recoveries = runner.collect(algo, |_seed, out| {
                match out.trace.departures().first() {
                    Some(d) => (d.departure_slot - j) as f64,
                    None => (127 * j) as f64, // censored: never recovered
                }
            });
            row.push(fnum(
                recoveries.iter().sum::<f64>() / recoveries.len() as f64,
            ));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "Monotone schedules have decayed to sending probability ~1/J by the end of \
         the attack, so their recovery grows linearly in J. The stage-based backoff \
         still sends Θ(log J) times per stage and recovers in ~J/log J."
    );
}
