//! An adversarial jamming attack against a lone sensor node.
//!
//! The scenario behind the lower bounds (Section 4): a single node wakes up
//! and an attacker jams the channel continuously for `J` slots, hoping the
//! node's backoff decays so far that it stays silent long after the attack
//! ends. Classical monotone backoff falls for this; the paper's
//! stage-based `(f/a)`-backoff keeps enough sending density to recover in
//! `o(J)` slots.
//!
//! ```sh
//! cargo run --release --example jamming_attack
//! ```

use contention::prelude::*;

fn recovery(factory: impl ProtocolFactory, jam_wall: u64, seed: u64) -> u64 {
    let adversary = CompositeAdversary::new(
        BatchArrival::at_start(1),
        FrontLoadedJamming::new(jam_wall),
    );
    let mut sim = Simulator::new(SimConfig::with_seed(seed), factory, adversary);
    sim.run_until_drained(128 * jam_wall);
    match sim.trace().departures().first() {
        Some(d) => d.departure_slot - jam_wall,
        None => 127 * jam_wall, // censored: never recovered in the horizon
    }
}

fn main() {
    println!("A single node arrives; the attacker jams slots 1..=J.\n");

    let mut table = Table::new([
        "J (jam wall)",
        "cjz",
        "f-backoff",
        "beb (window)",
        "smoothed-beb",
    ])
    .with_title("slots from end of attack to delivery (mean of 5 seeds)");

    for p in [8u32, 10, 12, 14] {
        let j = 1u64 << p;
        let mean = |mk: &dyn Fn() -> Box<dyn Protocol>| {
            let total: u64 = (0..5)
                .map(|seed| {
                    let factory = |_: NodeId| mk();
                    recovery(factory, j, seed)
                })
                .sum();
            total as f64 / 5.0
        };
        table.row([
            format!("2^{p}"),
            fnum(mean(&|| {
                Box::new(CjzProtocol::new(ProtocolParams::constant_jamming()))
            })),
            fnum(mean(&|| {
                Box::new(contention::baselines::FBackoffProtocol::constant_jamming())
            })),
            fnum(mean(&|| {
                Box::new(contention::baselines::WindowProtocol::binary_exponential())
            })),
            fnum(mean(&|| {
                Box::new(contention::baselines::ScheduleProtocol::smoothed_beb())
            })),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Monotone schedules have decayed to sending probability ~1/J by the end of \
         the attack, so their recovery grows linearly in J. The stage-based backoff \
         still sends Θ(log J) times per stage and recovers in ~J/log J."
    );
}
