//! Sweep the jamming-tolerance dial `g` and watch `f` respond.
//!
//! Theorem 1.2's trade-off in one loop: for each admissible `g`, the
//! derived `f(x) = Θ(log x / log² g(x))` tells you the throughput price of
//! that much robustness. The example prints the trade-off curve and then
//! validates one point of it in simulation (the registry's
//! `constant-jamming` scenario).
//!
//! ```sh
//! cargo run --release --example tradeoff_sweep
//! ```

use contention::prelude::*;

fn main() {
    // The f/g frontier, tabulated at a horizon of 2^20 slots.
    let horizon = 1u64 << 20;
    let gs = [
        GFunction::Constant(2.0),
        GFunction::Log,
        GFunction::PolyLog(2),
        GFunction::ExpSqrtLog(1.0),
        GFunction::ExpSqrtLog(2.0),
    ];
    let mut table = Table::new([
        "g (jamming tolerance)",
        "g(2^20)",
        "f(2^20)",
        "jam budget d_t",
        "throughput ~ 1/f",
    ])
    .with_title("the tight trade-off at t = 2^20");
    for g in &gs {
        let f = FFunction::from_g(g.clone());
        table.row([
            g.label(),
            fnum(g.at(horizon)),
            fnum(f.at(horizon)),
            fnum(horizon as f64 / g.at(horizon)),
            fnum(1.0 / f.at(horizon)),
        ]);
    }
    println!("{}", table.render());

    // Validate the worst-case end of the curve in simulation: constant g,
    // 30% jamming, saturated arrivals at the critical density t/(2f(t)).
    println!("validating the g=const end: 30% jamming, arrivals at t/(2f(t))…");
    let params = ProtocolParams::constant_jamming();
    let algo = AlgoSpec::cjz_constant_jamming();
    let spec = ScenarioSpec::new("constant-jamming/0.3")
        .algo(algo.clone())
        .arrivals(ArrivalSpec::saturated())
        .jamming(JammingSpec::random(0.3))
        .budget(BudgetSpec {
            params: ParamsSpec::constant_jamming(),
            arrivals: CurveSpec::CriticalArrivals { scale: 2.0 },
            jams: CurveSpec::Unlimited,
        })
        .fixed_horizon(1 << 14);
    let out = ScenarioRunner::new(spec).run_seed(&algo, 99);
    let cum = out.trace.cumulative();
    let t = cum.len();
    println!(
        "t={t}: arrivals {} delivered {} (backlog {}), jammed {}",
        cum.arrivals(t),
        cum.successes(t),
        cum.arrivals(t) - cum.successes(t),
        cum.jammed(t)
    );
    let report = ThroughputVerifier::for_params(&params).check(&out.trace, 8.0);
    println!(
        "worst (f,g) prefix ratio {:.3} -> {}",
        report.max_ratio,
        if report.ok {
            "bound holds"
        } else {
            "bound violated"
        }
    );
}
