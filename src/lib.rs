//! # contention
//!
//! Umbrella crate for the reproduction of Chen–Jiang–Zheng,
//! *Tight Trade-off in Contention Resolution without Collision Detection*
//! (PODC 2021). Re-exports the workspace crates:
//!
//! * [`sim`] — the multiple-access channel simulator and adversaries;
//! * [`backoff`] — backoff primitives and the `f`/`g` function machinery;
//! * [`core`] — the paper's three-phase protocol and the
//!   (f,g)-throughput verifier;
//! * [`baselines`] — classical comparison protocols;
//! * [`analysis`] — statistics, model fitting, and report rendering;
//! * [`mod@bench`] — the declarative scenario API ([`bench::scenario`]),
//!   the campaign sweep subsystem ([`bench::campaign`]), and the
//!   experiment harness.
//!
//! See the `examples/` directory for runnable entry points and
//! EXPERIMENTS.md for the experiment catalogue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use contention_analysis as analysis;
pub use contention_backoff as backoff;
pub use contention_baselines as baselines;
pub use contention_bench as bench;
pub use contention_core as core;
pub use contention_sim as sim;

/// Everything needed to run a simulation in one import.
pub mod prelude {
    pub use contention_analysis::{fnum, Figure, GrowthModel, Series, Summary, Table};
    pub use contention_backoff::{FFunction, GFunction, Schedule};
    pub use contention_baselines::Baseline;
    pub use contention_bench::scenario::{
        AdversarySpec, AlgoSpec, ArrivalSpec, BaselineSpec, BudgetSpec, ChannelSpec, CurveSpec,
        GSpec, HorizonSpec, JammingSpec, ParamsSpec, RecordMode, ScenarioRunner, ScenarioSpec,
        SmoothSpec, TrialOutcome,
    };
    pub use contention_core::{
        CjzFactory, CjzProtocol, PhaseKind, ProtocolParams, ThroughputReport, ThroughputVerifier,
    };
    pub use contention_sim::prelude::*;
}
