//! Growth-model fitting.
//!
//! The experiments check *shapes*: e.g. "completion time grows like
//! `n·ln n`, not like `n`" (Claim 3.5.1), or "successes in `t` slots grow
//! like `t/log t`" (the constant-jamming headline). [`GrowthModel`]
//! enumerates the candidate shapes; [`fit`] computes the least-squares
//! scale for one model; [`best_fit`] ranks models by relative residual so a
//! test can assert which shape wins.

use std::fmt;

/// A one-parameter growth model `y ≈ c·φ(x)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GrowthModel {
    /// `φ(x) = 1` (constant).
    Constant,
    /// `φ(x) = log₂ x`.
    Log,
    /// `φ(x) = x`.
    Linear,
    /// `φ(x) = x·log₂ x`.
    LinearLog,
    /// `φ(x) = x / log₂ x`.
    LinearOverLog,
    /// `φ(x) = x / log₂² x`.
    LinearOverLogSq,
    /// `φ(x) = x²`.
    Quadratic,
    /// `φ(x) = log₂² x`.
    LogSq,
}

impl GrowthModel {
    /// Evaluate the basis function `φ(x)` (log terms clamped at `x ≤ 2`).
    pub fn basis(&self, x: f64) -> f64 {
        let lg = x.max(2.0).log2();
        match self {
            GrowthModel::Constant => 1.0,
            GrowthModel::Log => lg,
            GrowthModel::Linear => x,
            GrowthModel::LinearLog => x * lg,
            GrowthModel::LinearOverLog => x / lg,
            GrowthModel::LinearOverLogSq => x / (lg * lg),
            GrowthModel::Quadratic => x * x,
            GrowthModel::LogSq => lg * lg,
        }
    }

    /// All models, for exhaustive ranking.
    pub fn all() -> &'static [GrowthModel] {
        &[
            GrowthModel::Constant,
            GrowthModel::Log,
            GrowthModel::Linear,
            GrowthModel::LinearLog,
            GrowthModel::LinearOverLog,
            GrowthModel::LinearOverLogSq,
            GrowthModel::Quadratic,
            GrowthModel::LogSq,
        ]
    }
}

impl fmt::Display for GrowthModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GrowthModel::Constant => "c",
            GrowthModel::Log => "c*log(x)",
            GrowthModel::Linear => "c*x",
            GrowthModel::LinearLog => "c*x*log(x)",
            GrowthModel::LinearOverLog => "c*x/log(x)",
            GrowthModel::LinearOverLogSq => "c*x/log^2(x)",
            GrowthModel::Quadratic => "c*x^2",
            GrowthModel::LogSq => "c*log^2(x)",
        };
        f.write_str(s)
    }
}

/// Result of fitting one model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// The model.
    pub model: GrowthModel,
    /// Least-squares scale `c`.
    pub scale: f64,
    /// Relative RMS residual: `sqrt(mean((y - c·φ(x))²)) / mean(|y|)`.
    pub rel_residual: f64,
}

/// Least-squares fit of `y ≈ c·φ(x)` in *relative* (log-friendly) error:
/// minimizes `Σ (y_i − c·φ_i)² / y_i²`, which weights each point by its
/// magnitude so that doubling the data range doesn't drown the small-`x`
/// shape. Returns `None` for fewer than 2 points or degenerate data.
pub fn fit(model: GrowthModel, points: &[(f64, f64)]) -> Option<Fit> {
    if points.len() < 2 {
        return None;
    }
    // Weighted least squares with weights 1/y²:
    // c = Σ (φ/y) / Σ (φ/y)² · ... derive: minimize Σ (y-cφ)²/y²
    // d/dc: Σ -2φ(y-cφ)/y² = 0 => c = Σ(φ/y) / Σ(φ²/y²).
    let mut num = 0.0;
    let mut den = 0.0;
    for &(x, y) in points {
        if y <= 0.0 || !y.is_finite() {
            return None;
        }
        let phi = model.basis(x);
        num += phi / y;
        den += (phi / y) * (phi / y);
    }
    if den == 0.0 {
        return None;
    }
    let scale = num / den;
    let mean_abs_y: f64 = points.iter().map(|&(_, y)| y.abs()).sum::<f64>() / points.len() as f64;
    let mse: f64 = points
        .iter()
        .map(|&(x, y)| {
            let e = y - scale * model.basis(x);
            e * e
        })
        .sum::<f64>()
        / points.len() as f64;
    Some(Fit {
        model,
        scale,
        rel_residual: mse.sqrt() / mean_abs_y.max(f64::MIN_POSITIVE),
    })
}

/// Fit all models and return them sorted by relative residual (best first).
pub fn best_fit(points: &[(f64, f64)]) -> Vec<Fit> {
    let mut fits: Vec<Fit> = GrowthModel::all()
        .iter()
        .filter_map(|&m| fit(m, points))
        .collect();
    fits.sort_by(|a, b| {
        a.rel_residual
            .partial_cmp(&b.rel_residual)
            .expect("residuals are finite")
    });
    fits
}

/// Ratio-based shape check: the per-point ratio `y / φ(x)` of the best
/// model should be roughly flat. Returns `max ratio / min ratio` for the
/// given model (closer to 1 = flatter = better).
pub fn flatness(model: GrowthModel, points: &[(f64, f64)]) -> Option<f64> {
    if points.is_empty() {
        return None;
    }
    let ratios: Vec<f64> = points
        .iter()
        .map(|&(x, y)| y / model.basis(x).max(f64::MIN_POSITIVE))
        .collect();
    let mx = ratios.iter().cloned().fold(f64::MIN, f64::max);
    let mn = ratios.iter().cloned().fold(f64::MAX, f64::min);
    if mn <= 0.0 {
        return None;
    }
    Some(mx / mn)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(f: impl Fn(f64) -> f64) -> Vec<(f64, f64)> {
        (4..=16)
            .map(|k| {
                let x = (1u64 << k) as f64;
                (x, f(x))
            })
            .collect()
    }

    #[test]
    fn fits_exact_linear() {
        let pts = series(|x| 3.0 * x);
        let f = fit(GrowthModel::Linear, &pts).unwrap();
        assert!((f.scale - 3.0).abs() < 1e-9);
        assert!(f.rel_residual < 1e-9);
    }

    #[test]
    fn best_fit_identifies_nlogn() {
        let pts = series(|x| 0.5 * x * x.log2());
        let ranked = best_fit(&pts);
        assert_eq!(ranked[0].model, GrowthModel::LinearLog);
        assert!(ranked[0].rel_residual < 1e-9);
    }

    #[test]
    fn best_fit_identifies_t_over_log() {
        let pts = series(|x| 2.0 * x / x.log2());
        let ranked = best_fit(&pts);
        assert_eq!(ranked[0].model, GrowthModel::LinearOverLog);
    }

    #[test]
    fn best_fit_separates_linear_from_nlogn() {
        let pts = series(|x| x * x.log2());
        let ranked = best_fit(&pts);
        let lin_pos = ranked.iter().position(|f| f.model == GrowthModel::Linear);
        let nlogn_pos = ranked
            .iter()
            .position(|f| f.model == GrowthModel::LinearLog);
        assert!(nlogn_pos < lin_pos);
    }

    #[test]
    fn fit_rejects_degenerate() {
        assert!(fit(GrowthModel::Linear, &[]).is_none());
        assert!(fit(GrowthModel::Linear, &[(1.0, 1.0)]).is_none());
        assert!(fit(GrowthModel::Linear, &[(1.0, 0.0), (2.0, 1.0)]).is_none());
        assert!(fit(GrowthModel::Linear, &[(1.0, f64::NAN), (2.0, 1.0)]).is_none());
    }

    #[test]
    fn flatness_of_correct_model_is_near_one() {
        let pts = series(|x| 5.0 * x);
        assert!(flatness(GrowthModel::Linear, &pts).unwrap() < 1.0001);
        // The wrong model has large spread across a 2^12 range.
        assert!(flatness(GrowthModel::Constant, &pts).unwrap() > 1000.0);
        assert!(flatness(GrowthModel::Linear, &[]).is_none());
    }

    #[test]
    fn display_names() {
        assert_eq!(GrowthModel::LinearOverLog.to_string(), "c*x/log(x)");
        assert_eq!(GrowthModel::all().len(), 8);
    }

    #[test]
    fn fit_with_noise_still_ranks_right() {
        // Deterministic pseudo-noise ±10%.
        let pts: Vec<(f64, f64)> = (4..=16)
            .map(|k| {
                let x = (1u64 << k) as f64;
                let noise = 1.0 + 0.1 * ((k as f64 * 2.7).sin());
                (x, x * x.log2() * noise)
            })
            .collect();
        let ranked = best_fit(&pts);
        assert_eq!(ranked[0].model, GrowthModel::LinearLog);
    }
}
