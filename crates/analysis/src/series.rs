//! Labeled numeric series with CSV export and a quick ASCII sparkline —
//! the "figure" primitive of the experiment harness.

use std::fmt::Write as _;

/// A labeled (x, y) series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series label (legend entry).
    pub label: String,
    /// The data points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Empty series with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Build from an iterator of points.
    pub fn from_points(
        label: impl Into<String>,
        pts: impl IntoIterator<Item = (f64, f64)>,
    ) -> Self {
        Series {
            label: label.into(),
            points: pts.into_iter().collect(),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// A bundle of series sharing an x axis — one "figure".
#[derive(Debug, Clone, Default)]
pub struct Figure {
    /// Figure title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// New figure with axis labels.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn add(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Render as CSV: header `x,<label1>,<label2>,…`, one row per distinct
    /// x (missing values empty). Series are aligned by exact x match.
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("x values are finite"));
        xs.dedup();
        let mut out = String::new();
        let _ = write!(out, "{}", csv_escape(&self.x_label));
        for s in &self.series {
            let _ = write!(out, ",{}", csv_escape(&s.label));
        }
        out.push('\n');
        for &x in &xs {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.points.iter().find(|p| p.0 == x) {
                    Some(&(_, y)) => {
                        let _ = write!(out, ",{y}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render a crude ASCII plot (log-friendly visual check in terminals).
    pub fn to_ascii(&self, width: usize, height: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        if all.is_empty() {
            let _ = writeln!(out, "(no data)");
            return out;
        }
        let (xmin, xmax) = all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &(x, _)| {
            (lo.min(x), hi.max(x))
        });
        let (ymin, ymax) = all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &(_, y)| {
            (lo.min(y), hi.max(y))
        });
        let xspan = (xmax - xmin).max(f64::MIN_POSITIVE);
        let yspan = (ymax - ymin).max(f64::MIN_POSITIVE);
        let mut grid = vec![vec![' '; width]; height];
        let marks = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
        for (si, s) in self.series.iter().enumerate() {
            let mark = marks[si % marks.len()];
            for &(x, y) in &s.points {
                let col = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
                let row = (((y - ymin) / yspan) * (height - 1) as f64).round() as usize;
                let r = height - 1 - row.min(height - 1);
                grid[r][col.min(width - 1)] = mark;
            }
        }
        for row in grid {
            let line: String = row.into_iter().collect();
            let _ = writeln!(out, "|{line}");
        }
        let _ = writeln!(out, "+{}", "-".repeat(width));
        let _ = writeln!(
            out,
            " x: {} in [{xmin:.3}, {xmax:.3}]   y: {} in [{ymin:.3}, {ymax:.3}]",
            self.x_label, self.y_label
        );
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(out, "   {} = {}", marks[si % marks.len()], s.label);
        }
        out
    }
}

/// Render values as a one-line unicode sparkline (`▁▂▃▄▅▆▇█`), scaled to
/// the finite min/max of the data. Non-finite values render as `·`; a flat
/// series renders at mid height. Empty input yields an empty string.
///
/// ```
/// use contention_analysis::sparkline;
/// assert_eq!(sparkline(&[0.0, 1.0, 2.0, 3.0]), "▁▃▆█");
/// assert_eq!(sparkline(&[5.0, 5.0]), "▄▄");
/// assert_eq!(sparkline(&[]), "");
/// ```
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (lo, hi) = finite
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                '·'
            } else if hi <= lo {
                BARS[3]
            } else {
                let idx = ((v - lo) / (hi - lo) * 7.0).round() as usize;
                BARS[idx.min(7)]
            }
        })
        .collect()
}

impl Series {
    /// The y values rendered as a [`sparkline`].
    pub fn to_sparkline(&self) -> String {
        let ys: Vec<f64> = self.points.iter().map(|p| p.1).collect();
        sparkline(&ys)
    }
}

/// Minimal CSV field escaping (quotes fields containing `,` or `"`).
pub fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_push_and_len() {
        let mut s = Series::new("a");
        assert!(s.is_empty());
        s.push(1.0, 2.0);
        s.push(2.0, 4.0);
        assert_eq!(s.len(), 2);
        let s2 = Series::from_points("b", [(1.0, 2.0)]);
        assert_eq!(s2.points, vec![(1.0, 2.0)]);
    }

    #[test]
    fn csv_output_aligns_by_x() {
        let mut fig = Figure::new("t", "x", "y");
        fig.add(Series::from_points("s1", [(1.0, 10.0), (2.0, 20.0)]));
        fig.add(Series::from_points("s2", [(2.0, 200.0), (3.0, 300.0)]));
        let csv = fig.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,s1,s2");
        assert_eq!(lines[1], "1,10,");
        assert_eq!(lines[2], "2,20,200");
        assert_eq!(lines[3], "3,,300");
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn ascii_plot_contains_marks_and_legend() {
        let mut fig = Figure::new("demo", "n", "slots");
        fig.add(Series::from_points(
            "lin",
            (1..=10).map(|i| (i as f64, i as f64)),
        ));
        let art = fig.to_ascii(40, 10);
        assert!(art.contains("== demo =="));
        assert!(art.contains('*'));
        assert!(art.contains("lin"));
    }

    #[test]
    fn ascii_plot_empty() {
        let fig = Figure::new("none", "x", "y");
        assert!(fig.to_ascii(10, 5).contains("(no data)"));
    }

    #[test]
    fn sparkline_scales_and_handles_edge_cases() {
        assert_eq!(sparkline(&[1.0, 8.0]), "▁█");
        assert_eq!(sparkline(&[3.0]), "▄", "singleton is flat");
        assert_eq!(sparkline(&[f64::NAN, 1.0, 2.0]), "·▁█");
        // All-non-finite: every glyph is the placeholder.
        assert_eq!(sparkline(&[f64::INFINITY, f64::NAN]), "··");
        let s = Series::from_points("s", [(0.0, 0.0), (1.0, 7.0), (2.0, 14.0)]);
        assert_eq!(s.to_sparkline(), "▁▅█");
    }
}
