//! # contention-analysis
//!
//! Statistics and reporting for the contention-resolution experiments:
//!
//! * [`stats`] — summaries, quantiles, confidence intervals;
//! * [`regression`] — one-parameter growth-model fitting (`c·x`,
//!   `c·x·log x`, `c·x/log x`, …) with model ranking, used to verify the
//!   paper's asymptotic *shapes* empirically;
//! * [`table`] — ASCII tables for experiment reports;
//! * [`series`] — labeled series, CSV export, ASCII plots ("figures").
//!
//! The crate is dependency-free (no serde/plotting) so the whole workspace
//! stays within the offline crate set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compare;
pub mod histogram;
pub mod regression;
pub mod series;
pub mod stats;
pub mod table;

pub use compare::{common_language_effect, normal_cdf, rank_sum, RankSum};
pub use histogram::LogHistogram;
pub use regression::{best_fit, fit, flatness, Fit, GrowthModel};
pub use series::{csv_escape, sparkline, Figure, Series};
pub use stats::{geometric_mean, quantile, Summary};
pub use table::{fnum, Align, Table};
