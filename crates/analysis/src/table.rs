//! ASCII table rendering for experiment reports.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple ASCII table builder.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Table with the given column headers; the first column defaults to
    /// left alignment, the rest to right.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            headers,
            aligns,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Set a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Override column alignments.
    ///
    /// # Panics
    ///
    /// Panics if the number of alignments differs from the column count.
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment arity");
        self.aligns = aligns;
        self
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            let _ = writeln!(out, "== {title} ==");
        }
        let sep: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let fmt_row = |cells: &[String], aligns: &[Align], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for i in 0..cols {
                let cell = &cells[i];
                let pad = widths[i] - cell.len();
                match aligns[i] {
                    Align::Left => {
                        s.push(' ');
                        s.push_str(cell);
                        s.push_str(&" ".repeat(pad + 1));
                    }
                    Align::Right => {
                        s.push_str(&" ".repeat(pad + 1));
                        s.push_str(cell);
                        s.push(' ');
                    }
                }
                s.push('|');
            }
            s
        };
        let _ = writeln!(out, "{sep}");
        let _ = writeln!(
            out,
            "{}",
            fmt_row(&self.headers, &vec![Align::Left; cols], &widths)
        );
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &self.aligns, &widths));
        }
        let _ = writeln!(out, "{sep}");
        out
    }
}

impl Table {
    /// Render as a GitHub-flavored markdown table (pipe syntax). Column
    /// alignment maps to `:---` / `---:` markers; literal `|` in cells is
    /// escaped. The title, if set, becomes a bold line above the table.
    pub fn to_markdown(&self) -> String {
        let esc = |s: &str| s.replace('|', "\\|");
        let mut out = String::new();
        if let Some(title) = &self.title {
            let _ = writeln!(out, "**{}**\n", esc(title));
        }
        let _ = writeln!(
            out,
            "| {} |",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(" | ")
        );
        let _ = writeln!(
            out,
            "|{}|",
            self.aligns
                .iter()
                .map(|a| match a {
                    Align::Left => ":---",
                    Align::Right => "---:",
                })
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "| {} |",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(" | ")
            );
        }
        out
    }
}

/// Format a float compactly for table cells: 4 significant-ish digits.
pub fn fnum(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    let ax = x.abs();
    if ax == 0.0 {
        "0".to_string()
    } else if !(0.001..10000.0).contains(&ax) {
        format!("{x:.3e}")
    } else if ax >= 100.0 {
        format!("{x:.1}")
    } else if ax >= 1.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_with_alignment() {
        let mut t = Table::new(["algo", "throughput"]).with_title("demo");
        t.row(["beb", "0.25"]);
        t.row(["cjz-protocol", "0.9"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("| algo "));
        assert!(s.contains("| beb "));
        // Right-aligned number column.
        assert!(s.contains("       0.9 |"), "rendered:\n{s}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_wrong_arity() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn custom_aligns() {
        let mut t = Table::new(["x", "y"]).with_aligns(vec![Align::Right, Align::Left]);
        t.row(["1", "left"]);
        let s = t.render();
        assert!(s.contains("| left"));
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1.23456), "1.235");
        assert_eq!(fnum(123.456), "123.5");
        assert_eq!(fnum(0.01234), "0.0123");
        assert!(fnum(1.0e7).contains('e'));
        assert!(fnum(0.00001).contains('e'));
        assert_eq!(fnum(f64::INFINITY), "inf");
    }

    #[test]
    fn markdown_renders_alignment_and_escapes_pipes() {
        let mut t = Table::new(["algo", "rate"]).with_title("m|d");
        t.row(["a|b", "0.5"]);
        let md = t.to_markdown();
        assert!(md.contains("**m\\|d**"));
        assert!(md.contains("| algo | rate |"));
        assert!(md.contains("|:---|---:|"));
        assert!(md.contains("| a\\|b | 0.5 |"));
    }

    #[test]
    fn empty_table_renders_headers() {
        let t = Table::new(["h1", "h2"]);
        assert!(t.is_empty());
        let s = t.render();
        assert!(s.contains("h1"));
    }
}
