//! Summary statistics for experiment replications.

/// Summary of a sample of f64 observations.
///
/// NaN observations are *excluded* from every statistic and surfaced in
/// [`nan_count`](Summary::nan_count) instead: one degenerate trial must not
/// poison (or panic) the reporting stage of a large sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of finite-or-infinite (non-NaN) observations summarized.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Standard error of the mean.
    pub sem: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Median (midpoint interpolation).
    pub median: f64,
    /// NaN observations dropped from the sample before summarizing.
    pub nan_count: usize,
}

impl Summary {
    /// Compute the summary of `data`, dropping NaN observations (their
    /// count is reported in [`nan_count`](Summary::nan_count)). Returns
    /// `None` when no non-NaN observation remains.
    pub fn of(data: &[f64]) -> Option<Summary> {
        let mut sorted: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
        let nan_count = data.len() - sorted.len();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_unstable_by(f64::total_cmp);
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        let sem = std_dev / (n as f64).sqrt();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Summary {
            n,
            mean,
            std_dev,
            sem,
            min: sorted[0],
            max: sorted[n - 1],
            median,
            nan_count,
        })
    }

    /// Normal-approximation 95% confidence half-width (`1.96·sem`).
    pub fn ci95(&self) -> f64 {
        1.96 * self.sem
    }
}

/// The `q`-quantile of `data` (nearest-rank with linear interpolation),
/// ignoring NaN observations. Returns `None` when no non-NaN observation
/// remains or `q` is outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_unstable_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Geometric mean of strictly positive data. Returns `None` if the sample is
/// empty or contains non-positive values.
pub fn geometric_mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() || data.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = data.iter().map(|x| x.ln()).sum();
    Some((log_sum / data.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // var = (2.25+0.25+0.25+2.25)/3 = 5/3
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn summary_single_point() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn summary_empty() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_odd_median() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn quantiles() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(5.0));
        assert_eq!(quantile(&data, 0.5), Some(3.0));
        assert_eq!(quantile(&data, 0.25), Some(2.0));
        assert_eq!(quantile(&data, 0.1), Some(1.4));
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&data, 1.5), None);
    }

    #[test]
    fn summary_survives_nan_observations() {
        // Regression: a single NaN used to panic the whole reporting stage
        // via `partial_cmp(...).expect("NaN in sample")`.
        let s = Summary::of(&[3.0, f64::NAN, 1.0, 2.0, f64::NAN]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.nan_count, 2);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        // Clean samples report zero dropped observations.
        assert_eq!(Summary::of(&[1.0]).unwrap().nan_count, 0);
        // All-NaN collapses to None rather than a NaN-filled summary.
        assert!(Summary::of(&[f64::NAN, f64::NAN]).is_none());
    }

    #[test]
    fn quantile_ignores_nan_observations() {
        let data = [f64::NAN, 1.0, 3.0, f64::NAN, 5.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 0.5), Some(3.0));
        assert_eq!(quantile(&data, 1.0), Some(5.0));
        assert_eq!(quantile(&[f64::NAN], 0.5), None);
    }

    #[test]
    fn summary_handles_infinities_without_panicking() {
        // total_cmp orders infinities correctly; they are kept (only NaN
        // is dropped).
        let s = Summary::of(&[f64::NEG_INFINITY, 0.0, f64::INFINITY]).unwrap();
        assert_eq!(s.min, f64::NEG_INFINITY);
        assert_eq!(s.max, f64::INFINITY);
        assert_eq!(s.median, 0.0);
    }

    #[test]
    fn geometric_mean_basic() {
        let gm = geometric_mean(&[1.0, 4.0]).unwrap();
        assert!((gm - 2.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
    }
}
