//! Summary statistics for experiment replications.

/// Summary of a sample of f64 observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Standard error of the mean.
    pub sem: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Median (midpoint interpolation).
    pub median: f64,
}

impl Summary {
    /// Compute the summary of `data`. Returns `None` for an empty sample.
    pub fn of(data: &[f64]) -> Option<Summary> {
        if data.is_empty() {
            return None;
        }
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        let sem = std_dev / (n as f64).sqrt();
        let mut sorted: Vec<f64> = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Summary {
            n,
            mean,
            std_dev,
            sem,
            min: sorted[0],
            max: sorted[n - 1],
            median,
        })
    }

    /// Normal-approximation 95% confidence half-width (`1.96·sem`).
    pub fn ci95(&self) -> f64 {
        1.96 * self.sem
    }
}

/// The `q`-quantile of `data` (nearest-rank with linear interpolation).
/// Returns `None` on an empty sample or `q` outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Geometric mean of strictly positive data. Returns `None` if the sample is
/// empty or contains non-positive values.
pub fn geometric_mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() || data.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = data.iter().map(|x| x.ln()).sum();
    Some((log_sum / data.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // var = (2.25+0.25+0.25+2.25)/3 = 5/3
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn summary_single_point() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn summary_empty() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_odd_median() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn quantiles() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(5.0));
        assert_eq!(quantile(&data, 0.5), Some(3.0));
        assert_eq!(quantile(&data, 0.25), Some(2.0));
        assert_eq!(quantile(&data, 0.1), Some(1.4));
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&data, 1.5), None);
    }

    #[test]
    fn geometric_mean_basic() {
        let gm = geometric_mean(&[1.0, 4.0]).unwrap();
        assert!((gm - 2.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
    }
}
