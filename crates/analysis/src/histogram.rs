//! Log-scale histograms for heavy-tailed distributions.
//!
//! Latency and completion-time distributions in this domain are heavy-
//! tailed (see Claim 3.5.1's straggler analysis), so linear bins are
//! useless: [`LogHistogram`] uses base-2 geometric bins, renders as an
//! ASCII bar chart, and reports tail mass directly.

use std::fmt::Write as _;

/// A histogram with geometric (powers-of-two) bins.
#[derive(Debug, Clone, Default)]
pub struct LogHistogram {
    /// `bins[k]` counts samples in `[2^k, 2^{k+1})`.
    bins: Vec<u64>,
    /// Samples equal to zero (their log bin is undefined).
    zeros: u64,
    count: u64,
    sum: f64,
    max: f64,
}

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a non-negative sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative or not finite.
    pub fn insert(&mut self, x: f64) {
        assert!(x.is_finite() && x >= 0.0, "samples must be finite and >= 0");
        self.count += 1;
        self.sum += x;
        self.max = self.max.max(x);
        if x < 1.0 {
            self.zeros += 1;
            return;
        }
        let bin = x.log2().floor() as usize;
        if self.bins.len() <= bin {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += 1;
    }

    /// Extend from an iterator of samples.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.insert(x);
        }
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Fraction of samples at or above `threshold`.
    pub fn tail_fraction(&self, threshold: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut above = 0u64;
        for (k, &c) in self.bins.iter().enumerate() {
            // The whole bin [2^k, 2^{k+1}) is above if 2^{k+1} <= threshold
            // is false… count bins whose low edge is >= threshold;
            // conservative for the bin straddling the threshold.
            if (1u64 << k) as f64 >= threshold {
                above += c;
            }
        }
        above as f64 / self.count as f64
    }

    /// Render as an ASCII bar chart (one row per occupied bin).
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(self.zeros);
        if peak == 0 {
            let _ = writeln!(out, "(empty histogram)");
            return out;
        }
        let bar = |count: u64| {
            let w = ((count as f64 / peak as f64) * width as f64).round() as usize;
            "#".repeat(w.max(usize::from(count > 0)))
        };
        if self.zeros > 0 {
            let _ = writeln!(
                out,
                "[0,1)        | {:>8} | {}",
                self.zeros,
                bar(self.zeros)
            );
        }
        for (k, &c) in self.bins.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let lo = 1u64 << k;
            let hi = 1u64 << (k + 1);
            let _ = writeln!(out, "[{lo}, {hi}) | {c:>8} | {}", bar(c));
        }
        out
    }
}

impl FromIterator<f64> for LogHistogram {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut h = LogHistogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_are_powers_of_two() {
        let h: LogHistogram = [0.5, 1.0, 1.5, 2.0, 3.9, 4.0, 1000.0].into_iter().collect();
        assert_eq!(h.count(), 7);
        // 0.5 -> zeros; 1.0,1.5 -> bin0; 2.0,3.9 -> bin1; 4.0 -> bin2;
        // 1000 -> bin9.
        assert!((h.mean() - (0.5 + 1.0 + 1.5 + 2.0 + 3.9 + 4.0 + 1000.0) / 7.0).abs() < 1e-9);
        assert_eq!(h.max(), 1000.0);
        let render = h.render(20);
        assert!(render.contains("[1, 2)"));
        assert!(render.contains("[512, 1024)"));
        assert!(render.contains("[0,1)"));
    }

    #[test]
    fn tail_fraction() {
        let h: LogHistogram = (0..100).map(f64::from).collect();
        // Samples >= 64: 64..=99 → 36 of 100.
        assert!((h.tail_fraction(64.0) - 0.36).abs() < 1e-9);
        assert_eq!(h.tail_fraction(1e9), 0.0);
        assert_eq!(LogHistogram::new().tail_fraction(1.0), 0.0);
    }

    #[test]
    fn empty_render() {
        assert!(LogHistogram::new().render(10).contains("empty"));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        LogHistogram::new().insert(f64::NAN);
    }

    #[test]
    fn heavy_tail_visible() {
        // A Pareto-ish tail puts mass in high bins; a uniform one doesn't.
        let heavy: LogHistogram = (1..200).map(|i| f64::from(i * i)).collect();
        let light: LogHistogram = (1..200).map(f64::from).collect();
        assert!(heavy.tail_fraction(1024.0) > light.tail_fraction(1024.0));
    }
}
