//! Two-sample comparison: rank-sum statistics for "algorithm A beats
//! algorithm B" claims.
//!
//! Experiment verdicts like "f-backoff recovers faster than smoothed BEB"
//! should not rest on two means alone. [`rank_sum`] computes the
//! Mann–Whitney U statistic with a normal approximation for the p-value
//! (adequate for the ≥5-seed samples the harness produces), and
//! [`common_language_effect`] reports the probability that a random
//! observation from A is smaller than one from B — an effect size readers
//! can interpret directly.

/// Result of a Mann–Whitney U rank-sum comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankSum {
    /// The U statistic for the first sample.
    pub u: f64,
    /// Two-sided p-value under the normal approximation (ties handled by
    /// midranks; continuity-corrected).
    pub p_value: f64,
    /// P(random a < random b) + ½·P(tie) — the common-language effect size.
    pub effect: f64,
}

/// Mann–Whitney U test of `a` vs `b`. Returns `None` when either sample is
/// empty.
pub fn rank_sum(a: &[f64], b: &[f64]) -> Option<RankSum> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;

    // Midranks over the pooled sample.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&x| (x, 0usize))
        .chain(b.iter().map(|&x| (x, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("NaN in sample"));
    let mut ranks = vec![0.0f64; pooled.len()];
    let mut tie_correction = 0.0f64;
    let mut i = 0;
    while i < pooled.len() {
        let mut j = i;
        while j + 1 < pooled.len() && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = mid;
        }
        let t = (j - i + 1) as f64;
        tie_correction += t * t * t - t;
        i = j + 1;
    }
    let r1: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, side), _)| *side == 0)
        .map(|(_, &r)| r)
        .sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;

    // U₁ counts pairs where a > b (plus half-ties), so P(a < b) + ½P(tie)
    // is its complement over the n₁·n₂ pairs.
    let effect = 1.0 - u1 / (n1 * n2);

    // Normal approximation with tie correction and continuity correction.
    let mean = n1 * n2 / 2.0;
    let n = n1 + n2;
    let var = n1 * n2 / 12.0 * ((n + 1.0) - tie_correction / (n * (n - 1.0)));
    let p_value = if var <= 0.0 {
        1.0
    } else {
        let z = (u1 - mean).abs() - 0.5;
        let z = z.max(0.0) / var.sqrt();
        2.0 * (1.0 - normal_cdf(z))
    };
    Some(RankSum {
        u: u1,
        p_value: p_value.clamp(0.0, 1.0),
        effect,
    })
}

/// Common-language effect size: P(a < b) + ½·P(a = b).
pub fn common_language_effect(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let mut wins = 0.0f64;
    for &x in a {
        for &y in b {
            if x < y {
                wins += 1.0;
            } else if x == y {
                wins += 0.5;
            }
        }
    }
    Some(wins / (a.len() * b.len()) as f64)
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf approximation
/// (absolute error < 1.5e-7 — ample for experiment verdicts).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_and_cdf_sanity() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999999);
    }

    #[test]
    fn clearly_separated_samples() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0];
        let r = rank_sum(&a, &b).unwrap();
        assert_eq!(r.u, 0.0); // every a below every b → a never "wins" a rank pair
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
        assert_eq!(r.effect, 1.0, "P(a < b) must be 1");
        assert_eq!(common_language_effect(&a, &b), Some(1.0));
    }

    #[test]
    fn identical_samples_not_significant() {
        let a = [5.0, 6.0, 7.0, 8.0];
        let r = rank_sum(&a, &a).unwrap();
        assert!(r.p_value > 0.9, "p = {}", r.p_value);
        assert!((r.effect - 0.5).abs() < 1e-9);
        assert_eq!(common_language_effect(&a, &a), Some(0.5));
    }

    #[test]
    fn overlapping_samples_moderate_p() {
        let a = [1.0, 3.0, 5.0, 7.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let r = rank_sum(&a, &b).unwrap();
        assert!(r.p_value > 0.2);
        // a "wins" 6 of 16 rank pairs → P(a < b) = 10/16 = 0.625.
        assert!((r.effect - 0.625).abs() < 1e-9);
    }

    #[test]
    fn ties_are_midranked() {
        let a = [1.0, 2.0, 2.0];
        let b = [2.0, 3.0, 4.0];
        let r = rank_sum(&a, &b).unwrap();
        // a is stochastically smaller (with ties) → P(a < b) above ½.
        assert!(r.effect > 0.5);
        assert!(r.p_value > 0.0 && r.p_value <= 1.0);
        // rank_sum's effect must agree with the direct pair count.
        let direct = common_language_effect(&a, &b).unwrap();
        assert!((r.effect - direct).abs() < 1e-9);
    }

    #[test]
    fn empty_samples_rejected() {
        assert!(rank_sum(&[], &[1.0]).is_none());
        assert!(rank_sum(&[1.0], &[]).is_none());
        assert!(common_language_effect(&[], &[1.0]).is_none());
    }

    #[test]
    fn symmetry_of_effect() {
        let a = [1.0, 2.0, 9.0];
        let b = [3.0, 4.0, 5.0];
        let e_ab = common_language_effect(&a, &b).unwrap();
        let e_ba = common_language_effect(&b, &a).unwrap();
        assert!((e_ab + e_ba - 1.0).abs() < 1e-9);
    }
}
