//! Collision-detection-aware baselines.
//!
//! Under the paper's no-collision-detection model, failure feedback is a
//! single bit and carries no information, so every baseline in this crate
//! is driven by a fixed program (plus, at most, heard successes). Under a
//! ternary collision-detection channel
//! ([`ChannelModel::CollisionDetection`]) the feedback distinguishes
//! [`Feedback::Silence`] (idle channel) from [`Feedback::Noise`]
//! (contention), and the classical reaction is MIMD: back off
//! multiplicatively on noise, speed up on silence. These protocols wrap
//! the [`contention_backoff::mimd`] drivers.
//!
//! Both degrade gracefully on poorer channels. Ambiguous failure feedback
//! ([`Feedback::NoSuccess`]) after one's *own* transmission is treated as
//! noise — the node knows its send failed because it is still in the
//! system. Under no-CD the only remaining signals are that own-failure
//! inference and *heard successes* (which are public in the paper's
//! model, and count as a clear signal), so the protocols degrade to a
//! success-reactive multiplicative backoff: silence is never reported
//! and the idle-channel speed-up never fires. Under ack-only feedback
//! ([`Feedback::Nothing`]) even heard successes vanish and only the
//! own-send inference remains.
//!
//! [`ChannelModel::CollisionDetection`]: contention_sim::ChannelModel
//! [`Feedback::Silence`]: contention_sim::Feedback
//! [`Feedback::Noise`]: contention_sim::Feedback
//! [`Feedback::NoSuccess`]: contention_sim::Feedback
//! [`Feedback::Nothing`]: contention_sim::Feedback

use contention_backoff::{CollisionWindow, MimdProbability};
use contention_sim::{Action, Feedback, Protocol};
use rand::RngCore;

/// Did this slot's feedback report a *failure the node can learn from*?
///
/// `sent` is whether the node itself transmitted in the slot. Returns the
/// MIMD signal: `Some(true)` = treat as noise, `Some(false)` = treat as
/// clear/idle, `None` = no signal.
fn mimd_signal(sent: bool, feedback: Feedback) -> Option<bool> {
    match feedback {
        // Verifiable contention: always a noise signal.
        Feedback::Noise => Some(true),
        // Verifiably idle channel: speed up (only ever heard while
        // listening — a slot in which this node sent cannot be silent).
        Feedback::Silence => Some(false),
        // A heard success means the channel cleared for someone: treat as
        // a (mild) clear signal, like silence.
        Feedback::Success(_) => Some(false),
        // Ambiguous failure (no-CD) or no feedback at all (ack-only): the
        // node still knows its *own* send failed, because a successful
        // sender would have departed.
        Feedback::NoSuccess | Feedback::Nothing => sent.then_some(true),
    }
}

/// Collision-triggered windowed backoff (`cd-beb`): an Ethernet-style
/// MIMD contention window. Doubles on noise (including own failed sends),
/// halves on silence or heard success.
#[derive(Debug, Clone, Default)]
pub struct CdBackoffProtocol {
    window: CollisionWindow,
    sent_last: bool,
}

impl CdBackoffProtocol {
    /// A fresh instance (window 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current contention window (for tests and inspection).
    pub fn window(&self) -> u64 {
        self.window.window()
    }
}

impl Protocol for CdBackoffProtocol {
    fn name(&self) -> &'static str {
        "cd-beb"
    }

    fn try_clone_box(&self) -> Option<Box<dyn Protocol + Send>> {
        Some(Box::new(self.clone()))
    }

    fn act(&mut self, _local_slot: u64, rng: &mut dyn RngCore) -> Action {
        self.sent_last = self.window.next(rng);
        if self.sent_last {
            Action::Broadcast
        } else {
            Action::Listen
        }
    }

    fn act_fast(&mut self, _local_slot: u64, rng: &mut rand::rngs::SmallRng) -> Action {
        self.sent_last = self.window.next(rng);
        if self.sent_last {
            Action::Broadcast
        } else {
            Action::Listen
        }
    }

    fn observe(&mut self, _local_slot: u64, feedback: Feedback) {
        match mimd_signal(self.sent_last, feedback) {
            Some(true) => self.window.on_noise(),
            Some(false) => self.window.on_clear(),
            None => {}
        }
    }
}

/// Collision-aware slotted ALOHA (`cd-aloha`): a MIMD transmission
/// probability. Halves on noise (including own failed sends), doubles on
/// silence or heard success.
#[derive(Debug, Clone)]
pub struct CdAlohaProtocol {
    prob: MimdProbability,
    sent_last: bool,
}

impl CdAlohaProtocol {
    /// Floor for the MIMD probability: low enough to survive very large
    /// populations, high enough to recover quickly once silence is heard.
    const MIN_P: f64 = 1.0 / 65_536.0;

    /// A fresh instance starting at transmission probability `p0`.
    pub fn new(p0: f64) -> Self {
        CdAlohaProtocol {
            prob: MimdProbability::new(p0, Self::MIN_P, 1.0),
            sent_last: false,
        }
    }

    /// Current transmission probability.
    pub fn prob(&self) -> f64 {
        self.prob.prob()
    }
}

impl Protocol for CdAlohaProtocol {
    fn name(&self) -> &'static str {
        "cd-aloha"
    }

    fn try_clone_box(&self) -> Option<Box<dyn Protocol + Send>> {
        Some(Box::new(self.clone()))
    }

    fn act(&mut self, _local_slot: u64, rng: &mut dyn RngCore) -> Action {
        self.sent_last = self.prob.decide(rng);
        if self.sent_last {
            Action::Broadcast
        } else {
            Action::Listen
        }
    }

    fn observe(&mut self, _local_slot: u64, feedback: Feedback) {
        match mimd_signal(self.sent_last, feedback) {
            Some(true) => self.prob.on_noise(),
            Some(false) => self.prob.on_clear(),
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_sim::NodeId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn cd_beb_doubles_on_noise_and_halves_on_silence() {
        let mut p = CdBackoffProtocol::new();
        let mut r = rng(1);
        assert_eq!(p.act(0, &mut r), Action::Broadcast, "window 1 sends");
        p.observe(0, Feedback::Noise);
        assert_eq!(p.window(), 2);
        p.observe(1, Feedback::Noise);
        assert_eq!(p.window(), 4);
        p.observe(2, Feedback::Silence);
        assert_eq!(p.window(), 2);
        p.observe(3, Feedback::Success(NodeId::new(7)));
        assert_eq!(p.window(), 1);
    }

    #[test]
    fn own_failed_send_is_noise_even_without_cd() {
        for ambiguous in [Feedback::NoSuccess, Feedback::Nothing] {
            let mut p = CdBackoffProtocol::new();
            let mut r = rng(2);
            assert_eq!(p.act(0, &mut r), Action::Broadcast);
            p.observe(0, ambiguous);
            assert_eq!(p.window(), 2, "own failure under {ambiguous} doubles");
        }
    }

    #[test]
    fn listening_no_success_carries_no_signal() {
        let mut p = CdBackoffProtocol::new();
        p.observe(0, Feedback::Noise); // get off window 1 first
        p.observe(1, Feedback::Noise);
        let w = p.window();
        // While listening, ambiguous failures must not move the window —
        // under no-CD they are uninformative.
        let mut r = rng(3);
        loop {
            if p.act(0, &mut r) == Action::Listen {
                break;
            }
            p.observe(0, Feedback::Noise);
        }
        let w = p.window().max(w);
        p.observe(1, Feedback::NoSuccess);
        p.observe(2, Feedback::Nothing);
        assert_eq!(p.window(), w);
    }

    #[test]
    fn cd_aloha_probability_tracks_signals() {
        let mut p = CdAlohaProtocol::new(0.5);
        p.observe(0, Feedback::Noise);
        assert_eq!(p.prob(), 0.25);
        p.observe(1, Feedback::Silence);
        assert_eq!(p.prob(), 0.5);
        p.observe(2, Feedback::Silence);
        assert_eq!(p.prob(), 1.0);
        assert_eq!(p.name(), "cd-aloha");
    }

    #[test]
    fn protocols_observe_failures() {
        // Both must receive non-success feedback from the engine: the
        // whole point is reacting to Silence/Noise.
        assert!(CdBackoffProtocol::new().observes_failures());
        assert!(CdAlohaProtocol::new(0.5).observes_failures());
    }
}
