//! Sawtooth (backoff-backon) protocol baseline.

use contention_backoff::Sawtooth;
use contention_sim::{Action, Feedback, Protocol};
use rand::RngCore;

/// Sawtooth backoff as a protocol: fixed rising-probability sweeps per
/// epoch, oblivious to feedback.
#[derive(Debug, Clone, Default)]
pub struct SawtoothProtocol {
    saw: Sawtooth,
}

impl SawtoothProtocol {
    /// Fresh sawtooth protocol.
    pub fn new() -> Self {
        Self::default()
    }

    /// Broadcast attempts so far.
    pub fn total_sends(&self) -> u64 {
        self.saw.total_sends()
    }
}

impl Protocol for SawtoothProtocol {
    fn name(&self) -> &'static str {
        "sawtooth"
    }

    fn try_clone_box(&self) -> Option<Box<dyn Protocol + Send>> {
        Some(Box::new(self.clone()))
    }

    fn act(&mut self, _local_slot: u64, rng: &mut dyn RngCore) -> Action {
        if self.saw.next(rng) {
            Action::Broadcast
        } else {
            Action::Listen
        }
    }

    fn act_fast(&mut self, _local_slot: u64, rng: &mut rand::rngs::SmallRng) -> Action {
        if self.saw.next(rng) {
            Action::Broadcast
        } else {
            Action::Listen
        }
    }

    fn observe(&mut self, _local_slot: u64, _feedback: Feedback) {}

    fn observes_failures(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sawtooth_broadcasts_sometimes() {
        let mut p = SawtoothProtocol::new();
        let mut r = SmallRng::seed_from_u64(0);
        let sends = (0..10_000)
            .filter(|&s| p.act(s, &mut r).is_broadcast())
            .count();
        assert!(sends > 10, "{sends}");
        assert_eq!(p.total_sends(), sends as u64);
        assert_eq!(p.name(), "sawtooth");
    }
}
