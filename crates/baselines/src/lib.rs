//! # contention-baselines
//!
//! Baseline contention-resolution protocols for comparison against the
//! Chen–Jiang–Zheng algorithm:
//!
//! | Baseline | Kind | Why it's here |
//! |---|---|---|
//! | [`WindowProtocol::binary_exponential`] | windowed, oblivious | the classical Ethernet algorithm |
//! | [`WindowProtocol::polynomial`] / [`WindowProtocol::linear`] | windowed | classical variants |
//! | [`ScheduleProtocol::smoothed_beb`] | schedule `1/i` | the `h_data` batch; Claim 3.5.1's subject |
//! | [`ScheduleProtocol::log_backoff`] | schedule `c·log i/i` | the `h_ctrl` "modified backoff" |
//! | [`ScheduleProtocol::aloha`] | constant `p` | slotted ALOHA |
//! | [`SawtoothProtocol`] | sweep | backon-style baseline |
//! | [`FBackoffProtocol`] | stage-adaptive | the paper's backoff subroutine in isolation |
//! | [`ResetOnSuccess`] / [`ResettingWindowProtocol`] | adaptive repair | naive re-synchronization heuristics |
//! | [`CdBackoffProtocol`] / [`CdAlohaProtocol`] | collision-triggered MIMD | what richer (collision-detection) feedback buys |
//!
//! [`Baseline`] is a uniform registry (and [`ProtocolFactory`]) over all of
//! them, used by the comparison experiments. The `cd-*` protocols only
//! receive their silence/noise signals under the collision-detection
//! channel model; under the paper's model they degrade to a
//! success-reactive multiplicative backoff — only own failures and heard
//! successes remain informative (see [`cd_proto`]).
//!
//! [`ProtocolFactory`]: contention_sim::ProtocolFactory

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cd_proto;
pub mod fbackoff;
pub mod registry;
pub mod sawtooth_proto;
pub mod schedule_proto;
pub mod window_proto;

pub use cd_proto::{CdAlohaProtocol, CdBackoffProtocol};
pub use fbackoff::FBackoffProtocol;
pub use registry::Baseline;
pub use sawtooth_proto::SawtoothProtocol;
pub use schedule_proto::{ResetOnSuccess, ScheduleProtocol};
pub use window_proto::{ResettingWindowProtocol, WindowProtocol};
