//! # contention-baselines
//!
//! Baseline contention-resolution protocols for comparison against the
//! Chen–Jiang–Zheng algorithm:
//!
//! | Baseline | Kind | Why it's here |
//! |---|---|---|
//! | [`WindowProtocol::binary_exponential`] | windowed, oblivious | the classical Ethernet algorithm |
//! | [`WindowProtocol::polynomial`] / [`WindowProtocol::linear`] | windowed | classical variants |
//! | [`ScheduleProtocol::smoothed_beb`] | schedule `1/i` | the `h_data` batch; Claim 3.5.1's subject |
//! | [`ScheduleProtocol::log_backoff`] | schedule `c·log i/i` | the `h_ctrl` "modified backoff" |
//! | [`ScheduleProtocol::aloha`] | constant `p` | slotted ALOHA |
//! | [`SawtoothProtocol`] | sweep | backon-style baseline |
//! | [`FBackoffProtocol`] | stage-adaptive | the paper's backoff subroutine in isolation |
//! | [`ResetOnSuccess`] / [`ResettingWindowProtocol`] | adaptive repair | naive re-synchronization heuristics |
//!
//! [`Baseline`] is a uniform registry (and [`ProtocolFactory`]) over all of
//! them, used by the comparison experiments.
//!
//! [`ProtocolFactory`]: contention_sim::ProtocolFactory

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fbackoff;
pub mod registry;
pub mod sawtooth_proto;
pub mod schedule_proto;
pub mod window_proto;

pub use fbackoff::FBackoffProtocol;
pub use registry::Baseline;
pub use sawtooth_proto::SawtoothProtocol;
pub use schedule_proto::{ResetOnSuccess, ScheduleProtocol};
pub use window_proto::{ResettingWindowProtocol, WindowProtocol};
