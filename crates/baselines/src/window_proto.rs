//! Windowed backoff protocols (classical Ethernet-style baselines).

use contention_backoff::{WindowBackoff, WindowGrowth};
use contention_sim::{Action, Feedback, Protocol};
use rand::RngCore;

/// Classical windowed backoff as a protocol: one transmission per window,
/// windows growing per the policy, oblivious to feedback (a node leaves on
/// its own success automatically; other successes don't affect it).
#[derive(Debug, Clone)]
pub struct WindowProtocol {
    backoff: WindowBackoff,
    name: &'static str,
}

impl WindowProtocol {
    /// Windowed protocol with the given growth policy.
    pub fn new(name: &'static str, growth: WindowGrowth) -> Self {
        WindowProtocol {
            backoff: WindowBackoff::new(growth),
            name,
        }
    }

    /// Binary exponential backoff (windows `1, 2, 4, 8, …`).
    pub fn binary_exponential() -> Self {
        Self::new("beb", WindowGrowth::Binary)
    }

    /// Polynomial backoff with exponent `e` (windows `1, 2^e, 3^e, …`).
    pub fn polynomial(e: f64) -> Self {
        Self::new("poly-backoff", WindowGrowth::Polynomial(e))
    }

    /// Linear backoff (windows `1, 2, 3, …`).
    pub fn linear() -> Self {
        Self::new("linear-backoff", WindowGrowth::Linear)
    }

    /// Broadcast attempts so far.
    pub fn total_sends(&self) -> u64 {
        self.backoff.total_sends()
    }

    /// Current window index.
    pub fn window(&self) -> u32 {
        self.backoff.window()
    }
}

impl Protocol for WindowProtocol {
    fn name(&self) -> &'static str {
        self.name
    }

    fn try_clone_box(&self) -> Option<Box<dyn Protocol + Send>> {
        Some(Box::new(self.clone()))
    }

    fn act(&mut self, _local_slot: u64, rng: &mut dyn RngCore) -> Action {
        if self.backoff.next(rng) {
            Action::Broadcast
        } else {
            Action::Listen
        }
    }

    fn act_fast(&mut self, _local_slot: u64, rng: &mut rand::rngs::SmallRng) -> Action {
        if self.backoff.next(rng) {
            Action::Broadcast
        } else {
            Action::Listen
        }
    }

    fn observe(&mut self, _local_slot: u64, _feedback: Feedback) {}

    fn observes_failures(&self) -> bool {
        false
    }

    fn current_prob(&self) -> Option<f64> {
        Some(self.backoff.next_send_prob())
    }

    fn static_until_feedback(&self) -> bool {
        true
    }

    fn next_send_within(&mut self, within: u64, rng: &mut rand::rngs::SmallRng) -> Option<u64> {
        self.backoff.next_send_within(within, rng)
    }
}

/// Windowed backoff that resets to window 0 whenever it hears a success —
/// the re-synchronizing variant.
#[derive(Debug, Clone)]
pub struct ResettingWindowProtocol {
    backoff: WindowBackoff,
    name: &'static str,
    resets: u64,
}

impl ResettingWindowProtocol {
    /// Resetting windowed protocol with the given growth policy.
    pub fn new(name: &'static str, growth: WindowGrowth) -> Self {
        ResettingWindowProtocol {
            backoff: WindowBackoff::new(growth),
            name,
            resets: 0,
        }
    }

    /// Resetting binary exponential backoff.
    pub fn binary_exponential() -> Self {
        Self::new("reset-window-beb", WindowGrowth::Binary)
    }

    /// Number of resets so far.
    pub fn resets(&self) -> u64 {
        self.resets
    }
}

impl Protocol for ResettingWindowProtocol {
    fn name(&self) -> &'static str {
        self.name
    }

    fn try_clone_box(&self) -> Option<Box<dyn Protocol + Send>> {
        Some(Box::new(self.clone()))
    }

    fn act(&mut self, _local_slot: u64, rng: &mut dyn RngCore) -> Action {
        if self.backoff.next(rng) {
            Action::Broadcast
        } else {
            Action::Listen
        }
    }

    fn act_fast(&mut self, _local_slot: u64, rng: &mut rand::rngs::SmallRng) -> Action {
        if self.backoff.next(rng) {
            Action::Broadcast
        } else {
            Action::Listen
        }
    }

    fn observe(&mut self, _local_slot: u64, feedback: Feedback) {
        if feedback.is_success() {
            self.backoff.reset();
            self.resets += 1;
        }
    }

    fn observes_failures(&self) -> bool {
        false
    }

    fn current_prob(&self) -> Option<f64> {
        Some(self.backoff.next_send_prob())
    }

    fn static_until_feedback(&self) -> bool {
        true
    }

    fn restarts_on_success(&self) -> bool {
        true
    }

    fn next_send_within(&mut self, within: u64, rng: &mut rand::rngs::SmallRng) -> Option<u64> {
        self.backoff.next_send_within(within, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_sim::NodeId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn beb_first_slot_broadcasts() {
        let mut p = WindowProtocol::binary_exponential();
        assert_eq!(p.act(0, &mut rng(0)), Action::Broadcast);
        assert_eq!(p.name(), "beb");
    }

    #[test]
    fn beb_send_count_is_logarithmic() {
        let mut p = WindowProtocol::binary_exponential();
        let mut r = rng(1);
        for slot in 0..(1 << 14) {
            p.act(slot, &mut r);
        }
        // 2^14 slots cover ~14 windows: one send each.
        assert!((13..=16).contains(&p.total_sends()), "{}", p.total_sends());
        assert!(p.window() >= 13);
    }

    #[test]
    fn polynomial_sends_more_often() {
        let mut beb = WindowProtocol::binary_exponential();
        let mut poly = WindowProtocol::polynomial(2.0);
        let mut r1 = rng(2);
        let mut r2 = rng(2);
        for slot in 0..(1 << 14) {
            beb.act(slot, &mut r1);
            poly.act(slot, &mut r2);
        }
        assert!(poly.total_sends() > beb.total_sends());
    }

    #[test]
    fn window_protocol_is_oblivious() {
        let mut a = WindowProtocol::binary_exponential();
        let mut b = WindowProtocol::binary_exponential();
        let mut r1 = rng(4);
        let mut r2 = rng(4);
        for slot in 0..500 {
            let x = a.act(slot, &mut r1);
            let y = b.act(slot, &mut r2);
            assert_eq!(x, y);
            a.observe(slot, Feedback::Success(NodeId::new(0)));
            b.observe(slot, Feedback::NoSuccess);
        }
    }

    #[test]
    fn resetting_variant_resets() {
        let mut p = ResettingWindowProtocol::binary_exponential();
        let mut r = rng(5);
        for slot in 0..1000 {
            p.act(slot, &mut r);
        }
        p.observe(1000, Feedback::Success(NodeId::new(3)));
        assert_eq!(p.resets(), 1);
        // Window 0 after reset: next act broadcasts.
        assert_eq!(p.act(1001, &mut r), Action::Broadcast);
        assert_eq!(p.name(), "reset-window-beb");
    }
}
