//! Non-adaptive schedule protocols (the Theorem 4.2 class).
//!
//! A [`ScheduleProtocol`] broadcasts with a pre-defined probability `p_i` in
//! the `i`-th slot since its activation, independent of anything it hears —
//! exactly the class of algorithms Theorem 4.2 proves cannot achieve the
//! optimal trade-off under jamming. Instances include:
//!
//! * smoothed binary exponential backoff `p_i = 1/i` (the `h_data`-batch of
//!   Claim 3.5.1),
//! * the "modified backoff" `p_i = c·log i / i` (the `h_ctrl` schedule),
//! * slotted ALOHA `p_i = p`.

use contention_backoff::{HBatch, LaneBatch, LaneDraws, Schedule};
use contention_sim::lanes::LaneRngs;
use contention_sim::{Action, Feedback, Protocol};
use rand::RngCore;

/// [`LaneDraws`] adapter over the simulator's per-lane RNG bank. Lives
/// here because `contention-backoff` and `contention-sim` are independent
/// crates (neither may depend on the other); the baselines layer sees
/// both and supplies the glue.
struct LaneDrawSource<'a>(&'a mut LaneRngs);

impl LaneDraws for LaneDrawSource<'_> {
    #[inline]
    fn draw(&mut self, lane: usize) -> u64 {
        self.0.step_lane(lane)
    }

    #[inline]
    fn draw_block(&mut self, need: u64, out: &mut [u64; 64]) {
        self.0.draw_block(need, out);
    }

    #[inline]
    fn draw_mask(&mut self, need: u64, thr: u64) -> u64 {
        self.0.draw_mask(need, thr)
    }
}

/// A protocol that follows a fixed probability schedule.
#[derive(Debug, Clone)]
pub struct ScheduleProtocol {
    batch: HBatch,
    /// Per-lane schedule state, materialized on the first
    /// [`Protocol::act_lanes`] call (scalar runs never allocate it).
    lanes: Option<LaneBatch>,
    name: &'static str,
}

impl ScheduleProtocol {
    /// Protocol following `schedule`, labelled `name`.
    pub fn new(name: &'static str, schedule: Schedule) -> Self {
        ScheduleProtocol {
            batch: HBatch::new(schedule),
            lanes: None,
            name,
        }
    }

    /// Smoothed binary exponential backoff: `p_i = 1/i`.
    pub fn smoothed_beb() -> Self {
        Self::new("smoothed-beb", Schedule::Reciprocal)
    }

    /// The modified (log) backoff: `p_i = c·log i / i`.
    pub fn log_backoff(c: f64) -> Self {
        Self::new("log-backoff", Schedule::LogOverI { c })
    }

    /// Slotted ALOHA with fixed probability `p`.
    pub fn aloha(p: f64) -> Self {
        Self::new("aloha", Schedule::Constant(p))
    }

    /// Broadcast attempts so far.
    pub fn total_sends(&self) -> u64 {
        self.batch.total_sends()
    }
}

impl Protocol for ScheduleProtocol {
    fn name(&self) -> &'static str {
        self.name
    }

    fn try_clone_box(&self) -> Option<Box<dyn Protocol + Send>> {
        Some(Box::new(self.clone()))
    }

    fn act(&mut self, _local_slot: u64, rng: &mut dyn RngCore) -> Action {
        if self.batch.next(rng) {
            Action::Broadcast
        } else {
            Action::Listen
        }
    }

    fn act_fast(&mut self, _local_slot: u64, rng: &mut rand::rngs::SmallRng) -> Action {
        if self.batch.next(rng) {
            Action::Broadcast
        } else {
            Action::Listen
        }
    }

    fn observe(&mut self, _local_slot: u64, _feedback: Feedback) {
        // Non-adaptive by definition: feedback is ignored.
    }

    fn observes_failures(&self) -> bool {
        false
    }

    fn current_prob(&self) -> Option<f64> {
        Some(self.batch.next_prob())
    }

    fn static_until_feedback(&self) -> bool {
        true
    }

    fn next_send_within(&mut self, within: u64, rng: &mut rand::rngs::SmallRng) -> Option<u64> {
        self.batch.next_send_within(within, rng)
    }

    fn lane_capable(&self) -> bool {
        true
    }

    fn act_lanes(&mut self, _local_slot: u64, rngs: &mut LaneRngs, active: u64) -> u64 {
        let batch = &self.batch;
        let lanes = self
            .lanes
            .get_or_insert_with(|| LaneBatch::new(batch.schedule().clone()));
        lanes.next_mask(active, &mut LaneDrawSource(rngs))
    }
}

/// A schedule protocol that *restarts* its schedule from `i = 1` whenever it
/// hears a success — a simple adaptive repair heuristic used as an extra
/// baseline (it mimics the "re-synchronize on success" idea without the
/// paper's phase structure).
#[derive(Debug, Clone)]
pub struct ResetOnSuccess {
    schedule: Schedule,
    batch: HBatch,
    /// Per-lane schedule state, materialized on the first
    /// [`Protocol::act_lanes`] call (scalar runs never allocate it).
    lanes: Option<LaneBatch>,
    name: &'static str,
    resets: u64,
}

impl ResetOnSuccess {
    /// Protocol following `schedule`, restarting it on every success heard.
    pub fn new(name: &'static str, schedule: Schedule) -> Self {
        ResetOnSuccess {
            batch: HBatch::new(schedule.clone()),
            schedule,
            lanes: None,
            name,
            resets: 0,
        }
    }

    /// Smoothed BEB with restart-on-success.
    pub fn smoothed_beb() -> Self {
        Self::new("reset-beb", Schedule::Reciprocal)
    }

    /// Number of restarts so far.
    pub fn resets(&self) -> u64 {
        self.resets
    }
}

impl Protocol for ResetOnSuccess {
    fn name(&self) -> &'static str {
        self.name
    }

    fn try_clone_box(&self) -> Option<Box<dyn Protocol + Send>> {
        Some(Box::new(self.clone()))
    }

    fn act(&mut self, _local_slot: u64, rng: &mut dyn RngCore) -> Action {
        if self.batch.next(rng) {
            Action::Broadcast
        } else {
            Action::Listen
        }
    }

    fn act_fast(&mut self, _local_slot: u64, rng: &mut rand::rngs::SmallRng) -> Action {
        if self.batch.next(rng) {
            Action::Broadcast
        } else {
            Action::Listen
        }
    }

    fn observe(&mut self, _local_slot: u64, feedback: Feedback) {
        if feedback.is_success() {
            self.batch = HBatch::new(self.schedule.clone());
            self.resets += 1;
        }
    }

    fn observes_failures(&self) -> bool {
        false
    }

    fn current_prob(&self) -> Option<f64> {
        Some(self.batch.next_prob())
    }

    fn static_until_feedback(&self) -> bool {
        true
    }

    fn restarts_on_success(&self) -> bool {
        true
    }

    fn next_send_within(&mut self, within: u64, rng: &mut rand::rngs::SmallRng) -> Option<u64> {
        self.batch.next_send_within(within, rng)
    }

    fn lane_capable(&self) -> bool {
        true
    }

    fn act_lanes(&mut self, _local_slot: u64, rngs: &mut LaneRngs, active: u64) -> u64 {
        let schedule = &self.schedule;
        let lanes = self
            .lanes
            .get_or_insert_with(|| LaneBatch::new(schedule.clone()));
        lanes.next_mask(active, &mut LaneDrawSource(rngs))
    }

    fn observe_success_lanes(&mut self, lanes: u64) {
        if let Some(batch) = &mut self.lanes {
            batch.restart(lanes);
        }
        self.resets += u64::from(lanes.count_ones());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_sim::NodeId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn smoothed_beb_first_slot_broadcasts() {
        let mut p = ScheduleProtocol::smoothed_beb();
        assert_eq!(p.act(0, &mut rng(0)), Action::Broadcast);
        assert_eq!(p.name(), "smoothed-beb");
    }

    #[test]
    fn schedule_ignores_feedback() {
        let mut with_fb = ScheduleProtocol::smoothed_beb();
        let mut without = ScheduleProtocol::smoothed_beb();
        let mut r1 = rng(5);
        let mut r2 = rng(5);
        let mut same = true;
        for slot in 0..200 {
            let a = with_fb.act(slot, &mut r1);
            let b = without.act(slot, &mut r2);
            same &= a == b;
            with_fb.observe(slot, Feedback::Success(NodeId::new(1)));
            without.observe(slot, Feedback::NoSuccess);
        }
        assert!(same, "feedback must not influence a non-adaptive schedule");
    }

    #[test]
    fn aloha_rate() {
        let mut p = ScheduleProtocol::aloha(0.5);
        let mut r = rng(1);
        let sends = (0..10_000)
            .filter(|&s| p.act(s, &mut r).is_broadcast())
            .count();
        assert!((sends as f64 / 10_000.0 - 0.5).abs() < 0.03);
        assert_eq!(p.total_sends(), sends as u64);
    }

    #[test]
    fn log_backoff_sends_more_than_beb() {
        let mut log = ScheduleProtocol::log_backoff(2.0);
        let mut beb = ScheduleProtocol::smoothed_beb();
        let mut r1 = rng(2);
        let mut r2 = rng(2);
        for slot in 0..50_000 {
            log.act(slot, &mut r1);
            beb.act(slot, &mut r2);
        }
        assert!(log.total_sends() > beb.total_sends());
    }

    #[test]
    fn reset_on_success_restarts() {
        let mut p = ResetOnSuccess::smoothed_beb();
        let mut r = rng(3);
        for slot in 0..100 {
            p.act(slot, &mut r);
        }
        // After 100 slots p_i is small; a success resets it to p_1 = 1.
        p.observe(100, Feedback::Success(NodeId::new(9)));
        assert_eq!(p.resets(), 1);
        assert_eq!(p.act(101, &mut r), Action::Broadcast);
    }

    #[test]
    fn reset_ignores_no_success() {
        let mut p = ResetOnSuccess::smoothed_beb();
        p.observe(0, Feedback::NoSuccess);
        assert_eq!(p.resets(), 0);
        assert_eq!(p.name(), "reset-beb");
    }
}
