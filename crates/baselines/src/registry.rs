//! A uniform registry of baseline algorithms for comparison experiments.

use contention_backoff::{GFunction, Schedule};
use contention_sim::{NodeId, Protocol, ProtocolFactory};

use crate::cd_proto::{CdAlohaProtocol, CdBackoffProtocol};
use crate::fbackoff::FBackoffProtocol;
use crate::sawtooth_proto::SawtoothProtocol;
use crate::schedule_proto::{ResetOnSuccess, ScheduleProtocol};
use crate::window_proto::{ResettingWindowProtocol, WindowProtocol};

/// A baseline algorithm identifier; doubles as a [`ProtocolFactory`].
#[derive(Debug, Clone)]
pub enum Baseline {
    /// Windowed binary exponential backoff.
    BinaryExponential,
    /// Windowed polynomial backoff with the given exponent.
    Polynomial(f64),
    /// Windowed linear backoff.
    Linear,
    /// Smoothed BEB: `p_i = 1/i` (the `h_data` batch, Claim 3.5.1).
    SmoothedBeb,
    /// Log backoff: `p_i = c·log i / i` (the `h_ctrl` schedule).
    LogBackoff(f64),
    /// Slotted ALOHA with fixed probability.
    Aloha(f64),
    /// Polynomially decaying schedule `p_i = i^(−e)` — the canonical
    /// sparse mega-scale workload (for `e > 1` each node's expected
    /// lifetime send count is the constant `ζ(e)`).
    PolySchedule(f64),
    /// Sawtooth (backon) backoff.
    Sawtooth,
    /// The paper's `(f/a)`-backoff run standalone, tuned for jamming
    /// tolerance `g`.
    FBackoff(GFunction),
    /// Smoothed BEB that restarts its schedule on every heard success.
    ResetBeb,
    /// Windowed BEB that resets its window on every heard success.
    ResetWindowBeb,
    /// Collision-triggered MIMD window (needs the collision-detection
    /// channel model to hear its silence/noise signals).
    CdBackoff,
    /// Collision-aware MIMD slotted ALOHA starting at the given
    /// probability.
    CdAloha(f64),
    /// Arbitrary non-adaptive schedule.
    NonAdaptive(Schedule),
}

impl Baseline {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::BinaryExponential => "beb",
            Baseline::Polynomial(_) => "poly-backoff",
            Baseline::Linear => "linear-backoff",
            Baseline::SmoothedBeb => "smoothed-beb",
            Baseline::LogBackoff(_) => "log-backoff",
            Baseline::Aloha(_) => "aloha",
            Baseline::PolySchedule(_) => "poly-schedule",
            Baseline::Sawtooth => "sawtooth",
            Baseline::FBackoff(_) => "f-backoff",
            Baseline::ResetBeb => "reset-beb",
            Baseline::ResetWindowBeb => "reset-window-beb",
            Baseline::CdBackoff => "cd-beb",
            Baseline::CdAloha(_) => "cd-aloha",
            Baseline::NonAdaptive(_) => "non-adaptive",
        }
    }

    /// The default comparison roster used by experiment E7.
    pub fn roster() -> Vec<Baseline> {
        vec![
            Baseline::BinaryExponential,
            Baseline::Polynomial(2.0),
            Baseline::SmoothedBeb,
            Baseline::LogBackoff(2.0),
            Baseline::Aloha(0.1),
            Baseline::Sawtooth,
            Baseline::FBackoff(GFunction::Constant(2.0)),
            Baseline::ResetBeb,
        ]
    }
}

impl ProtocolFactory for Baseline {
    fn spawn(&self, _id: NodeId) -> Box<dyn Protocol> {
        match self {
            Baseline::BinaryExponential => Box::new(WindowProtocol::binary_exponential()),
            Baseline::Polynomial(e) => Box::new(WindowProtocol::polynomial(*e)),
            Baseline::Linear => Box::new(WindowProtocol::linear()),
            Baseline::SmoothedBeb => Box::new(ScheduleProtocol::smoothed_beb()),
            Baseline::LogBackoff(c) => Box::new(ScheduleProtocol::log_backoff(*c)),
            Baseline::Aloha(p) => Box::new(ScheduleProtocol::aloha(*p)),
            Baseline::PolySchedule(e) => Box::new(ScheduleProtocol::new(
                "poly-schedule",
                Schedule::PowerLaw { exponent: *e },
            )),
            Baseline::Sawtooth => Box::new(SawtoothProtocol::new()),
            Baseline::FBackoff(g) => Box::new(FBackoffProtocol::new(g.clone(), 1.0, 1.0)),
            Baseline::ResetBeb => Box::new(ResetOnSuccess::smoothed_beb()),
            Baseline::ResetWindowBeb => Box::new(ResettingWindowProtocol::binary_exponential()),
            Baseline::CdBackoff => Box::new(CdBackoffProtocol::new()),
            Baseline::CdAloha(p) => Box::new(CdAlohaProtocol::new(*p)),
            Baseline::NonAdaptive(s) => Box::new(ScheduleProtocol::new("non-adaptive", s.clone())),
        }
    }

    fn algorithm_name(&self) -> String {
        self.name().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_roster_entry_spawns() {
        for b in Baseline::roster() {
            let p = b.spawn(NodeId::new(0));
            assert_eq!(p.name(), b.name(), "factory/protocol name mismatch");
        }
    }

    #[test]
    fn extra_variants_spawn() {
        for b in [
            Baseline::Linear,
            Baseline::ResetWindowBeb,
            Baseline::CdBackoff,
            Baseline::CdAloha(0.5),
            Baseline::NonAdaptive(Schedule::PowerLaw { exponent: 0.5 }),
        ] {
            let p = b.spawn(NodeId::new(1));
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Baseline::BinaryExponential.name(), "beb");
        assert_eq!(Baseline::SmoothedBeb.name(), "smoothed-beb");
        assert_eq!(Baseline::FBackoff(GFunction::Log).name(), "f-backoff");
    }
}
