//! Pure `(f/a)`-backoff as a standalone protocol.
//!
//! Runs the paper's Phase-1 subroutine forever on **every** slot (no
//! channel split, no phases). Used by experiment E5 to isolate the claim
//! that the *adaptive* backoff subroutine — unlike plain exponential
//! backoff or any fixed schedule — keeps its sending probability high
//! enough to recover quickly after front-loaded jamming.

use contention_backoff::{FFunction, GFunction, HBackoff};
use contention_sim::{Action, Feedback, Protocol};
use rand::RngCore;

use std::fmt;

/// Counter adapter: `h(L) = f(L)/a` sends per stage (same density as the
/// protocol's Phase 1, but crate-local to avoid a dependency on
/// `contention-core`).
#[derive(Debug, Clone)]
struct FCount {
    f: FFunction,
}

impl contention_backoff::SendCount for FCount {
    fn count(&self, stage_len: u64) -> u64 {
        self.f.backoff_send_count(stage_len)
    }
}

/// Standalone `(f/a)`-backoff protocol.
#[derive(Clone)]
pub struct FBackoffProtocol {
    backoff: HBackoff<FCount>,
}

impl FBackoffProtocol {
    /// `(f/a)`-backoff derived from jamming tolerance `g` with constants
    /// `a`, `c₂`.
    pub fn new(g: GFunction, a: f64, c2: f64) -> Self {
        let f = FFunction::new(g, a, c2);
        FBackoffProtocol {
            backoff: HBackoff::new(FCount { f }),
        }
    }

    /// Constant-jamming tuning (`g = 2`, `a = c₂ = 1`).
    pub fn constant_jamming() -> Self {
        Self::new(GFunction::Constant(2.0), 1.0, 1.0)
    }

    /// Broadcast attempts so far.
    pub fn total_sends(&self) -> u64 {
        self.backoff.total_sends()
    }

    /// Current backoff stage.
    pub fn stage(&self) -> u32 {
        self.backoff.stage()
    }
}

impl Protocol for FBackoffProtocol {
    fn name(&self) -> &'static str {
        "f-backoff"
    }

    fn try_clone_box(&self) -> Option<Box<dyn Protocol + Send>> {
        Some(Box::new(self.clone()))
    }

    fn act(&mut self, _local_slot: u64, rng: &mut dyn RngCore) -> Action {
        if self.backoff.next(rng) {
            Action::Broadcast
        } else {
            Action::Listen
        }
    }

    fn act_fast(&mut self, _local_slot: u64, rng: &mut rand::rngs::SmallRng) -> Action {
        if self.backoff.next(rng) {
            Action::Broadcast
        } else {
            Action::Listen
        }
    }

    fn observe(&mut self, _local_slot: u64, _feedback: Feedback) {}

    fn observes_failures(&self) -> bool {
        false
    }
}

impl fmt::Debug for FBackoffProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FBackoffProtocol")
            .field("stage", &self.backoff.stage())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn first_slot_broadcasts() {
        let mut p = FBackoffProtocol::constant_jamming();
        let mut r = SmallRng::seed_from_u64(0);
        assert_eq!(p.act(0, &mut r), Action::Broadcast);
        assert_eq!(p.name(), "f-backoff");
    }

    #[test]
    fn sends_polylog_many_times() {
        let mut p = FBackoffProtocol::constant_jamming();
        let mut r = SmallRng::seed_from_u64(1);
        for slot in 0..(1u64 << 15) {
            p.act(slot, &mut r);
        }
        let sends = p.total_sends();
        // ~15 stages, each with f(2^k)/a ≈ log(2^k) sends: Θ(log²) total.
        // Loose bounds: more than plain BEB (15), far less than linear.
        assert!(sends > 30, "sends {sends}");
        assert!(sends < 2_000, "sends {sends}");
        assert!(p.stage() >= 15);
    }

    #[test]
    fn denser_than_plain_beb_after_long_run() {
        // f-backoff sends Θ(log L) times per stage vs BEB's 1: after the
        // same number of slots its total sends dominate.
        let mut fb = FBackoffProtocol::constant_jamming();
        let mut beb = contention_backoff::WindowBackoff::binary();
        let mut r1 = SmallRng::seed_from_u64(2);
        let mut r2 = SmallRng::seed_from_u64(3);
        let mut beb_sends = 0u64;
        for slot in 0..(1u64 << 14) {
            fb.act(slot, &mut r1);
            beb_sends += u64::from(beb.next(&mut r2));
        }
        assert!(fb.total_sends() > 2 * beb_sends);
    }
}
