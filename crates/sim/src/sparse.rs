//! The event-driven sparse execution engine
//! ([`Execution::SkipAhead`](crate::config::Execution)).
//!
//! In the paper's central regimes — polynomial backoff schedules, the
//! Θ(t/log t) lower-bound workloads, long jamming walls — almost every
//! slot is silent: each node broadcasts with probability `p ≪ 1`, so the
//! exact engine burns one `act_fast` call per node per slot mostly to
//! conclude "nobody spoke". The sparse engine inverts the loop:
//!
//! * every node whose protocol is in a *static phase*
//!   ([`Protocol::static_until_feedback`](crate::node::Protocol::static_until_feedback))
//!   samples its **next broadcast slot** directly from its schedule's
//!   survival function
//!   ([`Protocol::next_send_within`](crate::node::Protocol::next_send_within))
//!   and is parked in a calendar (a min-heap keyed by send slot);
//! * the adversary is asked to [`forecast`](crate::adversary::Adversary::forecast)
//!   quiet spans (no injections, constant jam state); slots inside a span
//!   with no scheduled broadcaster are resolved in **O(1) batches**
//!   (aggregate counters, bulk history fill, optional bulk slot records);
//! * only *event* slots — scheduled broadcasts, forecast boundaries,
//!   arrival slots — run individually, with exact collision/jam
//!   resolution, departures, and success-feedback fan-out.
//!
//! Per-slot cost thus drops from O(population) to O(events), which is
//! what makes million-node populations and multi-million-slot horizons
//! tractable.
//!
//! # Equivalence and fallback
//!
//! Runs are **distribution-equivalent** to the exact engine: each node's
//! send process has the identical law (inversion sampling of the same
//! Bernoulli schedule), nodes stay mutually independent between
//! feedbacks, and event slots replicate the exact resolution rules.
//! RNG streams differ, so traces are not byte-identical —
//! `tests/sparse_execution.rs` pins the statistical equivalence over
//! hundreds of seeds.
//!
//! Skip-ahead silently **falls back to the exact engine** when any of
//! the following holds at the first run call:
//!
//! * the channel model is not the paper's no-collision-detection channel
//!   (richer feedback distinguishes silent from jammed slots, which the
//!   static-phase contract does not cover);
//! * the protocol under test is not static until feedback (e.g. the
//!   paper's full phase-structured algorithm);
//! * the adversary cannot forecast its behaviour at all
//!   ([`Forecast::Adaptive`](crate::adversary::Forecast)) — randomized or
//!   history-reading adversaries.
//!
//! Adversaries that are merely *eventful* (scripted arrivals, periodic
//! jams) stay on the sparse path: the engine consults them exactly at
//! the slots their forecasts name.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::adversary::{Adversary, Forecast};
use crate::channel::ChannelModel;
use crate::config::Execution;
use crate::engine::{ActiveNode, Simulator, StopReason};
use crate::metrics::{DepartureRecord, SlotRecord};
use crate::node::{NodeId, ProtocolFactory};
use crate::slot::SlotOutcome;

/// Whether the simulator runs sparse, resolved lazily at the first run
/// call and sticky thereafter.
#[derive(Debug, Clone, Default)]
pub(crate) enum SparseMode {
    /// Not yet resolved (no run call has happened).
    #[default]
    Undecided,
    /// Exact execution (requested, or skip-ahead fell back).
    Declined,
    /// Sparse execution engaged.
    Engaged(Box<SparseState>),
}

/// Departed-node marker in [`Plan::idx`].
const DEAD: u32 = u32::MAX;

/// One node's skip-ahead bookkeeping.
#[derive(Debug, Clone)]
struct Plan {
    /// Index into the engine's node vector (maintained across
    /// `swap_remove`); [`DEAD`] once the node departed.
    idx: u32,
    /// Global slot through which the protocol's state has been consumed
    /// by sampling (its next act corresponds to slot `advanced_to + 1`).
    advanced_to: u64,
    /// Invalidation counter: heap/dormant entries carrying an older
    /// sequence number are stale and ignored.
    seq: u64,
}

impl Plan {
    #[inline]
    fn live(&self) -> bool {
        self.idx != DEAD
    }
}

/// Calendar and per-node plans of an engaged sparse run.
#[derive(Debug, Clone, Default)]
pub(crate) struct SparseState {
    /// Scheduled broadcasts: `Reverse((slot, node id, seq))`.
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    /// Plans indexed by raw node id (the engine assigns ids densely in
    /// spawn order, so a plain vector beats hashing at mega scale).
    plans: Vec<Plan>,
    /// Nodes with no broadcast scheduled within `bound`: `(id, seq)`.
    /// Re-sampled when a later run call extends the bound.
    dormant: Vec<(u64, u64)>,
    /// Global slot plans have been sampled against (sends beyond it are
    /// not yet committed).
    bound: u64,
    /// Whether the protocol restarts its send process on success
    /// feedback (then every success invalidates all scheduled sends).
    restarts_on_success: bool,
}

impl SparseState {
    /// Register a node spawned at index `idx` with its state consumed
    /// through `advanced_to`. Ids are dense and spawn-ordered.
    fn register(&mut self, id: u64, idx: u32, advanced_to: u64) {
        debug_assert_eq!(id as usize, self.plans.len(), "ids are spawn-ordered");
        self.plans.push(Plan {
            idx,
            advanced_to,
            seq: 0,
        });
    }

    /// The plan of a live node.
    #[inline]
    fn plan_mut(&mut self, id: u64) -> &mut Plan {
        let plan = &mut self.plans[id as usize];
        debug_assert!(plan.live(), "plan for departed node");
        plan
    }

    /// Whether `(id, seq)` names a live, current plan.
    #[inline]
    fn valid(&self, id: u64, seq: u64) -> bool {
        self.plans
            .get(id as usize)
            .is_some_and(|p| p.live() && p.seq == seq)
    }
}

type Observer<'a> = Option<&'a mut dyn FnMut(u64, &SlotRecord)>;

impl<F: ProtocolFactory, A: Adversary> Simulator<F, A> {
    /// Resolve (once) and report whether sparse execution is engaged.
    pub(crate) fn sparse_active(&mut self) -> bool {
        if matches!(self.sparse, SparseMode::Undecided) {
            self.sparse = self.sparse_decide();
        }
        matches!(self.sparse, SparseMode::Engaged(_))
    }

    /// Eligibility check (see the module docs for the fallback rules).
    fn sparse_decide(&self) -> SparseMode {
        if self.config.execution != Execution::SkipAhead {
            return SparseMode::Declined;
        }
        if self.config.channel != ChannelModel::NoCollisionDetection {
            return SparseMode::Declined;
        }
        // Probe one protocol instance; the factory spawns the same
        // algorithm for every node.
        let probe = self.factory.spawn(NodeId::new(u64::MAX));
        if !probe.static_until_feedback() {
            return SparseMode::Declined;
        }
        if matches!(
            self.adversary.forecast(self.current_slot + 1),
            Forecast::Adaptive
        ) {
            return SparseMode::Declined;
        }
        let mut state = SparseState {
            bound: self.current_slot,
            restarts_on_success: probe.restarts_on_success(),
            ..SparseState::default()
        };
        // Adopt pre-seeded nodes (`seed_nodes`) as dormant: they get
        // planned when the first run call sets the bound.
        for (idx, node) in self.nodes.iter().enumerate() {
            let id = node.id.raw();
            state.register(id, idx as u32, node.arrival_slot - 1);
            state.dormant.push((id, 0));
        }
        SparseMode::Engaged(Box::new(state))
    }

    /// Register nodes appended at indices `first..` (e.g. by
    /// `seed_nodes`) with an engaged sparse state, parking them dormant
    /// until the next run call extends the planning bound. A no-op
    /// before skip-ahead resolves — `sparse_decide` adopts pre-existing
    /// nodes wholesale — and under exact execution.
    pub(crate) fn sparse_adopt(&mut self, first: usize) {
        let SparseMode::Engaged(state) = &mut self.sparse else {
            return;
        };
        for idx in first..self.nodes.len() {
            let node = &self.nodes[idx];
            let id = node.id.raw();
            state.register(id, idx as u32, node.arrival_slot - 1);
            state.dormant.push((id, 0));
        }
    }

    /// Sample (or re-sample) a node's next broadcast against `end`,
    /// pushing it into the calendar or the dormant list.
    fn plan_node(state: &mut SparseState, nodes: &mut [ActiveNode], id: u64, end: u64) {
        let plan = &mut state.plans[id as usize];
        debug_assert!(plan.live(), "plan for departed node");
        let from = plan.advanced_to;
        if from >= end {
            state.dormant.push((id, plan.seq));
            return;
        }
        let node = &mut nodes[plan.idx as usize];
        debug_assert_eq!(node.id.raw(), id);
        match node.proto.next_send_within(end - from, &mut node.rng) {
            Some(gap) => {
                debug_assert!(gap < end - from, "gap must respect the bound");
                let send = from + 1 + gap;
                plan.advanced_to = send;
                state.heap.push(Reverse((send, id, plan.seq)));
            }
            None => {
                plan.advanced_to = end;
                state.dormant.push((id, plan.seq));
            }
        }
    }

    /// Earliest valid scheduled broadcast, discarding stale entries.
    fn peek_valid(state: &mut SparseState) -> Option<u64> {
        while let Some(&Reverse((slot, id, seq))) = state.heap.peek() {
            if state.valid(id, seq) {
                return Some(slot);
            }
            state.heap.pop();
        }
        None
    }

    /// Extend the planning bound to `end`, re-sampling dormant nodes
    /// (their processes continue conditionally: no send so far).
    fn sparse_rebound(&mut self, end: u64) {
        let SparseMode::Engaged(state) = &mut self.sparse else {
            unreachable!("rebound requires an engaged sparse state")
        };
        if end <= state.bound {
            return;
        }
        state.bound = end;
        let dormant = std::mem::take(&mut state.dormant);
        for (id, seq) in dormant {
            if state.valid(id, seq) {
                Self::plan_node(state, &mut self.nodes, id, end);
            }
        }
    }

    /// The sparse main loop: run `max_slots` more slots (stopping early
    /// on drain when `drain` is set). `store` mirrors the exact engine's
    /// record policy (per-slot records iff full record mode); an
    /// `observe` callback, when present, receives every slot's record by
    /// reference and disables storing, exactly like the `*_with` APIs.
    pub(crate) fn run_sparse(
        &mut self,
        max_slots: u64,
        drain: bool,
        store: bool,
        mut observe: Observer<'_>,
    ) -> StopReason {
        let end = self.current_slot.saturating_add(max_slots);
        self.sparse_rebound(end);
        while self.current_slot < end {
            if drain && self.nodes.is_empty() && self.adversary.exhausted() {
                return StopReason::Drained;
            }
            let next = self.current_slot + 1;
            match self.adversary.forecast(next) {
                // `Adaptive` mid-run is treated like `Consult`: committed
                // send samples stay valid (node randomness is independent
                // of the adversary's information), the adversary just
                // gets consulted slot by slot.
                Forecast::Adaptive | Forecast::Consult => {
                    let decision =
                        self.adversary
                            .decide(next, &self.history, &mut self.adversary_rng);
                    self.sparse_exec_slot(
                        next,
                        decision.jam,
                        decision.inject,
                        end,
                        store,
                        &mut observe,
                    );
                }
                Forecast::Quiet { until, jam } => {
                    let until = until.max(next).min(end);
                    let send = {
                        let SparseMode::Engaged(state) = &mut self.sparse else {
                            unreachable!("sparse loop requires engaged state")
                        };
                        Self::peek_valid(state)
                    };
                    match send {
                        Some(send) if send <= until => {
                            let silent = send - next;
                            if silent > 0 {
                                self.sparse_skip(silent, jam, store, &mut observe);
                            }
                            self.sparse_exec_slot(send, jam, 0, end, store, &mut observe);
                        }
                        _ => {
                            let count = until - self.current_slot;
                            self.sparse_skip(count, jam, store, &mut observe);
                        }
                    }
                }
            }
        }
        if drain && self.nodes.is_empty() && self.adversary.exhausted() {
            StopReason::Drained
        } else {
            StopReason::SlotLimit
        }
    }

    /// One sparse `step()`: executes exactly one slot and returns its
    /// record.
    pub(crate) fn sparse_step(&mut self) -> SlotRecord {
        let mut captured = None;
        let mut capture = |_: u64, rec: &SlotRecord| captured = Some(*rec);
        self.run_sparse(1, false, true, Some(&mut capture));
        captured.expect("run_sparse(1) executes one slot")
    }

    /// Resolve `count` consecutive broadcast-free slots in bulk.
    fn sparse_skip(&mut self, count: u64, jam: bool, store: bool, observe: &mut Observer<'_>) {
        debug_assert!(count > 0);
        let population = self.nodes.len() as u64;
        let outcome = if jam {
            SlotOutcome::Jammed { broadcasters: 0 }
        } else {
            SlotOutcome::Silence
        };
        let feedback = self.config.channel.feedback(outcome);
        debug_assert!(!feedback.is_success());
        let rec = SlotRecord {
            arrivals: 0,
            broadcasters: 0,
            jammed: jam,
            active: population > 0,
            population,
            outcome,
        };
        // No-success feedback cannot change any static-phase protocol's
        // state, so the fan-out is skipped wholesale; history and trace
        // stay exact via the bulk paths.
        self.history.record_span(feedback, jam, count);
        if store && self.config.record_slots {
            self.trace.push_slot_span(rec, count);
        } else {
            self.trace.note_span(&rec, count);
        }
        if let Some(f) = observe.as_deref_mut() {
            for i in 1..=count {
                f(self.current_slot + i, &rec);
            }
        }
        self.current_slot += count;
    }

    /// Execute one event slot exactly: injections, scheduled broadcasts,
    /// collision/jam resolution, departure, and success fan-out.
    fn sparse_exec_slot(
        &mut self,
        slot: u64,
        jam: bool,
        inject: u32,
        end: u64,
        store: bool,
        observe: &mut Observer<'_>,
    ) {
        // 1. Injected nodes activate now and may broadcast in this very
        // slot (their first act is local slot 0).
        for _ in 0..inject {
            self.spawn_node(slot);
            let idx = self.nodes.len() - 1;
            let id = self.nodes[idx].id.raw();
            let SparseMode::Engaged(state) = &mut self.sparse else {
                unreachable!("sparse exec requires engaged state")
            };
            state.register(id, idx as u32, slot - 1);
            Self::plan_node(state, &mut self.nodes, id, end);
        }
        let population = self.nodes.len() as u64;

        // 2. Pop this slot's scheduled broadcasters into the shared
        // scratch buffer.
        {
            let SparseMode::Engaged(state) = &mut self.sparse else {
                unreachable!("sparse exec requires engaged state")
            };
            self.broadcasters.clear();
            while let Some(&Reverse((s, id, seq))) = state.heap.peek() {
                if s > slot {
                    break;
                }
                debug_assert_eq!(s, slot, "scheduled send slipped past execution");
                state.heap.pop();
                if state.valid(id, seq) {
                    self.broadcasters.push(state.plans[id as usize].idx);
                }
            }
        }
        for &idx in &self.broadcasters {
            self.nodes[idx as usize].accesses += 1;
        }

        // 3. Resolve, exactly as the dense engine does.
        let k = self.broadcasters.len() as u32;
        let outcome = if jam {
            SlotOutcome::Jammed { broadcasters: k }
        } else {
            match k {
                0 => SlotOutcome::Silence,
                1 => SlotOutcome::Delivered(self.nodes[self.broadcasters[0] as usize].id),
                _ => SlotOutcome::Collision { broadcasters: k },
            }
        };
        let feedback = self.config.channel.feedback(outcome);

        // 4. Departure of a successful sender.
        if let SlotOutcome::Delivered(winner) = outcome {
            let idx = self.broadcasters[0] as usize;
            let node = self.nodes.swap_remove(idx);
            self.failure_observers -= u64::from(node.proto.observes_failures());
            let SparseMode::Engaged(state) = &mut self.sparse else {
                unreachable!("sparse exec requires engaged state")
            };
            state.plans[winner.raw() as usize].idx = DEAD;
            if idx < self.nodes.len() {
                let moved = self.nodes[idx].id.raw();
                state.plan_mut(moved).idx = idx as u32;
            }
            self.trace.push_departure(DepartureRecord {
                node: node.id,
                arrival_slot: node.arrival_slot,
                departure_slot: slot,
                accesses: node.accesses,
            });
        }

        // 5. Feedback and re-sampling.
        let SparseMode::Engaged(state) = &mut self.sparse else {
            unreachable!("sparse exec requires engaged state")
        };
        if feedback.is_success() {
            if state.restarts_on_success {
                // Every remaining protocol restarts its send process:
                // deliver the success, invalidate all scheduled sends,
                // and re-sample from scratch.
                state.heap.clear();
                state.dormant.clear();
                for (idx, node) in self.nodes.iter_mut().enumerate() {
                    node.proto.observe(slot - node.arrival_slot, feedback);
                    let plan = state.plan_mut(node.id.raw());
                    plan.idx = idx as u32;
                    plan.advanced_to = slot;
                    plan.seq += 1;
                }
                for idx in 0..self.nodes.len() {
                    let id = self.nodes[idx].id.raw();
                    Self::plan_node(state, &mut self.nodes, id, end);
                }
            }
            // Oblivious static protocols ignore successes by contract:
            // their committed send samples remain valid and observe() —
            // a no-op — is skipped.
        } else if k > 0 {
            // Unsuccessful senders (collision or jammed) just continue
            // their schedules from the consumed position.
            for &idx in &self.broadcasters {
                let id = self.nodes[idx as usize].id.raw();
                Self::plan_node(state, &mut self.nodes, id, end);
            }
        }

        // 6. History, trace, observer.
        self.history.record(feedback, inject, jam);
        let rec = SlotRecord {
            arrivals: inject,
            broadcasters: k,
            jammed: jam,
            active: population > 0,
            population,
            outcome,
        };
        if store && self.config.record_slots {
            self.trace.push_slot(rec);
        } else {
            self.trace.note_slot(&rec);
        }
        if let Some(f) = observe.as_deref_mut() {
            f(slot, &rec);
        }
        self.current_slot = slot;
    }
}
