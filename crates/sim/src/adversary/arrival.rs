//! Arrival processes: when Eve injects new nodes.
//!
//! These mirror the arrival patterns studied in the contention-resolution
//! literature: a single batch (the classical "n nodes wake up together"
//! scenario), statistical arrivals (Poisson), adversarial bursts, fully
//! scripted schedules, uniformly random injections over a horizon (the
//! "random-injected" nodes of Lemma 4.1), and a saturating process that keeps
//! a target backlog alive using only public information.

use std::collections::BTreeMap;

use rand::Rng;
use rand::RngCore;

use crate::history::PublicHistory;

/// An arrival process's promise about its next injection, queried by the
/// sparse execution engine (see
/// [`Forecast`](crate::adversary::Forecast)).
///
/// A non-[`Unknown`](ArrivalForecast::Unknown) answer promises that the
/// process injects nothing strictly before the named slot *and* that
/// skipping the intermediate [`arrivals`](ArrivalProcess::arrivals) calls
/// does not change its behaviour (its state must be a pure function of
/// the slots at which it actually fires).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalForecast {
    /// Cannot promise anything (randomized or history-driven); the full
    /// adversary must be consulted every slot.
    Unknown,
    /// No injections at the queried slot or ever after.
    Never,
    /// The next slot (≥ the queried slot) at which an injection may
    /// happen; [`arrivals`](ArrivalProcess::arrivals) must run there.
    At(u64),
}

/// Decides how many nodes to inject at each slot.
///
/// Arrival processes see the same public history as the full adversary, so
/// adaptive arrivals (e.g. injecting right after a success) are expressible.
pub trait ArrivalProcess {
    /// Number of nodes to inject at the beginning of `slot` (1-based).
    fn arrivals(&mut self, slot: u64, history: &PublicHistory, rng: &mut dyn RngCore) -> u32;

    /// `true` once no further injections will ever happen.
    fn exhausted(&self) -> bool {
        false
    }

    /// Forecast the next injection at or after slot `from` (see
    /// [`ArrivalForecast`]). Conservative default:
    /// [`ArrivalForecast::Unknown`].
    fn next_arrival(&self, from: u64) -> ArrivalForecast {
        let _ = from;
        ArrivalForecast::Unknown
    }

    /// Short name for reports.
    fn name(&self) -> &'static str {
        "arrivals"
    }

    /// Checkpoint hook: a boxed deep copy of this process's current state,
    /// or `None` (the default) when it is not snapshot-capable. The copy
    /// must continue bit-identically to the original.
    fn try_clone_box(&self) -> Option<Box<dyn ArrivalProcess + Send>> {
        None
    }
}

/// Boxed arrival processes delegate, so spec-driven scenario tables can
/// compose `Box<dyn ArrivalProcess>` halves into a
/// [`CompositeAdversary`](crate::adversary::CompositeAdversary).
impl ArrivalProcess for Box<dyn ArrivalProcess> {
    fn arrivals(&mut self, slot: u64, history: &PublicHistory, rng: &mut dyn RngCore) -> u32 {
        (**self).arrivals(slot, history, rng)
    }

    fn exhausted(&self) -> bool {
        (**self).exhausted()
    }

    fn next_arrival(&self, from: u64) -> ArrivalForecast {
        (**self).next_arrival(from)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn try_clone_box(&self) -> Option<Box<dyn ArrivalProcess + Send>> {
        (**self).try_clone_box()
    }
}

/// `Send`-bounded boxes delegate too (checkpoint clones use this shape).
impl ArrivalProcess for Box<dyn ArrivalProcess + Send> {
    fn arrivals(&mut self, slot: u64, history: &PublicHistory, rng: &mut dyn RngCore) -> u32 {
        (**self).arrivals(slot, history, rng)
    }

    fn exhausted(&self) -> bool {
        (**self).exhausted()
    }

    fn next_arrival(&self, from: u64) -> ArrivalForecast {
        (**self).next_arrival(from)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn try_clone_box(&self) -> Option<Box<dyn ArrivalProcess + Send>> {
        (**self).try_clone_box()
    }
}

/// No arrivals at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoArrivals;

impl ArrivalProcess for NoArrivals {
    fn arrivals(&mut self, _: u64, _: &PublicHistory, _: &mut dyn RngCore) -> u32 {
        0
    }

    fn exhausted(&self) -> bool {
        true
    }

    fn next_arrival(&self, _: u64) -> ArrivalForecast {
        ArrivalForecast::Never
    }

    fn name(&self) -> &'static str {
        "none"
    }

    fn try_clone_box(&self) -> Option<Box<dyn ArrivalProcess + Send>> {
        Some(Box::new(*self))
    }
}

/// Inject `count` nodes at slot `at`, nothing else — the batch scenario.
#[derive(Debug, Clone, Copy)]
pub struct BatchArrival {
    at: u64,
    count: u32,
    done: bool,
}

impl BatchArrival {
    /// A batch of `count` nodes at slot `at` (1-based).
    pub fn new(at: u64, count: u32) -> Self {
        BatchArrival {
            at,
            count,
            done: false,
        }
    }

    /// Convenience: batch at slot 1.
    pub fn at_start(count: u32) -> Self {
        Self::new(1, count)
    }
}

impl ArrivalProcess for BatchArrival {
    fn arrivals(&mut self, slot: u64, _: &PublicHistory, _: &mut dyn RngCore) -> u32 {
        if !self.done && slot == self.at {
            self.done = true;
            self.count
        } else {
            if slot > self.at {
                self.done = true;
            }
            0
        }
    }

    fn exhausted(&self) -> bool {
        self.done
    }

    fn next_arrival(&self, from: u64) -> ArrivalForecast {
        if self.done || from > self.at {
            ArrivalForecast::Never
        } else {
            ArrivalForecast::At(self.at)
        }
    }

    fn name(&self) -> &'static str {
        "batch"
    }

    fn try_clone_box(&self) -> Option<Box<dyn ArrivalProcess + Send>> {
        Some(Box::new(*self))
    }
}

/// Poisson arrivals with a fixed expected rate per slot (statistical model).
///
/// Sampled by inversion with a hard cap to keep a single slot's injection
/// bounded (the cap is astronomically unlikely to bind for sane rates).
#[derive(Debug, Clone, Copy)]
pub struct PoissonArrival {
    rate: f64,
    /// Stop injecting after this slot (`u64::MAX` = never stop).
    horizon: u64,
}

impl PoissonArrival {
    /// Poisson process with mean `rate` arrivals per slot, forever.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or not finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "rate must be finite and non-negative"
        );
        PoissonArrival {
            rate,
            horizon: u64::MAX,
        }
    }

    /// Stop injecting after `horizon` slots.
    pub fn with_horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon;
        self
    }

    fn sample(&self, rng: &mut dyn RngCore) -> u32 {
        // Knuth's algorithm; fine for small rates used in experiments.
        let l = (-self.rate).exp();
        let mut k = 0u32;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen::<f64>();
            if p <= l || k >= 10_000 {
                return k;
            }
            k += 1;
        }
    }
}

impl ArrivalProcess for PoissonArrival {
    fn arrivals(&mut self, slot: u64, _: &PublicHistory, rng: &mut dyn RngCore) -> u32 {
        if slot > self.horizon || self.rate == 0.0 {
            0
        } else {
            self.sample(rng)
        }
    }

    fn exhausted(&self) -> bool {
        self.rate == 0.0
    }

    fn name(&self) -> &'static str {
        "poisson"
    }

    fn try_clone_box(&self) -> Option<Box<dyn ArrivalProcess + Send>> {
        Some(Box::new(*self))
    }
}

/// Periodic bursts: `size` nodes every `period` slots, starting at `phase`,
/// for at most `bursts` bursts.
#[derive(Debug, Clone, Copy)]
pub struct BurstyArrival {
    period: u64,
    phase: u64,
    size: u32,
    bursts_left: u64,
}

impl BurstyArrival {
    /// `size` nodes at slots `phase, phase+period, …` for `bursts` bursts.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `phase == 0`.
    pub fn new(period: u64, phase: u64, size: u32, bursts: u64) -> Self {
        assert!(period > 0, "period must be positive");
        assert!(phase > 0, "phase must be positive (slots are 1-based)");
        BurstyArrival {
            period,
            phase,
            size,
            bursts_left: bursts,
        }
    }
}

impl ArrivalProcess for BurstyArrival {
    fn arrivals(&mut self, slot: u64, _: &PublicHistory, _: &mut dyn RngCore) -> u32 {
        if self.bursts_left == 0 || slot < self.phase {
            return 0;
        }
        if (slot - self.phase).is_multiple_of(self.period) {
            self.bursts_left -= 1;
            self.size
        } else {
            0
        }
    }

    fn exhausted(&self) -> bool {
        self.bursts_left == 0
    }

    fn next_arrival(&self, from: u64) -> ArrivalForecast {
        if self.bursts_left == 0 {
            return ArrivalForecast::Never;
        }
        let next = if from <= self.phase {
            self.phase
        } else {
            self.phase + (from - self.phase).div_ceil(self.period) * self.period
        };
        ArrivalForecast::At(next)
    }

    fn name(&self) -> &'static str {
        "bursty"
    }

    fn try_clone_box(&self) -> Option<Box<dyn ArrivalProcess + Send>> {
        Some(Box::new(*self))
    }
}

/// Fully scripted arrivals: an explicit slot → count map.
#[derive(Debug, Clone, Default)]
pub struct ScriptedArrival {
    script: BTreeMap<u64, u32>,
    max_slot: u64,
}

impl ScriptedArrival {
    /// Build from `(slot, count)` pairs; duplicate slots accumulate.
    pub fn new<I: IntoIterator<Item = (u64, u32)>>(pairs: I) -> Self {
        let mut script = BTreeMap::new();
        let mut max_slot = 0;
        for (slot, count) in pairs {
            *script.entry(slot).or_insert(0) += count;
            max_slot = max_slot.max(slot);
        }
        ScriptedArrival { script, max_slot }
    }

    /// Total scripted arrivals.
    pub fn total(&self) -> u64 {
        self.script.values().map(|&c| u64::from(c)).sum()
    }

    /// The last slot with a scripted arrival (0 if the script is empty).
    pub fn last_slot(&self) -> u64 {
        self.max_slot
    }
}

impl ArrivalProcess for ScriptedArrival {
    fn arrivals(&mut self, slot: u64, _: &PublicHistory, _: &mut dyn RngCore) -> u32 {
        self.script.get(&slot).copied().unwrap_or(0)
    }

    fn exhausted(&self) -> bool {
        // Conservative: scripted processes don't track the current slot, so
        // only a truly empty script reports exhaustion. `BudgetedAdversary`
        // or `run_for` bound the run anyway.
        self.script.is_empty()
    }

    fn next_arrival(&self, from: u64) -> ArrivalForecast {
        match self.script.range(from..).next() {
            Some((&slot, _)) => ArrivalForecast::At(slot),
            None => ArrivalForecast::Never,
        }
    }

    fn name(&self) -> &'static str {
        "scripted"
    }

    fn try_clone_box(&self) -> Option<Box<dyn ArrivalProcess + Send>> {
        Some(Box::new(self.clone()))
    }
}

/// `total` nodes injected at slots chosen independently and uniformly at
/// random from `[1, horizon]` — the "random-injected" nodes in the proof of
/// Lemma 4.1.
///
/// Implemented by thinning: each slot `s ≤ horizon` draws
/// `Binomial(remaining, 1/(horizon-s+1))` via sequential Bernoulli draws on
/// the remaining budget, which reproduces the uniform allocation exactly.
#[derive(Debug, Clone, Copy)]
pub struct UniformRandomArrival {
    remaining: u64,
    horizon: u64,
}

impl UniformRandomArrival {
    /// `total` nodes spread uniformly over slots `1..=horizon`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0`.
    pub fn new(total: u64, horizon: u64) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        UniformRandomArrival {
            remaining: total,
            horizon,
        }
    }
}

impl ArrivalProcess for UniformRandomArrival {
    fn arrivals(&mut self, slot: u64, _: &PublicHistory, rng: &mut dyn RngCore) -> u32 {
        if slot > self.horizon || self.remaining == 0 {
            return 0;
        }
        let slots_left = self.horizon - slot + 1;
        if slots_left == 1 {
            let k = self.remaining.min(u64::from(u32::MAX)) as u32;
            self.remaining -= u64::from(k);
            return k;
        }
        let p = 1.0 / slots_left as f64;
        let mut k = 0u32;
        // Binomial(remaining, p) by Bernoulli thinning; `remaining` is small
        // in every experiment (≤ millions), and p is tiny, so this is cheap
        // in expectation (E[k] = remaining/slots_left).
        let n = self.remaining;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                k += 1;
            }
        }
        self.remaining -= u64::from(k);
        k
    }

    fn exhausted(&self) -> bool {
        self.remaining == 0
    }

    fn name(&self) -> &'static str {
        "uniform-random"
    }

    fn try_clone_box(&self) -> Option<Box<dyn ArrivalProcess + Send>> {
        Some(Box::new(*self))
    }
}

/// Keeps the system saturated: tops the backlog up to `target` whenever the
/// publicly inferable backlog (injections − successes) falls below it.
///
/// This is the canonical "adversarial full-load" arrival pattern for
/// throughput experiments: the channel never starves, so active slots are
/// maximal and the classical throughput `n_t / a_t` is meaningful.
#[derive(Debug, Clone, Copy)]
pub struct SaturatedArrival {
    target: u64,
    /// Optional cap on total injections (`u64::MAX` = unlimited).
    budget: u64,
    injected: u64,
    /// Stop injecting after this slot.
    horizon: u64,
}

impl SaturatedArrival {
    /// Keep `target` nodes outstanding, forever.
    pub fn new(target: u64) -> Self {
        SaturatedArrival {
            target,
            budget: u64::MAX,
            injected: 0,
            horizon: u64::MAX,
        }
    }

    /// Cap total injections at `budget` nodes.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Stop injecting after `horizon` slots.
    pub fn with_horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Nodes injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

impl ArrivalProcess for SaturatedArrival {
    fn arrivals(&mut self, slot: u64, history: &PublicHistory, _: &mut dyn RngCore) -> u32 {
        if slot > self.horizon || self.injected >= self.budget {
            return 0;
        }
        let backlog = history.backlog();
        if backlog >= self.target {
            return 0;
        }
        let want = self.target - backlog;
        let allowed = (self.budget - self.injected)
            .min(want)
            .min(u64::from(u32::MAX));
        self.injected += allowed;
        allowed as u32
    }

    fn exhausted(&self) -> bool {
        self.injected >= self.budget
    }

    fn name(&self) -> &'static str {
        "saturated"
    }

    fn try_clone_box(&self) -> Option<Box<dyn ArrivalProcess + Send>> {
        Some(Box::new(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(12345)
    }

    #[test]
    fn batch_fires_once() {
        let mut a = BatchArrival::new(3, 10);
        let h = PublicHistory::new();
        let mut r = rng();
        assert_eq!(a.arrivals(1, &h, &mut r), 0);
        assert!(!a.exhausted());
        assert_eq!(a.arrivals(2, &h, &mut r), 0);
        assert_eq!(a.arrivals(3, &h, &mut r), 10);
        assert!(a.exhausted());
        assert_eq!(a.arrivals(4, &h, &mut r), 0);
    }

    #[test]
    fn batch_at_start() {
        let mut a = BatchArrival::at_start(5);
        let h = PublicHistory::new();
        let mut r = rng();
        assert_eq!(a.arrivals(1, &h, &mut r), 5);
        assert!(a.exhausted());
    }

    #[test]
    fn poisson_mean_is_rate() {
        let mut a = PoissonArrival::new(0.5);
        let h = PublicHistory::new();
        let mut r = rng();
        let total: u64 = (1..=20_000)
            .map(|s| u64::from(a.arrivals(s, &h, &mut r)))
            .sum();
        let mean = total as f64 / 20_000.0;
        assert!(
            (mean - 0.5).abs() < 0.05,
            "poisson mean {mean} far from 0.5"
        );
    }

    #[test]
    fn poisson_horizon_stops() {
        let mut a = PoissonArrival::new(5.0).with_horizon(10);
        let h = PublicHistory::new();
        let mut r = rng();
        for s in 11..100 {
            assert_eq!(a.arrivals(s, &h, &mut r), 0);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be finite")]
    fn poisson_rejects_negative_rate() {
        let _ = PoissonArrival::new(-1.0);
    }

    #[test]
    fn bursty_schedule() {
        let mut a = BurstyArrival::new(5, 2, 3, 2);
        let h = PublicHistory::new();
        let mut r = rng();
        let got: Vec<u32> = (1..=12).map(|s| a.arrivals(s, &h, &mut r)).collect();
        assert_eq!(got, vec![0, 3, 0, 0, 0, 0, 3, 0, 0, 0, 0, 0]);
        assert!(a.exhausted());
    }

    #[test]
    fn scripted_accumulates_duplicates() {
        let mut a = ScriptedArrival::new([(2, 1), (2, 2), (5, 4)]);
        assert_eq!(a.total(), 7);
        assert_eq!(a.last_slot(), 5);
        let h = PublicHistory::new();
        let mut r = rng();
        assert_eq!(a.arrivals(2, &h, &mut r), 3);
        assert_eq!(a.arrivals(3, &h, &mut r), 0);
        assert_eq!(a.arrivals(5, &h, &mut r), 4);
    }

    #[test]
    fn uniform_random_injects_exact_total() {
        let mut a = UniformRandomArrival::new(250, 1000);
        let h = PublicHistory::new();
        let mut r = rng();
        let total: u64 = (1..=1000)
            .map(|s| u64::from(a.arrivals(s, &h, &mut r)))
            .sum();
        assert_eq!(total, 250);
        assert!(a.exhausted());
    }

    #[test]
    fn uniform_random_dumps_remainder_at_horizon() {
        let mut a = UniformRandomArrival::new(5, 1);
        let h = PublicHistory::new();
        let mut r = rng();
        assert_eq!(a.arrivals(1, &h, &mut r), 5);
        assert!(a.exhausted());
    }

    #[test]
    fn saturated_tracks_backlog() {
        let mut a = SaturatedArrival::new(3).with_budget(5);
        let mut h = PublicHistory::new();
        let mut r = rng();
        // Slot 1: backlog 0 -> inject 3.
        assert_eq!(a.arrivals(1, &h, &mut r), 3);
        h.record(crate::slot::Feedback::NoSuccess, 3, false);
        // Slot 2: backlog 3 -> inject 0.
        assert_eq!(a.arrivals(2, &h, &mut r), 0);
        // A success frees one; budget has 2 left.
        h.record(
            crate::slot::Feedback::Success(crate::node::NodeId::new(0)),
            0,
            false,
        );
        assert_eq!(a.arrivals(3, &h, &mut r), 1);
        assert_eq!(a.injected(), 4);
        assert!(!a.exhausted());
    }

    #[test]
    fn saturated_respects_budget() {
        let mut a = SaturatedArrival::new(100).with_budget(10);
        let h = PublicHistory::new();
        let mut r = rng();
        assert_eq!(a.arrivals(1, &h, &mut r), 10);
        assert!(a.exhausted());
        assert_eq!(a.arrivals(2, &h, &mut r), 0);
    }

    #[test]
    fn no_arrivals_is_exhausted() {
        let mut a = NoArrivals;
        let h = PublicHistory::new();
        let mut r = rng();
        assert_eq!(a.arrivals(1, &h, &mut r), 0);
        assert!(a.exhausted());
    }
}
