//! Budget enforcement: cap cumulative injections and jams against the
//! `n_t`/`d_t` budgets of Definition 1.1.
//!
//! The (f,g)-throughput definition only constrains the *algorithm*; the
//! adversary may do anything. But the interesting regime — where the bound
//! `a_t ≤ n_t·f(t) + d_t·g(t)` is non-trivial (< t) — requires
//! `n_t = O(t/f(t))` and `d_t = O(t/g(t))`. [`BudgetedAdversary`] wraps any
//! adversary and clamps its decisions to such curves, so experiments can
//! drive the system exactly at the critical load.

use std::sync::Arc;

use rand::RngCore;

use crate::adversary::{Adversary, SlotDecision};
use crate::history::PublicHistory;

/// A cumulative injection budget: at most `curve(t)` nodes in slots `1..=t`.
///
/// The curve is shared behind an [`Arc`] so budgets are cheaply cloneable
/// for checkpoints; it is pure (`Fn`), so sharing never changes behaviour.
#[derive(Clone)]
pub struct ArrivalBudget {
    curve: Arc<dyn Fn(u64) -> f64 + Send + Sync>,
    used: u64,
}

impl ArrivalBudget {
    /// Budget defined by an arbitrary non-decreasing curve.
    pub fn new(curve: impl Fn(u64) -> f64 + Send + Sync + 'static) -> Self {
        ArrivalBudget {
            curve: Arc::new(curve),
            used: 0,
        }
    }

    /// Unlimited budget.
    pub fn unlimited() -> Self {
        Self::new(|_| f64::INFINITY)
    }

    /// How many more injections are allowed by slot `t`.
    pub fn headroom(&self, t: u64) -> u64 {
        let cap = (self.curve)(t);
        if cap.is_infinite() {
            return u64::MAX;
        }
        let cap = cap.max(0.0).floor() as u64;
        cap.saturating_sub(self.used)
    }

    /// Consume `n` units.
    pub fn consume(&mut self, n: u64) {
        self.used += n;
    }

    /// Units consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Whether the budget can never admit another injection, at any future
    /// slot. Budget curves are non-decreasing in `t` (Definition 1.1), so
    /// evaluating the headroom at the end of time is the supremum: if even
    /// `t = u64::MAX` leaves no headroom, the budget is spent forever.
    ///
    /// A curve that is not defined that far out (NaN) gets the
    /// conservative answer `false` — claiming exhaustion wrongly would
    /// silently truncate `run_until_drained` experiments, while the
    /// reverse merely runs to the slot limit.
    pub fn exhausted(&self) -> bool {
        !(self.curve)(u64::MAX).is_nan() && self.headroom(u64::MAX) == 0
    }
}

impl std::fmt::Debug for ArrivalBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrivalBudget")
            .field("used", &self.used)
            .finish()
    }
}

/// A cumulative jamming budget: at most `curve(t)` jams in slots `1..=t`.
///
/// Cheaply cloneable for checkpoints, like [`ArrivalBudget`].
#[derive(Clone)]
pub struct JamBudget {
    curve: Arc<dyn Fn(u64) -> f64 + Send + Sync>,
    used: u64,
}

impl JamBudget {
    /// Budget defined by an arbitrary non-decreasing curve.
    pub fn new(curve: impl Fn(u64) -> f64 + Send + Sync + 'static) -> Self {
        JamBudget {
            curve: Arc::new(curve),
            used: 0,
        }
    }

    /// Unlimited budget.
    pub fn unlimited() -> Self {
        Self::new(|_| f64::INFINITY)
    }

    /// Whether one more jam is allowed by slot `t`.
    pub fn allows(&self, t: u64) -> bool {
        let cap = (self.curve)(t);
        cap.is_infinite() || ((self.used + 1) as f64) <= cap.max(0.0)
    }

    /// Consume one jam.
    pub fn consume(&mut self) {
        self.used += 1;
    }

    /// Jams used so far.
    pub fn used(&self) -> u64 {
        self.used
    }
}

impl std::fmt::Debug for JamBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JamBudget")
            .field("used", &self.used)
            .finish()
    }
}

/// Wraps an adversary, clamping its decisions to cumulative budgets.
pub struct BudgetedAdversary<Inner> {
    inner: Inner,
    arrivals: ArrivalBudget,
    jams: JamBudget,
}

impl<Inner: Adversary> BudgetedAdversary<Inner> {
    /// Clamp `inner` to the given budgets.
    pub fn new(inner: Inner, arrivals: ArrivalBudget, jams: JamBudget) -> Self {
        BudgetedAdversary {
            inner,
            arrivals,
            jams,
        }
    }

    /// Injections actually performed.
    pub fn injections_used(&self) -> u64 {
        self.arrivals.used()
    }

    /// Jams actually performed.
    pub fn jams_used(&self) -> u64 {
        self.jams.used()
    }

    /// The wrapped adversary.
    pub fn inner(&self) -> &Inner {
        &self.inner
    }
}

impl<Inner: Adversary> Adversary for BudgetedAdversary<Inner> {
    fn decide(
        &mut self,
        slot: u64,
        history: &PublicHistory,
        rng: &mut dyn RngCore,
    ) -> SlotDecision {
        let raw = self.inner.decide(slot, history, rng);
        let inject = u64::from(raw.inject).min(self.arrivals.headroom(slot)) as u32;
        self.arrivals.consume(u64::from(inject));
        let jam = raw.jam && self.jams.allows(slot);
        if jam {
            self.jams.consume();
        }
        SlotDecision { jam, inject }
    }

    fn exhausted(&self) -> bool {
        // Exhausted when the inner adversary is spent *or* the arrival
        // budget can never admit another node: a never-exhausted inner
        // under a fully-consumed budget will still never inject again, and
        // `run_until_drained` must be able to detect that quiescence.
        self.inner.exhausted() || self.arrivals.exhausted()
    }

    fn name(&self) -> &'static str {
        "budgeted"
    }

    fn try_clone_box(&self) -> Option<Box<dyn Adversary + Send>> {
        let inner = self.inner.try_clone_box()?;
        Some(Box::new(BudgetedAdversary {
            inner,
            arrivals: self.arrivals.clone(),
            jams: self.jams.clone(),
        }))
    }
}

impl<Inner: std::fmt::Debug> std::fmt::Debug for BudgetedAdversary<Inner> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BudgetedAdversary")
            .field("inner", &self.inner)
            .field("arrivals", &self.arrivals)
            .field("jams", &self.jams)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::FnAdversary;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn arrival_budget_headroom() {
        let mut b = ArrivalBudget::new(|t| t as f64 / 2.0);
        assert_eq!(b.headroom(4), 2);
        b.consume(2);
        assert_eq!(b.headroom(4), 0);
        assert_eq!(b.headroom(10), 3);
        assert_eq!(b.used(), 2);
    }

    #[test]
    fn arrival_budget_unlimited() {
        let b = ArrivalBudget::unlimited();
        assert_eq!(b.headroom(1), u64::MAX);
    }

    #[test]
    fn jam_budget_allows_and_consumes() {
        let mut b = JamBudget::new(|t| (t as f64 / 4.0).floor());
        assert!(!b.allows(3)); // cap(3) = 0
        assert!(b.allows(4)); // cap = 1
        b.consume();
        assert!(!b.allows(4));
        assert!(b.allows(8));
        assert_eq!(b.used(), 1);
    }

    #[test]
    fn budgeted_clamps_greedy_adversary() {
        let greedy = FnAdversary::new("greedy", |_s, _h, _r| SlotDecision {
            jam: true,
            inject: 100,
        });
        let mut adv = BudgetedAdversary::new(
            greedy,
            ArrivalBudget::new(|t| t as f64), // ≤ t injections by slot t
            JamBudget::new(|t| t as f64 / 2.0), // ≤ t/2 jams
        );
        let h = PublicHistory::new();
        let mut r = SmallRng::seed_from_u64(0);
        let d1 = adv.decide(1, &h, &mut r);
        assert_eq!(d1.inject, 1); // clamped to budget 1
        assert!(!d1.jam); // jam cap at t=1 is 0.5 -> not allowed
        let d2 = adv.decide(2, &h, &mut r);
        assert_eq!(d2.inject, 1);
        assert!(d2.jam); // cap(2) = 1
        assert_eq!(adv.injections_used(), 2);
        assert_eq!(adv.jams_used(), 1);
    }

    #[test]
    fn arrival_budget_exhaustion() {
        // Unlimited and linear curves never exhaust.
        assert!(!ArrivalBudget::unlimited().exhausted());
        let mut linear = ArrivalBudget::new(|t| t as f64);
        linear.consume(1_000_000);
        assert!(!linear.exhausted());
        // A flat cap exhausts exactly when fully consumed.
        let mut flat = ArrivalBudget::new(|_| 3.0);
        assert!(!flat.exhausted());
        flat.consume(3);
        assert!(flat.exhausted());
        // A curve undefined at the end-of-time probe (NaN) must answer
        // conservatively: not exhausted (never truncate a run wrongly).
        let weird = ArrivalBudget::new(|t| (1e18 - t as f64).sqrt());
        assert!(!weird.exhausted());
    }

    #[test]
    fn consumed_budget_exhausts_never_ending_inner() {
        // Regression: a never-exhausted inner adversary under a fully
        // consumed flat arrival budget must report exhaustion — no
        // injection can ever be admitted again.
        let greedy = FnAdversary::new("greedy", |_s, _h, _r| SlotDecision::inject(1));
        let mut adv =
            BudgetedAdversary::new(greedy, ArrivalBudget::new(|_| 2.0), JamBudget::unlimited());
        let h = PublicHistory::new();
        let mut r = SmallRng::seed_from_u64(0);
        assert!(!adv.exhausted());
        adv.decide(1, &h, &mut r);
        assert!(!adv.exhausted(), "one unit of budget left");
        adv.decide(2, &h, &mut r);
        assert_eq!(adv.injections_used(), 2);
        assert!(adv.exhausted(), "budget spent, inner can never inject");
    }

    #[test]
    fn run_until_drained_detects_spent_budget() {
        // Regression: `run_until_drained` used to spin to the slot limit
        // because `BudgetedAdversary::exhausted` ignored spent budgets.
        use crate::config::SimConfig;
        use crate::engine::{Simulator, StopReason};
        use crate::node::{AlwaysBroadcast, NodeId, Protocol};

        let greedy = FnAdversary::new("greedy", |_s, _h, _r| SlotDecision::inject(1));
        let adv =
            BudgetedAdversary::new(greedy, ArrivalBudget::new(|_| 3.0), JamBudget::unlimited());
        let factory = |_: NodeId| -> Box<dyn Protocol> { Box::new(AlwaysBroadcast) };
        let mut sim = Simulator::new(SimConfig::with_seed(1), factory, adv);
        // One node per slot, alone, delivers immediately: 3 successes and
        // then the system is quiescent forever.
        let reason = sim.run_until_drained(1_000);
        assert_eq!(reason, StopReason::Drained);
        assert_eq!(sim.trace().total_successes(), 3);
        assert!(sim.current_slot() < 10, "drained promptly");
    }

    #[test]
    fn budget_debug_impls() {
        let adv = BudgetedAdversary::new(
            crate::adversary::NullAdversary,
            ArrivalBudget::unlimited(),
            JamBudget::unlimited(),
        );
        let s = format!("{adv:?}");
        assert!(s.contains("BudgetedAdversary"));
        assert!(adv.exhausted());
    }
}
