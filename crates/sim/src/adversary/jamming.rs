//! Jamming strategies: which slots Eve disrupts.
//!
//! A jammed slot always resolves to no-success regardless of how many nodes
//! broadcast. Strategies range from oblivious (random, periodic,
//! front-loaded) to adaptive (reactive bursts triggered by observed
//! successes) — the adaptive ones exercise the "adaptive adversary" clause of
//! the model.

use std::collections::BTreeSet;

use rand::Rng;
use rand::RngCore;

use crate::history::PublicHistory;

/// A jamming strategy's promise about an upcoming slot range, queried by
/// the sparse execution engine (see
/// [`Forecast`](crate::adversary::Forecast)).
///
/// A [`Constant`](JamForecast::Constant) answer promises that the jam
/// state holds for every slot from the queried one through `until`, *and*
/// that skipping the intermediate [`jam`](JammingStrategy::jam) calls does
/// not change the strategy's behaviour (pure function of the slot index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JamForecast {
    /// Cannot promise anything (randomized or history-driven).
    Unknown,
    /// Every slot from the queried one through `until` (inclusive) is
    /// jammed iff `jam`.
    Constant {
        /// Whether the span is jammed.
        jam: bool,
        /// Last slot covered (inclusive; `u64::MAX` = forever).
        until: u64,
    },
}

/// Decides whether to jam each slot.
pub trait JammingStrategy {
    /// Whether to jam global slot `slot` (1-based).
    fn jam(&mut self, slot: u64, history: &PublicHistory, rng: &mut dyn RngCore) -> bool;

    /// Forecast the jam state from slot `from` onwards (see
    /// [`JamForecast`]). Conservative default: [`JamForecast::Unknown`].
    fn jam_span(&self, from: u64) -> JamForecast {
        let _ = from;
        JamForecast::Unknown
    }

    /// Short name for reports.
    fn name(&self) -> &'static str {
        "jamming"
    }

    /// Checkpoint hook: a boxed deep copy of this strategy's current state,
    /// or `None` (the default) when it is not snapshot-capable. The copy
    /// must continue bit-identically to the original.
    fn try_clone_box(&self) -> Option<Box<dyn JammingStrategy + Send>> {
        None
    }
}

/// Boxed jamming strategies delegate, so spec-driven scenario tables can
/// compose `Box<dyn JammingStrategy>` halves into a
/// [`CompositeAdversary`](crate::adversary::CompositeAdversary).
impl JammingStrategy for Box<dyn JammingStrategy> {
    fn jam(&mut self, slot: u64, history: &PublicHistory, rng: &mut dyn RngCore) -> bool {
        (**self).jam(slot, history, rng)
    }

    fn jam_span(&self, from: u64) -> JamForecast {
        (**self).jam_span(from)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn try_clone_box(&self) -> Option<Box<dyn JammingStrategy + Send>> {
        (**self).try_clone_box()
    }
}

/// `Send`-bounded boxes delegate too (checkpoint clones use this shape).
impl JammingStrategy for Box<dyn JammingStrategy + Send> {
    fn jam(&mut self, slot: u64, history: &PublicHistory, rng: &mut dyn RngCore) -> bool {
        (**self).jam(slot, history, rng)
    }

    fn jam_span(&self, from: u64) -> JamForecast {
        (**self).jam_span(from)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn try_clone_box(&self) -> Option<Box<dyn JammingStrategy + Send>> {
        (**self).try_clone_box()
    }
}

/// Never jams.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoJamming;

impl JammingStrategy for NoJamming {
    fn jam(&mut self, _: u64, _: &PublicHistory, _: &mut dyn RngCore) -> bool {
        false
    }

    fn jam_span(&self, _: u64) -> JamForecast {
        JamForecast::Constant {
            jam: false,
            until: u64::MAX,
        }
    }

    fn name(&self) -> &'static str {
        "none"
    }

    fn try_clone_box(&self) -> Option<Box<dyn JammingStrategy + Send>> {
        Some(Box::new(*self))
    }
}

/// Jams each slot independently with probability `p` — the standard
/// "constant fraction of all slots jammed" model (g constant).
#[derive(Debug, Clone, Copy)]
pub struct RandomJamming {
    p: f64,
}

impl RandomJamming {
    /// Jam with probability `p` per slot.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        RandomJamming { p }
    }

    /// The per-slot jamming probability.
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl JammingStrategy for RandomJamming {
    fn jam(&mut self, _: u64, _: &PublicHistory, rng: &mut dyn RngCore) -> bool {
        self.p > 0.0 && rng.gen::<f64>() < self.p
    }

    fn name(&self) -> &'static str {
        "random"
    }

    fn try_clone_box(&self) -> Option<Box<dyn JammingStrategy + Send>> {
        Some(Box::new(*self))
    }
}

/// Jams every `period`-th slot (slots where `(slot - phase) % period == 0`).
#[derive(Debug, Clone, Copy)]
pub struct PeriodicJamming {
    period: u64,
    phase: u64,
}

impl PeriodicJamming {
    /// Jam slots `phase, phase+period, …`.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `phase == 0`.
    pub fn new(period: u64, phase: u64) -> Self {
        assert!(period > 0, "period must be positive");
        assert!(phase > 0, "phase must be positive (slots are 1-based)");
        PeriodicJamming { period, phase }
    }
}

impl JammingStrategy for PeriodicJamming {
    fn jam(&mut self, slot: u64, _: &PublicHistory, _: &mut dyn RngCore) -> bool {
        slot >= self.phase && (slot - self.phase).is_multiple_of(self.period)
    }

    fn jam_span(&self, from: u64) -> JamForecast {
        if from >= self.phase && (from - self.phase).is_multiple_of(self.period) {
            return JamForecast::Constant {
                jam: true,
                until: from,
            };
        }
        let next = if from < self.phase {
            self.phase
        } else {
            self.phase + (from - self.phase).div_ceil(self.period) * self.period
        };
        JamForecast::Constant {
            jam: false,
            until: next - 1,
        }
    }

    fn name(&self) -> &'static str {
        "periodic"
    }

    fn try_clone_box(&self) -> Option<Box<dyn JammingStrategy + Send>> {
        Some(Box::new(*self))
    }
}

/// Jams every slot in `[1, until]` — the prefix-jamming attack that defeats
/// plain exponential backoff (a single node's sending probability decays
/// while it is jammed; see Section 2, "Achieving jamming resistance", and the
/// lower-bound constructions of Section 4).
#[derive(Debug, Clone, Copy)]
pub struct FrontLoadedJamming {
    until: u64,
}

impl FrontLoadedJamming {
    /// Jam slots `1..=until`.
    pub fn new(until: u64) -> Self {
        FrontLoadedJamming { until }
    }
}

impl JammingStrategy for FrontLoadedJamming {
    fn jam(&mut self, slot: u64, _: &PublicHistory, _: &mut dyn RngCore) -> bool {
        slot <= self.until
    }

    fn jam_span(&self, from: u64) -> JamForecast {
        if from <= self.until {
            JamForecast::Constant {
                jam: true,
                until: self.until,
            }
        } else {
            JamForecast::Constant {
                jam: false,
                until: u64::MAX,
            }
        }
    }

    fn name(&self) -> &'static str {
        "front-loaded"
    }

    fn try_clone_box(&self) -> Option<Box<dyn JammingStrategy + Send>> {
        Some(Box::new(*self))
    }
}

/// Adaptive strategy: after every observed success, jam the next `burst`
/// slots (trying to break the synchronization that successes provide to the
/// paper's algorithm). A per-burst budget check is the caller's job (wrap in
/// [`super::BudgetedAdversary`]).
#[derive(Debug, Clone, Copy)]
pub struct ReactiveJamming {
    burst: u64,
    remaining_burst: u64,
}

impl ReactiveJamming {
    /// Jam `burst` slots after each success.
    pub fn new(burst: u64) -> Self {
        ReactiveJamming {
            burst,
            remaining_burst: 0,
        }
    }
}

impl JammingStrategy for ReactiveJamming {
    fn jam(&mut self, _: u64, history: &PublicHistory, _: &mut dyn RngCore) -> bool {
        if history.last_feedback().is_some_and(|fb| fb.is_success()) {
            self.remaining_burst = self.burst;
        }
        if self.remaining_burst > 0 {
            self.remaining_burst -= 1;
            true
        } else {
            false
        }
    }

    fn name(&self) -> &'static str {
        "reactive"
    }

    fn try_clone_box(&self) -> Option<Box<dyn JammingStrategy + Send>> {
        Some(Box::new(*self))
    }
}

/// Two-state Markov (Gilbert–Elliott) jamming: bursts of interference.
///
/// The channel alternates between a *good* state (jam probability
/// `p_good`, usually 0) and a *bad* state (jam probability `p_bad`,
/// usually close to 1). Transitions happen per slot with probabilities
/// `good_to_bad` and `bad_to_good`. This is the standard bursty-loss model
/// for wireless links and gives experiments a realistic alternative to
/// i.i.d. jamming: the same average jam rate, but concentrated — much
/// closer to the adversarial patterns the lower bounds use.
#[derive(Debug, Clone, Copy)]
pub struct GilbertElliottJamming {
    good_to_bad: f64,
    bad_to_good: f64,
    p_good: f64,
    p_bad: f64,
    in_bad: bool,
}

impl GilbertElliottJamming {
    /// Build the chain; starts in the good state.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(good_to_bad: f64, bad_to_good: f64, p_good: f64, p_bad: f64) -> Self {
        for (name, p) in [
            ("good_to_bad", good_to_bad),
            ("bad_to_good", bad_to_good),
            ("p_good", p_good),
            ("p_bad", p_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0,1]");
        }
        GilbertElliottJamming {
            good_to_bad,
            bad_to_good,
            p_good,
            p_bad,
            in_bad: false,
        }
    }

    /// Convenience: bursts averaging `burst_len` slots arriving so that the
    /// long-run jammed fraction is `fraction`; jams always in the bad
    /// state, never in the good state.
    ///
    /// # Panics
    ///
    /// Panics if `burst_len < 1`, or `fraction` not in `[0, 1)`.
    pub fn bursts(fraction: f64, burst_len: f64) -> Self {
        assert!(burst_len >= 1.0, "burst_len must be >= 1");
        assert!((0.0..1.0).contains(&fraction), "fraction must be in [0,1)");
        let bad_to_good = 1.0 / burst_len;
        // Stationary P(bad) = g2b / (g2b + b2g) = fraction.
        let good_to_bad = if fraction == 0.0 {
            0.0
        } else {
            (bad_to_good * fraction / (1.0 - fraction)).min(1.0)
        };
        Self::new(good_to_bad, bad_to_good, 0.0, 1.0)
    }

    /// Whether the chain is currently in the bad state.
    pub fn is_bad(&self) -> bool {
        self.in_bad
    }
}

impl JammingStrategy for GilbertElliottJamming {
    fn jam(&mut self, _: u64, _: &PublicHistory, rng: &mut dyn RngCore) -> bool {
        // Transition first, then emit.
        let flip: f64 = rng.gen();
        if self.in_bad {
            if flip < self.bad_to_good {
                self.in_bad = false;
            }
        } else if flip < self.good_to_bad {
            self.in_bad = true;
        }
        let p = if self.in_bad { self.p_bad } else { self.p_good };
        p > 0.0 && (p >= 1.0 || rng.gen::<f64>() < p)
    }

    fn name(&self) -> &'static str {
        "gilbert-elliott"
    }

    fn try_clone_box(&self) -> Option<Box<dyn JammingStrategy + Send>> {
        Some(Box::new(*self))
    }
}

/// Jams exactly the scripted set of slots.
#[derive(Debug, Clone, Default)]
pub struct ScriptedJamming {
    slots: BTreeSet<u64>,
}

impl ScriptedJamming {
    /// Jam exactly the given slots.
    pub fn new<I: IntoIterator<Item = u64>>(slots: I) -> Self {
        ScriptedJamming {
            slots: slots.into_iter().collect(),
        }
    }

    /// Number of scripted slots.
    pub fn count(&self) -> usize {
        self.slots.len()
    }
}

impl JammingStrategy for ScriptedJamming {
    fn jam(&mut self, slot: u64, _: &PublicHistory, _: &mut dyn RngCore) -> bool {
        self.slots.contains(&slot)
    }

    fn jam_span(&self, from: u64) -> JamForecast {
        if self.slots.contains(&from) {
            return JamForecast::Constant {
                jam: true,
                until: from,
            };
        }
        match self.slots.range(from..).next() {
            Some(&next) => JamForecast::Constant {
                jam: false,
                until: next - 1,
            },
            None => JamForecast::Constant {
                jam: false,
                until: u64::MAX,
            },
        }
    }

    fn name(&self) -> &'static str {
        "scripted"
    }

    fn try_clone_box(&self) -> Option<Box<dyn JammingStrategy + Send>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::slot::Feedback;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(777)
    }

    #[test]
    fn random_jamming_frequency() {
        let mut j = RandomJamming::new(0.25);
        let h = PublicHistory::new();
        let mut r = rng();
        let count = (1..=40_000).filter(|&s| j.jam(s, &h, &mut r)).count();
        let frac = count as f64 / 40_000.0;
        assert!((frac - 0.25).abs() < 0.02, "fraction {frac} far from 0.25");
        assert_eq!(j.probability(), 0.25);
    }

    #[test]
    fn random_jamming_zero_never_one_always() {
        let h = PublicHistory::new();
        let mut r = rng();
        let mut never = RandomJamming::new(0.0);
        let mut always = RandomJamming::new(1.0);
        for s in 1..100 {
            assert!(!never.jam(s, &h, &mut r));
            assert!(always.jam(s, &h, &mut r));
        }
    }

    #[test]
    #[should_panic(expected = "probability must be in [0,1]")]
    fn random_jamming_rejects_bad_p() {
        let _ = RandomJamming::new(1.5);
    }

    #[test]
    fn periodic_jams_on_schedule() {
        let mut j = PeriodicJamming::new(4, 2);
        let h = PublicHistory::new();
        let mut r = rng();
        let jammed: Vec<u64> = (1..=12).filter(|&s| j.jam(s, &h, &mut r)).collect();
        assert_eq!(jammed, vec![2, 6, 10]);
    }

    #[test]
    fn front_loaded_prefix() {
        let mut j = FrontLoadedJamming::new(5);
        let h = PublicHistory::new();
        let mut r = rng();
        let jammed: Vec<u64> = (1..=10).filter(|&s| j.jam(s, &h, &mut r)).collect();
        assert_eq!(jammed, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn reactive_bursts_after_success() {
        let mut j = ReactiveJamming::new(2);
        let mut h = PublicHistory::new();
        let mut r = rng();
        assert!(!j.jam(1, &h, &mut r));
        h.record(Feedback::Success(NodeId::new(0)), 0, false);
        assert!(j.jam(2, &h, &mut r));
        h.record(Feedback::NoSuccess, 0, true);
        assert!(j.jam(3, &h, &mut r));
        h.record(Feedback::NoSuccess, 0, true);
        assert!(!j.jam(4, &h, &mut r));
    }

    #[test]
    fn reactive_burst_resets_on_new_success() {
        let mut j = ReactiveJamming::new(3);
        let mut h = PublicHistory::new();
        let mut r = rng();
        h.record(Feedback::Success(NodeId::new(0)), 0, false);
        assert!(j.jam(2, &h, &mut r));
        // Another success while mid-burst refills the burst.
        h.record(Feedback::Success(NodeId::new(1)), 0, false);
        assert!(j.jam(3, &h, &mut r));
        h.record(Feedback::NoSuccess, 0, true);
        assert!(j.jam(4, &h, &mut r));
        h.record(Feedback::NoSuccess, 0, true);
        assert!(j.jam(5, &h, &mut r));
        h.record(Feedback::NoSuccess, 0, true);
        assert!(!j.jam(6, &h, &mut r));
    }

    #[test]
    fn scripted_exact_slots() {
        let mut j = ScriptedJamming::new([3, 7, 7, 9]);
        assert_eq!(j.count(), 3);
        let h = PublicHistory::new();
        let mut r = rng();
        let jammed: Vec<u64> = (1..=10).filter(|&s| j.jam(s, &h, &mut r)).collect();
        assert_eq!(jammed, vec![3, 7, 9]);
    }

    #[test]
    fn gilbert_elliott_long_run_fraction() {
        let mut j = GilbertElliottJamming::bursts(0.25, 8.0);
        let h = PublicHistory::new();
        let mut r = rng();
        let n = 200_000u64;
        let jammed = (1..=n).filter(|&s| j.jam(s, &h, &mut r)).count();
        let frac = jammed as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.03, "fraction {frac}");
    }

    #[test]
    fn gilbert_elliott_is_bursty() {
        // Average run length of jammed slots should be near burst_len,
        // i.e. much larger than the i.i.d. value 1/(1-p) ≈ 1.33.
        let mut j = GilbertElliottJamming::bursts(0.25, 16.0);
        let h = PublicHistory::new();
        let mut r = rng();
        let mut runs = 0u64;
        let mut jammed = 0u64;
        let mut prev = false;
        for s in 1..=200_000u64 {
            let now = j.jam(s, &h, &mut r);
            if now {
                jammed += 1;
                if !prev {
                    runs += 1;
                }
            }
            prev = now;
        }
        let mean_run = jammed as f64 / runs.max(1) as f64;
        assert!(mean_run > 8.0, "mean run {mean_run} not bursty");
    }

    #[test]
    fn gilbert_elliott_zero_fraction_never_jams() {
        let mut j = GilbertElliottJamming::bursts(0.0, 4.0);
        let h = PublicHistory::new();
        let mut r = rng();
        assert!((1..=1000).all(|s| !j.jam(s, &h, &mut r)));
        assert!(!j.is_bad());
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn gilbert_elliott_rejects_bad_probability() {
        let _ = GilbertElliottJamming::new(1.5, 0.5, 0.0, 1.0);
    }

    #[test]
    fn no_jamming_never_jams() {
        let mut j = NoJamming;
        let h = PublicHistory::new();
        let mut r = rng();
        assert!((1..=50).all(|s| !j.jam(s, &h, &mut r)));
    }
}
