//! Combining an arrival process with a jamming strategy into one adversary.

use rand::RngCore;

use crate::adversary::{
    Adversary, ArrivalForecast, ArrivalProcess, Forecast, JamForecast, JammingStrategy,
    SlotDecision,
};
use crate::history::PublicHistory;

/// An adversary built from an [`ArrivalProcess`] plus a [`JammingStrategy`].
///
/// Both halves see the same public history; the arrival half decides first
/// (the order is observable only through the RNG stream, which each half
/// shares — deterministic under a fixed seed either way).
pub struct CompositeAdversary<A, J> {
    arrivals: A,
    jamming: J,
}

impl<A: ArrivalProcess, J: JammingStrategy> CompositeAdversary<A, J> {
    /// Combine the two halves.
    pub fn new(arrivals: A, jamming: J) -> Self {
        CompositeAdversary { arrivals, jamming }
    }

    /// Access the arrival half.
    pub fn arrivals(&self) -> &A {
        &self.arrivals
    }

    /// Access the jamming half.
    pub fn jamming(&self) -> &J {
        &self.jamming
    }
}

impl<A: ArrivalProcess, J: JammingStrategy> Adversary for CompositeAdversary<A, J> {
    fn decide(
        &mut self,
        slot: u64,
        history: &PublicHistory,
        rng: &mut dyn RngCore,
    ) -> SlotDecision {
        let inject = self.arrivals.arrivals(slot, history, rng);
        let jam = self.jamming.jam(slot, history, rng);
        SlotDecision { jam, inject }
    }

    fn exhausted(&self) -> bool {
        self.arrivals.exhausted()
    }

    fn forecast(&self, from: u64) -> Forecast {
        let (jam, jam_until) = match self.jamming.jam_span(from) {
            JamForecast::Unknown => return Forecast::Adaptive,
            JamForecast::Constant { jam, until } => (jam, until.max(from)),
        };
        match self.arrivals.next_arrival(from) {
            ArrivalForecast::Unknown => Forecast::Adaptive,
            ArrivalForecast::At(slot) if slot <= from => Forecast::Consult,
            ArrivalForecast::At(slot) => Forecast::Quiet {
                until: jam_until.min(slot - 1),
                jam,
            },
            ArrivalForecast::Never => Forecast::Quiet {
                until: jam_until,
                jam,
            },
        }
    }

    fn name(&self) -> &'static str {
        "composite"
    }

    fn try_clone_box(&self) -> Option<Box<dyn Adversary + Send>> {
        let arrivals = self.arrivals.try_clone_box()?;
        let jamming = self.jamming.try_clone_box()?;
        Some(Box::new(CompositeAdversary { arrivals, jamming }))
    }
}

impl<A: std::fmt::Debug, J: std::fmt::Debug> std::fmt::Debug for CompositeAdversary<A, J> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositeAdversary")
            .field("arrivals", &self.arrivals)
            .field("jamming", &self.jamming)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{BatchArrival, FrontLoadedJamming, NoArrivals, NoJamming};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn composite_combines_halves() {
        let mut adv = CompositeAdversary::new(BatchArrival::new(2, 5), FrontLoadedJamming::new(1));
        let h = PublicHistory::new();
        let mut r = SmallRng::seed_from_u64(0);
        let d1 = adv.decide(1, &h, &mut r);
        assert_eq!(
            d1,
            SlotDecision {
                jam: true,
                inject: 0
            }
        );
        let d2 = adv.decide(2, &h, &mut r);
        assert_eq!(
            d2,
            SlotDecision {
                jam: false,
                inject: 5
            }
        );
        assert!(adv.exhausted());
    }

    #[test]
    fn composite_exhaustion_tracks_arrivals() {
        let adv = CompositeAdversary::new(NoArrivals, NoJamming);
        assert!(adv.exhausted());
        assert_eq!(adv.name(), "composite");
        assert_eq!(adv.arrivals().name(), "none");
        assert_eq!(adv.jamming().name(), "none");
    }
}
