//! Lower-bound adversaries from Section 4 of the paper.
//!
//! These reproduce, as executable workloads, the adversary strategies used in
//! the impossibility proofs:
//!
//! * [`Lemma41Adversary`] — batch-injects heavily in the first `√t` slots and
//!   scatters `m` "random-injected" nodes uniformly over `[1, t]`, the
//!   construction showing that a node whose expected send count is too high
//!   drowns the channel (Lemma 4.1).
//! * [`Theorem13Adversary`] — injects a single node, jams the prefix
//!   `[1, t/(4g(t))]`, the last slot, and `t/(4g(t))` random slots of the
//!   remainder; used to show a single node must broadcast
//!   `Ω(log²t / log²g(t))` times (Theorem 1.3).
//! * [`Theorem42Adversary`] — jams the prefix and the last slot, injects two
//!   nodes at slot 1 and a crowd at the last slot; defeats non-adaptive
//!   schedules (Theorem 4.2).
//!
//! Experiments use these to demonstrate *mechanisms* (e.g. that prefix
//! jamming wrecks plain exponential backoff) rather than to verify the
//! impossibility theorems literally — those hold for all algorithms and
//! cannot be "run".

use rand::Rng;
use rand::RngCore;

use crate::adversary::{Adversary, SlotDecision};
use crate::history::PublicHistory;

/// The Lemma 4.1 workload over a horizon of `t` slots: `batch_per_slot`
/// nodes in each of the first `⌊√t⌋` slots plus `random_total` nodes at
/// uniformly random slots of `[1, t]`.
#[derive(Debug, Clone)]
pub struct Lemma41Adversary {
    horizon: u64,
    sqrt_horizon: u64,
    batch_per_slot: u32,
    random_remaining: u64,
}

impl Lemma41Adversary {
    /// Build the workload.
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0`.
    pub fn new(horizon: u64, batch_per_slot: u32, random_total: u64) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        Lemma41Adversary {
            horizon,
            sqrt_horizon: (horizon as f64).sqrt().floor() as u64,
            batch_per_slot,
            random_remaining: random_total,
        }
    }
}

impl Adversary for Lemma41Adversary {
    fn decide(&mut self, slot: u64, _: &PublicHistory, rng: &mut dyn RngCore) -> SlotDecision {
        if slot > self.horizon {
            return SlotDecision::IDLE;
        }
        let mut inject = 0u64;
        if slot <= self.sqrt_horizon {
            inject += u64::from(self.batch_per_slot);
        }
        // Thinning of the uniform allocation of the remaining random nodes.
        let slots_left = self.horizon - slot + 1;
        if self.random_remaining > 0 {
            if slots_left == 1 {
                inject += self.random_remaining;
                self.random_remaining = 0;
            } else {
                let p = 1.0 / slots_left as f64;
                let mut k = 0u64;
                for _ in 0..self.random_remaining {
                    if rng.gen::<f64>() < p {
                        k += 1;
                    }
                }
                self.random_remaining -= k;
                inject += k;
            }
        }
        SlotDecision {
            jam: false,
            inject: inject.min(u64::from(u32::MAX)) as u32,
        }
    }

    fn exhausted(&self) -> bool {
        self.random_remaining == 0 && self.sqrt_horizon == 0
    }

    fn name(&self) -> &'static str {
        "lemma-4.1"
    }

    fn try_clone_box(&self) -> Option<Box<dyn Adversary + Send>> {
        Some(Box::new(self.clone()))
    }
}

/// The Theorem 1.3 adversary over horizon `t`: one node at slot 1, jam
/// `[1, prefix]`, jam `extra` random slots of `(prefix, t]`, jam slot `t`.
#[derive(Debug, Clone)]
pub struct Theorem13Adversary {
    horizon: u64,
    prefix: u64,
    /// Sorted random jam slots, drawn on first use.
    random_jams: Option<Vec<u64>>,
    extra: u64,
    injected: bool,
}

impl Theorem13Adversary {
    /// Build from horizon `t` and jam budget parameter `g_of_t = g(t)`:
    /// prefix and random-jam counts are both `⌊t / (4·g(t))⌋`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0` or `g_of_t <= 0`.
    pub fn new(horizon: u64, g_of_t: f64) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        assert!(g_of_t > 0.0, "g(t) must be positive");
        let prefix = ((horizon as f64) / (4.0 * g_of_t)).floor() as u64;
        Theorem13Adversary {
            horizon,
            prefix,
            random_jams: None,
            extra: prefix,
            injected: false,
        }
    }

    /// Length of the jammed prefix.
    pub fn prefix(&self) -> u64 {
        self.prefix
    }

    fn ensure_random_jams(&mut self, rng: &mut dyn RngCore) {
        if self.random_jams.is_some() {
            return;
        }
        let lo = self.prefix + 1;
        let hi = self.horizon;
        let mut jams = Vec::with_capacity(self.extra as usize);
        if lo <= hi {
            for _ in 0..self.extra {
                jams.push(rng.gen_range(lo..=hi));
            }
        }
        jams.sort_unstable();
        jams.dedup();
        self.random_jams = Some(jams);
    }
}

impl Adversary for Theorem13Adversary {
    fn decide(&mut self, slot: u64, _: &PublicHistory, rng: &mut dyn RngCore) -> SlotDecision {
        self.ensure_random_jams(rng);
        let inject = if !self.injected && slot == 1 {
            self.injected = true;
            1
        } else {
            0
        };
        if slot > self.horizon {
            return SlotDecision { jam: false, inject };
        }
        let jam = slot <= self.prefix
            || slot == self.horizon
            || self
                .random_jams
                .as_ref()
                .is_some_and(|v| v.binary_search(&slot).is_ok());
        SlotDecision { jam, inject }
    }

    fn exhausted(&self) -> bool {
        self.injected
    }

    fn name(&self) -> &'static str {
        "theorem-1.3"
    }

    fn try_clone_box(&self) -> Option<Box<dyn Adversary + Send>> {
        Some(Box::new(self.clone()))
    }
}

/// The Theorem 4.2 adversary over horizon `t`: jam `[1, prefix]` and slot
/// `t`; inject 2 nodes at slot 1 and `final_crowd` nodes at slot `t`.
#[derive(Debug, Clone)]
pub struct Theorem42Adversary {
    horizon: u64,
    prefix: u64,
    final_crowd: u32,
    injected_start: bool,
    injected_end: bool,
}

impl Theorem42Adversary {
    /// Build from horizon `t`, `g(t)` (prefix = `t/(4g(t))`) and `f(t)`
    /// (final crowd = `t/(4f(t))`).
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0`, or `g_of_t`/`f_of_t` are not positive.
    pub fn new(horizon: u64, g_of_t: f64, f_of_t: f64) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        assert!(g_of_t > 0.0 && f_of_t > 0.0, "f(t), g(t) must be positive");
        Theorem42Adversary {
            horizon,
            prefix: ((horizon as f64) / (4.0 * g_of_t)).floor() as u64,
            final_crowd: ((horizon as f64) / (4.0 * f_of_t))
                .floor()
                .min(u32::MAX as f64) as u32,
            injected_start: false,
            injected_end: false,
        }
    }

    /// Length of the jammed prefix.
    pub fn prefix(&self) -> u64 {
        self.prefix
    }
}

impl Adversary for Theorem42Adversary {
    fn decide(&mut self, slot: u64, _: &PublicHistory, _: &mut dyn RngCore) -> SlotDecision {
        let mut inject = 0u32;
        if slot == 1 && !self.injected_start {
            self.injected_start = true;
            inject += 2;
        }
        if slot == self.horizon && !self.injected_end {
            self.injected_end = true;
            inject += self.final_crowd;
        }
        let jam = slot <= self.prefix || slot == self.horizon;
        SlotDecision { jam, inject }
    }

    fn exhausted(&self) -> bool {
        self.injected_start && self.injected_end
    }

    fn name(&self) -> &'static str {
        "theorem-4.2"
    }

    fn try_clone_box(&self) -> Option<Box<dyn Adversary + Send>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn lemma41_batches_then_scatters() {
        let mut adv = Lemma41Adversary::new(100, 3, 20);
        let h = PublicHistory::new();
        let mut r = SmallRng::seed_from_u64(1);
        let mut total = 0u64;
        let mut batch_part = 0u64;
        for slot in 1..=100 {
            let d = adv.decide(slot, &h, &mut r);
            assert!(!d.jam);
            total += u64::from(d.inject);
            if slot <= 10 {
                batch_part += u64::from(d.inject);
                assert!(d.inject >= 3, "slot {slot} must carry the batch");
            }
        }
        // 10 batch slots * 3 + 20 random = 50 total.
        assert_eq!(total, 50);
        assert!(batch_part >= 30);
        assert!(adv.exhausted() || adv.random_remaining == 0);
    }

    #[test]
    fn theorem13_jams_prefix_and_last() {
        let mut adv = Theorem13Adversary::new(64, 2.0);
        assert_eq!(adv.prefix(), 8);
        let h = PublicHistory::new();
        let mut r = SmallRng::seed_from_u64(2);
        let mut jams = 0u64;
        let mut inject = 0u64;
        for slot in 1..=64 {
            let d = adv.decide(slot, &h, &mut r);
            if slot <= 8 {
                assert!(d.jam, "prefix slot {slot} must be jammed");
            }
            if slot == 64 {
                assert!(d.jam, "last slot must be jammed");
            }
            jams += u64::from(d.jam);
            inject += u64::from(d.inject);
        }
        assert_eq!(inject, 1);
        // prefix (8) + last (1) + up to 8 random (deduped, some may collide
        // with the last slot).
        assert!((9..=17).contains(&jams), "jams {jams}");
        assert!(adv.exhausted());
    }

    #[test]
    fn theorem42_crowds_final_slot() {
        let mut adv = Theorem42Adversary::new(40, 2.0, 1.0);
        assert_eq!(adv.prefix(), 5);
        let h = PublicHistory::new();
        let mut r = SmallRng::seed_from_u64(3);
        let d1 = adv.decide(1, &h, &mut r);
        assert_eq!(d1.inject, 2);
        assert!(d1.jam);
        for slot in 2..40 {
            let d = adv.decide(slot, &h, &mut r);
            assert_eq!(d.inject, 0);
            assert_eq!(d.jam, slot <= 5);
        }
        let dl = adv.decide(40, &h, &mut r);
        assert!(dl.jam);
        assert_eq!(dl.inject, 10); // 40 / (4*1)
        assert!(adv.exhausted());
    }
}
