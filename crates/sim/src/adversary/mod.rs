//! Adversaries ("Eve"): adaptive control of node arrivals and jamming.
//!
//! Before each slot the engine asks the adversary for a [`SlotDecision`]
//! given the [`PublicHistory`] — past channel feedback plus her own past
//! decisions. She has no collision detection, mirroring the nodes.
//!
//! The module is organised around two composable halves:
//!
//! * [`ArrivalProcess`] — when and how many nodes to inject;
//! * [`JammingStrategy`] — which slots to jam;
//!
//! combined by [`CompositeAdversary`], optionally wrapped in
//! [`BudgetedAdversary`] (hard caps matching the `n_t`/`d_t` budgets of
//! Definition 1.1) or [`SmoothAdversary`] (the windowed constraint of
//! Corollary 3.6). Special-purpose lower-bound adversaries from Section 4
//! live in [`lowerbound`].

mod arrival;
mod budget;
mod composite;
mod jamming;
pub mod lowerbound;
mod smooth;

pub use arrival::{
    ArrivalForecast, ArrivalProcess, BatchArrival, BurstyArrival, NoArrivals, PoissonArrival,
    SaturatedArrival, ScriptedArrival, UniformRandomArrival,
};
pub use budget::{ArrivalBudget, BudgetedAdversary, JamBudget};
pub use composite::CompositeAdversary;
pub use jamming::{
    FrontLoadedJamming, GilbertElliottJamming, JamForecast, JammingStrategy, NoJamming,
    PeriodicJamming, RandomJamming, ReactiveJamming, ScriptedJamming,
};
pub use smooth::{SmoothAdversary, SmoothConfig};

use rand::RngCore;

use crate::history::PublicHistory;

/// The adversary's decision for one upcoming slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotDecision {
    /// Whether to jam the slot (a jammed slot always resolves to
    /// no-success, regardless of broadcasters).
    pub jam: bool,
    /// How many new nodes to inject at the beginning of the slot.
    pub inject: u32,
}

impl SlotDecision {
    /// Neither jam nor inject.
    pub const IDLE: SlotDecision = SlotDecision {
        jam: false,
        inject: 0,
    };

    /// Inject `n` nodes without jamming.
    pub fn inject(n: u32) -> Self {
        SlotDecision {
            jam: false,
            inject: n,
        }
    }

    /// Jam without injecting.
    pub fn jam() -> Self {
        SlotDecision {
            jam: true,
            inject: 0,
        }
    }
}

/// What an adversary can promise about an upcoming slot range, queried by
/// the sparse execution engine before skipping slots (see
/// [`Execution::SkipAhead`](crate::config::Execution)).
///
/// The contract of a non-[`Adaptive`](Forecast::Adaptive) forecast is that
/// the adversary's [`decide`](Adversary::decide) calls may be *skipped*
/// for the promised quiet slots without changing its behaviour: the
/// promise must be derivable from the adversary's current state alone,
/// with no per-slot bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Forecast {
    /// The adversary must be consulted every slot (it is randomized,
    /// reads the history, or counts `decide` calls). Skip-ahead execution
    /// falls back to the exact engine.
    Adaptive,
    /// [`decide`](Adversary::decide) must run for exactly the queried
    /// slot (an arrival or other state change is due there); forecasting
    /// may resume afterwards.
    Consult,
    /// For every slot from the queried slot through `until` (inclusive)
    /// the decision is: inject nothing, jam iff `jam`. The engine may
    /// resolve the whole span without calling
    /// [`decide`](Adversary::decide).
    Quiet {
        /// Last slot covered by the promise (inclusive; `u64::MAX` =
        /// forever).
        until: u64,
        /// Whether every slot in the span is jammed.
        jam: bool,
    },
}

/// An adaptive adversary: decides jamming and injections slot by slot from
/// public information only.
pub trait Adversary {
    /// Decide for global slot `slot` (1-based), before the slot runs.
    ///
    /// `history` covers slots `1..slot`; `rng` is the adversary's private
    /// deterministic stream.
    fn decide(&mut self, slot: u64, history: &PublicHistory, rng: &mut dyn RngCore)
        -> SlotDecision;

    /// `true` once the adversary will never inject again (used by
    /// `run_until_drained` to detect quiescence). Conservative default:
    /// `false` (never claims exhaustion).
    fn exhausted(&self) -> bool {
        false
    }

    /// Forecast the adversary's behaviour from slot `from` (1-based)
    /// onwards, for the sparse execution engine. The conservative default
    /// is [`Forecast::Adaptive`] — "consult me every slot" — which makes
    /// [`Execution::SkipAhead`](crate::config::Execution) fall back to the
    /// exact engine. Override only for adversaries whose decisions are a
    /// pure function of the slot index and their current state (see
    /// [`Forecast`]).
    fn forecast(&self, from: u64) -> Forecast {
        let _ = from;
        Forecast::Adaptive
    }

    /// Short name for reports.
    fn name(&self) -> &'static str {
        "adversary"
    }

    /// Checkpoint hook: a boxed deep copy of this adversary's current
    /// state, or `None` (the default) when the adversary is not
    /// snapshot-capable. Implementations that are `Clone` should return
    /// `Some(Box::new(self.clone()))`; the copy must continue
    /// bit-identically to the original. The `Send` bound lets snapshots
    /// move to replay workers.
    fn try_clone_box(&self) -> Option<Box<dyn Adversary + Send>> {
        None
    }
}

/// Boxed adversaries delegate, so heterogeneous scenario tables can hand
/// out `Box<dyn Adversary>` values.
impl Adversary for Box<dyn Adversary> {
    fn decide(
        &mut self,
        slot: u64,
        history: &PublicHistory,
        rng: &mut dyn RngCore,
    ) -> SlotDecision {
        (**self).decide(slot, history, rng)
    }

    fn exhausted(&self) -> bool {
        (**self).exhausted()
    }

    fn forecast(&self, from: u64) -> Forecast {
        (**self).forecast(from)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn try_clone_box(&self) -> Option<Box<dyn Adversary + Send>> {
        (**self).try_clone_box()
    }
}

/// `Send`-bounded boxes delegate too (checkpoint clones use this shape).
impl Adversary for Box<dyn Adversary + Send> {
    fn decide(
        &mut self,
        slot: u64,
        history: &PublicHistory,
        rng: &mut dyn RngCore,
    ) -> SlotDecision {
        (**self).decide(slot, history, rng)
    }

    fn exhausted(&self) -> bool {
        (**self).exhausted()
    }

    fn forecast(&self, from: u64) -> Forecast {
        (**self).forecast(from)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn try_clone_box(&self) -> Option<Box<dyn Adversary + Send>> {
        (**self).try_clone_box()
    }
}

/// The empty adversary: no arrivals, no jamming. Useful with pre-seeded
/// populations in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullAdversary;

impl Adversary for NullAdversary {
    fn decide(&mut self, _: u64, _: &PublicHistory, _: &mut dyn RngCore) -> SlotDecision {
        SlotDecision::IDLE
    }

    fn exhausted(&self) -> bool {
        true
    }

    fn forecast(&self, _from: u64) -> Forecast {
        Forecast::Quiet {
            until: u64::MAX,
            jam: false,
        }
    }

    fn name(&self) -> &'static str {
        "null"
    }

    fn try_clone_box(&self) -> Option<Box<dyn Adversary + Send>> {
        Some(Box::new(*self))
    }
}

/// Adapter running a closure as an adversary; handy in tests.
pub struct FnAdversary<F> {
    f: F,
    name: &'static str,
}

impl<F> FnAdversary<F>
where
    F: FnMut(u64, &PublicHistory, &mut dyn RngCore) -> SlotDecision,
{
    /// Wrap a closure.
    pub fn new(name: &'static str, f: F) -> Self {
        FnAdversary { f, name }
    }
}

impl<F> Adversary for FnAdversary<F>
where
    F: FnMut(u64, &PublicHistory, &mut dyn RngCore) -> SlotDecision,
{
    fn decide(
        &mut self,
        slot: u64,
        history: &PublicHistory,
        rng: &mut dyn RngCore,
    ) -> SlotDecision {
        (self.f)(slot, history, rng)
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

impl<F> std::fmt::Debug for FnAdversary<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnAdversary")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn slot_decision_constructors() {
        assert_eq!(
            SlotDecision::IDLE,
            SlotDecision {
                jam: false,
                inject: 0
            }
        );
        assert_eq!(
            SlotDecision::inject(4),
            SlotDecision {
                jam: false,
                inject: 4
            }
        );
        assert_eq!(
            SlotDecision::jam(),
            SlotDecision {
                jam: true,
                inject: 0
            }
        );
    }

    #[test]
    fn null_adversary_is_idle_and_exhausted() {
        let mut adv = NullAdversary;
        let h = PublicHistory::new();
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(adv.decide(1, &h, &mut rng), SlotDecision::IDLE);
        assert!(adv.exhausted());
        assert_eq!(adv.name(), "null");
    }

    #[test]
    fn fn_adversary_delegates() {
        let mut adv = FnAdversary::new("test", |slot, _h, _r| {
            if slot == 3 {
                SlotDecision::inject(2)
            } else {
                SlotDecision::IDLE
            }
        });
        let h = PublicHistory::new();
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(adv.decide(1, &h, &mut rng).inject, 0);
        assert_eq!(adv.decide(3, &h, &mut rng).inject, 2);
        assert!(!adv.exhausted());
        assert_eq!(adv.name(), "test");
        assert!(format!("{adv:?}").contains("test"));
    }
}
