//! The "smooth" adversary of Corollary 3.6.
//!
//! An adversary strategy is *smooth* for an interval `[1, t]` when, for every
//! suffix window `[t−j, t]`, the number of arrivals in the window is
//! `O(j / f(j))` and the number of jammed slots is `O(j / g(j))`. Under a
//! smooth strategy, an algorithm with (f,g)-throughput guarantees that every
//! node arriving before slot `t−j` has left the system by slot `t`, w.h.p.
//! in `j` — the latency corollary that experiment E6 validates.
//!
//! [`SmoothAdversary`] wraps an arbitrary inner adversary and *suppresses*
//! any decision that would violate the window constraints. Checking every
//! window every slot would be quadratic, so constraints are enforced on
//! dyadic (power-of-two) window lengths; any window is sandwiched between
//! two dyadic ones, so this preserves smoothness up to a factor of 2 in the
//! constants — invisible inside the O(·).

use std::sync::Arc;

use rand::RngCore;

use crate::adversary::{Adversary, SlotDecision};
use crate::history::PublicHistory;

/// Window budget curves for smoothness.
///
/// Curves are shared behind [`Arc`]s so configs are cheaply cloneable for
/// checkpoints; they are pure (`Fn`), so sharing never changes behaviour.
#[derive(Clone)]
pub struct SmoothConfig {
    /// Max arrivals allowed in any suffix window of length `j`.
    pub arrival_curve: Arc<dyn Fn(u64) -> f64 + Send + Sync>,
    /// Max jams allowed in any suffix window of length `j`.
    pub jam_curve: Arc<dyn Fn(u64) -> f64 + Send + Sync>,
}

impl SmoothConfig {
    /// Constraint curves `arrivals(j) ≤ ca·j/f(j)` and `jams(j) ≤ cd·j/g(j)`
    /// for user-provided `f`, `g` and constants.
    ///
    /// Both curves are clamped to at least 1 so that short windows don't
    /// floor to zero and silence the adversary entirely — a one-event
    /// allowance per window is within the `O(·)` of the smoothness
    /// definition.
    pub fn from_fg(
        f: impl Fn(u64) -> f64 + Send + Sync + 'static,
        g: impl Fn(u64) -> f64 + Send + Sync + 'static,
        ca: f64,
        cd: f64,
    ) -> Self {
        SmoothConfig {
            arrival_curve: Arc::new(move |j| (ca * j as f64 / f(j).max(1.0)).max(1.0)),
            jam_curve: Arc::new(move |j| (cd * j as f64 / g(j).max(1.0)).max(1.0)),
        }
    }
}

impl std::fmt::Debug for SmoothConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmoothConfig").finish_non_exhaustive()
    }
}

/// Enforces [`SmoothConfig`] on top of any adversary.
pub struct SmoothAdversary<Inner> {
    inner: Inner,
    config: SmoothConfig,
    /// `cum_arrivals[s]` = arrivals in slots `1..=s` (index 0 = 0).
    cum_arrivals: Vec<u64>,
    /// `cum_jams[s]` = jams in slots `1..=s`.
    cum_jams: Vec<u64>,
}

impl<Inner: Adversary> SmoothAdversary<Inner> {
    /// Wrap `inner` with smoothness enforcement.
    pub fn new(inner: Inner, config: SmoothConfig) -> Self {
        SmoothAdversary {
            inner,
            config,
            cum_arrivals: vec![0],
            cum_jams: vec![0],
        }
    }

    /// Max `k` such that injecting `k` at slot `t` keeps all dyadic suffix
    /// windows within budget.
    fn arrival_headroom(&self, t: u64) -> u64 {
        let mut head = u64::MAX;
        let mut j = 1u64;
        loop {
            // Window (t-j, t], counting the pending slot t itself.
            let start = t.saturating_sub(j); // completed slots strictly after `start`
            let in_window = self.completed_arrivals(start, t - 1);
            let cap = (self.config.arrival_curve)(j).max(0.0).floor() as u64;
            head = head.min(cap.saturating_sub(in_window));
            if j >= t {
                break;
            }
            j = j.saturating_mul(2);
        }
        head
    }

    /// Whether jamming slot `t` keeps all dyadic suffix windows within
    /// budget.
    fn jam_allowed(&self, t: u64) -> bool {
        let mut j = 1u64;
        loop {
            let start = t.saturating_sub(j);
            let in_window = self.completed_jams(start, t - 1);
            let cap = (self.config.jam_curve)(j).max(0.0).floor() as u64;
            if in_window + 1 > cap {
                return false;
            }
            if j >= t {
                break;
            }
            j = j.saturating_mul(2);
        }
        true
    }

    /// Arrivals in completed slots `(from, to]`.
    fn completed_arrivals(&self, from: u64, to: u64) -> u64 {
        let hi = (to as usize).min(self.cum_arrivals.len() - 1);
        let lo = (from as usize).min(hi);
        self.cum_arrivals[hi] - self.cum_arrivals[lo]
    }

    /// Jams in completed slots `(from, to]`.
    fn completed_jams(&self, from: u64, to: u64) -> u64 {
        let hi = (to as usize).min(self.cum_jams.len() - 1);
        let lo = (from as usize).min(hi);
        self.cum_jams[hi] - self.cum_jams[lo]
    }

    fn record(&mut self, inject: u32, jam: bool) {
        let last_a = *self.cum_arrivals.last().expect("non-empty");
        let last_j = *self.cum_jams.last().expect("non-empty");
        self.cum_arrivals.push(last_a + u64::from(inject));
        self.cum_jams.push(last_j + u64::from(jam));
    }
}

impl<Inner: Adversary> Adversary for SmoothAdversary<Inner> {
    fn decide(
        &mut self,
        slot: u64,
        history: &PublicHistory,
        rng: &mut dyn RngCore,
    ) -> SlotDecision {
        let raw = self.inner.decide(slot, history, rng);
        let inject = u64::from(raw.inject).min(self.arrival_headroom(slot)) as u32;
        let jam = raw.jam && self.jam_allowed(slot);
        self.record(inject, jam);
        SlotDecision { jam, inject }
    }

    fn exhausted(&self) -> bool {
        self.inner.exhausted()
    }

    fn name(&self) -> &'static str {
        "smooth"
    }

    fn try_clone_box(&self) -> Option<Box<dyn Adversary + Send>> {
        let inner = self.inner.try_clone_box()?;
        Some(Box::new(SmoothAdversary {
            inner,
            config: self.config.clone(),
            cum_arrivals: self.cum_arrivals.clone(),
            cum_jams: self.cum_jams.clone(),
        }))
    }
}

impl<Inner: std::fmt::Debug> std::fmt::Debug for SmoothAdversary<Inner> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmoothAdversary")
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::FnAdversary;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn greedy() -> FnAdversary<impl FnMut(u64, &PublicHistory, &mut dyn RngCore) -> SlotDecision> {
        FnAdversary::new("greedy", |_s, _h, _r| SlotDecision {
            jam: true,
            inject: 1000,
        })
    }

    #[test]
    fn smooth_clamps_single_slot_window() {
        // Any window of length j allows 2j arrivals and 0 jams, so the
        // binding constraint is the length-1 window: 2 arrivals per slot.
        let config = SmoothConfig {
            arrival_curve: Arc::new(|j| 2.0 * j as f64),
            jam_curve: Arc::new(|_j| 0.0),
        };
        let mut adv = SmoothAdversary::new(greedy(), config);
        let h = PublicHistory::new();
        let mut r = SmallRng::seed_from_u64(0);
        for slot in 1..=5 {
            let d = adv.decide(slot, &h, &mut r);
            assert_eq!(d.inject, 2, "slot {slot}");
            assert!(!d.jam, "slot {slot}");
        }
    }

    #[test]
    fn smooth_enforces_window_totals() {
        // Arrivals: at most j in window length j  => at most 1 per slot and
        // the long-run rate is 1/slot.
        let config = SmoothConfig {
            arrival_curve: Arc::new(|j| j as f64),
            jam_curve: Arc::new(|j| (j as f64 / 2.0).max(1.0)),
        };
        let mut adv = SmoothAdversary::new(greedy(), config);
        let h = PublicHistory::new();
        let mut r = SmallRng::seed_from_u64(0);
        let mut total_inject = 0u64;
        let mut total_jam = 0u64;
        for slot in 1..=64 {
            let d = adv.decide(slot, &h, &mut r);
            total_inject += u64::from(d.inject);
            total_jam += u64::from(d.jam);
        }
        assert!(total_inject <= 64);
        // Jam cap for window 64 is 32.
        assert!(total_jam <= 32, "jams {total_jam}");
        // The greedy adversary should be able to use a decent share.
        assert!(total_jam >= 16, "jams {total_jam}");
        assert!(total_inject >= 32);
    }

    #[test]
    fn from_fg_builds_expected_curves() {
        let config = SmoothConfig::from_fg(|_j| 2.0, |_j| 4.0, 1.0, 1.0);
        assert!(((config.arrival_curve)(8) - 4.0).abs() < 1e-12);
        assert!(((config.jam_curve)(8) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn smooth_name_and_debug() {
        let config = SmoothConfig::from_fg(|_| 1.0, |_| 1.0, 1.0, 1.0);
        let adv = SmoothAdversary::new(crate::adversary::NullAdversary, config);
        assert_eq!(adv.name(), "smooth");
        assert!(adv.exhausted());
        assert!(format!("{adv:?}").contains("SmoothAdversary"));
    }
}
