//! Pluggable channel-feedback models: what listeners (and the adversary)
//! can extract from a slot's ground truth.
//!
//! The engine always computes privileged ground truth per slot
//! ([`SlotOutcome`]: silence / delivery / collision / jamming). A
//! [`ChannelModel`] is the lens between that ground truth and the public
//! [`Feedback`] every listener — including the adaptive adversary — hears.
//! The paper's defining modeling choice, *no collision detection*, is the
//! default lens; the other models reproduce the channels studied by the
//! related work (ternary collision-detection channels in Bender et al.,
//! "Contention Resolution without Collision Detection", and the
//! restricted-feedback settings of Jiang–Zheng, "Robust and Optimal
//! Contention Resolution without Collision Detection").
//!
//! The model is a [`SimConfig`](crate::config::SimConfig) knob
//! (`with_channel`), so the same protocol roster and adversary can be
//! replayed under different feedback regimes from one seed. The mapping is
//! a pure, allocation-free function of the outcome: the engine's
//! steady-state hot path stays zero-allocation under every model, and the
//! default model is bit-identical to the original hard-wired behaviour.

use std::fmt;

use crate::slot::{Feedback, SlotOutcome};

/// A channel-feedback model: the map from per-slot ground truth to the
/// public feedback heard by listeners and the adversary.
///
/// # Examples
///
/// ```
/// use contention_sim::prelude::*;
///
/// let collision = SlotOutcome::Collision { broadcasters: 3 };
/// // The paper's model cannot tell collision from silence...
/// assert_eq!(
///     ChannelModel::NoCollisionDetection.feedback(collision),
///     Feedback::NoSuccess,
/// );
/// assert_eq!(
///     ChannelModel::NoCollisionDetection.feedback(SlotOutcome::Silence),
///     Feedback::NoSuccess,
/// );
/// // ...a ternary collision-detection channel can.
/// assert_eq!(
///     ChannelModel::CollisionDetection.feedback(collision),
///     Feedback::Noise,
/// );
/// assert_eq!(
///     ChannelModel::CollisionDetection.feedback(SlotOutcome::Silence),
///     Feedback::Silence,
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChannelModel {
    /// The paper's model (the default): binary feedback. Exactly one
    /// unjammed broadcaster ⇒ [`Feedback::Success`]; silence, collision
    /// and jamming are indistinguishable ⇒ [`Feedback::NoSuccess`].
    #[default]
    NoCollisionDetection,
    /// Ternary feedback: listeners can tell an *empty* slot
    /// ([`Feedback::Silence`]) from one that carried undecodable energy
    /// ([`Feedback::Noise`]). Jamming is still indistinguishable from a
    /// collision — both are noise.
    CollisionDetection,
    /// Acknowledgement-only feedback: the successful sender learns of its
    /// success (it departs), but listeners — and the adversary — hear
    /// nothing at all ([`Feedback::Nothing`]), success or not.
    AckOnly,
}

impl ChannelModel {
    /// Map a slot's privileged ground truth to the public feedback this
    /// model delivers to every listener and to the adversary.
    ///
    /// Pure and branch-only: safe on the engine's zero-allocation hot
    /// path. Under [`NoCollisionDetection`](Self::NoCollisionDetection)
    /// this is exactly [`SlotOutcome::feedback`].
    #[inline]
    pub fn feedback(self, outcome: SlotOutcome) -> Feedback {
        match self {
            ChannelModel::NoCollisionDetection => outcome.feedback(),
            ChannelModel::CollisionDetection => match outcome {
                SlotOutcome::Delivered(id) => Feedback::Success(id),
                SlotOutcome::Silence => Feedback::Silence,
                SlotOutcome::Collision { .. } | SlotOutcome::Jammed { .. } => Feedback::Noise,
            },
            ChannelModel::AckOnly => Feedback::Nothing,
        }
    }

    /// Stable short name used in reports and serialized specs.
    pub fn name(self) -> &'static str {
        match self {
            ChannelModel::NoCollisionDetection => "no-cd",
            ChannelModel::CollisionDetection => "cd",
            ChannelModel::AckOnly => "ack-only",
        }
    }

    /// Whether listeners can ever observe a success under this model.
    ///
    /// `false` only for [`AckOnly`](Self::AckOnly), where protocols that
    /// react to heard successes (and adversaries that jam reactively)
    /// are structurally blind.
    #[inline]
    pub fn reveals_success(self) -> bool {
        !matches!(self, ChannelModel::AckOnly)
    }

    /// All models, in registry order.
    pub fn all() -> [ChannelModel; 3] {
        [
            ChannelModel::NoCollisionDetection,
            ChannelModel::CollisionDetection,
            ChannelModel::AckOnly,
        ]
    }
}

impl fmt::Display for ChannelModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn outcomes() -> [SlotOutcome; 4] {
        [
            SlotOutcome::Silence,
            SlotOutcome::Delivered(NodeId::new(3)),
            SlotOutcome::Collision { broadcasters: 2 },
            SlotOutcome::Jammed { broadcasters: 1 },
        ]
    }

    #[test]
    fn default_model_matches_outcome_feedback_exactly() {
        // The hard bit-identity constraint: the default model must be the
        // original hard-wired mapping for every outcome.
        for outcome in outcomes() {
            assert_eq!(
                ChannelModel::NoCollisionDetection.feedback(outcome),
                outcome.feedback(),
                "{outcome:?}"
            );
        }
        assert_eq!(ChannelModel::default(), ChannelModel::NoCollisionDetection);
    }

    #[test]
    fn cd_splits_silence_from_noise_but_not_jam_from_collision() {
        let cd = ChannelModel::CollisionDetection;
        assert_eq!(cd.feedback(SlotOutcome::Silence), Feedback::Silence);
        assert_eq!(
            cd.feedback(SlotOutcome::Collision { broadcasters: 5 }),
            Feedback::Noise
        );
        assert_eq!(
            cd.feedback(SlotOutcome::Jammed { broadcasters: 0 }),
            Feedback::Noise
        );
        assert_eq!(
            cd.feedback(SlotOutcome::Delivered(NodeId::new(1))),
            Feedback::Success(NodeId::new(1))
        );
    }

    #[test]
    fn ack_only_reveals_nothing_to_listeners() {
        for outcome in outcomes() {
            assert_eq!(
                ChannelModel::AckOnly.feedback(outcome),
                Feedback::Nothing,
                "{outcome:?}"
            );
        }
        assert!(!ChannelModel::AckOnly.reveals_success());
        assert!(ChannelModel::NoCollisionDetection.reveals_success());
        assert!(ChannelModel::CollisionDetection.reveals_success());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ChannelModel::NoCollisionDetection.name(), "no-cd");
        assert_eq!(ChannelModel::CollisionDetection.name(), "cd");
        assert_eq!(ChannelModel::AckOnly.name(), "ack-only");
        assert_eq!(ChannelModel::AckOnly.to_string(), "ack-only");
        assert_eq!(ChannelModel::all().len(), 3);
    }
}
