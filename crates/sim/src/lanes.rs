//! The bit-parallel lane engine: up to 64 seeds advanced in lockstep.
//!
//! [`Execution::BitParallel`](crate::config::Execution) turns Monte Carlo
//! replication itself into the vector dimension. Where the exact engine
//! ([`crate::engine::Simulator`]) runs one seed at a time, a
//! [`LaneSimulator`] runs one *lane* per bit of a `u64` word: the same
//! scenario under up to 64 different master seeds, one global slot at a
//! time. Per-node send decisions for all lanes are resolved together — one
//! xoshiro draw per lane from a structure-of-arrays RNG bank
//! ([`LaneRngs`]), one threshold compare per lane — and slot outcomes
//! (silence / success / collision) fall out of per-lane broadcaster counts
//! accumulated from the send masks.
//!
//! # Bit-for-bit equivalence
//!
//! The lane engine is **not** an approximation: lane `j` replays exactly
//! the RNG streams, node ids, departure records, survivor order, and slot
//! records that a scalar [`Simulator`](crate::engine::Simulator) run under
//! `lane_seeds[j]` would produce. The cross-engine conformance suite
//! (`tests/lane_equivalence.rs`) pins this per seed. The ingredients:
//!
//! * each (node, lane) pair carries its own xoshiro256++ stream, seeded by
//!   the same [`SeedSequence`] derivation the scalar engine uses, and
//!   advanced only when that lane's node actually draws;
//! * protocols participate through [`Protocol::act_lanes`], whose default
//!   implementation loops over lanes calling [`Protocol::act`] — by the
//!   [`Protocol::act_fast`] contract this produces the identical draw
//!   sequence;
//! * feedback-dependent divergence (restart-on-success, window protocols)
//!   is confined to the affected lanes by masks: a success in lane `j`
//!   restarts / notifies lane `j` only, and a drained lane freezes while
//!   the others keep stepping.
//!
//! # Eligibility and fallback
//!
//! The lane engine engages under the same conditions as skip-ahead
//! ([`lane_eligible`]): every protocol is *static until feedback*, the
//! channel is the paper's no-collision-detection model, and the adversary
//! is forecastable (non-[`Forecast::Adaptive`]). Ineligible workloads —
//! adaptive adversaries, richer channels, the dynamic cjz protocols — run
//! per-seed on the exact engine instead; requesting
//! [`Execution::BitParallel`](crate::config::Execution) is always safe.
//! The dispatch lives in the scenario/campaign runners (`contention-bench`),
//! which hand seed blocks of [`LANES`] to this engine when eligible.

use rand::rngs::SmallRng;
use rand::RngCore;

use crate::adversary::{Adversary, Forecast, SlotDecision};
use crate::channel::ChannelModel;
use crate::config::{Execution, SimConfig};
use crate::history::PublicHistory;
use crate::metrics::{DepartureRecord, SlotRecord, SurvivorRecord, Trace};
use crate::node::{NodeId, Protocol, ProtocolFactory};
use crate::rng::SeedSequence;
use crate::slot::{Feedback, SlotOutcome};

/// Number of lanes (seeds) advanced per word. One bit of every mask.
pub const LANES: usize = 64;

/// A bank of 64 independent xoshiro256++ streams in structure-of-arrays
/// layout, bit-for-bit compatible with the scalar
/// [`SmallRng`]: lane `l` seeded from `u64` seed `s`
/// yields exactly the stream of `SmallRng::seed_from_u64(s)`.
///
/// The layout exists so that drawing one `u64` from *every* lane
/// ([`draw_block`](Self::draw_block)) is a straight-line loop over four
/// `[u64; 64]` arrays — the autovectorizable hot path of the lane engine.
/// Single-lane draws ([`step_lane`](Self::step_lane), or the
/// [`LaneRng`] adapter for `dyn RngCore` consumers) advance only that
/// lane's column.
#[derive(Debug, Clone)]
pub struct LaneRngs {
    s0: [u64; LANES],
    s1: [u64; LANES],
    s2: [u64; LANES],
    s3: [u64; LANES],
    /// Lanes whose streams may advance freely (their node departed, so the
    /// stream will never be read again). [`draw_block`](Self::draw_block)
    /// uses this to take the unmasked full-word path even when some lanes
    /// are dead. Set by the engine before each act pass.
    free: u64,
}

impl LaneRngs {
    /// A bank whose lane `l` replays `SmallRng::seed_from_u64(seeds[l])`.
    pub fn from_seeds(seeds: &[u64; LANES]) -> Self {
        let mut bank = LaneRngs {
            s0: [0; LANES],
            s1: [0; LANES],
            s2: [0; LANES],
            s3: [0; LANES],
            free: 0,
        };
        for (l, &seed) in seeds.iter().enumerate() {
            bank.seed_lane(l, seed);
        }
        bank
    }

    /// (Re-)seed lane `l` exactly as `SmallRng::seed_from_u64(state)`
    /// does: four SplitMix64 outputs, with the all-zero fixed point nudged
    /// to the same constants.
    pub fn seed_lane(&mut self, l: usize, mut state: u64) {
        let mut s = [0u64; 4];
        for word in &mut s {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            *word = z;
        }
        if s.iter().all(|&w| w == 0) {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        self.s0[l] = s[0];
        self.s1[l] = s[1];
        self.s2[l] = s[2];
        self.s3[l] = s[3];
    }

    /// Mark the lanes whose streams are dead (departed nodes): they may be
    /// advanced opportunistically by [`draw_block`](Self::draw_block) to
    /// keep the full-word fast path. Never includes live or not-yet-born
    /// lanes — an unborn lane's stream must stay pristine until its node
    /// activates.
    #[inline]
    pub fn set_free_lanes(&mut self, free: u64) {
        self.free = free;
    }

    /// The current free-lane mask (see
    /// [`set_free_lanes`](Self::set_free_lanes)).
    #[inline]
    pub fn free_lanes(&self) -> u64 {
        self.free
    }

    /// One xoshiro256++ step of lane `l` — the same `u64` the scalar
    /// `SmallRng::next_u64` would produce at this point of the stream.
    #[inline]
    pub fn step_lane(&mut self, l: usize) -> u64 {
        let result = self.s0[l]
            .wrapping_add(self.s3[l])
            .rotate_left(23)
            .wrapping_add(self.s0[l]);
        let t = self.s1[l] << 17;
        self.s2[l] ^= self.s0[l];
        self.s3[l] ^= self.s1[l];
        self.s1[l] ^= self.s2[l];
        self.s0[l] ^= self.s3[l];
        self.s2[l] ^= t;
        self.s3[l] = self.s3[l].rotate_left(45);
        result
    }

    /// Draw one `u64` from every lane in `need`, writing `out[l]` for each
    /// set bit. Lanes outside `need | free_lanes` do **not** advance.
    ///
    /// When `need | free_lanes` covers the whole word this is a single
    /// unmasked pass over the four state arrays (the vectorizable fast
    /// path); otherwise only the needed columns step, one at a time.
    pub fn draw_block(&mut self, need: u64, out: &mut [u64; LANES]) {
        if need | self.free == u64::MAX {
            // Straight-line SoA loop: no per-lane branches, so the
            // autovectorizer can process several lanes per instruction.
            for (l, slot) in out.iter_mut().enumerate() {
                let r = self.s0[l]
                    .wrapping_add(self.s3[l])
                    .rotate_left(23)
                    .wrapping_add(self.s0[l]);
                *slot = r;
                let t = self.s1[l] << 17;
                self.s2[l] ^= self.s0[l];
                self.s3[l] ^= self.s1[l];
                self.s1[l] ^= self.s2[l];
                self.s0[l] ^= self.s3[l];
                self.s2[l] ^= t;
                self.s3[l] = self.s3[l].rotate_left(45);
            }
        } else {
            let mut m = need;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                out[l] = self.step_lane(l);
            }
        }
    }

    /// Draw one `u64` from every lane in `need` and resolve the draws
    /// against one shared Bernoulli threshold in the same pass, returning
    /// the mask of lanes whose draw clears it (`(r >> 11) < thr`, the
    /// scalar convention). Draw-for-draw and bit-for-bit identical to
    /// [`draw_block`](Self::draw_block) followed by the compare, but the
    /// draws never leave registers — this is the hot path of the lane
    /// engine's lockstep slot, where the whole word shares one threshold.
    pub fn draw_mask(&mut self, need: u64, thr: u64) -> u64 {
        if need | self.free == u64::MAX {
            let mut send = 0u64;
            for l in 0..LANES {
                let r = self.s0[l]
                    .wrapping_add(self.s3[l])
                    .rotate_left(23)
                    .wrapping_add(self.s0[l]);
                let t = self.s1[l] << 17;
                self.s2[l] ^= self.s0[l];
                self.s3[l] ^= self.s1[l];
                self.s1[l] ^= self.s2[l];
                self.s0[l] ^= self.s3[l];
                self.s2[l] ^= t;
                self.s3[l] = self.s3[l].rotate_left(45);
                send |= u64::from((r >> 11) < thr) << l;
            }
            send & need
        } else {
            let mut send = 0u64;
            let mut m = need;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                send |= u64::from((self.step_lane(l) >> 11) < thr) << l;
            }
            send
        }
    }

    /// A `dyn RngCore`-compatible view of lane `l`, for driving scalar
    /// [`Protocol::act`] implementations one lane at a time. Draws advance
    /// only that lane's column and match the scalar `SmallRng` word for
    /// word (including `next_u32` truncation and little-endian
    /// `fill_bytes` chunking).
    #[inline]
    pub fn lane(&mut self, l: usize) -> LaneRng<'_> {
        LaneRng {
            bank: self,
            lane: l,
        }
    }
}

/// Single-lane `RngCore` adapter over a [`LaneRngs`] bank (see
/// [`LaneRngs::lane`]).
#[derive(Debug)]
pub struct LaneRng<'a> {
    bank: &'a mut LaneRngs,
    lane: usize,
}

impl RngCore for LaneRng<'_> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.bank.step_lane(self.lane) >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.bank.step_lane(self.lane)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.bank.step_lane(self.lane).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Whether a (config, factory, adversary) combination is eligible for the
/// lane engine — the same gate the sparse engine applies, evaluated
/// up-front:
///
/// * the requested execution is [`Execution::BitParallel`];
/// * the channel is the paper's [`ChannelModel::NoCollisionDetection`]
///   (richer feedback would make non-success observes meaningful, which
///   the lane engine elides);
/// * a probe protocol instance reports
///   [`Protocol::static_until_feedback`] (non-success feedback is a
///   guaranteed no-op, success either ignored or a full restart);
/// * the adversary's forecast from slot 1 is not
///   [`Forecast::Adaptive`].
///
/// Ineligible workloads should run per-seed on the exact engine (the
/// scenario/campaign runners do this automatically), which keeps
/// `BitParallel` always safe to request.
pub fn lane_eligible<F, A>(config: &SimConfig, factory: &F, adversary: &A) -> bool
where
    F: ProtocolFactory + ?Sized,
    A: Adversary + ?Sized,
{
    config.execution == Execution::BitParallel
        && config.channel == ChannelModel::NoCollisionDetection
        && factory.spawn(NodeId::new(u64::MAX)).static_until_feedback()
        && !matches!(adversary.forecast(1), Forecast::Adaptive)
}

/// How a cell drives its protocol(s): one shared instance with native
/// lane masks, or one scalar instance per lane.
enum CellKind {
    /// The protocol opted in via [`Protocol::lane_capable`]: a single
    /// instance holds per-lane state internally and is driven through
    /// [`Protocol::act_lanes`] / [`Protocol::observe_success_lanes`] with
    /// whole-word masks.
    Shared(Box<dyn Protocol>),
    /// Scalar fallback: one protocol instance per born lane, each driven
    /// through the default [`Protocol::act_lanes`] path with a
    /// single-bit mask (which calls [`Protocol::act`] — draw-for-draw
    /// identical to the exact engine by the `act_fast` contract).
    Split(Box<[Option<Box<dyn Protocol>>; LANES]>),
}

/// One node *identity* across all lanes: lane `j`'s bit tracks the node
/// with this cell's id in lane `j`'s run. Because every lane assigns node
/// ids densely in injection order (exactly like the scalar engine), the
/// cell index equals the per-lane node id for every lane that births it.
struct Cell {
    rngs: LaneRngs,
    kind: CellKind,
    /// Lanes that have activated this node (monotone: set at injection,
    /// never cleared).
    born: u64,
    /// Lanes in which the node is currently in the system (set at
    /// injection, cleared at departure — never re-set).
    alive: u64,
    /// Whether the cell is currently in the engine's live-cell list.
    in_live: bool,
    /// Per-lane global arrival slot.
    arrival: [u64; LANES],
    /// Per-lane channel accesses (broadcast attempts).
    accesses: [u64; LANES],
}

/// Per-lane run state: the full scalar-engine bookkeeping minus the node
/// population (which lives transposed in the cells).
struct LaneState<A> {
    adversary: A,
    adversary_rng: SmallRng,
    seeds: SeedSequence,
    history: PublicHistory,
    trace: Trace,
    /// Next node id to assign (== number of nodes injected so far).
    next_node: u64,
    /// Cell indices of in-system nodes, in exactly the order the scalar
    /// engine's `nodes` vector would hold them (push on spawn,
    /// `swap_remove` at the winner's position on delivery) — this makes
    /// survivor snapshots bit-identical.
    order: Vec<u32>,
    /// Slots executed in this lane (== global slot while running; frozen
    /// at the drain slot once drained).
    slots_run: u64,
    drained: bool,
    /// Cached adversary promise: slots `..= quiet_until` inject nothing
    /// and jam iff `quiet_jam` (see [`Forecast::Quiet`]). The forecast
    /// contract makes skipping `decide` calls inside the span
    /// behaviour-preserving.
    quiet_until: u64,
    quiet_jam: bool,
    /// Set once the adversary ever forecasts [`Forecast::Adaptive`]
    /// mid-run: from then on `decide` runs every slot.
    consult_every: bool,
}

impl<A: Adversary> LaneState<A> {
    /// The adversary's decision for `slot`, consulting the forecast cache
    /// first. Inside a valid quiet span the `decide` call is skipped —
    /// the [`Forecast`] contract guarantees this cannot change the
    /// adversary's behaviour.
    fn decide(&mut self, slot: u64) -> SlotDecision {
        if !self.consult_every {
            if slot <= self.quiet_until {
                return SlotDecision {
                    jam: self.quiet_jam,
                    inject: 0,
                };
            }
            match self.adversary.forecast(slot) {
                Forecast::Quiet { until, jam } if until >= slot => {
                    self.quiet_until = until;
                    self.quiet_jam = jam;
                    return SlotDecision { jam, inject: 0 };
                }
                Forecast::Adaptive => self.consult_every = true,
                Forecast::Consult | Forecast::Quiet { .. } => {}
            }
        }
        self.adversary
            .decide(slot, &self.history, &mut self.adversary_rng)
    }

    fn drained_now(&self) -> bool {
        self.order.is_empty() && self.adversary.exhausted()
    }
}

/// The bit-parallel simulator: up to [`LANES`] seeds of the same scenario
/// advanced in lockstep, bit-for-bit equivalent per lane to a scalar
/// [`Simulator`](crate::engine::Simulator) run (see the module docs).
///
/// Construct with one master seed and one adversary instance per lane,
/// run with [`run_for`](Self::run_for) /
/// [`run_until_drained`](Self::run_until_drained) (or their streaming
/// `_with` variants), then harvest per-lane [`Trace`]s via
/// [`into_traces`](Self::into_traces).
///
/// # Examples
///
/// ```
/// use contention_sim::prelude::*;
/// use contention_sim::lanes::LaneSimulator;
///
/// // Four seeds of a lone always-broadcaster behind a 10-slot jam wall.
/// let factory = (|_: NodeId| -> Box<dyn Protocol> { Box::new(AlwaysBroadcast) })
///     .named("always");
/// let adversaries: Vec<_> = (0..4)
///     .map(|_| CompositeAdversary::new(BatchArrival::at_start(1), FrontLoadedJamming::new(10)))
///     .collect();
/// let mut sim = LaneSimulator::new(
///     SimConfig::with_seed(0),
///     &[1, 2, 3, 4],
///     factory,
///     adversaries,
/// );
/// sim.run_until_drained(1_000);
/// for trace in sim.into_traces() {
///     assert_eq!(trace.total_successes(), 1);
///     assert_eq!(trace.departures()[0].departure_slot, 11);
/// }
/// ```
pub struct LaneSimulator<F, A> {
    config: SimConfig,
    factory: F,
    lanes: Vec<LaneState<A>>,
    cells: Vec<Cell>,
    /// Indices of cells with at least one alive lane (swept lazily).
    live: Vec<u32>,
    /// Mask of lanes still stepping (a lane leaves on drain only).
    running: u64,
    /// Whether the probe protocol opted into shared-instance lane driving.
    shared: bool,
    current_slot: u64,
}

impl<F: ProtocolFactory, A: Adversary> LaneSimulator<F, A> {
    /// Build a lane simulator: lane `j` replays the scalar run of
    /// `SimConfig { seed: lane_seeds[j], ..config }` against
    /// `adversaries[j]`.
    ///
    /// `lane_seeds` and `adversaries` must have equal length in
    /// `1..=LANES`. Each lane needs its own adversary instance because
    /// adversary state (scripts, budgets, RNG) evolves per lane.
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ, are zero, or exceed [`LANES`].
    pub fn new(config: SimConfig, lane_seeds: &[u64], factory: F, adversaries: Vec<A>) -> Self {
        assert_eq!(
            lane_seeds.len(),
            adversaries.len(),
            "one adversary per lane seed"
        );
        assert!(
            !lane_seeds.is_empty() && lane_seeds.len() <= LANES,
            "lane count must be in 1..={LANES}"
        );
        let shared = factory.spawn(NodeId::new(u64::MAX)).lane_capable();
        let lanes: Vec<LaneState<A>> = lane_seeds
            .iter()
            .zip(adversaries)
            .map(|(&seed, adversary)| {
                let seeds = SeedSequence::new(seed);
                let adversary_rng = seeds.adversary_rng();
                let mut history = PublicHistory::new();
                history.set_retention(config.history_retention);
                LaneState {
                    adversary,
                    adversary_rng,
                    seeds,
                    history,
                    trace: Trace::new(),
                    next_node: 0,
                    order: Vec::new(),
                    slots_run: 0,
                    drained: false,
                    quiet_until: 0,
                    quiet_jam: false,
                    consult_every: false,
                }
            })
            .collect();
        let running = if lanes.len() == LANES {
            u64::MAX
        } else {
            (1u64 << lanes.len()) - 1
        };
        LaneSimulator {
            config,
            factory,
            lanes,
            cells: Vec::new(),
            live: Vec::new(),
            running,
            shared,
            current_slot: 0,
        }
    }

    /// Number of lanes in this block.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The last completed global slot (0 before the first step). Frozen
    /// (drained) lanes stopped earlier; see
    /// [`lane_slots`](Self::lane_slots).
    pub fn current_slot(&self) -> u64 {
        self.current_slot
    }

    /// Slots executed in lane `j` — the scalar engine's `current_slot()`
    /// for that seed.
    pub fn lane_slots(&self, j: usize) -> u64 {
        self.lanes[j].slots_run
    }

    /// Whether lane `j` has drained: no in-system nodes and an exhausted
    /// adversary. Matches the scalar engine's drain predicate whether the
    /// lane was frozen by [`run_until_drained`](Self::run_until_drained)
    /// or just ran out its fixed horizon.
    pub fn lane_drained(&self, j: usize) -> bool {
        self.lanes[j].drained || self.lanes[j].drained_now()
    }

    /// Number of in-system nodes in lane `j`.
    pub fn lane_active_count(&self, j: usize) -> usize {
        self.lanes[j].order.len()
    }

    /// The recorded trace of lane `j` so far (survivors not yet
    /// snapshotted; see [`into_traces`](Self::into_traces)).
    pub fn lane_trace(&self, j: usize) -> &Trace {
        &self.lanes[j].trace
    }

    /// Inject node `next_node` of lane `j`, activating at `slot` —
    /// mirrors the scalar engine's `spawn_node` (dense ids in injection
    /// order, per-node RNG from the lane's [`SeedSequence`]).
    fn spawn(&mut self, j: usize, slot: u64) {
        let id = self.lanes[j].next_node;
        self.lanes[j].next_node += 1;
        let idx = id as usize;
        debug_assert!(idx <= self.cells.len());
        if idx == self.cells.len() {
            // First lane to birth this node id: create the cell, seeding
            // every lane's column up-front (the seed is a pure function
            // of (lane master seed, id), so unborn lanes stay pristine —
            // their columns are never stepped until they activate).
            let mut seeds = [0u64; LANES];
            for (l, lane) in self.lanes.iter().enumerate() {
                seeds[l] = lane.seeds.node_seed(id);
            }
            let kind = if self.shared {
                CellKind::Shared(self.factory.spawn(NodeId::new(id)))
            } else {
                CellKind::Split(Box::new([const { None }; LANES]))
            };
            self.cells.push(Cell {
                rngs: LaneRngs::from_seeds(&seeds),
                kind,
                born: 0,
                alive: 0,
                in_live: false,
                arrival: [0; LANES],
                accesses: [0; LANES],
            });
        }
        let cell = &mut self.cells[idx];
        let bit = 1u64 << j;
        debug_assert_eq!(cell.born & bit, 0, "a (cell, lane) pair births once");
        cell.born |= bit;
        cell.alive |= bit;
        cell.arrival[j] = slot;
        cell.accesses[j] = 0;
        if let CellKind::Split(instances) = &mut cell.kind {
            instances[j] = Some(self.factory.spawn_with_arrival(NodeId::new(id), slot));
        }
        if !cell.in_live {
            cell.in_live = true;
            self.live.push(idx as u32);
        }
        self.lanes[j].order.push(idx as u32);
    }

    /// Execute one slot for every running lane. `store` selects per-slot
    /// trace storage (`push_slot`) over aggregate folding (`note_slot`);
    /// streamed runs always fold and hand each lane's record to
    /// `observe(lane, slot, &record)`.
    fn advance<O: FnMut(usize, u64, &SlotRecord)>(&mut self, store: bool, observe: &mut O) {
        let slot = self.current_slot + 1;
        let running = self.running;

        // Phase 1: adversary decisions and injections, per running lane.
        let mut jam_mask = 0u64;
        let mut arrivals = [0u32; LANES];
        let mut populations = [0u64; LANES];
        let mut m = running;
        while m != 0 {
            let j = m.trailing_zeros() as usize;
            m &= m - 1;
            let decision = self.lanes[j].decide(slot);
            if decision.jam {
                jam_mask |= 1 << j;
            }
            arrivals[j] = decision.inject;
            for _ in 0..decision.inject {
                self.spawn(j, slot);
            }
            populations[j] = self.lanes[j].order.len() as u64;
        }

        // Phase 2: act pass over live cells, accumulating per-lane
        // broadcaster counts and the (unique-if-single) winner cell.
        let mut counts = [0u32; LANES];
        let mut winner = [0u32; LANES];
        let mut i = 0;
        while i < self.live.len() {
            let ci = self.live[i] as usize;
            let cell = &mut self.cells[ci];
            let active = cell.alive;
            if active == 0 {
                cell.in_live = false;
                self.live.swap_remove(i);
                continue;
            }
            i += 1;
            debug_assert_eq!(active & !running, 0, "frozen lanes hold no nodes");
            cell.rngs.set_free_lanes(cell.born & !cell.alive);
            let send = match &mut cell.kind {
                CellKind::Shared(proto) => proto.act_lanes(0, &mut cell.rngs, active),
                CellKind::Split(instances) => {
                    let mut send = 0u64;
                    let mut lanes = active;
                    while lanes != 0 {
                        let l = lanes.trailing_zeros() as usize;
                        lanes &= lanes - 1;
                        let local = slot - cell.arrival[l];
                        let proto = instances[l]
                            .as_mut()
                            .expect("alive lane has a protocol instance");
                        send |= proto.act_lanes(local, &mut cell.rngs, 1 << l);
                    }
                    send
                }
            };
            debug_assert_eq!(send & !active, 0, "sends only from active lanes");
            let mut sends = send;
            while sends != 0 {
                let l = sends.trailing_zeros() as usize;
                sends &= sends - 1;
                cell.accesses[l] += 1;
                counts[l] += 1;
                winner[l] = ci as u32;
            }
        }

        // Phase 3: per-lane resolution, departures, history, records.
        let mut success_lanes = 0u64;
        let mut feedbacks = [Feedback::NoSuccess; LANES];
        let mut m = running;
        while m != 0 {
            let j = m.trailing_zeros() as usize;
            m &= m - 1;
            let jammed = jam_mask >> j & 1 == 1;
            let outcome = if jammed {
                SlotOutcome::Jammed {
                    broadcasters: counts[j],
                }
            } else {
                match counts[j] {
                    0 => SlotOutcome::Silence,
                    1 => SlotOutcome::Delivered(NodeId::new(u64::from(winner[j]))),
                    n => SlotOutcome::Collision { broadcasters: n },
                }
            };
            let feedback = self.config.channel.feedback(outcome);
            feedbacks[j] = feedback;
            if feedback.is_success() {
                success_lanes |= 1 << j;
            }
            // Departure of the successful sender, before any fan-out —
            // exactly the scalar engine's order (the winner never hears
            // its own success).
            if let SlotOutcome::Delivered(_) = outcome {
                let wc = winner[j];
                let cell = &mut self.cells[wc as usize];
                cell.alive &= !(1 << j);
                if let CellKind::Split(instances) = &mut cell.kind {
                    instances[j] = None;
                }
                let lane = &mut self.lanes[j];
                let pos = lane
                    .order
                    .iter()
                    .position(|&c| c == wc)
                    .expect("winner is tracked in its lane's order");
                lane.order.swap_remove(pos);
                lane.trace.push_departure(DepartureRecord {
                    node: NodeId::new(u64::from(wc)),
                    arrival_slot: cell.arrival[j],
                    departure_slot: slot,
                    accesses: cell.accesses[j],
                });
            }
            let lane = &mut self.lanes[j];
            lane.history.record(feedback, arrivals[j], jammed);
            lane.slots_run = slot;
            let record = SlotRecord {
                arrivals: arrivals[j],
                broadcasters: outcome.broadcasters(),
                jammed,
                active: populations[j] > 0,
                population: populations[j],
                outcome,
            };
            if store {
                lane.trace.push_slot(record);
            } else {
                lane.trace.note_slot(&record);
            }
            observe(j, slot, &record);
        }

        // Phase 4: success fan-out, masked to the lanes that heard one.
        // Non-success fan-out is elided entirely: eligibility guarantees
        // static-until-feedback protocols, whose observe is a no-op on
        // every non-success feedback.
        if success_lanes != 0 {
            for &ci in &self.live {
                let cell = &mut self.cells[ci as usize];
                let heard = cell.alive & success_lanes;
                if heard == 0 {
                    continue;
                }
                match &mut cell.kind {
                    CellKind::Shared(proto) => proto.observe_success_lanes(heard),
                    CellKind::Split(instances) => {
                        let mut lanes = heard;
                        while lanes != 0 {
                            let l = lanes.trailing_zeros() as usize;
                            lanes &= lanes - 1;
                            let local = slot - cell.arrival[l];
                            instances[l]
                                .as_mut()
                                .expect("alive lane has a protocol instance")
                                .observe(local, feedbacks[l]);
                        }
                    }
                }
            }
        }

        self.current_slot = slot;
    }

    /// Freeze every running lane that has drained (no nodes, exhausted
    /// adversary), mirroring the scalar `run_until_drained` check that
    /// precedes each slot.
    fn freeze_drained(&mut self) {
        let mut m = self.running;
        while m != 0 {
            let j = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.lanes[j].drained_now() {
                self.lanes[j].drained = true;
                self.running &= !(1 << j);
            }
        }
    }

    /// Run every lane for exactly `slots` more slots (no drain check),
    /// matching per lane the scalar [`run_for`](crate::engine::Simulator::run_for).
    pub fn run_for(&mut self, slots: u64) {
        let store = self.config.record_slots;
        let mut noop = |_: usize, _: u64, _: &SlotRecord| {};
        for _ in 0..slots {
            self.advance(store, &mut noop);
        }
    }

    /// Run every lane for `slots` more slots, streaming each lane's
    /// per-slot record to `observe(lane, slot, &record)` instead of
    /// storing it — the lane counterpart of the scalar
    /// [`run_for_with`](crate::engine::Simulator::run_for_with), with the
    /// same memory contract (aggregate totals and departures still
    /// recorded).
    pub fn run_for_with<O: FnMut(usize, u64, &SlotRecord)>(&mut self, slots: u64, mut observe: O) {
        for _ in 0..slots {
            self.advance(false, &mut observe);
        }
    }

    /// Run until every lane drains or `max_slots` elapse, whichever comes
    /// first. Each lane freezes individually at its drain slot (its trace
    /// and [`lane_slots`](Self::lane_slots) stop there) while the others
    /// keep stepping — per lane this matches the scalar
    /// [`run_until_drained`](crate::engine::Simulator::run_until_drained).
    pub fn run_until_drained(&mut self, max_slots: u64) {
        let store = self.config.record_slots;
        let mut noop = |_: usize, _: u64, _: &SlotRecord| {};
        for _ in 0..max_slots {
            self.freeze_drained();
            if self.running == 0 {
                return;
            }
            self.advance(store, &mut noop);
        }
        self.freeze_drained();
    }

    /// Streaming variant of [`run_until_drained`](Self::run_until_drained):
    /// per-slot records go to `observe(lane, slot, &record)` and are never
    /// stored, the lane counterpart of the scalar
    /// [`run_until_drained_with`](crate::engine::Simulator::run_until_drained_with).
    pub fn run_until_drained_with<O: FnMut(usize, u64, &SlotRecord)>(
        &mut self,
        max_slots: u64,
        mut observe: O,
    ) {
        for _ in 0..max_slots {
            self.freeze_drained();
            if self.running == 0 {
                return;
            }
            self.advance(false, &mut observe);
        }
        self.freeze_drained();
    }

    /// Finish the run: snapshot each lane's survivors (in the scalar
    /// engine's exact population order) and return one [`Trace`] per
    /// lane, index-aligned with the constructor's `lane_seeds`.
    pub fn into_traces(self) -> Vec<Trace> {
        let cells = self.cells;
        self.lanes
            .into_iter()
            .enumerate()
            .map(|(j, mut lane)| {
                let survivors = lane
                    .order
                    .iter()
                    .map(|&ci| {
                        let cell = &cells[ci as usize];
                        SurvivorRecord {
                            node: NodeId::new(u64::from(ci)),
                            arrival_slot: cell.arrival[j],
                            accesses: cell.accesses[j],
                        }
                    })
                    .collect();
                lane.trace.set_survivors(survivors);
                lane.trace
            })
            .collect()
    }
}

impl<F, A> std::fmt::Debug for LaneSimulator<F, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneSimulator")
            .field("lanes", &self.lanes.len())
            .field("slot", &self.current_slot)
            .field("running", &format_args!("{:#018x}", self.running))
            .field("cells", &self.cells.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{
        BatchArrival, CompositeAdversary, FrontLoadedJamming, NoJamming, NullAdversary,
        RandomJamming,
    };
    use crate::engine::Simulator;
    use crate::node::{AlwaysBroadcast, NeverBroadcast};
    use rand::{Rng, SeedableRng};

    #[test]
    fn lane_rngs_replay_smallrng_streams() {
        let seeds: Vec<u64> = (0..LANES as u64)
            .map(|i| i.wrapping_mul(0x9E37) ^ 7)
            .collect();
        let mut bank = LaneRngs::from_seeds(&seeds.clone().try_into().expect("64 seeds"));
        let mut scalars: Vec<SmallRng> =
            seeds.iter().map(|&s| SmallRng::seed_from_u64(s)).collect();
        // Interleave draws across lanes in an irregular pattern: column
        // independence means each lane still replays its scalar stream.
        for round in 0..50u64 {
            for (l, scalar) in scalars.iter_mut().enumerate() {
                if (round + l as u64).is_multiple_of(3) {
                    assert_eq!(bank.step_lane(l), scalar.next_u64(), "lane {l}");
                }
            }
        }
    }

    #[test]
    fn lane_rngs_zero_seed_matches_smallrng() {
        // seed_from_u64(0) does not hit the all-zero nudge (SplitMix64 of
        // 0 is non-zero), but pin equality anyway, plus the adapter paths.
        let mut seeds = [0u64; LANES];
        seeds[1] = 99;
        let mut bank = LaneRngs::from_seeds(&seeds);
        let mut scalar = SmallRng::seed_from_u64(0);
        let mut lane = bank.lane(0);
        assert_eq!(lane.next_u64(), scalar.next_u64());
        assert_eq!(lane.next_u32(), scalar.next_u32());
        let mut a = [0u8; 13];
        let mut b = [0u8; 13];
        lane.fill_bytes(&mut a);
        scalar.fill_bytes(&mut b);
        assert_eq!(a, b);
        let x: f64 = Rng::gen(&mut lane);
        let y: f64 = Rng::gen(&mut scalar);
        assert_eq!(x.to_bits(), y.to_bits());
    }

    #[test]
    fn draw_block_fast_path_matches_masked_path() {
        let seeds: [u64; LANES] = std::array::from_fn(|i| 1000 + i as u64);
        let mut fast = LaneRngs::from_seeds(&seeds);
        let mut slow = LaneRngs::from_seeds(&seeds);
        // fast: lanes 0..32 needed, 32..64 declared free (full word).
        fast.set_free_lanes(!0u64 << 32);
        let mut out_fast = [0u64; LANES];
        fast.draw_block((1u64 << 32) - 1, &mut out_fast);
        // slow: same need, no free lanes (masked path).
        let mut out_slow = [0u64; LANES];
        slow.draw_block((1u64 << 32) - 1, &mut out_slow);
        for l in 0..32 {
            assert_eq!(out_fast[l], out_slow[l], "lane {l}");
        }
        // The needed lanes advanced identically; the slow bank's unneeded
        // lanes must be pristine.
        let mut reference = LaneRngs::from_seeds(&seeds);
        for l in 32..LANES {
            assert_eq!(
                slow.step_lane(l),
                reference.step_lane(l),
                "lane {l} advanced"
            );
        }
    }

    #[test]
    fn eligibility_mirrors_sparse_gate() {
        let factory = |_: NodeId| -> Box<dyn Protocol> { Box::new(AlwaysBroadcast) };
        let eligible = SimConfig::with_seed(1).with_execution(Execution::BitParallel);
        let adv = CompositeAdversary::new(BatchArrival::at_start(4), NoJamming);
        assert!(lane_eligible(&eligible, &factory, &adv));
        // Wrong execution.
        assert!(!lane_eligible(&SimConfig::with_seed(1), &factory, &adv));
        // Non-default channel.
        let cd = eligible.with_channel(ChannelModel::CollisionDetection);
        assert!(!lane_eligible(&cd, &factory, &adv));
        // Adaptive adversary.
        let random = CompositeAdversary::new(BatchArrival::at_start(4), RandomJamming::new(0.5));
        assert!(!lane_eligible(&eligible, &factory, &random));
        // Slot-adaptive protocol.
        struct Dynamic;
        impl Protocol for Dynamic {
            fn name(&self) -> &'static str {
                "dynamic"
            }
            fn act(&mut self, _: u64, _: &mut dyn RngCore) -> crate::slot::Action {
                crate::slot::Action::Listen
            }
            fn observe(&mut self, _: u64, _: Feedback) {}
        }
        let dynamic = |_: NodeId| -> Box<dyn Protocol> { Box::new(Dynamic) };
        assert!(!lane_eligible(&eligible, &dynamic, &adv));
    }

    /// Compare every observable of a lane run against per-seed scalar
    /// runs: slot records, departures, survivors, drain state.
    fn assert_matches_scalar<F2, A2, MkF, MkA>(
        seeds: &[u64],
        mk_factory: MkF,
        mk_adversary: MkA,
        max_slots: u64,
    ) where
        F2: ProtocolFactory,
        A2: Adversary,
        MkF: Fn() -> F2,
        MkA: Fn() -> A2,
    {
        let config = SimConfig::with_seed(0).with_execution(Execution::BitParallel);
        let adversaries: Vec<A2> = seeds.iter().map(|_| mk_adversary()).collect();
        let mut lane_sim = LaneSimulator::new(config, seeds, mk_factory(), adversaries);
        lane_sim.run_until_drained(max_slots);
        let drained: Vec<bool> = (0..seeds.len()).map(|j| lane_sim.lane_drained(j)).collect();
        let slots: Vec<u64> = (0..seeds.len()).map(|j| lane_sim.lane_slots(j)).collect();
        let traces = lane_sim.into_traces();
        for (j, &seed) in seeds.iter().enumerate() {
            let mut scalar =
                Simulator::new(SimConfig::with_seed(seed), mk_factory(), mk_adversary());
            let reason = scalar.run_until_drained(max_slots);
            assert_eq!(
                drained[j],
                reason == crate::engine::StopReason::Drained,
                "lane {j} drain state"
            );
            assert_eq!(slots[j], scalar.current_slot(), "lane {j} slot count");
            let scalar_trace = scalar.into_trace();
            assert_eq!(traces[j].slots(), scalar_trace.slots(), "lane {j} slots");
            assert_eq!(
                traces[j].departures(),
                scalar_trace.departures(),
                "lane {j} departures"
            );
            assert_eq!(
                traces[j].survivors(),
                scalar_trace.survivors(),
                "lane {j} survivors"
            );
        }
    }

    #[test]
    fn split_path_matches_scalar_always_broadcast() {
        // Two colliders never drain; a lone broadcaster drains at once.
        // Exercises the Split fallback path (plain closures are not
        // lane-capable as factories still spawn lane-capable protocol
        // instances — force Split by probing a non-capable wrapper).
        struct Plain(AlwaysBroadcast);
        impl Protocol for Plain {
            fn name(&self) -> &'static str {
                "plain-always"
            }
            fn act(&mut self, s: u64, rng: &mut dyn RngCore) -> crate::slot::Action {
                self.0.act(s, rng)
            }
            fn observe(&mut self, s: u64, fb: Feedback) {
                self.0.observe(s, fb);
            }
            fn static_until_feedback(&self) -> bool {
                true
            }
        }
        let seeds: Vec<u64> = (100..108).collect();
        assert_matches_scalar(
            &seeds,
            || |_: NodeId| -> Box<dyn Protocol> { Box::new(Plain(AlwaysBroadcast)) },
            || CompositeAdversary::new(BatchArrival::at_start(1), FrontLoadedJamming::new(7)),
            1_000,
        );
    }

    #[test]
    fn shared_path_matches_scalar_trivial_protocols() {
        let seeds: Vec<u64> = (0..5).map(|i| 7 * i + 1).collect();
        assert_matches_scalar(
            &seeds,
            || |_: NodeId| -> Box<dyn Protocol> { Box::new(AlwaysBroadcast) },
            || CompositeAdversary::new(BatchArrival::at_start(1), FrontLoadedJamming::new(3)),
            1_000,
        );
        // Never-broadcast survivors: exercises survivor snapshots and
        // fixed-horizon (non-drained) freezing.
        assert_matches_scalar(
            &seeds,
            || |_: NodeId| -> Box<dyn Protocol> { Box::new(NeverBroadcast) },
            || CompositeAdversary::new(BatchArrival::at_start(3), NoJamming),
            50,
        );
    }

    #[test]
    fn run_for_matches_scalar_and_streams() {
        let seeds = [11u64, 22, 33];
        let config = SimConfig::with_seed(0).with_execution(Execution::BitParallel);
        let mk_adv = || CompositeAdversary::new(BatchArrival::at_start(2), NoJamming);
        let factory = |_: NodeId| -> Box<dyn Protocol> { Box::new(NeverBroadcast) };
        let adversaries = vec![mk_adv(), mk_adv(), mk_adv()];
        let mut sim = LaneSimulator::new(config, &seeds, factory, adversaries);
        let mut streamed = vec![0u64; seeds.len()];
        sim.run_for_with(40, |lane, _slot, rec| {
            streamed[lane] += rec.population;
        });
        assert_eq!(sim.current_slot(), 40);
        for (j, &seed) in seeds.iter().enumerate() {
            assert_eq!(sim.lane_slots(j), 40);
            assert!(!sim.lane_drained(j));
            let mut scalar = Simulator::new(SimConfig::with_seed(seed), factory, mk_adv());
            let mut expect = 0u64;
            scalar.run_for_with(40, |_, rec| expect += rec.population);
            assert_eq!(streamed[j], expect, "lane {j} streamed populations");
            // Streaming never stores per-slot records.
            assert_eq!(sim.lane_trace(j).recorded_len(), 0);
        }
    }

    #[test]
    fn empty_lane_runs_and_drains_immediately() {
        let factory = |_: NodeId| -> Box<dyn Protocol> { Box::new(AlwaysBroadcast) };
        let mut sim = LaneSimulator::new(
            SimConfig::with_seed(0).with_execution(Execution::BitParallel),
            &[5],
            factory,
            vec![NullAdversary],
        );
        sim.run_until_drained(100);
        assert!(sim.lane_drained(0));
        assert_eq!(sim.lane_slots(0), 0, "drains before the first slot");
        let traces = sim.into_traces();
        assert_eq!(traces[0].len(), 0);
    }

    #[test]
    fn debug_impl_mentions_lanes() {
        let factory = |_: NodeId| -> Box<dyn Protocol> { Box::new(AlwaysBroadcast) };
        let sim = LaneSimulator::new(
            SimConfig::with_seed(0),
            &[1, 2],
            factory,
            vec![NullAdversary, NullAdversary],
        );
        let s = format!("{sim:?}");
        assert!(s.contains("LaneSimulator"));
        assert!(s.contains("lanes"));
    }
}
