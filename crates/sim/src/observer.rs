//! Streaming observers: memory-bounded metrics for very long runs.
//!
//! [`crate::metrics::Trace`] stores one record per slot, which is perfect
//! for verification but costs memory linear in the horizon. For multi-
//! billion-slot endurance runs, [`StreamingStats`] folds the same
//! quantities online in O(1) space, plus dyadic checkpoint snapshots for
//! growth-curve extraction.

use crate::metrics::SlotRecord;

/// Online accumulator of the Definition 1.1 quantities.
///
/// # Examples
///
/// ```
/// use contention_sim::prelude::*;
///
/// let factory = (|_: NodeId| -> Box<dyn Protocol> { Box::new(AlwaysBroadcast) })
///     .named("always");
/// let adversary = CompositeAdversary::new(BatchArrival::at_start(1), NoJamming);
/// let mut sim = Simulator::new(SimConfig::with_seed(9), factory, adversary);
///
/// // Fold slots online instead of storing them: O(1) memory at any horizon.
/// let mut stats = StreamingStats::new();
/// sim.run_for_with(8, |_, rec| stats.record(rec));
/// assert_eq!(stats.slots(), 8);
/// assert_eq!(stats.successes(), 1);
/// // Dyadic snapshots back growth curves without a stored trace.
/// assert_eq!(stats.checkpoints().len(), 4); // t = 1, 2, 4, 8
/// ```
#[derive(Debug, Clone, Default)]
pub struct StreamingStats {
    slots: u64,
    arrivals: u64,
    jammed: u64,
    active: u64,
    successes: u64,
    broadcasts: u64,
    silence: u64,
    collisions: u64,
    max_population: u64,
    /// `(t, arrivals, jammed, active, successes)` at dyadic t.
    checkpoints: Vec<(u64, u64, u64, u64, u64)>,
    next_checkpoint: u64,
}

impl StreamingStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        StreamingStats {
            next_checkpoint: 1,
            ..Default::default()
        }
    }

    /// Fold one slot record.
    pub fn record(&mut self, rec: &SlotRecord) {
        self.slots += 1;
        self.arrivals += u64::from(rec.arrivals);
        self.jammed += u64::from(rec.jammed);
        self.active += u64::from(rec.active);
        self.successes += u64::from(rec.is_success());
        self.broadcasts += u64::from(rec.broadcasters);
        // Ground-truth outcome tallies (privileged view): the jammed count
        // above tracks adversary *decisions*; these classify what actually
        // happened on the channel, so cross-model campaigns can report
        // collision rates without record mode.
        match rec.outcome {
            crate::slot::SlotOutcome::Silence => self.silence += 1,
            crate::slot::SlotOutcome::Collision { .. } => self.collisions += 1,
            crate::slot::SlotOutcome::Delivered(_) | crate::slot::SlotOutcome::Jammed { .. } => {}
        }
        self.max_population = self.max_population.max(rec.population);
        if self.slots == self.next_checkpoint {
            self.checkpoints.push((
                self.slots,
                self.arrivals,
                self.jammed,
                self.active,
                self.successes,
            ));
            self.next_checkpoint = self.next_checkpoint.saturating_mul(2);
        }
    }

    /// Slots folded so far.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Total arrivals (`n_t`).
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Total jammed slots (`d_t`).
    pub fn jammed(&self) -> u64 {
        self.jammed
    }

    /// Total active slots (`a_t`).
    pub fn active(&self) -> u64 {
        self.active
    }

    /// Total successes.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Total broadcast attempts (summed contention).
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts
    }

    /// Ground-truth silent slots (no broadcasters, not jammed).
    pub fn silence(&self) -> u64 {
        self.silence
    }

    /// Ground-truth collision slots (≥ 2 broadcasters, not jammed).
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Largest population ever in the system.
    pub fn max_population(&self) -> u64 {
        self.max_population
    }

    /// Dyadic snapshots `(t, n_t, d_t, a_t, successes_t)`.
    pub fn checkpoints(&self) -> &[(u64, u64, u64, u64, u64)] {
        &self.checkpoints
    }

    /// Classical throughput `n_t / a_t` so far.
    pub fn classical_throughput(&self) -> f64 {
        if self.active == 0 {
            if self.arrivals == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.arrivals as f64 / self.active as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::slot::SlotOutcome;

    fn rec(arrivals: u32, jammed: bool, active: bool, outcome: SlotOutcome) -> SlotRecord {
        SlotRecord {
            arrivals,
            broadcasters: outcome.broadcasters(),
            jammed,
            active,
            population: u64::from(active) * 3,
            outcome,
        }
    }

    #[test]
    fn folds_counts() {
        let mut s = StreamingStats::new();
        s.record(&rec(
            2,
            false,
            true,
            SlotOutcome::Collision { broadcasters: 2 },
        ));
        s.record(&rec(0, true, true, SlotOutcome::Jammed { broadcasters: 1 }));
        s.record(&rec(0, false, true, SlotOutcome::Delivered(NodeId::new(0))));
        assert_eq!(s.slots(), 3);
        assert_eq!(s.arrivals(), 2);
        assert_eq!(s.jammed(), 1);
        assert_eq!(s.active(), 3);
        assert_eq!(s.successes(), 1);
        assert_eq!(s.broadcasts(), 4);
        assert_eq!(s.max_population(), 3);
        assert_eq!(s.collisions(), 1);
        assert_eq!(s.silence(), 0);
        s.record(&rec(0, false, false, SlotOutcome::Silence));
        assert_eq!(s.silence(), 1);
        // Tallies partition the slots: silence + collisions + jammed +
        // successes = slots.
        assert_eq!(
            s.silence() + s.collisions() + s.jammed() + s.successes(),
            s.slots()
        );
    }

    #[test]
    fn dyadic_checkpoints() {
        let mut s = StreamingStats::new();
        for _ in 0..10 {
            s.record(&rec(1, false, true, SlotOutcome::Silence));
        }
        let ts: Vec<u64> = s.checkpoints().iter().map(|c| c.0).collect();
        assert_eq!(ts, vec![1, 2, 4, 8]);
        // Snapshot values at t=8: arrivals 8.
        assert_eq!(s.checkpoints()[3], (8, 8, 0, 8, 0));
    }

    #[test]
    fn classical_throughput_edge_cases() {
        let mut s = StreamingStats::new();
        assert_eq!(s.classical_throughput(), 1.0);
        s.record(&rec(1, false, false, SlotOutcome::Silence));
        assert!(s.classical_throughput().is_infinite());
        s.record(&rec(0, false, true, SlotOutcome::Silence));
        assert_eq!(s.classical_throughput(), 1.0);
    }

    #[test]
    fn matches_trace_on_a_real_run() {
        use crate::adversary::{BatchArrival, CompositeAdversary, RandomJamming};
        use crate::config::SimConfig;
        use crate::engine::Simulator;
        use crate::node::{AlwaysBroadcast, Protocol};

        let factory = |_: NodeId| -> Box<dyn Protocol> { Box::new(AlwaysBroadcast) };
        let adv = CompositeAdversary::new(BatchArrival::at_start(1), RandomJamming::new(0.5));
        let mut sim = Simulator::new(SimConfig::with_seed(9), factory, adv);
        let mut stream = StreamingStats::new();
        for _ in 0..100 {
            let rec = sim.step();
            stream.record(&rec);
        }
        let trace = sim.into_trace();
        assert_eq!(stream.arrivals(), trace.total_arrivals());
        assert_eq!(stream.jammed(), trace.total_jammed());
        assert_eq!(stream.active(), trace.total_active());
        assert_eq!(stream.successes(), trace.total_successes());
    }
}
