//! Deterministic randomness plumbing.
//!
//! Every simulation is fully determined by one master `u64` seed. Each node
//! receives its own RNG derived from the master seed and its node id via
//! [SplitMix64]; the adversary gets a dedicated stream as well. Deriving
//! per-entity streams (rather than sharing one RNG) makes node behaviour
//! independent of interleaving: adding a node or an adversary draw cannot
//! perturb the randomness any other node sees, which keeps experiments
//! comparable across configurations.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Finalizer of SplitMix64 — a high-quality 64-bit mixer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives independent RNG streams from a single master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

/// Domain-separation tags so different stream families never collide.
const DOMAIN_NODE: u64 = 0x4E4F_4445; // "NODE"
const DOMAIN_ADVERSARY: u64 = 0x4144_5645; // "ADVE"
const DOMAIN_AUX: u64 = 0x4155_5800; // "AUX\0"

impl SeedSequence {
    /// A sequence rooted at `master`.
    pub fn new(master: u64) -> Self {
        SeedSequence { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Seed for node `index` (its raw id).
    pub fn node_seed(&self, index: u64) -> u64 {
        splitmix64(self.master ^ splitmix64(DOMAIN_NODE ^ index))
    }

    /// Seed for the adversary stream.
    pub fn adversary_seed(&self) -> u64 {
        splitmix64(self.master ^ DOMAIN_ADVERSARY)
    }

    /// Seed for auxiliary stream `index` (harness-level uses: trial
    /// replication, workload generation, …).
    pub fn aux_seed(&self, index: u64) -> u64 {
        splitmix64(self.master ^ splitmix64(DOMAIN_AUX ^ index))
    }

    /// RNG for node `index`.
    pub fn node_rng(&self, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.node_seed(index))
    }

    /// RNG for the adversary.
    pub fn adversary_rng(&self) -> SmallRng {
        SmallRng::seed_from_u64(self.adversary_seed())
    }

    /// RNG for auxiliary stream `index`.
    pub fn aux_rng(&self, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.aux_seed(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Consecutive inputs should produce wildly different outputs.
        let a = splitmix64(100);
        let b = splitmix64(101);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn streams_are_distinct() {
        let seq = SeedSequence::new(42);
        assert_ne!(seq.node_seed(0), seq.node_seed(1));
        assert_ne!(seq.node_seed(0), seq.adversary_seed());
        assert_ne!(seq.node_seed(0), seq.aux_seed(0));
        assert_ne!(seq.adversary_seed(), seq.aux_seed(0));
    }

    #[test]
    fn same_master_same_streams() {
        let a = SeedSequence::new(7);
        let b = SeedSequence::new(7);
        assert_eq!(a.node_seed(3), b.node_seed(3));
        let mut ra = a.node_rng(3);
        let mut rb = b.node_rng(3);
        for _ in 0..16 {
            assert_eq!(ra.next_u64(), rb.next_u64());
        }
    }

    #[test]
    fn different_master_different_streams() {
        let a = SeedSequence::new(1);
        let b = SeedSequence::new(2);
        assert_ne!(a.node_seed(0), b.node_seed(0));
        assert_ne!(a.adversary_seed(), b.adversary_seed());
    }

    #[test]
    fn master_accessor() {
        assert_eq!(SeedSequence::new(99).master(), 99);
    }
}
