//! Execution traces and throughput accounting.
//!
//! The engine records one [`SlotRecord`] per slot (privileged view: it knows
//! the true outcome, which nodes cannot see) plus one [`DepartureRecord`] per
//! delivered message. [`Trace`] exposes the cumulative quantities the paper's
//! definitions are built on: arrivals `n_t`, jammed slots `d_t`, active slots
//! `a_t`, and successes.

use crate::node::NodeId;
use crate::slot::SlotOutcome;

/// Everything that happened in one slot (privileged engine view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotRecord {
    /// Nodes injected at the beginning of this slot.
    pub arrivals: u32,
    /// Nodes that attempted to broadcast.
    pub broadcasters: u32,
    /// Whether the adversary jammed the slot.
    pub jammed: bool,
    /// Whether at least one node was in the system during the slot.
    pub active: bool,
    /// Number of nodes in the system during the slot (after injection).
    pub population: u64,
    /// The resolved outcome.
    pub outcome: SlotOutcome,
}

impl SlotRecord {
    /// Whether the slot carried a successful transmission.
    #[inline]
    pub fn is_success(&self) -> bool {
        matches!(self.outcome, SlotOutcome::Delivered(_))
    }
}

/// Lifecycle summary of a delivered node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepartureRecord {
    /// The node.
    pub node: NodeId,
    /// Global slot (1-based) in which the node was injected.
    pub arrival_slot: u64,
    /// Global slot (1-based) in which its message was delivered.
    pub departure_slot: u64,
    /// Number of broadcast attempts the node made (its *energy* /
    /// channel-access complexity), including the successful one.
    pub accesses: u64,
}

impl DepartureRecord {
    /// Number of slots the node spent in the system (≥ 1; a node that
    /// arrives and succeeds in the same slot has latency 1).
    #[inline]
    pub fn latency(&self) -> u64 {
        self.departure_slot - self.arrival_slot + 1
    }

    /// Slots the node spent listening (in the system but not
    /// broadcasting).
    #[inline]
    pub fn listens(&self) -> u64 {
        self.latency() - self.accesses
    }

    /// Model-aware energy: broadcast attempts at unit cost plus listening
    /// slots at `listen_cost` each. With `listen_cost = 0` this is the
    /// classical channel-access complexity (`accesses`); channel models
    /// where listening is expensive (full-decode collision detection) or
    /// free (ack-only radios that sleep between attempts) set their own
    /// cost via the scenario's `ChannelSpec`.
    #[inline]
    pub fn energy(&self, listen_cost: f64) -> f64 {
        self.accesses as f64 + listen_cost * self.listens() as f64
    }
}

/// Snapshot of a node still in the system when the simulation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurvivorRecord {
    /// The node.
    pub node: NodeId,
    /// Global slot (1-based) in which the node was injected.
    pub arrival_slot: u64,
    /// Broadcast attempts so far.
    pub accesses: u64,
}

/// Full execution trace of a simulation run.
///
/// # Examples
///
/// ```
/// use contention_sim::prelude::*;
///
/// let factory = (|_: NodeId| -> Box<dyn Protocol> { Box::new(AlwaysBroadcast) })
///     .named("always");
/// let adversary = CompositeAdversary::new(BatchArrival::at_start(1), NoJamming);
/// let mut sim = Simulator::new(SimConfig::with_seed(3), factory, adversary);
/// sim.run_until_drained(100);
///
/// let trace = sim.into_trace();
/// assert_eq!(trace.total_arrivals(), 1);
/// assert_eq!(trace.total_successes(), 1);
/// assert_eq!(trace.mean_latency(), Some(1.0));
/// // Prefix sums give the Definition 1.1 quantities n_t, d_t, a_t.
/// let cum = trace.cumulative();
/// assert_eq!(cum.arrivals(1), 1);
/// assert_eq!(cum.successes(1), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    slots: Vec<SlotRecord>,
    departures: Vec<DepartureRecord>,
    survivors: Vec<SurvivorRecord>,
    // Aggregate totals, maintained even when per-slot records are disabled
    // (SimConfig::without_slot_records).
    agg_slots: u64,
    agg_arrivals: u64,
    agg_jammed: u64,
    agg_active: u64,
    // Successes delivered before this trace started recording (non-zero
    // only for traces of simulators resumed from a checkpoint, whose
    // departure records cover the continuation alone).
    prior_successes: u64,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// A trace resumed from checkpointed aggregates: totals carry on from
    /// the snapshot, per-slot/departure records cover the continuation.
    pub(crate) fn resumed(
        agg_slots: u64,
        agg_arrivals: u64,
        agg_jammed: u64,
        agg_active: u64,
        prior_successes: u64,
    ) -> Self {
        Trace {
            agg_slots,
            agg_arrivals,
            agg_jammed,
            agg_active,
            prior_successes,
            ..Trace::default()
        }
    }

    pub(crate) fn push_slot(&mut self, rec: SlotRecord) {
        self.note_slot(&rec);
        self.slots.push(rec);
    }

    /// Fold a slot into the aggregate totals without storing it.
    pub(crate) fn note_slot(&mut self, rec: &SlotRecord) {
        self.agg_slots += 1;
        self.agg_arrivals += u64::from(rec.arrivals);
        self.agg_jammed += u64::from(rec.jammed);
        self.agg_active += u64::from(rec.active);
    }

    /// Fold `count` identical slots into the aggregates without storing
    /// them (sparse-engine bulk path).
    pub(crate) fn note_span(&mut self, rec: &SlotRecord, count: u64) {
        self.agg_slots += count;
        self.agg_arrivals += u64::from(rec.arrivals) * count;
        self.agg_jammed += u64::from(rec.jammed) * count;
        self.agg_active += u64::from(rec.active) * count;
    }

    /// Store `count` copies of one slot record (sparse-engine bulk path
    /// for full record mode).
    pub(crate) fn push_slot_span(&mut self, rec: SlotRecord, count: u64) {
        self.note_span(&rec, count);
        self.slots.extend(std::iter::repeat_n(rec, count as usize));
    }

    pub(crate) fn push_departure(&mut self, rec: DepartureRecord) {
        self.departures.push(rec);
    }

    pub(crate) fn set_survivors(&mut self, survivors: Vec<SurvivorRecord>) {
        self.survivors = survivors;
    }

    /// Number of slots folded into the trace (recorded or aggregate-only).
    #[inline]
    pub fn len(&self) -> u64 {
        self.agg_slots
    }

    /// Number of slots with stored per-slot records (equals [`len`](Self::len)
    /// unless slot recording was disabled).
    #[inline]
    pub fn recorded_len(&self) -> u64 {
        self.slots.len() as u64
    }

    /// `true` if no slot has been folded in.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.agg_slots == 0
    }

    /// The record of slot `t` (1-based).
    pub fn slot(&self, t: u64) -> Option<&SlotRecord> {
        if t == 0 {
            return None;
        }
        self.slots.get(t as usize - 1)
    }

    /// All slot records in order.
    pub fn slots(&self) -> &[SlotRecord] {
        &self.slots
    }

    /// All departures in delivery order.
    pub fn departures(&self) -> &[DepartureRecord] {
        &self.departures
    }

    /// Nodes still in the system at the end of the run.
    pub fn survivors(&self) -> &[SurvivorRecord] {
        &self.survivors
    }

    /// Total arrivals over the whole trace.
    pub fn total_arrivals(&self) -> u64 {
        self.agg_arrivals
    }

    /// Total successes over the whole trace (including, for resumed
    /// simulators, successes delivered before the checkpoint).
    pub fn total_successes(&self) -> u64 {
        self.prior_successes + self.departures.len() as u64
    }

    /// Total jammed slots over the whole trace.
    pub fn total_jammed(&self) -> u64 {
        self.agg_jammed
    }

    /// Total active slots over the whole trace.
    pub fn total_active(&self) -> u64 {
        self.agg_active
    }

    /// Precompute cumulative statistics for O(1) prefix queries.
    pub fn cumulative(&self) -> CumulativeTrace {
        let n = self.slots.len();
        let mut arrivals = Vec::with_capacity(n + 1);
        let mut jammed = Vec::with_capacity(n + 1);
        let mut active = Vec::with_capacity(n + 1);
        let mut successes = Vec::with_capacity(n + 1);
        arrivals.push(0);
        jammed.push(0);
        active.push(0);
        successes.push(0);
        let (mut a, mut j, mut ac, mut s) = (0u64, 0u64, 0u64, 0u64);
        for rec in &self.slots {
            a += u64::from(rec.arrivals);
            j += u64::from(rec.jammed);
            ac += u64::from(rec.active);
            s += u64::from(rec.is_success());
            arrivals.push(a);
            jammed.push(j);
            active.push(ac);
            successes.push(s);
        }
        CumulativeTrace {
            arrivals,
            jammed,
            active,
            successes,
        }
    }

    /// Mean latency of delivered nodes, if any were delivered.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.departures.is_empty() {
            return None;
        }
        let sum: u64 = self.departures.iter().map(DepartureRecord::latency).sum();
        Some(sum as f64 / self.departures.len() as f64)
    }

    /// Mean channel accesses per delivered node, if any were delivered.
    pub fn mean_accesses(&self) -> Option<f64> {
        if self.departures.is_empty() {
            return None;
        }
        let sum: u64 = self.departures.iter().map(|d| d.accesses).sum();
        Some(sum as f64 / self.departures.len() as f64)
    }

    /// Maximum channel accesses over delivered nodes.
    pub fn max_accesses(&self) -> Option<u64> {
        self.departures.iter().map(|d| d.accesses).max()
    }

    /// Mean model-aware energy per delivered node (see
    /// [`DepartureRecord::energy`]), if any were delivered.
    pub fn mean_energy(&self, listen_cost: f64) -> Option<f64> {
        if self.departures.is_empty() {
            return None;
        }
        let sum: f64 = self.departures.iter().map(|d| d.energy(listen_cost)).sum();
        Some(sum / self.departures.len() as f64)
    }

    /// The `q`-quantile of delivered-node latency (`0 ≤ q ≤ 1`), linear
    /// interpolation between order statistics. `None` if no departures or
    /// `q` out of range.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        if self.departures.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let mut lats: Vec<u64> = self
            .departures
            .iter()
            .map(DepartureRecord::latency)
            .collect();
        lats.sort_unstable();
        let pos = q * (lats.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            Some(lats[lo] as f64)
        } else {
            let frac = pos - lo as f64;
            Some(lats[lo] as f64 * (1.0 - frac) + lats[hi] as f64 * frac)
        }
    }

    /// Per-slot records as CSV (`slot,arrivals,broadcasters,jammed,active,
    /// population,outcome`). Outcome is one of `silence`, `delivered`,
    /// `collision`, `jammed` — the privileged view, for offline analysis.
    pub fn slots_to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("slot,arrivals,broadcasters,jammed,active,population,outcome\n");
        for (i, r) in self.slots.iter().enumerate() {
            let outcome = match r.outcome {
                SlotOutcome::Silence => "silence",
                SlotOutcome::Delivered(_) => "delivered",
                SlotOutcome::Collision { .. } => "collision",
                SlotOutcome::Jammed { .. } => "jammed",
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                i + 1,
                r.arrivals,
                r.broadcasters,
                u8::from(r.jammed),
                u8::from(r.active),
                r.population,
                outcome
            );
        }
        out
    }

    /// Departure records as CSV (`node,arrival_slot,departure_slot,latency,
    /// accesses`).
    pub fn departures_to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("node,arrival_slot,departure_slot,latency,accesses\n");
        for d in &self.departures {
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                d.node.raw(),
                d.arrival_slot,
                d.departure_slot,
                d.latency(),
                d.accesses
            );
        }
        out
    }
}

/// Prefix sums of a [`Trace`]: index `t` gives the count over slots `1..=t`
/// (index 0 is zero). These are exactly `n_t`, `d_t`, `a_t` and the success
/// count from Definition 1.1.
#[derive(Debug, Clone)]
pub struct CumulativeTrace {
    arrivals: Vec<u64>,
    jammed: Vec<u64>,
    active: Vec<u64>,
    successes: Vec<u64>,
}

impl CumulativeTrace {
    /// Number of slots covered.
    #[inline]
    pub fn len(&self) -> u64 {
        (self.arrivals.len() - 1) as u64
    }

    /// `true` if no slots are covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `n_t`: arrivals in slots `1..=t`.
    #[inline]
    pub fn arrivals(&self, t: u64) -> u64 {
        self.arrivals[self.clamp(t)]
    }

    /// `d_t`: jammed slots in `1..=t`.
    #[inline]
    pub fn jammed(&self, t: u64) -> u64 {
        self.jammed[self.clamp(t)]
    }

    /// `a_t`: active slots in `1..=t`.
    #[inline]
    pub fn active(&self, t: u64) -> u64 {
        self.active[self.clamp(t)]
    }

    /// Successful transmissions in `1..=t`.
    #[inline]
    pub fn successes(&self, t: u64) -> u64 {
        self.successes[self.clamp(t)]
    }

    /// Counts within a window `(from, to]` of slots.
    pub fn window_arrivals(&self, from: u64, to: u64) -> u64 {
        self.arrivals(to) - self.arrivals(from.min(to))
    }

    /// Jammed slots within `(from, to]`.
    pub fn window_jammed(&self, from: u64, to: u64) -> u64 {
        self.jammed(to) - self.jammed(from.min(to))
    }

    /// Successes within `(from, to]`.
    pub fn window_successes(&self, from: u64, to: u64) -> u64 {
        self.successes(to) - self.successes(from.min(to))
    }

    /// Classical throughput at slot `t`: `n_t / a_t` (Section 1). Returns
    /// `f64::INFINITY` when no slot is active yet but arrivals exist, and
    /// `1.0` for the degenerate empty prefix.
    pub fn classical_throughput(&self, t: u64) -> f64 {
        let n = self.arrivals(t) as f64;
        let a = self.active(t) as f64;
        if a == 0.0 {
            if n == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            n / a
        }
    }

    #[inline]
    fn clamp(&self, t: u64) -> usize {
        (t as usize).min(self.arrivals.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot::SlotOutcome;

    fn rec(arrivals: u32, jammed: bool, active: bool, outcome: SlotOutcome) -> SlotRecord {
        SlotRecord {
            arrivals,
            broadcasters: outcome.broadcasters(),
            jammed,
            active,
            population: u64::from(active),
            outcome,
        }
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.total_arrivals(), 0);
        assert_eq!(t.mean_latency(), None);
        assert_eq!(t.mean_accesses(), None);
        assert_eq!(t.max_accesses(), None);
        let c = t.cumulative();
        assert!(c.is_empty());
        assert_eq!(c.arrivals(0), 0);
        assert_eq!(c.arrivals(100), 0); // clamped
        assert_eq!(c.classical_throughput(10), 1.0);
    }

    #[test]
    fn cumulative_prefix_sums() {
        let mut t = Trace::new();
        t.push_slot(rec(
            2,
            false,
            true,
            SlotOutcome::Collision { broadcasters: 2 },
        ));
        t.push_slot(rec(0, true, true, SlotOutcome::Jammed { broadcasters: 1 }));
        t.push_slot(rec(1, false, true, SlotOutcome::Delivered(NodeId::new(0))));
        t.push_slot(rec(0, false, false, SlotOutcome::Silence));
        t.push_departure(DepartureRecord {
            node: NodeId::new(0),
            arrival_slot: 1,
            departure_slot: 3,
            accesses: 2,
        });

        let c = t.cumulative();
        assert_eq!(c.len(), 4);
        assert_eq!(c.arrivals(1), 2);
        assert_eq!(c.arrivals(3), 3);
        assert_eq!(c.jammed(2), 1);
        assert_eq!(c.jammed(4), 1);
        assert_eq!(c.active(4), 3);
        assert_eq!(c.successes(4), 1);
        assert_eq!(c.window_arrivals(1, 3), 1);
        assert_eq!(c.window_jammed(0, 4), 1);
        assert_eq!(c.window_successes(2, 3), 1);
        assert!((c.classical_throughput(3) - 1.0).abs() < 1e-12);
        assert_eq!(t.total_active(), 3);
        assert_eq!(t.total_jammed(), 1);
        assert_eq!(t.total_successes(), 1);
    }

    #[test]
    fn departure_latency_and_energy() {
        let d = DepartureRecord {
            node: NodeId::new(7),
            arrival_slot: 5,
            departure_slot: 5,
            accesses: 1,
        };
        assert_eq!(d.latency(), 1);

        let mut t = Trace::new();
        t.push_slot(rec(1, false, true, SlotOutcome::Delivered(NodeId::new(7))));
        t.push_departure(d);
        t.push_departure(DepartureRecord {
            node: NodeId::new(8),
            arrival_slot: 1,
            departure_slot: 4,
            accesses: 3,
        });
        assert_eq!(t.mean_latency(), Some(2.5));
        assert_eq!(t.mean_accesses(), Some(2.0));
        assert_eq!(t.max_accesses(), Some(3));
        // Energy: free listening reduces to mean accesses; with a listening
        // cost each departed node pays for its idle slots too. Departure 1:
        // latency 1, accesses 1, listens 0. Departure 2: latency 4,
        // accesses 3, listens 1.
        assert_eq!(t.mean_energy(0.0), Some(2.0));
        assert_eq!(t.mean_energy(0.5), Some((1.0 + 3.5) / 2.0));
        assert_eq!(Trace::new().mean_energy(1.0), None);
    }

    #[test]
    fn latency_quantiles() {
        let mut t = Trace::new();
        for (i, lat) in [1u64, 3, 5, 7, 9].iter().enumerate() {
            t.push_departure(DepartureRecord {
                node: NodeId::new(i as u64),
                arrival_slot: 1,
                departure_slot: *lat,
                accesses: 1,
            });
        }
        assert_eq!(t.latency_quantile(0.0), Some(1.0));
        assert_eq!(t.latency_quantile(0.5), Some(5.0));
        assert_eq!(t.latency_quantile(1.0), Some(9.0));
        assert_eq!(t.latency_quantile(0.25), Some(3.0));
        assert_eq!(t.latency_quantile(1.5), None);
        assert_eq!(Trace::new().latency_quantile(0.5), None);
    }

    #[test]
    fn csv_exports() {
        let mut t = Trace::new();
        t.push_slot(rec(1, true, true, SlotOutcome::Jammed { broadcasters: 1 }));
        t.push_slot(rec(0, false, true, SlotOutcome::Delivered(NodeId::new(0))));
        t.push_departure(DepartureRecord {
            node: NodeId::new(0),
            arrival_slot: 1,
            departure_slot: 2,
            accesses: 2,
        });
        let slots_csv = t.slots_to_csv();
        assert!(slots_csv.starts_with("slot,arrivals"));
        assert!(slots_csv.contains("1,1,1,1,1,1,jammed"));
        assert!(slots_csv.contains("2,0,1,0,1,1,delivered"));
        let dep_csv = t.departures_to_csv();
        assert!(dep_csv.contains("0,1,2,2,2"));
    }

    #[test]
    fn throughput_infinite_when_no_active_but_arrivals() {
        // Degenerate construction: arrivals recorded on an inactive slot
        // cannot happen in the engine, but the math must stay total.
        let mut t = Trace::new();
        t.push_slot(rec(3, false, false, SlotOutcome::Silence));
        let c = t.cumulative();
        assert!(c.classical_throughput(1).is_infinite());
    }
}
