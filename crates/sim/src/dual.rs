//! The idealized **two-channel** substrate of Section 2's framework.
//!
//! Before confronting the single-channel reality, the paper's framework
//! section imagines nodes with access to two independent channels: a *data*
//! channel running the truncated batch and a *control* channel providing
//! synchronization. The real model provides only one channel, which the
//! algorithm splits by parity (halving the slot rate) after Phase 1's
//! agreement dance.
//!
//! This module implements the imagined substrate literally: every slot,
//! each node chooses an action **per channel**, the two channels resolve
//! independently, and feedback arrives per channel. Comparing the dual-
//! channel protocol (`contention-core`'s `DualCjzProtocol`) against the
//! real one measures what the missing second channel costs — an ablation of
//! the *model*, not just of the algorithm.

use rand::rngs::SmallRng;
use rand::RngCore;

use crate::adversary::Adversary;
use crate::config::SimConfig;
use crate::history::PublicHistory;
use crate::metrics::DepartureRecord;
use crate::node::NodeId;
use crate::rng::SeedSequence;
use crate::slot::{Action, Feedback, SlotOutcome};

/// Which of the two physical channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelId {
    /// The data channel (payload transmissions).
    Data,
    /// The control channel (synchronization).
    Ctrl,
}

/// A node algorithm for the two-channel model.
///
/// Note a node may broadcast on *both* channels in the same slot (two
/// radios — it is an idealization, after all). A success on **either**
/// channel delivers the node's message and removes it.
pub trait DualProtocol {
    /// Algorithm name.
    fn name(&self) -> &'static str;

    /// Actions for local slot `local_slot` on (data, ctrl).
    fn act(&mut self, local_slot: u64, rng: &mut dyn RngCore) -> (Action, Action);

    /// Feedback for both channels of local slot `local_slot`.
    fn observe(&mut self, local_slot: u64, data: Feedback, ctrl: Feedback);
}

/// Factory for dual-channel nodes.
pub trait DualProtocolFactory {
    /// Create the node instance.
    fn spawn(&self, id: NodeId) -> Box<dyn DualProtocol>;
}

impl<F> DualProtocolFactory for F
where
    F: Fn(NodeId) -> Box<dyn DualProtocol>,
{
    fn spawn(&self, id: NodeId) -> Box<dyn DualProtocol> {
        self(id)
    }
}

struct DualNode {
    id: NodeId,
    arrival_slot: u64,
    local_slot: u64,
    accesses: u64,
    rng: SmallRng,
    proto: Box<dyn DualProtocol>,
}

/// Summary of one dual-channel slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DualSlotRecord {
    /// Nodes injected this slot.
    pub arrivals: u32,
    /// Outcome on the data channel.
    pub data: SlotOutcome,
    /// Outcome on the control channel.
    pub ctrl: SlotOutcome,
    /// Whether the adversary jammed (both channels — one jammer story).
    pub jammed: bool,
    /// Population during the slot.
    pub population: u64,
}

/// The two-channel engine. Mirrors [`crate::engine::Simulator`] with
/// independent per-channel resolution; the adversary's single jam decision
/// hits both channels (a broadband jammer), and its feedback view is the
/// pair reduced to "any success" — she needs no more for the strategies
/// used in experiments.
pub struct DualSimulator<F, A> {
    config: SimConfig,
    seeds: SeedSequence,
    factory: F,
    adversary: A,
    adversary_rng: SmallRng,
    history: PublicHistory,
    nodes: Vec<DualNode>,
    departures: Vec<DepartureRecord>,
    slots: u64,
    successes: u64,
    next_node: u64,
}

impl<F: DualProtocolFactory, A: Adversary> DualSimulator<F, A> {
    /// Build a dual-channel simulator.
    pub fn new(config: SimConfig, factory: F, adversary: A) -> Self {
        let seeds = SeedSequence::new(config.seed);
        let adversary_rng = seeds.adversary_rng();
        DualSimulator {
            config,
            seeds,
            factory,
            adversary,
            adversary_rng,
            history: PublicHistory::new(),
            nodes: Vec::new(),
            departures: Vec::new(),
            slots: 0,
            successes: 0,
            next_node: 0,
        }
    }

    /// Nodes currently in the system.
    pub fn active_count(&self) -> usize {
        self.nodes.len()
    }

    /// Completed slots.
    pub fn current_slot(&self) -> u64 {
        self.slots
    }

    /// Delivered messages.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Departure records.
    pub fn departures(&self) -> &[DepartureRecord] {
        &self.departures
    }

    fn resolve(broadcasters: &[usize], nodes: &[DualNode], jammed: bool) -> SlotOutcome {
        if jammed {
            SlotOutcome::Jammed {
                broadcasters: broadcasters.len() as u32,
            }
        } else {
            match broadcasters.len() {
                0 => SlotOutcome::Silence,
                1 => SlotOutcome::Delivered(nodes[broadcasters[0]].id),
                n => SlotOutcome::Collision {
                    broadcasters: n as u32,
                },
            }
        }
    }

    /// Execute one slot on both channels.
    pub fn step(&mut self) -> DualSlotRecord {
        let slot = self.slots + 1;
        let decision = self
            .adversary
            .decide(slot, &self.history, &mut self.adversary_rng);
        for _ in 0..decision.inject {
            let id = NodeId::new(self.next_node);
            let rng = self.seeds.node_rng(self.next_node);
            self.next_node += 1;
            let proto = self.factory.spawn(id);
            self.nodes.push(DualNode {
                id,
                arrival_slot: slot,
                local_slot: 0,
                accesses: 0,
                rng,
                proto,
            });
        }
        let population = self.nodes.len() as u64;

        let mut data_tx: Vec<usize> = Vec::new();
        let mut ctrl_tx: Vec<usize> = Vec::new();
        for (idx, node) in self.nodes.iter_mut().enumerate() {
            let (d, c) = node.proto.act(node.local_slot, &mut node.rng);
            if d.is_broadcast() {
                node.accesses += 1;
                data_tx.push(idx);
            }
            if c.is_broadcast() {
                node.accesses += 1;
                ctrl_tx.push(idx);
            }
        }

        let data = Self::resolve(&data_tx, &self.nodes, decision.jam);
        let ctrl = Self::resolve(&ctrl_tx, &self.nodes, decision.jam);

        // Departures: a success on either channel delivers. (The same node
        // cannot deliver twice; if it uniquely succeeded on both channels at
        // once, it still leaves once.)
        let mut leavers: Vec<NodeId> = Vec::new();
        if let SlotOutcome::Delivered(id) = data {
            leavers.push(id);
        }
        if let SlotOutcome::Delivered(id) = ctrl {
            if !leavers.contains(&id) {
                leavers.push(id);
            }
        }
        for id in leavers {
            if let Some(pos) = self.nodes.iter().position(|n| n.id == id) {
                let node = self.nodes.swap_remove(pos);
                self.departures.push(DepartureRecord {
                    node: node.id,
                    arrival_slot: node.arrival_slot,
                    departure_slot: slot,
                    accesses: node.accesses,
                });
                self.successes += 1;
            }
        }

        let data_fb = data.feedback();
        let ctrl_fb = ctrl.feedback();
        for node in &mut self.nodes {
            node.proto.observe(node.local_slot, data_fb, ctrl_fb);
            node.local_slot += 1;
        }

        // Adversary history: collapse to "any success" feedback.
        let any = if data_fb.is_success() {
            data_fb
        } else {
            ctrl_fb
        };
        self.history.record(any, decision.inject, decision.jam);
        self.slots = slot;
        let _ = self.config;
        DualSlotRecord {
            arrivals: decision.inject,
            data,
            ctrl,
            jammed: decision.jam,
            population,
        }
    }

    /// Run until the system drains or `max_slots` pass; returns `true` if
    /// drained.
    pub fn run_until_drained(&mut self, max_slots: u64) -> bool {
        for _ in 0..max_slots {
            if self.nodes.is_empty() && self.adversary.exhausted() {
                return true;
            }
            self.step();
        }
        self.nodes.is_empty() && self.adversary.exhausted()
    }
}

impl<F, A> std::fmt::Debug for DualSimulator<F, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DualSimulator")
            .field("slot", &self.slots)
            .field("active", &self.nodes.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{BatchArrival, CompositeAdversary, NoJamming, ScriptedJamming};

    /// Sends on data always, listens on ctrl.
    struct DataBlaster;
    impl DualProtocol for DataBlaster {
        fn name(&self) -> &'static str {
            "data-blaster"
        }
        fn act(&mut self, _: u64, _: &mut dyn RngCore) -> (Action, Action) {
            (Action::Broadcast, Action::Listen)
        }
        fn observe(&mut self, _: u64, _: Feedback, _: Feedback) {}
    }

    /// Sends on both channels every slot.
    struct DualBlaster;
    impl DualProtocol for DualBlaster {
        fn name(&self) -> &'static str {
            "dual-blaster"
        }
        fn act(&mut self, _: u64, _: &mut dyn RngCore) -> (Action, Action) {
            (Action::Broadcast, Action::Broadcast)
        }
        fn observe(&mut self, _: u64, _: Feedback, _: Feedback) {}
    }

    #[test]
    fn single_node_delivers_on_data_channel() {
        let factory = |_: NodeId| -> Box<dyn DualProtocol> { Box::new(DataBlaster) };
        let adv = CompositeAdversary::new(BatchArrival::at_start(1), NoJamming);
        let mut sim = DualSimulator::new(SimConfig::with_seed(1), factory, adv);
        let rec = sim.step();
        assert!(matches!(rec.data, SlotOutcome::Delivered(_)));
        assert_eq!(rec.ctrl, SlotOutcome::Silence);
        assert_eq!(sim.successes(), 1);
        assert_eq!(sim.active_count(), 0);
    }

    #[test]
    fn channels_resolve_independently() {
        // Two data-blasters collide on data; ctrl stays silent.
        let factory = |_: NodeId| -> Box<dyn DualProtocol> { Box::new(DataBlaster) };
        let adv = CompositeAdversary::new(BatchArrival::at_start(2), NoJamming);
        let mut sim = DualSimulator::new(SimConfig::with_seed(2), factory, adv);
        let rec = sim.step();
        assert_eq!(rec.data, SlotOutcome::Collision { broadcasters: 2 });
        assert_eq!(rec.ctrl, SlotOutcome::Silence);
        assert_eq!(sim.active_count(), 2);
    }

    #[test]
    fn dual_success_delivers_once() {
        // One node succeeding on both channels simultaneously leaves once.
        let factory = |_: NodeId| -> Box<dyn DualProtocol> { Box::new(DualBlaster) };
        let adv = CompositeAdversary::new(BatchArrival::at_start(1), NoJamming);
        let mut sim = DualSimulator::new(SimConfig::with_seed(3), factory, adv);
        let rec = sim.step();
        assert!(matches!(rec.data, SlotOutcome::Delivered(_)));
        assert!(matches!(rec.ctrl, SlotOutcome::Delivered(_)));
        assert_eq!(sim.successes(), 1);
        assert_eq!(sim.departures().len(), 1);
        // Two accesses: one per channel.
        assert_eq!(sim.departures()[0].accesses, 2);
    }

    #[test]
    fn broadband_jam_hits_both_channels() {
        let factory = |_: NodeId| -> Box<dyn DualProtocol> { Box::new(DualBlaster) };
        let adv = CompositeAdversary::new(BatchArrival::at_start(1), ScriptedJamming::new([1]));
        let mut sim = DualSimulator::new(SimConfig::with_seed(4), factory, adv);
        let rec = sim.step();
        assert!(matches!(rec.data, SlotOutcome::Jammed { .. }));
        assert!(matches!(rec.ctrl, SlotOutcome::Jammed { .. }));
        assert_eq!(sim.successes(), 0);
    }

    #[test]
    fn run_until_drained_works() {
        let factory = |_: NodeId| -> Box<dyn DualProtocol> { Box::new(DataBlaster) };
        let adv = CompositeAdversary::new(BatchArrival::at_start(1), NoJamming);
        let mut sim = DualSimulator::new(SimConfig::with_seed(5), factory, adv);
        assert!(sim.run_until_drained(10));
        assert_eq!(sim.current_slot(), 1);
    }
}
