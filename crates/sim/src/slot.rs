//! Slot-level primitives: channel feedback, node actions, and parity.
//!
//! Time is divided into discrete, synchronized slots, numbered from `1`
//! globally. Nodes, however, never see global slot numbers: each node only
//! observes its *local* clock (slots since its own activation) and the
//! channel feedback, exactly as in the paper's model, where no global clock
//! is available.

use std::fmt;

use crate::node::NodeId;

/// Channel feedback delivered to every listener at the end of a slot.
///
/// Which variants can actually occur is decided by the configured
/// [`ChannelModel`](crate::channel::ChannelModel) — the paper's model is
/// [`ChannelModel::NoCollisionDetection`](crate::channel::ChannelModel),
/// under which a slot with zero broadcasters (silence), a slot with two or
/// more broadcasters (collision), and a jammed slot are all reported
/// identically as [`Feedback::NoSuccess`]. Only a slot in which exactly one
/// node broadcast — and which was not jammed — produces
/// [`Feedback::Success`]. Richer models split `NoSuccess` into
/// [`Feedback::Silence`] / [`Feedback::Noise`] (ternary collision
/// detection) or collapse everything to [`Feedback::Nothing`] (ack-only).
///
/// The adversary receives the *same* feedback stream as the listeners;
/// under the paper's model she cannot distinguish silence from collision
/// either (Section 1, "Additional model details").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feedback {
    /// Exactly one node broadcast in an unjammed slot; its message was
    /// received by every node in the system. The id identifies the sender so
    /// that bookkeeping (and the sender itself) can tell whose message got
    /// through; protocols must not extract any other information from it.
    Success(NodeId),
    /// No message got through: silence, collision, or jamming —
    /// indistinguishable. The only failure feedback of the paper's
    /// no-collision-detection model.
    NoSuccess,
    /// Collision-detection models only: the slot was verifiably *empty*
    /// (no broadcasters, not jammed).
    Silence,
    /// Collision-detection models only: the channel carried energy but no
    /// decodable message — a collision or a jammed slot. (Jamming is
    /// indistinguishable from collision even with collision detection.)
    Noise,
    /// Ack-only models: listeners receive no channel feedback at all.
    /// A node can still infer that its *own* broadcast failed from the
    /// fact that it is still in the system.
    Nothing,
}

impl Feedback {
    /// Returns `true` if this feedback reports a successful transmission.
    #[inline]
    pub fn is_success(self) -> bool {
        matches!(self, Feedback::Success(_))
    }

    /// Returns the id of the successful sender, if any.
    #[inline]
    pub fn sender(self) -> Option<NodeId> {
        match self {
            Feedback::Success(id) => Some(id),
            _ => None,
        }
    }
}

impl fmt::Display for Feedback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Feedback::Success(id) => write!(f, "success({id})"),
            Feedback::NoSuccess => f.write_str("no-success"),
            Feedback::Silence => f.write_str("silence"),
            Feedback::Noise => f.write_str("noise"),
            Feedback::Nothing => f.write_str("nothing"),
        }
    }
}

/// A node's decision for one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Attempt to broadcast the node's message in this slot.
    Broadcast,
    /// Stay idle and listen to the channel.
    Listen,
}

impl Action {
    /// Returns `true` for [`Action::Broadcast`].
    #[inline]
    pub fn is_broadcast(self) -> bool {
        matches!(self, Action::Broadcast)
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Broadcast => f.write_str("broadcast"),
            Action::Listen => f.write_str("listen"),
        }
    }
}

/// Parity of a slot index, used to split one physical channel into the
/// conceptual "odd channel" and "even channel" of Section 2.
///
/// A node only ever computes parity of its *local* clock or of offsets
/// between local events, so no global agreement on which parity class is
/// "odd" is required (footnote 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Parity {
    /// Slots whose index is even.
    Even,
    /// Slots whose index is odd.
    Odd,
}

impl Parity {
    /// Parity of the given slot index.
    #[inline]
    pub fn of(slot: u64) -> Self {
        if slot.is_multiple_of(2) {
            Parity::Even
        } else {
            Parity::Odd
        }
    }

    /// The opposite parity class (the "other channel", written ᾱ in the
    /// paper).
    #[inline]
    pub fn other(self) -> Self {
        match self {
            Parity::Even => Parity::Odd,
            Parity::Odd => Parity::Even,
        }
    }

    /// Returns `true` if `slot` belongs to this parity class.
    #[inline]
    pub fn contains(self, slot: u64) -> bool {
        Parity::of(slot) == self
    }
}

impl fmt::Display for Parity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parity::Even => f.write_str("even"),
            Parity::Odd => f.write_str("odd"),
        }
    }
}

/// Outcome of resolving one slot, as recorded by the engine.
///
/// This is *privileged* information (it distinguishes silence, collision and
/// jamming); it is used only by metrics and tests, never fed back to nodes or
/// to the adversary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOutcome {
    /// No node broadcast and the slot was not jammed.
    Silence,
    /// Exactly one node broadcast in an unjammed slot.
    Delivered(NodeId),
    /// Two or more nodes broadcast (collision), slot not jammed.
    Collision {
        /// Number of simultaneous broadcasters (≥ 2).
        broadcasters: u32,
    },
    /// The adversary jammed the slot; `broadcasters` nodes attempted anyway.
    Jammed {
        /// Number of nodes that attempted to broadcast despite the jam.
        broadcasters: u32,
    },
}

impl SlotOutcome {
    /// The public feedback corresponding to this outcome under the
    /// paper's **no-collision-detection** model — the only part visible to
    /// nodes and the adversary. Other models map outcomes differently; see
    /// [`ChannelModel::feedback`](crate::channel::ChannelModel::feedback),
    /// for which this is the default case.
    #[inline]
    pub fn feedback(self) -> Feedback {
        match self {
            SlotOutcome::Delivered(id) => Feedback::Success(id),
            _ => Feedback::NoSuccess,
        }
    }

    /// Number of nodes that attempted to broadcast in the slot.
    #[inline]
    pub fn broadcasters(self) -> u32 {
        match self {
            SlotOutcome::Silence => 0,
            SlotOutcome::Delivered(_) => 1,
            SlotOutcome::Collision { broadcasters } | SlotOutcome::Jammed { broadcasters } => {
                broadcasters
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feedback_success_accessors() {
        let fb = Feedback::Success(NodeId::new(7));
        assert!(fb.is_success());
        assert_eq!(fb.sender(), Some(NodeId::new(7)));
        for fb in [
            Feedback::NoSuccess,
            Feedback::Silence,
            Feedback::Noise,
            Feedback::Nothing,
        ] {
            assert!(!fb.is_success());
            assert_eq!(fb.sender(), None);
        }
    }

    #[test]
    fn feedback_display_names_are_stable() {
        assert_eq!(Feedback::Silence.to_string(), "silence");
        assert_eq!(Feedback::Noise.to_string(), "noise");
        assert_eq!(Feedback::Nothing.to_string(), "nothing");
    }

    #[test]
    fn parity_of_and_other() {
        assert_eq!(Parity::of(0), Parity::Even);
        assert_eq!(Parity::of(1), Parity::Odd);
        assert_eq!(Parity::of(2), Parity::Even);
        assert_eq!(Parity::Even.other(), Parity::Odd);
        assert_eq!(Parity::Odd.other(), Parity::Even);
        assert!(Parity::Odd.contains(3));
        assert!(!Parity::Odd.contains(4));
    }

    #[test]
    fn parity_other_is_involution() {
        for p in [Parity::Even, Parity::Odd] {
            assert_eq!(p.other().other(), p);
        }
    }

    #[test]
    fn outcome_feedback_hides_cause() {
        // Silence, collision, and jamming must be indistinguishable in the
        // public feedback — the defining property of "no collision
        // detection".
        assert_eq!(SlotOutcome::Silence.feedback(), Feedback::NoSuccess);
        assert_eq!(
            SlotOutcome::Collision { broadcasters: 5 }.feedback(),
            Feedback::NoSuccess
        );
        assert_eq!(
            SlotOutcome::Jammed { broadcasters: 1 }.feedback(),
            Feedback::NoSuccess
        );
        assert_eq!(
            SlotOutcome::Delivered(NodeId::new(3)).feedback(),
            Feedback::Success(NodeId::new(3))
        );
    }

    #[test]
    fn outcome_broadcaster_counts() {
        assert_eq!(SlotOutcome::Silence.broadcasters(), 0);
        assert_eq!(SlotOutcome::Delivered(NodeId::new(1)).broadcasters(), 1);
        assert_eq!(SlotOutcome::Collision { broadcasters: 4 }.broadcasters(), 4);
        assert_eq!(SlotOutcome::Jammed { broadcasters: 0 }.broadcasters(), 0);
    }

    #[test]
    fn action_display_and_predicates() {
        assert!(Action::Broadcast.is_broadcast());
        assert!(!Action::Listen.is_broadcast());
        assert_eq!(Action::Broadcast.to_string(), "broadcast");
        assert_eq!(Feedback::NoSuccess.to_string(), "no-success");
        assert_eq!(Parity::Even.to_string(), "even");
    }
}
