//! The slot-synchronous simulation engine.
//!
//! Per slot (global index `t`, 1-based):
//!
//! 1. the adversary sees the public history of slots `1..t` and returns a
//!    [`SlotDecision`](crate::adversary::SlotDecision) (jam? inject how many?);
//! 2. injected nodes activate at the beginning of `t` and may act in `t`;
//! 3. every active node picks [`Action::Broadcast`] or [`Action::Listen`];
//! 4. the slot resolves: jammed ⇒ no success; exactly one broadcaster ⇒
//!    success (sender leaves); otherwise ⇒ no success;
//! 5. all remaining nodes and the adversary observe the same feedback,
//!    produced from the slot's ground truth by the configured
//!    [`ChannelModel`](crate::channel::ChannelModel) (the default is the
//!    paper's collision-detection-free binary feedback).
//!
//! The engine is fully deterministic given the master seed in
//! [`SimConfig`]: nodes and the adversary each draw from independent derived
//! streams (see [`crate::rng::SeedSequence`]).

use crate::adversary::Adversary;
use crate::config::{Execution, SimConfig};
use crate::history::PublicHistory;
use crate::metrics::{DepartureRecord, SlotRecord, SurvivorRecord, Trace};
use crate::node::{NodeId, Protocol, ProtocolFactory};
use crate::rng::SeedSequence;
use crate::slot::{Action, SlotOutcome};
use crate::sparse::SparseMode;

use rand::rngs::SmallRng;

/// One active node. Laid out C-style with the hot-loop fields first: the
/// per-slot act path touches only the leading 56 bytes (RNG state, the
/// fat protocol pointer, arrival slot); `accesses` and `id` are written
/// on broadcasts and delivery only. 72 bytes total on 64-bit targets.
#[repr(C)]
pub(crate) struct ActiveNode {
    pub(crate) rng: SmallRng,
    pub(crate) proto: Box<dyn Protocol>,
    pub(crate) arrival_slot: u64,
    pub(crate) accesses: u64,
    pub(crate) id: NodeId,
}

impl ActiveNode {
    /// The node's local clock in global slot `slot` (0 in its arrival
    /// slot). Derived rather than stored so the hot path never needs a
    /// per-node clock-increment pass.
    #[inline]
    fn local_slot(&self, slot: u64) -> u64 {
        slot - self.arrival_slot
    }
}

/// Why a run loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The requested number of slots elapsed.
    SlotLimit,
    /// The system drained: no active nodes and the adversary is exhausted.
    Drained,
}

/// The simulator. Owns the node population, the adversary, the public
/// history and the recorded [`Trace`].
///
/// # Examples
///
/// ```
/// use contention_sim::prelude::*;
///
/// // A lone always-broadcasting node succeeds as soon as the jam wall ends.
/// let factory = (|_: NodeId| -> Box<dyn Protocol> { Box::new(AlwaysBroadcast) })
///     .named("always");
/// let adversary = CompositeAdversary::new(
///     BatchArrival::at_start(1),
///     FrontLoadedJamming::new(10),
/// );
/// let mut sim = Simulator::new(SimConfig::with_seed(1), factory, adversary);
/// assert_eq!(sim.run_until_drained(1_000), StopReason::Drained);
/// let trace = sim.into_trace();
/// assert_eq!(trace.total_successes(), 1);
/// assert_eq!(trace.departures()[0].departure_slot, 11);
/// ```
pub struct Simulator<F, A> {
    pub(crate) config: SimConfig,
    pub(crate) seeds: SeedSequence,
    pub(crate) factory: F,
    pub(crate) adversary: A,
    pub(crate) adversary_rng: SmallRng,
    pub(crate) history: PublicHistory,
    pub(crate) nodes: Vec<ActiveNode>,
    pub(crate) trace: Trace,
    pub(crate) next_node: u64,
    pub(crate) current_slot: u64,
    /// Scratch buffer of broadcaster indices, reused across slots so the
    /// steady-state hot path performs no per-slot heap allocation.
    pub(crate) broadcasters: Vec<u32>,
    /// How many active nodes observe no-success feedback; when zero the
    /// engine skips the whole no-success fan-out pass.
    pub(crate) failure_observers: u64,
    /// Sparse-execution state: undecided until the first run call, then
    /// either declined (exact engine) or engaged (see [`crate::sparse`]).
    pub(crate) sparse: SparseMode,
}

impl<F: ProtocolFactory, A: Adversary> Simulator<F, A> {
    /// Build a simulator from a config, a protocol factory and an adversary.
    pub fn new(config: SimConfig, factory: F, adversary: A) -> Self {
        let seeds = SeedSequence::new(config.seed);
        let adversary_rng = seeds.adversary_rng();
        let mut history = PublicHistory::new();
        // The adversary-visible window is a model knob, deliberately
        // independent of trace recording: record-mode choices must never
        // change what an adaptive adversary can see.
        history.set_retention(config.history_retention);
        Simulator {
            config,
            seeds,
            factory,
            adversary,
            adversary_rng,
            history,
            nodes: Vec::new(),
            trace: Trace::new(),
            next_node: 0,
            current_slot: 0,
            broadcasters: Vec::new(),
            failure_observers: 0,
            sparse: SparseMode::Undecided,
        }
    }

    /// Number of nodes currently in the system.
    pub fn active_count(&self) -> usize {
        self.nodes.len()
    }

    /// The last completed global slot (0 before the first step).
    pub fn current_slot(&self) -> u64 {
        self.current_slot
    }

    /// The public history (what the adversary sees).
    pub fn history(&self) -> &PublicHistory {
        &self.history
    }

    /// The recorded trace so far (privileged view).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The adversary (for post-run inspection).
    pub fn adversary(&self) -> &A {
        &self.adversary
    }

    /// Inject `count` nodes directly (bypassing the adversary), activating
    /// at the *next* slot. Useful for pre-seeding test populations.
    pub fn seed_nodes(&mut self, count: u32) {
        let at = self.current_slot + 1;
        let first = self.nodes.len();
        for _ in 0..count {
            self.spawn_node(at);
        }
        // If the sparse engine is already engaged, the new nodes must
        // enter its planning structures (pre-engagement seeding is
        // adopted wholesale when skip-ahead resolves).
        self.sparse_adopt(first);
    }

    pub(crate) fn spawn_node(&mut self, arrival_slot: u64) {
        let id = NodeId::new(self.next_node);
        let rng = self.seeds.node_rng(self.next_node);
        self.next_node += 1;
        let proto = self.factory.spawn_with_arrival(id, arrival_slot);
        self.failure_observers += u64::from(proto.observes_failures());
        self.nodes.push(ActiveNode {
            rng,
            proto,
            arrival_slot,
            accesses: 0,
            id,
        });
    }

    /// Execute one slot *without touching the trace*: the allocation-free
    /// hot path. Callers decide what (if anything) to record — see
    /// [`step`](Self::step), [`run_for`](Self::run_for) and
    /// [`run_for_with`](Self::run_for_with).
    fn advance(&mut self) -> SlotRecord {
        let slot = self.current_slot + 1;

        // 1. Adversary decision from public info only.
        let decision = self
            .adversary
            .decide(slot, &self.history, &mut self.adversary_rng);

        // 2. Inject new nodes; they act in this slot with local_slot 0.
        // Pre-seeded nodes (seed_nodes) already have arrival_slot == slot.
        let arrivals = decision.inject;
        for _ in 0..arrivals {
            self.spawn_node(slot);
        }

        let population = self.nodes.len() as u64;
        let active = population > 0;

        // 3. Collect actions into the reusable scratch buffer.
        let broadcasters = &mut self.broadcasters;
        broadcasters.clear();
        for (idx, node) in self.nodes.iter_mut().enumerate() {
            debug_assert!(node.arrival_slot <= slot);
            let action = node.proto.act_fast(node.local_slot(slot), &mut node.rng);
            if action == Action::Broadcast {
                node.accesses += 1;
                broadcasters.push(idx as u32);
            }
        }

        // 4. Resolve.
        let outcome = if decision.jam {
            SlotOutcome::Jammed {
                broadcasters: broadcasters.len() as u32,
            }
        } else {
            match broadcasters.len() {
                0 => SlotOutcome::Silence,
                1 => SlotOutcome::Delivered(self.nodes[broadcasters[0] as usize].id),
                n => SlotOutcome::Collision {
                    broadcasters: n as u32,
                },
            }
        };
        // The channel model maps privileged ground truth to what listeners
        // and the adversary actually hear (a pure branch: the hot path
        // stays allocation-free under every model).
        let feedback = self.config.channel.feedback(outcome);

        // 5. Departure of the successful sender (before feedback fan-out —
        // it has left the system and needs no feedback). Departure is
        // ground truth, not feedback: the sender leaves even under models
        // where listeners hear nothing.
        if let SlotOutcome::Delivered(_) = outcome {
            let idx = self.broadcasters[0] as usize;
            let node = self.nodes.swap_remove(idx);
            self.failure_observers -= u64::from(node.proto.observes_failures());
            self.trace.push_departure(DepartureRecord {
                node: node.id,
                arrival_slot: node.arrival_slot,
                departure_slot: slot,
                accesses: node.accesses,
            });
        }

        // 6. Feedback fan-out to remaining nodes. Local clocks are derived
        // (`ActiveNode::local_slot`), so no per-node increment pass is
        // needed; no-success feedback is skipped for protocols that
        // declared (via `Protocol::observes_failures`) that it cannot
        // change their state.
        if feedback.is_success() {
            for node in &mut self.nodes {
                node.proto.observe(node.local_slot(slot), feedback);
            }
        } else if self.failure_observers > 0 {
            for node in &mut self.nodes {
                if node.proto.observes_failures() {
                    node.proto.observe(node.local_slot(slot), feedback);
                }
            }
        }

        // 7. Public history (the adversary's view).
        self.history.record(feedback, arrivals, decision.jam);
        self.current_slot = slot;
        SlotRecord {
            arrivals,
            broadcasters: outcome.broadcasters(),
            jammed: decision.jam,
            active,
            population,
            outcome,
        }
    }

    /// The execution strategy actually in effect for this run:
    /// [`Execution::SkipAhead`] when the sparse engine engaged,
    /// [`Execution::Exact`] otherwise (requested exact, or skip-ahead
    /// fell back because the adversary, channel model, or protocol is
    /// slot-adaptive). Resolved on first call and sticky for the
    /// simulator's lifetime.
    pub fn execution_in_effect(&mut self) -> Execution {
        if self.sparse_active() {
            Execution::SkipAhead
        } else {
            Execution::Exact
        }
    }

    /// Execute one slot and record it in the trace (per-slot record in full
    /// mode, aggregate totals otherwise). Returns the [`SlotRecord`].
    pub fn step(&mut self) -> SlotRecord {
        if self.sparse_active() {
            return self.sparse_step();
        }
        let record = self.advance();
        if self.config.record_slots {
            self.trace.push_slot(record);
        } else {
            self.trace.note_slot(&record);
        }
        record
    }

    /// Run exactly `slots` more slots.
    ///
    /// In aggregate record mode this loop stays on the allocation-free
    /// path: it folds totals straight into the trace without storing (or
    /// exposing) per-slot records.
    pub fn run_for(&mut self, slots: u64) {
        if self.sparse_active() {
            self.run_sparse(slots, false, true, None);
            return;
        }
        if self.config.record_slots {
            for _ in 0..slots {
                self.step();
            }
        } else {
            for _ in 0..slots {
                let record = self.advance();
                self.trace.note_slot(&record);
            }
        }
    }

    /// Run `slots` more slots, streaming each slot's record to `observe`
    /// instead of storing it.
    ///
    /// This is the memory-O(1) observation path for experiments that fold
    /// their own statistics (ages, counters, [`StreamingStats`]): per-slot
    /// records are handed to the closure by reference and never pushed to
    /// the trace, regardless of the configured record mode. Aggregate trace
    /// totals and departures are still maintained.
    ///
    /// Note that in full record mode, mixing streamed and recorded slots
    /// leaves [`Trace::slot`] indexing misaligned (stored records no longer
    /// start at slot 1); streaming is intended for aggregate-style runs
    /// that never index the trace by slot.
    ///
    /// [`StreamingStats`]: crate::observer::StreamingStats
    /// [`Trace::slot`]: crate::metrics::Trace::slot
    pub fn run_for_with<F2>(&mut self, slots: u64, mut observe: F2)
    where
        F2: FnMut(u64, &SlotRecord),
    {
        if self.sparse_active() {
            self.run_sparse(slots, false, false, Some(&mut observe));
            return;
        }
        for _ in 0..slots {
            let record = self.advance();
            self.trace.note_slot(&record);
            observe(self.current_slot, &record);
        }
    }

    /// Run until the system drains (no active nodes and the adversary is
    /// exhausted) or `max_slots` elapse, whichever comes first, streaming
    /// each slot's record to `observe` instead of storing it.
    ///
    /// The drain-bounded counterpart of
    /// [`run_for_with`](Self::run_for_with), with the same memory
    /// contract: per-slot records go to the closure by reference and are
    /// never pushed to the trace (aggregate totals and departures are
    /// still maintained), so campaign-style sweeps that fold their own
    /// statistics stay O(1) per run regardless of how long the drain
    /// takes. The same full-record-mode indexing caveat applies.
    pub fn run_until_drained_with<F2>(&mut self, max_slots: u64, mut observe: F2) -> StopReason
    where
        F2: FnMut(u64, &SlotRecord),
    {
        if self.sparse_active() {
            return self.run_sparse(max_slots, true, false, Some(&mut observe));
        }
        for _ in 0..max_slots {
            if self.nodes.is_empty() && self.adversary.exhausted() {
                return StopReason::Drained;
            }
            let record = self.advance();
            self.trace.note_slot(&record);
            observe(self.current_slot, &record);
        }
        if self.nodes.is_empty() && self.adversary.exhausted() {
            StopReason::Drained
        } else {
            StopReason::SlotLimit
        }
    }

    /// Run until the system drains (no active nodes and the adversary is
    /// exhausted) or `max_slots` elapse, whichever comes first.
    pub fn run_until_drained(&mut self, max_slots: u64) -> StopReason {
        if self.sparse_active() {
            return self.run_sparse(max_slots, true, true, None);
        }
        for _ in 0..max_slots {
            if self.nodes.is_empty() && self.adversary.exhausted() {
                return StopReason::Drained;
            }
            self.step();
        }
        if self.nodes.is_empty() && self.adversary.exhausted() {
            StopReason::Drained
        } else {
            StopReason::SlotLimit
        }
    }

    /// Finish the run: snapshot survivors into the trace and return it.
    pub fn into_trace(mut self) -> Trace {
        let survivors = self
            .nodes
            .iter()
            .map(|n| SurvivorRecord {
                node: n.id,
                arrival_slot: n.arrival_slot,
                accesses: n.accesses,
            })
            .collect();
        self.trace.set_survivors(survivors);
        self.trace
    }

    /// Ages (in slots, inclusive) of nodes still in the system, relative to
    /// the current slot.
    pub fn survivor_ages(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|n| self.current_slot + 1 - n.arrival_slot)
            .collect()
    }
}

impl<F, A> std::fmt::Debug for Simulator<F, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("slot", &self.current_slot)
            .field("active", &self.nodes.len())
            .field("seed", &self.config.seed)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{
        BatchArrival, CompositeAdversary, FnAdversary, NoJamming, NullAdversary, RandomJamming,
        ScriptedJamming, SlotDecision,
    };
    use crate::node::{AlwaysBroadcast, NeverBroadcast, Protocol};
    use crate::slot::Feedback;
    use rand::RngCore;

    fn always() -> impl ProtocolFactory {
        |_: NodeId| -> Box<dyn Protocol> { Box::new(AlwaysBroadcast) }
    }

    fn never() -> impl ProtocolFactory {
        |_: NodeId| -> Box<dyn Protocol> { Box::new(NeverBroadcast) }
    }

    #[test]
    fn empty_system_is_inactive() {
        let mut sim = Simulator::new(SimConfig::with_seed(1), always(), NullAdversary);
        let rec = sim.step();
        assert!(!rec.active);
        assert_eq!(rec.outcome, SlotOutcome::Silence);
        assert_eq!(sim.active_count(), 0);
    }

    #[test]
    fn single_broadcaster_succeeds_and_leaves() {
        let adv = CompositeAdversary::new(BatchArrival::new(1, 1), NoJamming);
        let mut sim = Simulator::new(SimConfig::with_seed(1), always(), adv);
        let rec = sim.step();
        assert!(rec.active);
        assert!(rec.is_success());
        assert_eq!(sim.active_count(), 0);
        let trace = sim.into_trace();
        assert_eq!(trace.total_successes(), 1);
        let d = trace.departures()[0];
        assert_eq!(d.arrival_slot, 1);
        assert_eq!(d.departure_slot, 1);
        assert_eq!(d.accesses, 1);
        assert_eq!(d.latency(), 1);
    }

    #[test]
    fn two_broadcasters_collide_forever() {
        let adv = CompositeAdversary::new(BatchArrival::new(1, 2), NoJamming);
        let mut sim = Simulator::new(SimConfig::with_seed(1), always(), adv);
        sim.run_for(10);
        assert_eq!(sim.active_count(), 2);
        let trace = sim.trace();
        assert_eq!(trace.total_successes(), 0);
        for rec in trace.slots() {
            assert!(matches!(
                rec.outcome,
                SlotOutcome::Collision { broadcasters: 2 } | SlotOutcome::Silence
            ));
        }
    }

    #[test]
    fn jamming_blocks_single_broadcaster() {
        let adv = CompositeAdversary::new(BatchArrival::new(1, 1), ScriptedJamming::new([1, 2]));
        let mut sim = Simulator::new(SimConfig::with_seed(1), always(), adv);
        sim.run_for(3);
        let trace = sim.trace();
        assert_eq!(
            trace.slot(1).unwrap().outcome,
            SlotOutcome::Jammed { broadcasters: 1 }
        );
        assert_eq!(
            trace.slot(2).unwrap().outcome,
            SlotOutcome::Jammed { broadcasters: 1 }
        );
        // Unjammed slot 3: the lone node finally succeeds.
        assert!(trace.slot(3).unwrap().is_success());
        assert_eq!(sim.active_count(), 0);
    }

    #[test]
    fn feedback_hides_collision_vs_silence() {
        // A protocol that records what it hears.
        struct Recorder {
            heard: Vec<Feedback>,
        }
        impl Protocol for Recorder {
            fn name(&self) -> &'static str {
                "recorder"
            }
            fn act(&mut self, _: u64, _: &mut dyn RngCore) -> Action {
                Action::Listen
            }
            fn observe(&mut self, _: u64, fb: Feedback) {
                self.heard.push(fb);
            }
        }
        // Two always-broadcasters collide; one listener records.
        // Engine-level check: feedback equals NoSuccess for collision,
        // silence, and jam alike is already enforced by SlotOutcome tests;
        // here we verify fan-out ordering and local clock.
        let adv = FnAdversary::new("script", |slot, _h, _r| match slot {
            1 => SlotDecision::inject(1), // the recorder joins alone, listens
            _ => SlotDecision::IDLE,
        });
        let factory = |_: NodeId| -> Box<dyn Protocol> { Box::new(Recorder { heard: vec![] }) };
        let mut sim = Simulator::new(SimConfig::with_seed(3), factory, adv);
        sim.run_for(3);
        assert_eq!(sim.active_count(), 1);
        // The recorder heard 3 NoSuccess feedbacks (its own silence).
        let trace = sim.trace();
        assert_eq!(trace.total_successes(), 0);
        assert_eq!(trace.slot(1).unwrap().population, 1);
    }

    #[test]
    fn local_clock_starts_at_zero_on_arrival_slot() {
        struct ClockCheck {
            expected_next: u64,
        }
        impl Protocol for ClockCheck {
            fn name(&self) -> &'static str {
                "clock-check"
            }
            fn act(&mut self, local: u64, _: &mut dyn RngCore) -> Action {
                assert_eq!(local, self.expected_next);
                Action::Listen
            }
            fn observe(&mut self, local: u64, _: Feedback) {
                assert_eq!(local, self.expected_next);
                self.expected_next += 1;
            }
        }
        let adv = CompositeAdversary::new(BatchArrival::new(5, 1), NoJamming);
        let factory =
            |_: NodeId| -> Box<dyn Protocol> { Box::new(ClockCheck { expected_next: 0 }) };
        let mut sim = Simulator::new(SimConfig::with_seed(4), factory, adv);
        sim.run_for(12);
        assert_eq!(sim.active_count(), 1);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| {
            let adv = CompositeAdversary::new(BatchArrival::new(1, 8), RandomJamming::new(0.3));
            let mut sim = Simulator::new(SimConfig::with_seed(seed), always(), adv);
            sim.run_for(200);
            sim.into_trace()
        };
        let t1 = run(42);
        let t2 = run(42);
        assert_eq!(t1.slots(), t2.slots());
        assert_eq!(t1.departures(), t2.departures());
        let t3 = run(43);
        // Different seed should differ somewhere (jam pattern at 30%).
        assert_ne!(t1.slots(), t3.slots());
    }

    #[test]
    fn run_until_drained_stops_on_drain() {
        let adv = CompositeAdversary::new(BatchArrival::new(1, 1), NoJamming);
        let mut sim = Simulator::new(SimConfig::with_seed(1), always(), adv);
        let reason = sim.run_until_drained(100);
        assert_eq!(reason, StopReason::Drained);
        assert_eq!(sim.current_slot(), 1);
    }

    #[test]
    fn run_until_drained_hits_limit() {
        let adv = CompositeAdversary::new(BatchArrival::new(1, 2), NoJamming);
        let mut sim = Simulator::new(SimConfig::with_seed(1), always(), adv);
        let reason = sim.run_until_drained(50);
        assert_eq!(reason, StopReason::SlotLimit);
        assert_eq!(sim.current_slot(), 50);
    }

    #[test]
    fn seed_nodes_preseeds_population() {
        let mut sim = Simulator::new(SimConfig::with_seed(9), never(), NullAdversary);
        sim.seed_nodes(3);
        assert_eq!(sim.active_count(), 3);
        sim.step();
        let rec = sim.trace().slot(1).unwrap();
        assert!(rec.active);
        assert_eq!(rec.population, 3);
        assert_eq!(sim.survivor_ages(), vec![1, 1, 1]);
        sim.step();
        assert_eq!(sim.survivor_ages(), vec![2, 2, 2]);
    }

    #[test]
    fn survivors_recorded_in_trace() {
        let mut sim = Simulator::new(SimConfig::with_seed(9), never(), NullAdversary);
        sim.seed_nodes(2);
        sim.run_for(5);
        let trace = sim.into_trace();
        assert_eq!(trace.survivors().len(), 2);
        assert_eq!(trace.survivors()[0].arrival_slot, 1);
        assert_eq!(trace.survivors()[0].accesses, 0);
    }

    #[test]
    fn population_counts_arrivals_same_slot() {
        let adv = CompositeAdversary::new(BatchArrival::new(2, 7), NoJamming);
        let mut sim = Simulator::new(SimConfig::with_seed(5), never(), adv);
        sim.run_for(2);
        assert_eq!(sim.trace().slot(1).unwrap().population, 0);
        assert_eq!(sim.trace().slot(2).unwrap().population, 7);
        assert_eq!(sim.trace().slot(2).unwrap().arrivals, 7);
        assert!(sim.trace().slot(2).unwrap().active);
    }

    #[test]
    fn record_mode_is_invisible_to_deep_history_adversaries() {
        // Regression: aggregate record mode used to silently cap the
        // adversary-visible history window at 4096 slots, so an adversary
        // reading slot `t - 5000` behaved *differently* between Full and
        // Aggregate runs. History retention is now a SimConfig knob,
        // default unlimited, independent of trace recording.
        let deep = || {
            FnAdversary::new("deep-history", |slot, h, _r| {
                let mut d = SlotDecision::IDLE;
                if slot % 5 == 1 {
                    d.inject = 1;
                }
                // Jam iff the slot exactly 5000 back carried a success —
                // far beyond the old hidden 4096-slot window.
                if let Some(fb) = slot.checked_sub(5000).and_then(|s| h.feedback(s)) {
                    d.jam = fb.is_success();
                }
                d
            })
        };
        let run = |record_slots: bool| {
            let config = if record_slots {
                SimConfig::with_seed(5)
            } else {
                SimConfig::with_seed(5).without_slot_records()
            };
            let mut sim = Simulator::new(config, always(), deep());
            sim.run_for(12_000);
            let recorded = sim.trace().recorded_len();
            let t = sim.trace();
            (
                t.total_successes(),
                t.total_jammed(),
                t.total_arrivals(),
                t.total_active(),
                recorded,
            )
        };
        let full = run(true);
        let aggregate = run(false);
        assert_eq!(
            full.1, aggregate.1,
            "jam decisions diverged across record modes"
        );
        assert_eq!(
            (full.0, full.2, full.3),
            (aggregate.0, aggregate.2, aggregate.3),
            "dynamics diverged across record modes"
        );
        assert!(full.1 > 0, "the deep lookup must actually trigger jams");
        assert_eq!(full.4, 12_000);
        assert_eq!(aggregate.4, 0, "aggregate mode stores no slot records");
    }

    #[test]
    fn explicit_history_retention_caps_the_window() {
        let config = SimConfig::with_seed(2).with_history_retention(16);
        let adv = CompositeAdversary::new(BatchArrival::new(1, 2), NoJamming);
        let mut sim = Simulator::new(config, always(), adv);
        sim.run_for(100);
        let h = sim.history();
        assert_eq!(h.len(), 100);
        assert_eq!(h.feedback(50), None, "evicted beyond retention");
        assert!(h.feedback(100).is_some());
        assert_eq!(h.iter().count(), 16);
    }

    #[test]
    fn run_for_with_streams_without_storing() {
        let adv = CompositeAdversary::new(BatchArrival::new(1, 4), NoJamming);
        let mut sim = Simulator::new(SimConfig::with_seed(7), always(), adv);
        let mut seen = Vec::new();
        sim.run_for_with(50, |slot, rec| seen.push((slot, rec.population)));
        assert_eq!(seen.len(), 50);
        assert_eq!(seen[0].0, 1);
        assert_eq!(seen[0].1, 4);
        // Streamed slots are folded into aggregates but never stored, even
        // though the config's record mode is Full.
        assert_eq!(sim.trace().len(), 50);
        assert_eq!(sim.trace().recorded_len(), 0);
        // A subsequent step() records normally again.
        sim.step();
        assert_eq!(sim.trace().recorded_len(), 1);
        assert_eq!(sim.trace().len(), 51);
    }

    #[test]
    fn run_until_drained_with_streams_and_stops_on_drain() {
        let adv = CompositeAdversary::new(BatchArrival::new(3, 1), NoJamming);
        let mut sim = Simulator::new(SimConfig::with_seed(7), always(), adv);
        let mut successes = 0u64;
        let reason = sim.run_until_drained_with(100_000, |_, rec| {
            successes += u64::from(rec.is_success());
        });
        assert_eq!(reason, StopReason::Drained);
        assert_eq!(successes, 1, "the observer saw the delivery");
        assert_eq!(sim.trace().recorded_len(), 0, "streamed, never stored");
        assert_eq!(sim.trace().len(), sim.current_slot());
        // Both drain variants stop at the same slot for the same seed.
        let adv = CompositeAdversary::new(BatchArrival::new(3, 1), NoJamming);
        let mut plain = Simulator::new(SimConfig::with_seed(7), always(), adv);
        assert_eq!(plain.run_until_drained(100_000), StopReason::Drained);
        assert_eq!(plain.current_slot(), sim.current_slot());
    }

    #[test]
    fn channel_model_shapes_listener_feedback() {
        use crate::channel::ChannelModel;

        // One listener alongside two permanent colliders: what it hears per
        // slot depends only on the configured model.
        struct Recorder {
            heard: Vec<Feedback>,
        }
        impl Protocol for Recorder {
            fn name(&self) -> &'static str {
                "recorder"
            }
            fn act(&mut self, _: u64, _: &mut dyn RngCore) -> Action {
                Action::Listen
            }
            fn observe(&mut self, _: u64, fb: Feedback) {
                self.heard.push(fb);
            }
        }
        let run = |model: ChannelModel| {
            // Slot 1: all three listen (recorder protocol only acts for
            // node 0; the colliders broadcast every slot). Build the mix
            // via a factory switching on node id.
            let factory = |id: NodeId| -> Box<dyn Protocol> {
                if id.raw() == 0 {
                    Box::new(Recorder { heard: vec![] })
                } else {
                    Box::new(AlwaysBroadcast)
                }
            };
            let adv = FnAdversary::new("script", |slot, _h, _r| match slot {
                1 => SlotDecision::inject(1), // recorder, alone: silence
                2 => SlotDecision::inject(2), // colliders join: collision
                3 => SlotDecision {
                    jam: true,
                    inject: 0,
                }, // jammed collision
                _ => SlotDecision::IDLE,
            });
            let mut sim = Simulator::new(SimConfig::with_seed(5).with_channel(model), factory, adv);
            sim.run_for(3);
            // Ground truth is model-independent.
            assert_eq!(sim.trace().slot(1).unwrap().outcome, SlotOutcome::Silence);
            assert_eq!(
                sim.trace().slot(2).unwrap().outcome,
                SlotOutcome::Collision { broadcasters: 2 }
            );
            assert_eq!(
                sim.trace().slot(3).unwrap().outcome,
                SlotOutcome::Jammed { broadcasters: 2 }
            );
            sim.history().iter().map(|(_, fb)| fb).collect::<Vec<_>>()
        };
        assert_eq!(
            run(ChannelModel::NoCollisionDetection),
            vec![Feedback::NoSuccess; 3]
        );
        assert_eq!(
            run(ChannelModel::CollisionDetection),
            vec![Feedback::Silence, Feedback::Noise, Feedback::Noise]
        );
        assert_eq!(run(ChannelModel::AckOnly), vec![Feedback::Nothing; 3]);
    }

    #[test]
    fn ack_only_hides_successes_from_the_adversary() {
        // A lone broadcaster succeeds in slot 1. Under the default model
        // the public history records the success; under ack-only the
        // adversary's view shows nothing, though the trace (ground truth)
        // still records the departure.
        let run = |model: crate::channel::ChannelModel| {
            let adv = CompositeAdversary::new(BatchArrival::new(1, 1), NoJamming);
            let mut sim =
                Simulator::new(SimConfig::with_seed(2).with_channel(model), always(), adv);
            sim.run_for(1);
            (sim.history().successes(), sim.trace().total_successes())
        };
        assert_eq!(
            run(crate::channel::ChannelModel::NoCollisionDetection),
            (1, 1)
        );
        assert_eq!(run(crate::channel::ChannelModel::AckOnly), (0, 1));
    }

    #[test]
    fn debug_impl_mentions_slot() {
        let sim = Simulator::new(SimConfig::with_seed(1), always(), NullAdversary);
        assert!(format!("{sim:?}").contains("Simulator"));
    }
}
