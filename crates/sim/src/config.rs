//! Simulation configuration.

use crate::channel::ChannelModel;

/// Which execution strategy the simulator uses to advance time.
///
/// * [`Execution::Exact`] (the default) runs the slot-synchronous engine:
///   every active node's protocol is consulted every slot. Fixed-seed runs
///   are byte-identical across releases (the golden fingerprints in
///   `tests/determinism.rs` pin this).
/// * [`Execution::SkipAhead`] enables the event-driven sparse engine: when
///   every protocol is in a *static phase*
///   ([`Protocol::static_until_feedback`](crate::node::Protocol::static_until_feedback))
///   and the adversary's behaviour is forecastable
///   ([`Adversary::forecast`](crate::adversary::Adversary::forecast)), each
///   node's next broadcast slot is sampled directly from its schedule's
///   survival function and silent slots are resolved in O(1) batches.
///   Runs are *distribution-equivalent* to [`Execution::Exact`] (identical
///   per-node send-process laws, hence identical statistics) but not
///   RNG-stream-identical. When the adversary, channel model, or protocol
///   is slot-adaptive the simulator **falls back to the exact engine
///   automatically** — `SkipAhead` is always safe to request.
/// * [`Execution::BitParallel`] enables the lane engine
///   ([`LaneSimulator`](crate::lanes::LaneSimulator)): up to 64 *seeds*
///   advance in lockstep, one bit per lane, with per-node send decisions
///   resolved as threshold compares over a whole lane word. Unlike
///   skip-ahead, lane runs are **bit-for-bit identical** to per-seed exact
///   runs (each lane replays the exact engine's RNG streams); the
///   conformance suite in `tests/lane_equivalence.rs` pins this per seed.
///   Eligibility mirrors skip-ahead — static-until-feedback protocols,
///   forecastable adversaries, the default no-collision-detection channel
///   — and ineligible workloads fall back to per-seed [`Execution::Exact`]
///   runs, so `BitParallel` is always safe to request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Execution {
    /// Slot-synchronous engine; bit-identical replay across releases.
    #[default]
    Exact,
    /// Event-driven sparse engine; skips silent slots, falls back to
    /// [`Execution::Exact`] when the workload is slot-adaptive.
    SkipAhead,
    /// Bit-parallel lane engine; advances 64 seeds per word, falls back
    /// to per-seed [`Execution::Exact`] when the workload is
    /// slot-adaptive.
    BitParallel,
}

impl Execution {
    /// Stable short name (`exact` / `skip-ahead` / `bit-parallel`), used
    /// by serializers and CLIs.
    pub fn name(self) -> &'static str {
        match self {
            Execution::Exact => "exact",
            Execution::SkipAhead => "skip-ahead",
            Execution::BitParallel => "bit-parallel",
        }
    }

    /// Parse a stable short name (inverse of [`name`](Self::name)).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "exact" => Some(Execution::Exact),
            "skip-ahead" => Some(Execution::SkipAhead),
            "bit-parallel" => Some(Execution::BitParallel),
            _ => None,
        }
    }
}

/// Configuration for a [`crate::engine::Simulator`] run.
///
/// Kept deliberately small: everything behavioural lives in the protocol
/// factory and the adversary; the config pins down determinism and safety
/// rails.
///
/// # Examples
///
/// ```
/// use contention_sim::SimConfig;
///
/// // Memory-bounded endurance run: no per-slot records, adversary
/// // history capped at 4096 slots.
/// let config = SimConfig::with_seed(7)
///     .without_slot_records()
///     .with_history_retention(4096);
/// assert_eq!(config.seed, 7);
/// assert!(!config.record_slots);
/// assert_eq!(config.history_retention, Some(4096));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Master seed; the entire run is a deterministic function of it.
    pub seed: u64,
    /// Whether to store one [`crate::metrics::SlotRecord`] per slot in the
    /// trace (memory linear in the horizon). Disable for endurance runs
    /// with heavy-tailed lengths — aggregate totals and departure records
    /// are kept either way.
    pub record_slots: bool,
    /// Cap on the adversary-visible per-slot history window (`None` =
    /// unlimited). This is a *model* knob, not a trace knob: it bounds how
    /// far back the adversary's per-slot lookups reach, independent of
    /// `record_slots`. Aggregate history counters stay exact regardless.
    ///
    /// Defaults to `None` so that record-mode choices never change
    /// adversary behaviour (deep-history adaptive adversaries see the same
    /// window in full-trace and aggregate-only runs).
    pub history_retention: Option<usize>,
    /// The channel-feedback model: how per-slot ground truth is reported
    /// to listeners and the adversary. Defaults to the paper's
    /// [`ChannelModel::NoCollisionDetection`].
    pub channel: ChannelModel,
    /// The execution strategy (default [`Execution::Exact`]). See
    /// [`Execution`] for the skip-ahead eligibility and fallback rules.
    pub execution: Execution,
}

impl SimConfig {
    /// Config with the given master seed (slot recording on, unlimited
    /// history).
    pub fn with_seed(seed: u64) -> Self {
        SimConfig {
            seed,
            record_slots: true,
            history_retention: None,
            channel: ChannelModel::NoCollisionDetection,
            execution: Execution::Exact,
        }
    }

    /// Disable per-slot records (O(1) trace memory; totals and departures
    /// still recorded). Does **not** bound the adversary-visible history
    /// window — use [`with_history_retention`](Self::with_history_retention)
    /// for that.
    pub fn without_slot_records(mut self) -> Self {
        self.record_slots = false;
        self
    }

    /// Bound the adversary-visible per-slot history window to the last
    /// `cap` slots (O(1) history memory). Only affects adversaries that
    /// perform per-slot lookups deeper than `cap`; aggregate counters
    /// (successes, injections, jams, backlog) remain exact.
    pub fn with_history_retention(mut self, cap: usize) -> Self {
        self.history_retention = Some(cap);
        self
    }

    /// Select the channel-feedback model (default:
    /// [`ChannelModel::NoCollisionDetection`], the paper's model). The
    /// model changes what listeners *and the adversary* hear; the
    /// privileged trace always records ground truth.
    pub fn with_channel(mut self, channel: ChannelModel) -> Self {
        self.channel = channel;
        self
    }

    /// Select the execution strategy (default [`Execution::Exact`]).
    /// Requesting [`Execution::SkipAhead`] is always safe: the simulator
    /// falls back to the exact engine when the workload is slot-adaptive
    /// (see [`Execution`]).
    pub fn with_execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC0FFEE,
            record_slots: true,
            history_retention: None,
            channel: ChannelModel::NoCollisionDetection,
            execution: Execution::Exact,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_seed_sets_seed() {
        assert_eq!(SimConfig::with_seed(7).seed, 7);
    }

    #[test]
    fn default_seed_is_stable() {
        assert_eq!(SimConfig::default(), SimConfig::default());
    }

    #[test]
    fn record_mode_and_retention_are_independent() {
        let c = SimConfig::with_seed(1);
        assert!(c.record_slots);
        assert_eq!(c.history_retention, None);
        let c = c.without_slot_records();
        assert!(!c.record_slots);
        assert_eq!(
            c.history_retention, None,
            "record mode must not cap history"
        );
        let c = SimConfig::with_seed(1).with_history_retention(128);
        assert!(c.record_slots);
        assert_eq!(c.history_retention, Some(128));
    }

    #[test]
    fn execution_defaults_to_exact_and_round_trips_names() {
        assert_eq!(SimConfig::with_seed(1).execution, Execution::Exact);
        assert_eq!(SimConfig::default().execution, Execution::Exact);
        let c = SimConfig::with_seed(1).with_execution(Execution::SkipAhead);
        assert_eq!(c.execution, Execution::SkipAhead);
        for e in [
            Execution::Exact,
            Execution::SkipAhead,
            Execution::BitParallel,
        ] {
            assert_eq!(Execution::by_name(e.name()), Some(e));
        }
        assert_eq!(Execution::by_name("warp"), None);
    }

    #[test]
    fn channel_defaults_to_no_collision_detection() {
        assert_eq!(
            SimConfig::with_seed(1).channel,
            ChannelModel::NoCollisionDetection
        );
        assert_eq!(
            SimConfig::default().channel,
            ChannelModel::NoCollisionDetection
        );
        let c = SimConfig::with_seed(1).with_channel(ChannelModel::AckOnly);
        assert_eq!(c.channel, ChannelModel::AckOnly);
    }
}
