//! Simulation configuration.

/// Configuration for a [`crate::engine::Simulator`] run.
///
/// Kept deliberately small: everything behavioural lives in the protocol
/// factory and the adversary; the config pins down determinism and safety
/// rails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Master seed; the entire run is a deterministic function of it.
    pub seed: u64,
    /// Whether to store one [`crate::metrics::SlotRecord`] per slot in the
    /// trace (memory linear in the horizon). Disable for endurance runs
    /// with heavy-tailed lengths — aggregate totals and departure records
    /// are kept either way.
    pub record_slots: bool,
}

impl SimConfig {
    /// Config with the given master seed (slot recording on).
    pub fn with_seed(seed: u64) -> Self {
        SimConfig {
            seed,
            record_slots: true,
        }
    }

    /// Disable per-slot records (O(1) trace memory; totals and departures
    /// still recorded).
    pub fn without_slot_records(mut self) -> Self {
        self.record_slots = false;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC0FFEE,
            record_slots: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_seed_sets_seed() {
        assert_eq!(SimConfig::with_seed(7).seed, 7);
    }

    #[test]
    fn default_seed_is_stable() {
        assert_eq!(SimConfig::default(), SimConfig::default());
    }
}
