//! The public channel history visible to the adaptive adversary.
//!
//! The adversary ("Eve") is adaptive: before each slot she may use *past
//! channel feedback* to decide whether to jam and how many nodes to inject.
//! Crucially she has no collision detection either — she sees exactly the
//! same [`Feedback`] stream as the nodes, plus knowledge of her own past
//! injections and jams (she made those decisions herself).
//!
//! The retained per-slot window is unlimited by default. Endurance runs
//! can cap it explicitly via `SimConfig::with_history_retention` — a
//! *model* knob (it bounds how far back the adversary's per-slot lookups
//! reach), deliberately independent of trace recording so that record-mode
//! choices never change adversary behaviour. Aggregate counters
//! (successes, injections, jams, backlog) are exact regardless; only
//! per-slot lookups beyond the window return `None`.

use std::collections::VecDeque;

use crate::node::NodeId;
use crate::slot::Feedback;

/// One retained slot entry.
#[derive(Debug, Clone, Copy)]
struct Entry {
    feedback: Feedback,
    injections: u32,
    jammed: bool,
}

/// Public information available to the adversary before slot `t+1`, namely
/// everything about slots `1..=t`.
#[derive(Debug, Clone, Default)]
pub struct PublicHistory {
    /// Retained entries for slots `first_retained..=len`.
    window: VecDeque<Entry>,
    /// Global slot index of the first retained entry (1-based); equals 1
    /// until eviction starts.
    first_retained: u64,
    /// Completed slots.
    len: u64,
    /// Maximum retained entries (`None` = unlimited).
    retention: Option<usize>,
    successes: u64,
    injected_total: u64,
    jammed_total: u64,
    last_success: Option<u64>,
}

impl PublicHistory {
    /// An empty history (before slot 1).
    pub fn new() -> Self {
        PublicHistory {
            first_retained: 1,
            ..Default::default()
        }
    }

    /// Cap the retained per-slot window to `cap` entries (aggregates stay
    /// exact). Called by the engine for memory-bounded runs.
    pub(crate) fn set_retention(&mut self, cap: Option<usize>) {
        self.retention = cap;
        self.evict();
    }

    fn evict(&mut self) {
        if let Some(cap) = self.retention {
            while self.window.len() > cap {
                self.window.pop_front();
                self.first_retained += 1;
            }
        }
    }

    /// Number of completed slots.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` before the first slot completes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn entry(&self, slot: u64) -> Option<&Entry> {
        if slot == 0 || slot > self.len || slot < self.first_retained {
            return None;
        }
        self.window.get((slot - self.first_retained) as usize)
    }

    /// Feedback of a completed slot (1-based global index). `None` for
    /// future slots and for slots evicted from a capped window.
    pub fn feedback(&self, slot: u64) -> Option<Feedback> {
        self.entry(slot).map(|e| e.feedback)
    }

    /// Feedback of the most recently completed slot.
    pub fn last_feedback(&self) -> Option<Feedback> {
        self.window.back().map(|e| e.feedback)
    }

    /// Total number of successful transmissions so far.
    #[inline]
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Total number of nodes the adversary has injected so far.
    #[inline]
    pub fn injected(&self) -> u64 {
        self.injected_total
    }

    /// Total number of slots the adversary has jammed so far.
    #[inline]
    pub fn jammed(&self) -> u64 {
        self.jammed_total
    }

    /// Nodes injected but not yet *heard* successful — the backlog the
    /// adversary can infer from public information (her injections minus
    /// observed successes).
    ///
    /// Under the success-revealing channel models (`no-cd`, `cd`) this
    /// equals the true number of nodes in the system, because a node
    /// leaves exactly when its message succeeds. Under
    /// [`ChannelModel::AckOnly`](crate::channel::ChannelModel) successes
    /// are never heard, so this stays at the injection total and
    /// overestimates the true population — deliberately: the adversary
    /// (and anything keyed off her view, e.g. `SaturatedArrival`) knows
    /// only what the model reveals.
    #[inline]
    pub fn backlog(&self) -> u64 {
        self.injected_total.saturating_sub(self.successes)
    }

    /// Slot index of the most recent success, if any (1-based).
    pub fn last_success_slot(&self) -> Option<u64> {
        self.last_success
    }

    /// Iterate over `(slot, feedback)` pairs of the retained window, slots
    /// 1-based.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Feedback)> + '_ {
        self.window
            .iter()
            .enumerate()
            .map(|(i, e)| (self.first_retained + i as u64, e.feedback))
    }

    /// Id of the node that succeeded in `slot`, if that slot was a success.
    pub fn success_in(&self, slot: u64) -> Option<NodeId> {
        self.feedback(slot).and_then(Feedback::sender)
    }

    /// Record the outcome of a completed slot. Called by the engine only.
    pub(crate) fn record(&mut self, feedback: Feedback, injections: u32, jammed: bool) {
        self.len += 1;
        if feedback.is_success() {
            self.successes += 1;
            self.last_success = Some(self.len);
        }
        self.window.push_back(Entry {
            feedback,
            injections,
            jammed,
        });
        self.injected_total += u64::from(injections);
        if jammed {
            self.jammed_total += 1;
        }
        self.evict();
    }

    /// Record `count` consecutive slots that all carry the same
    /// *non-success* feedback, no injections, and the same jam state —
    /// the sparse engine's bulk path for skipped silent spans. Equivalent
    /// to `count` [`record`](Self::record) calls, but O(min(count, cap))
    /// for capped windows.
    pub(crate) fn record_span(&mut self, feedback: Feedback, jammed: bool, count: u64) {
        debug_assert!(!feedback.is_success(), "spans must be success-free");
        if count == 0 {
            return;
        }
        self.len += count;
        if jammed {
            self.jammed_total += count;
        }
        let entry = Entry {
            feedback,
            injections: 0,
            jammed,
        };
        let stored = match self.retention {
            // A span longer than the cap evicts everything before it:
            // keep only the last `cap` copies.
            Some(cap) if count >= cap as u64 => {
                self.window.clear();
                self.first_retained = self.len - cap as u64 + 1;
                cap as u64
            }
            _ => count,
        };
        self.window
            .extend(std::iter::repeat_n(entry, stored as usize));
        self.evict();
    }

    /// Eve's injection count in a completed slot (1-based index); `None`
    /// outside the retained window.
    pub fn injections_in(&self, slot: u64) -> Option<u32> {
        self.entry(slot).map(|e| e.injections)
    }

    /// Whether Eve jammed a completed slot (1-based index); `None` outside
    /// the retained window.
    pub fn jammed_in(&self, slot: u64) -> Option<bool> {
        self.entry(slot).map(|e| e.jammed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history() {
        let h = PublicHistory::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.last_feedback(), None);
        assert_eq!(h.feedback(1), None);
        assert_eq!(h.feedback(0), None);
        assert_eq!(h.successes(), 0);
        assert_eq!(h.backlog(), 0);
        assert_eq!(h.last_success_slot(), None);
    }

    #[test]
    fn record_and_query() {
        let mut h = PublicHistory::new();
        h.record(Feedback::NoSuccess, 3, true);
        h.record(Feedback::Success(NodeId::new(1)), 0, false);
        h.record(Feedback::NoSuccess, 2, false);

        assert_eq!(h.len(), 3);
        assert_eq!(h.feedback(1), Some(Feedback::NoSuccess));
        assert_eq!(h.feedback(2), Some(Feedback::Success(NodeId::new(1))));
        assert_eq!(h.last_feedback(), Some(Feedback::NoSuccess));
        assert_eq!(h.successes(), 1);
        assert_eq!(h.injected(), 5);
        assert_eq!(h.jammed(), 1);
        assert_eq!(h.backlog(), 4);
        assert_eq!(h.last_success_slot(), Some(2));
        assert_eq!(h.success_in(2), Some(NodeId::new(1)));
        assert_eq!(h.success_in(1), None);
        assert_eq!(h.injections_in(1), Some(3));
        assert_eq!(h.jammed_in(1), Some(true));
        assert_eq!(h.jammed_in(3), Some(false));
        assert_eq!(h.injections_in(4), None);
    }

    #[test]
    fn iter_yields_one_based_slots() {
        let mut h = PublicHistory::new();
        h.record(Feedback::NoSuccess, 0, false);
        h.record(Feedback::Success(NodeId::new(9)), 0, false);
        let v: Vec<_> = h.iter().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].0, 1);
        assert_eq!(v[1], (2, Feedback::Success(NodeId::new(9))));
    }

    #[test]
    fn backlog_saturates() {
        // Defensive: successes can never exceed injections in a real run,
        // but backlog must not underflow even if misused.
        let mut h = PublicHistory::new();
        h.record(Feedback::Success(NodeId::new(0)), 0, false);
        assert_eq!(h.backlog(), 0);
    }

    #[test]
    fn retention_caps_window_but_keeps_aggregates() {
        let mut h = PublicHistory::new();
        h.set_retention(Some(3));
        for i in 0..10u64 {
            let fb = if i == 4 {
                Feedback::Success(NodeId::new(i))
            } else {
                Feedback::NoSuccess
            };
            h.record(fb, 1, i % 2 == 0);
        }
        assert_eq!(h.len(), 10);
        // Aggregates exact.
        assert_eq!(h.injected(), 10);
        assert_eq!(h.jammed(), 5);
        assert_eq!(h.successes(), 1);
        assert_eq!(h.last_success_slot(), Some(5));
        // Window holds slots 8..=10 only.
        assert_eq!(h.feedback(7), None);
        assert!(h.feedback(8).is_some());
        assert_eq!(h.iter().next().unwrap().0, 8);
        assert_eq!(h.iter().count(), 3);
        // last_feedback still works.
        assert_eq!(h.last_feedback(), Some(Feedback::NoSuccess));
    }

    #[test]
    fn record_span_matches_slotwise_recording() {
        // Unlimited retention: span == loop.
        let mut bulk = PublicHistory::new();
        let mut slotwise = PublicHistory::new();
        bulk.record(Feedback::NoSuccess, 2, false);
        slotwise.record(Feedback::NoSuccess, 2, false);
        bulk.record_span(Feedback::NoSuccess, true, 5);
        for _ in 0..5 {
            slotwise.record(Feedback::NoSuccess, 0, true);
        }
        assert_eq!(bulk.len(), slotwise.len());
        assert_eq!(bulk.jammed(), slotwise.jammed());
        assert_eq!(bulk.injected(), slotwise.injected());
        for s in 1..=6 {
            assert_eq!(bulk.feedback(s), slotwise.feedback(s));
            assert_eq!(bulk.jammed_in(s), slotwise.jammed_in(s));
            assert_eq!(bulk.injections_in(s), slotwise.injections_in(s));
        }
        // Capped retention: a span longer than the window keeps only the
        // tail, with exact aggregates.
        let mut capped = PublicHistory::new();
        capped.set_retention(Some(3));
        capped.record(Feedback::NoSuccess, 1, false);
        capped.record_span(Feedback::NoSuccess, true, 10);
        assert_eq!(capped.len(), 11);
        assert_eq!(capped.jammed(), 10);
        assert_eq!(capped.iter().count(), 3);
        assert_eq!(capped.iter().next().unwrap().0, 9);
        assert_eq!(capped.feedback(8), None);
        assert_eq!(capped.jammed_in(9), Some(true));
        // Zero-length spans are no-ops.
        let before = capped.len();
        capped.record_span(Feedback::NoSuccess, false, 0);
        assert_eq!(capped.len(), before);
    }

    #[test]
    fn retention_applied_retroactively() {
        let mut h = PublicHistory::new();
        for _ in 0..8 {
            h.record(Feedback::NoSuccess, 0, false);
        }
        h.set_retention(Some(2));
        assert_eq!(h.iter().count(), 2);
        assert_eq!(h.feedback(6), None);
        assert!(h.feedback(7).is_some());
    }
}
