//! Checkpoint/restore for the simulator: full-fidelity replay windows at
//! mega scale.
//!
//! At 10⁶ nodes × 10⁷ slots, full record mode is out of the question —
//! storing every [`SlotRecord`](crate::metrics::SlotRecord) costs tens of
//! gigabytes. But the engine is deterministic: a run is a pure function of
//! its master seed. A [`Snapshot`] captures the *complete* simulator state
//! (per-node protocol state and RNG streams, adversary state and stream,
//! public history window, sparse-engine calendar, trace aggregates) at some
//! slot boundary; [`Simulator::resume_from`] rebuilds a simulator whose
//! continuation is **bit-identical** to the uninterrupted original. Any
//! slot window can therefore be materialized in full record fidelity after
//! the fact by replaying from the nearest checkpoint — seconds of work
//! instead of an overnight rerun.
//!
//! # Determinism contract
//!
//! A resumed simulator replays the original trajectory exactly, provided
//! run calls advance it through the same chunk boundaries. The exact
//! engine is chunk-invariant, so any call pattern works. The sparse engine
//! ([`Execution::SkipAhead`](crate::config::Execution)) re-samples dormant
//! nodes against each run call's end bound, so its trajectory depends on
//! the chunking; callers that snapshot sparse runs must advance original
//! and resumed runs in identical chunks (the bench layer's checkpoint
//! policy does exactly that). Snapshots deep-copy every RNG, so snapshot
//! capture itself never perturbs the run being captured.
//!
//! # Capability
//!
//! Snapshotting is opt-in per component: protocols, adversaries, arrival
//! processes and jamming strategies advertise deep-copy support through
//! their `try_clone_box` hooks (default: not supported). [`snapshot`]
//! returns a [`SnapshotError`] naming the first non-cloneable component
//! instead of a corrupt checkpoint.
//!
//! [`snapshot`]: Simulator::snapshot

use rand::rngs::SmallRng;

use crate::adversary::Adversary;
use crate::config::SimConfig;
use crate::engine::{ActiveNode, Simulator};
use crate::history::PublicHistory;
use crate::metrics::Trace;
use crate::node::{NodeId, Protocol, ProtocolFactory};
use crate::rng::SeedSequence;
use crate::sparse::SparseMode;

/// Why a [`Simulator::snapshot`] call could not capture the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// A node's protocol does not implement `try_clone_box`.
    Protocol {
        /// The protocol's reported name.
        name: &'static str,
    },
    /// The adversary (or one of its composed parts) does not implement
    /// `try_clone_box`.
    Adversary {
        /// The adversary's reported name.
        name: &'static str,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Protocol { name } => {
                write!(
                    f,
                    "protocol `{name}` is not snapshot-capable (no try_clone_box)"
                )
            }
            SnapshotError::Adversary { name } => {
                write!(
                    f,
                    "adversary `{name}` is not snapshot-capable (no try_clone_box)"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a over a stream of u64s, folded little-endian byte by byte.
fn fnv1a(values: impl Iterator<Item = u64>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// One node's captured state.
struct SnapshotNode {
    rng: SmallRng,
    proto: Box<dyn Protocol + Send>,
    arrival_slot: u64,
    accesses: u64,
    id: NodeId,
}

impl SnapshotNode {
    fn duplicate(&self) -> SnapshotNode {
        SnapshotNode {
            rng: self.rng.clone(),
            proto: self
                .proto
                .try_clone_box()
                .expect("snapshotted protocol re-clones"),
            arrival_slot: self.arrival_slot,
            accesses: self.accesses,
            id: self.id,
        }
    }
}

impl std::fmt::Debug for SnapshotNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotNode")
            .field("id", &self.id)
            .field("arrival_slot", &self.arrival_slot)
            .field("accesses", &self.accesses)
            .finish_non_exhaustive()
    }
}

/// A complete, self-contained copy of a [`Simulator`]'s state at a slot
/// boundary.
///
/// `Send` when the factory is, so window replays can fan out across the
/// work-stealing pool. Capture with [`Simulator::snapshot`], rebuild with
/// [`Simulator::resume_from`], deep-copy with [`Snapshot::duplicate`]
/// (resuming consumes the snapshot).
pub struct Snapshot<F> {
    config: SimConfig,
    factory: F,
    nodes: Vec<SnapshotNode>,
    adversary: Box<dyn Adversary + Send>,
    adversary_rng: SmallRng,
    history: PublicHistory,
    sparse: SparseMode,
    next_node: u64,
    current_slot: u64,
    agg_slots: u64,
    agg_arrivals: u64,
    agg_jammed: u64,
    agg_active: u64,
    total_successes: u64,
}

impl<F> Snapshot<F> {
    /// The last completed global slot at capture time.
    pub fn slot(&self) -> u64 {
        self.current_slot
    }

    /// Nodes in the system at capture time.
    pub fn population(&self) -> u64 {
        self.nodes.len() as u64
    }

    /// Total successes delivered up to the captured slot.
    pub fn successes(&self) -> u64 {
        self.total_successes
    }

    /// The captured configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// FNV-1a digest of the snapshot's observable counters, for
    /// cross-checking that a replay resumed from the state it expects
    /// (same slot, same population, same aggregate history).
    ///
    /// Folds the same fields as [`Simulator::state_digest`], so a live
    /// simulator that has replayed up to this snapshot's slot produces
    /// the identical value.
    pub fn digest(&self) -> u64 {
        fnv1a(
            [
                self.config.seed,
                self.current_slot,
                self.next_node,
                self.nodes.len() as u64,
                self.agg_slots,
                self.agg_arrivals,
                self.agg_jammed,
                self.agg_active,
                self.total_successes,
            ]
            .into_iter()
            .chain(
                self.nodes
                    .iter()
                    .flat_map(|n| [n.id.raw(), n.arrival_slot, n.accesses]),
            ),
        )
    }

    /// Rough in-memory footprint in bytes (per-node state plus the public
    /// history window), for byte-bounded caches.
    pub fn approx_bytes(&self) -> u64 {
        // A node carries its xoshiro256++ stream (32 bytes), a boxed
        // protocol (dominated by schedule state; call it 128 bytes), and
        // three u64s. The history window is bounded by its retention.
        let per_node = 32 + 128 + 24;
        (self.nodes.len() as u64) * per_node + self.history.len().min(1 << 20) * 16 + 512
    }
}

impl<F: Clone> Snapshot<F> {
    /// A deep copy: resuming consumes a snapshot, so replayers duplicate
    /// before each resume to keep the checkpoint reusable.
    pub fn duplicate(&self) -> Snapshot<F> {
        Snapshot {
            config: self.config,
            factory: self.factory.clone(),
            nodes: self.nodes.iter().map(SnapshotNode::duplicate).collect(),
            adversary: self
                .adversary
                .try_clone_box()
                .expect("snapshotted adversary re-clones"),
            adversary_rng: self.adversary_rng.clone(),
            history: self.history.clone(),
            sparse: self.sparse.clone(),
            next_node: self.next_node,
            current_slot: self.current_slot,
            agg_slots: self.agg_slots,
            agg_arrivals: self.agg_arrivals,
            agg_jammed: self.agg_jammed,
            agg_active: self.agg_active,
            total_successes: self.total_successes,
        }
    }
}

impl<F> std::fmt::Debug for Snapshot<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("slot", &self.current_slot)
            .field("population", &self.nodes.len())
            .field("successes", &self.total_successes)
            .finish_non_exhaustive()
    }
}

impl<F: ProtocolFactory, A: Adversary> Simulator<F, A> {
    /// FNV-1a digest of the live simulator's observable counters — the
    /// exact folding of [`Snapshot::digest`], computed without cloning
    /// any state. A replay that has advanced to a checkpointed slot can
    /// compare this against the stored snapshot's digest to prove it is
    /// walking the same trajectory.
    pub fn state_digest(&self) -> u64 {
        fnv1a(
            [
                self.config.seed,
                self.current_slot,
                self.next_node,
                self.nodes.len() as u64,
                self.trace.len(),
                self.trace.total_arrivals(),
                self.trace.total_jammed(),
                self.trace.total_active(),
                self.trace.total_successes(),
            ]
            .into_iter()
            .chain(
                self.nodes
                    .iter()
                    .flat_map(|n| [n.id.raw(), n.arrival_slot, n.accesses]),
            ),
        )
    }
}

impl<F: ProtocolFactory + Clone, A: Adversary> Simulator<F, A> {
    /// Capture the complete simulator state at the current slot boundary.
    ///
    /// Fails (without side effects) if any live component is not
    /// snapshot-capable; see [`SnapshotError`]. Capture never advances or
    /// perturbs the run: every RNG stream is deep-copied.
    pub fn snapshot(&self) -> Result<Snapshot<F>, SnapshotError> {
        let adversary = self
            .adversary
            .try_clone_box()
            .ok_or(SnapshotError::Adversary {
                name: self.adversary.name(),
            })?;
        let mut nodes = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let proto = node.proto.try_clone_box().ok_or(SnapshotError::Protocol {
                name: node.proto.name(),
            })?;
            nodes.push(SnapshotNode {
                rng: node.rng.clone(),
                proto,
                arrival_slot: node.arrival_slot,
                accesses: node.accesses,
                id: node.id,
            });
        }
        Ok(Snapshot {
            config: self.config,
            factory: self.factory.clone(),
            nodes,
            adversary,
            adversary_rng: self.adversary_rng.clone(),
            history: self.history.clone(),
            sparse: self.sparse.clone(),
            next_node: self.next_node,
            current_slot: self.current_slot,
            agg_slots: self.trace.len(),
            agg_arrivals: self.trace.total_arrivals(),
            agg_jammed: self.trace.total_jammed(),
            agg_active: self.trace.total_active(),
            total_successes: self.trace.total_successes(),
        })
    }
}

impl<F: ProtocolFactory> Simulator<F, Box<dyn Adversary + Send>> {
    /// Rebuild a simulator from a snapshot. The continuation is
    /// bit-identical to the uninterrupted original under the determinism
    /// contract in the [module docs](self).
    ///
    /// The resumed trace carries the snapshot's aggregate totals forward;
    /// its per-slot and departure records cover the continuation only.
    pub fn resume_from(snapshot: Snapshot<F>) -> Self {
        let seeds = SeedSequence::new(snapshot.config.seed);
        let mut failure_observers = 0u64;
        let nodes: Vec<ActiveNode> = snapshot
            .nodes
            .into_iter()
            .map(|n| {
                failure_observers += u64::from(n.proto.observes_failures());
                ActiveNode {
                    rng: n.rng,
                    proto: n.proto,
                    arrival_slot: n.arrival_slot,
                    accesses: n.accesses,
                    id: n.id,
                }
            })
            .collect();
        Simulator {
            config: snapshot.config,
            seeds,
            factory: snapshot.factory,
            adversary: snapshot.adversary,
            adversary_rng: snapshot.adversary_rng,
            history: snapshot.history,
            nodes,
            trace: Trace::resumed(
                snapshot.agg_slots,
                snapshot.agg_arrivals,
                snapshot.agg_jammed,
                snapshot.agg_active,
                snapshot.total_successes,
            ),
            next_node: snapshot.next_node,
            current_slot: snapshot.current_slot,
            broadcasters: Vec::new(),
            failure_observers,
            sparse: snapshot.sparse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{
        BatchArrival, CompositeAdversary, FnAdversary, RandomJamming, SlotDecision,
    };
    use crate::metrics::SlotRecord;
    use crate::node::AlwaysBroadcast;

    fn factory(_: NodeId) -> Box<dyn Protocol> {
        Box::new(AlwaysBroadcast)
    }

    fn records(sim_records: &[SlotRecord]) -> Vec<SlotRecord> {
        sim_records.to_vec()
    }

    #[test]
    fn resume_continues_bit_identically() {
        let adv = || CompositeAdversary::new(BatchArrival::at_start(8), RandomJamming::new(0.2));
        let mut full = Simulator::new(SimConfig::with_seed(42), factory, adv());
        let mut half = Simulator::new(SimConfig::with_seed(42), factory, adv());
        half.run_for(50);
        let snap = half.snapshot().expect("snapshot");
        assert_eq!(snap.slot(), 50);
        let digest = snap.digest();
        let dup = snap.duplicate();
        assert_eq!(dup.digest(), digest, "duplicate preserves the digest");

        full.run_for(100);
        let mut resumed = Simulator::resume_from(snap);
        resumed.run_for(50);

        assert_eq!(resumed.current_slot(), full.current_slot());
        assert_eq!(
            resumed.trace().total_successes(),
            full.trace().total_successes()
        );
        // The continuation's slot records must equal the tail of the
        // uninterrupted run, record for record.
        assert_eq!(
            records(resumed.trace().slots()),
            records(&full.trace().slots()[50..])
        );
        // And the original snapshot half must not have been perturbed by
        // the capture: running it forward matches too.
        half.run_for(50);
        assert_eq!(records(half.trace().slots()), records(full.trace().slots()));
    }

    #[test]
    fn snapshot_rejects_uncloneable_adversary() {
        let adv = FnAdversary::new("closure", |_s, _h, _r| SlotDecision::IDLE);
        let mut sim = Simulator::new(SimConfig::with_seed(1), factory, adv);
        sim.run_for(3);
        let err = sim.snapshot().unwrap_err();
        assert_eq!(err, SnapshotError::Adversary { name: "closure" });
        assert!(err.to_string().contains("closure"));
    }

    #[test]
    fn digest_tracks_progress() {
        let adv =
            || CompositeAdversary::new(BatchArrival::at_start(4), crate::adversary::NoJamming);
        let mut sim = Simulator::new(SimConfig::with_seed(9), factory, adv());
        sim.run_for(2);
        let d1 = sim.snapshot().expect("snapshot").digest();
        assert_eq!(
            d1,
            sim.state_digest(),
            "live digest matches snapshot digest"
        );
        sim.run_for(2);
        let d2 = sim.snapshot().expect("snapshot").digest();
        assert_ne!(d1, d2, "digest changes as the run advances");
    }

    #[test]
    fn replay_reaches_later_checkpoint_digest() {
        // A resumed run advanced to a later checkpoint's slot must report
        // that checkpoint's digest — the fingerprint cross-check windows
        // replays rely on.
        let adv = || CompositeAdversary::new(BatchArrival::at_start(6), RandomJamming::new(0.3));
        let mut sim = Simulator::new(SimConfig::with_seed(77), factory, adv());
        sim.run_for(20);
        let early = sim.snapshot().expect("snapshot");
        sim.run_for(20);
        let late_digest = sim.snapshot().expect("snapshot").digest();
        let mut resumed = Simulator::resume_from(early);
        resumed.run_for(20);
        assert_eq!(resumed.state_digest(), late_digest);
    }
}
