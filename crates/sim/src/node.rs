//! Node identity and the [`Protocol`] trait implemented by every
//! contention-resolution algorithm under test.

use std::fmt;

use rand::rngs::SmallRng;
use rand::RngCore;

use crate::slot::{Action, Feedback};

/// Identifier of a node (player). Assigned by the engine in injection order.
///
/// Node ids exist purely for bookkeeping: the model is anonymous, and a
/// conforming [`Protocol`] implementation never sees its own id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates a node id from a raw index.
    #[inline]
    pub fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// The raw index.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        NodeId(raw)
    }
}

/// A contention-resolution algorithm as run by a single node.
///
/// The engine drives each active node through the same two calls every slot:
///
/// 1. [`Protocol::act`] — decide whether to broadcast, given only the node's
///    *local* slot index (`0` in its arrival slot) and a private RNG;
/// 2. [`Protocol::observe`] — receive the public channel feedback for that
///    slot.
///
/// A node that broadcasts successfully leaves the system immediately (the
/// engine drops the protocol instance), so implementations never need to
/// handle their own departure.
///
/// # Information constraints
///
/// The trait deliberately exposes nothing but local time and feedback:
/// no global clock, no number of nodes in the system, no distinction between
/// silence/collision/jamming. This enforces the paper's model at the type
/// level.
pub trait Protocol {
    /// Short human-readable algorithm name used in reports.
    fn name(&self) -> &'static str;

    /// Decide the action for local slot `local_slot` (0-based: the arrival
    /// slot is `0`).
    ///
    /// `rng` is a per-node deterministic RNG; implementations must draw all
    /// randomness from it so that simulations replay exactly under a fixed
    /// seed.
    fn act(&mut self, local_slot: u64, rng: &mut dyn RngCore) -> Action;

    /// Receive the public feedback for local slot `local_slot`.
    ///
    /// Called after every slot in which the node was in the system, including
    /// slots in which the node itself broadcast unsuccessfully — unless the
    /// implementation opts out of failure feedback via
    /// [`observes_failures`](Self::observes_failures).
    fn observe(&mut self, local_slot: u64, feedback: Feedback);

    /// Hot-path variant of [`act`](Self::act) taking the engine's concrete
    /// per-node RNG, so implementations can monomorphize their random draws
    /// instead of going through `dyn RngCore`.
    ///
    /// The default delegates to [`act`](Self::act); overriding is purely a
    /// performance optimisation and **must not** change the sequence of RNG
    /// draws (simulations replay byte-identically either way).
    fn act_fast(&mut self, local_slot: u64, rng: &mut SmallRng) -> Action {
        self.act(local_slot, rng)
    }

    /// Whether this protocol reacts to no-success feedback.
    ///
    /// Most algorithms in the no-collision-detection model only change
    /// state on *success* feedback (silence/collision/jam are
    /// indistinguishable and carry no information beyond "no success").
    /// Returning `false` lets the engine skip the per-node
    /// [`observe`](Self::observe) call on no-success slots; local clocks
    /// advance either way. Must be constant for the protocol's lifetime.
    fn observes_failures(&self) -> bool {
        true
    }

    /// Probability that the *next* [`act`](Self::act) call broadcasts,
    /// when the protocol can introspect it; `None` (the default) for
    /// protocols whose next action is not a simple Bernoulli of known
    /// probability over their remaining randomness.
    ///
    /// Used by the sparse execution engine's diagnostics and by the
    /// static-phase property tests (`current_prob` must match the
    /// empirical broadcast frequency of [`act_fast`](Self::act_fast)).
    fn current_prob(&self) -> Option<f64> {
        None
    }

    /// Whether the protocol is *static until feedback*: between the
    /// success feedbacks it observes, its act-sequence is a fixed random
    /// process — independent of non-success feedback and of anything else
    /// it could hear. This is the eligibility hook for
    /// [`Execution::SkipAhead`](crate::config::Execution).
    ///
    /// Returning `true` is a contract with the sparse engine:
    ///
    /// * [`next_send_within`](Self::next_send_within) must be implemented
    ///   (it samples the send process directly);
    /// * [`observe`](Self::observe) must be a no-op for every non-success
    ///   feedback;
    /// * on success feedback, the protocol either ignores it entirely
    ///   ([`restarts_on_success`](Self::restarts_on_success) `false`) or
    ///   restarts its send process from scratch, discarding all prior
    ///   process state (`true`) — so that state pre-consumed by
    ///   skip-ahead sampling can never leak across a success.
    ///
    /// Must be constant for the protocol's lifetime. Default `false`.
    fn static_until_feedback(&self) -> bool {
        false
    }

    /// Whether observing a success restarts the send process from scratch
    /// (e.g. the reset-on-success baselines). Only meaningful when
    /// [`static_until_feedback`](Self::static_until_feedback) is `true`:
    /// the sparse engine re-samples every such protocol's next broadcast
    /// after delivering success feedback. Must be constant for the
    /// protocol's lifetime. Default `false`.
    fn restarts_on_success(&self) -> bool {
        false
    }

    /// Whether this protocol supports native lane-mask driving via
    /// [`act_lanes`](Self::act_lanes): a single instance can hold the
    /// state for all [`LANES`](crate::lanes::LANES) lanes and resolve a
    /// whole lane word per call.
    ///
    /// Returning `true` is a contract with the lane engine
    /// ([`crate::lanes::LaneSimulator`]):
    ///
    /// * [`act`](Self::act)/[`act_fast`](Self::act_fast) must ignore
    ///   `local_slot` (lane-capable protocols track their own position;
    ///   the engine passes `0` in lane mode);
    /// * [`act_lanes`](Self::act_lanes) must be overridden with a
    ///   genuinely per-lane implementation whose lane `l` draws and
    ///   decisions exactly replay what a dedicated scalar instance would
    ///   produce for that lane's stream;
    /// * if success feedback affects state
    ///   ([`restarts_on_success`](Self::restarts_on_success)),
    ///   [`observe_success_lanes`](Self::observe_success_lanes) must be
    ///   overridden to apply it per lane.
    ///
    /// Must be constant for the protocol's lifetime. Default `false`: the
    /// engine then runs one scalar instance per lane through the default
    /// [`act_lanes`](Self::act_lanes), which is always correct.
    fn lane_capable(&self) -> bool {
        false
    }

    /// Lane-mask variant of [`act`](Self::act): decide the action for
    /// every lane in `active` at once, returning the mask of lanes that
    /// broadcast (`send ⊆ active`). Lane `l`'s randomness comes from lane
    /// `l` of `rngs`; lanes outside `active` must not be stepped (except
    /// via the bank's declared free lanes) and must not have state
    /// mutated.
    ///
    /// The default loops over the active lanes calling
    /// [`act`](Self::act) with that lane's RNG column — draw-for-draw
    /// identical to a scalar run by the [`act_fast`](Self::act_fast)
    /// contract. Lane-capable protocols override this with a word-level
    /// implementation (one threshold compare per lane word).
    fn act_lanes(
        &mut self,
        local_slot: u64,
        rngs: &mut crate::lanes::LaneRngs,
        active: u64,
    ) -> u64 {
        let mut send = 0u64;
        let mut m = active;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.act(local_slot, &mut rngs.lane(l)).is_broadcast() {
                send |= 1 << l;
            }
        }
        send
    }

    /// Lane-mask variant of [`observe`](Self::observe) for success
    /// feedback: the lanes in `lanes` each heard a success this slot.
    /// Only called on lane-capable protocols; the default is a no-op,
    /// correct for protocols that ignore successes
    /// ([`restarts_on_success`](Self::restarts_on_success) `false`).
    fn observe_success_lanes(&mut self, lanes: u64) {
        let _ = lanes;
    }

    /// Skip-ahead sampling hook: sample and *consume* the protocol's
    /// slots up to and including its next broadcast, bounded by `within`
    /// act-calls.
    ///
    /// Returns `Some(gap)` when the next broadcast happens after exactly
    /// `gap` listen slots (`gap < within`); the protocol's state advances
    /// by `gap + 1` slots, as if [`act`](Self::act) had been called that
    /// many times and returned [`Action::Listen`] `gap` times followed by
    /// one [`Action::Broadcast`]. Returns `None` when no broadcast occurs
    /// within the bound; the state advances by exactly `within` all-listen
    /// slots.
    ///
    /// The sampled gap must follow exactly the distribution the repeated
    /// `act` calls would induce (only the RNG stream may differ) — the
    /// distribution-equivalence tests enforce this per protocol. Only
    /// called when [`static_until_feedback`](Self::static_until_feedback)
    /// returns `true`; the default implementation consumes nothing and
    /// reports no broadcast.
    fn next_send_within(&mut self, within: u64, rng: &mut SmallRng) -> Option<u64> {
        debug_assert!(
            !self.static_until_feedback(),
            "{}: static_until_feedback() requires a next_send_within() implementation",
            self.name()
        );
        let _ = (within, rng);
        None
    }

    /// Checkpoint hook: a boxed deep copy of this protocol's current
    /// state, or `None` (the default) when the protocol is not
    /// snapshot-capable.
    ///
    /// Implementations must return a copy whose future behaviour is
    /// bit-identical to the original's under the same RNG streams — the
    /// checkpoint/replay layer ([`crate::checkpoint`]) relies on this to
    /// make resumed runs indistinguishable from uninterrupted ones. For
    /// `Clone` protocols this is one line:
    /// `Some(Box::new(self.clone()))`. The returned box is `Send` so
    /// snapshots can move to replay workers on other threads.
    fn try_clone_box(&self) -> Option<Box<dyn Protocol + Send>> {
        None
    }
}

/// Spawns fresh [`Protocol`] instances for nodes injected by the adversary.
///
/// A factory corresponds to "the algorithm" A of the paper: every arriving
/// node runs the same algorithm from its own local time origin.
pub trait ProtocolFactory {
    /// Create the protocol instance for a newly injected node.
    fn spawn(&self, id: NodeId) -> Box<dyn Protocol>;

    /// Create the protocol instance, additionally given the *global*
    /// arrival slot.
    ///
    /// The paper's model has no global clock, so conforming algorithms must
    /// ignore `arrival_slot` (the default implementation does). The hook
    /// exists for *oracle* ablations that quantify what global time would
    /// be worth (e.g. [`spawn`](Self::spawn)-ing a variant that skips the
    /// Phase-1 channel-agreement step).
    fn spawn_with_arrival(&self, id: NodeId, arrival_slot: u64) -> Box<dyn Protocol> {
        let _ = arrival_slot;
        self.spawn(id)
    }

    /// Name of the algorithm this factory spawns, used in reports.
    ///
    /// The default is `"unnamed"`; named roster types (`AlgoSpec`, the
    /// baseline registry, the concrete protocol factories) override it.
    /// Closure factories cannot carry a name — wrap them with
    /// [`named`](Self::named) when the name matters.
    fn algorithm_name(&self) -> String {
        "unnamed".to_string()
    }

    /// Attach a report name to this factory (most useful for closure
    /// factories, whose blanket impl reports `"unnamed"`).
    fn named(self, name: impl Into<String>) -> NamedFactory<Self>
    where
        Self: Sized,
    {
        NamedFactory {
            name: name.into(),
            inner: self,
        }
    }
}

/// Blanket factory for closures returning boxed protocols.
///
/// Closures have no identity, so this impl inherits the `"unnamed"`
/// [`ProtocolFactory::algorithm_name`]; use [`ProtocolFactory::named`] to
/// attach one.
impl<F> ProtocolFactory for F
where
    F: Fn(NodeId) -> Box<dyn Protocol>,
{
    fn spawn(&self, id: NodeId) -> Box<dyn Protocol> {
        self(id)
    }
}

/// A factory wrapper that carries an explicit report name (see
/// [`ProtocolFactory::named`]).
#[derive(Debug, Clone)]
pub struct NamedFactory<F> {
    name: String,
    inner: F,
}

impl<F: ProtocolFactory> ProtocolFactory for NamedFactory<F> {
    fn spawn(&self, id: NodeId) -> Box<dyn Protocol> {
        self.inner.spawn(id)
    }

    fn spawn_with_arrival(&self, id: NodeId, arrival_slot: u64) -> Box<dyn Protocol> {
        self.inner.spawn_with_arrival(id, arrival_slot)
    }

    fn algorithm_name(&self) -> String {
        self.name.clone()
    }
}

/// A trivial protocol that always broadcasts. Useful in tests and as the
/// degenerate "maximally aggressive" baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysBroadcast;

impl Protocol for AlwaysBroadcast {
    fn name(&self) -> &'static str {
        "always-broadcast"
    }

    fn act(&mut self, _local_slot: u64, _rng: &mut dyn RngCore) -> Action {
        Action::Broadcast
    }

    fn observe(&mut self, _local_slot: u64, _feedback: Feedback) {}

    fn observes_failures(&self) -> bool {
        false
    }

    fn current_prob(&self) -> Option<f64> {
        Some(1.0)
    }

    fn static_until_feedback(&self) -> bool {
        true
    }

    fn next_send_within(&mut self, within: u64, _rng: &mut SmallRng) -> Option<u64> {
        if within == 0 {
            None
        } else {
            Some(0)
        }
    }

    fn lane_capable(&self) -> bool {
        true
    }

    fn act_lanes(
        &mut self,
        _local_slot: u64,
        _rngs: &mut crate::lanes::LaneRngs,
        active: u64,
    ) -> u64 {
        active
    }

    fn try_clone_box(&self) -> Option<Box<dyn Protocol + Send>> {
        Some(Box::new(*self))
    }
}

/// A trivial protocol that never broadcasts. Useful in tests (a system of
/// `NeverBroadcast` nodes keeps slots active forever without successes).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverBroadcast;

impl Protocol for NeverBroadcast {
    fn name(&self) -> &'static str {
        "never-broadcast"
    }

    fn act(&mut self, _local_slot: u64, _rng: &mut dyn RngCore) -> Action {
        Action::Listen
    }

    fn observe(&mut self, _local_slot: u64, _feedback: Feedback) {}

    fn observes_failures(&self) -> bool {
        false
    }

    fn current_prob(&self) -> Option<f64> {
        Some(0.0)
    }

    fn static_until_feedback(&self) -> bool {
        true
    }

    fn next_send_within(&mut self, _within: u64, _rng: &mut SmallRng) -> Option<u64> {
        None
    }

    fn lane_capable(&self) -> bool {
        true
    }

    fn act_lanes(
        &mut self,
        _local_slot: u64,
        _rngs: &mut crate::lanes::LaneRngs,
        _active: u64,
    ) -> u64 {
        0
    }

    fn try_clone_box(&self) -> Option<Box<dyn Protocol + Send>> {
        Some(Box::new(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(NodeId::from(42u64), id);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn node_id_ordering_follows_raw() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(5), NodeId::new(5));
    }

    #[test]
    fn always_broadcast_broadcasts() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut p = AlwaysBroadcast;
        for s in 0..10 {
            assert_eq!(p.act(s, &mut rng), Action::Broadcast);
        }
        assert_eq!(p.name(), "always-broadcast");
    }

    #[test]
    fn never_broadcast_listens() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut p = NeverBroadcast;
        for s in 0..10 {
            assert_eq!(p.act(s, &mut rng), Action::Listen);
        }
    }

    #[test]
    fn closure_factory_spawns() {
        let factory = |_: NodeId| -> Box<dyn Protocol> { Box::new(AlwaysBroadcast) };
        let p = factory.spawn(NodeId::new(0));
        assert_eq!(p.name(), "always-broadcast");
        assert_eq!(factory.algorithm_name(), "unnamed");
    }

    #[test]
    fn named_factory_threads_a_name_through() {
        let factory =
            (|_: NodeId| -> Box<dyn Protocol> { Box::new(AlwaysBroadcast) }).named("always");
        assert_eq!(factory.algorithm_name(), "always");
        let p = factory.spawn_with_arrival(NodeId::new(1), 7);
        assert_eq!(p.name(), "always-broadcast");
    }
}
