//! # contention-sim
//!
//! A discrete-slot simulator for **contention resolution on a multiple-access
//! channel without collision detection**, with adaptive adversarial arrivals
//! and jamming — the exact model of Chen, Jiang & Zheng, *Tight Trade-off in
//! Contention Resolution without Collision Detection* (PODC 2021).
//!
//! ## Model
//!
//! * Time is slotted and synchronized; slots are numbered globally from 1,
//!   but nodes only ever see their **local** clock (slots since their own
//!   activation).
//! * Each node carries one message. In each slot it broadcasts or listens.
//! * Exactly one broadcaster in an unjammed slot ⇒ success; the sender
//!   leaves immediately. Zero or ≥ 2 broadcasters, or a jammed slot ⇒
//!   failure.
//! * **No collision detection** (the default [`ChannelModel`]): silence,
//!   collision and jamming produce identical feedback
//!   ([`Feedback::NoSuccess`]) for nodes *and* for the adversary. Richer
//!   feedback regimes — ternary collision detection, ack-only — are
//!   selectable via [`SimConfig::with_channel`].
//! * The adversary is adaptive: before each slot she sees all past public
//!   feedback and decides whether to jam and how many nodes to inject.
//!
//! ## Quick example
//!
//! ```
//! use contention_sim::prelude::*;
//!
//! // Five nodes arrive together; each broadcasts with probability 1/2.
//! struct Half;
//! impl Protocol for Half {
//!     fn name(&self) -> &'static str { "half" }
//!     fn act(&mut self, _slot: u64, rng: &mut dyn rand::RngCore) -> Action {
//!         if rand::Rng::gen_bool(rng, 0.5) { Action::Broadcast } else { Action::Listen }
//!     }
//!     fn observe(&mut self, _slot: u64, _fb: Feedback) {}
//! }
//!
//! let factory = |_: NodeId| -> Box<dyn Protocol> { Box::new(Half) };
//! let adversary = CompositeAdversary::new(BatchArrival::at_start(5), NoJamming);
//! let mut sim = Simulator::new(SimConfig::with_seed(7), factory, adversary);
//! sim.run_until_drained(10_000);
//! assert_eq!(sim.trace().total_successes(), 5);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod channel;
pub mod checkpoint;
pub mod config;
pub mod dual;
pub mod engine;
pub mod history;
pub mod lanes;
pub mod metrics;
pub mod node;
pub mod observer;
pub mod rng;
pub mod slot;
mod sparse;

pub use adversary::{Adversary, Forecast, SlotDecision};
pub use channel::ChannelModel;
pub use checkpoint::{Snapshot, SnapshotError};
pub use config::{Execution, SimConfig};
pub use engine::{Simulator, StopReason};
pub use history::PublicHistory;
pub use lanes::{lane_eligible, LaneRng, LaneRngs, LaneSimulator, LANES};
pub use metrics::{CumulativeTrace, DepartureRecord, SlotRecord, SurvivorRecord, Trace};
pub use node::{NamedFactory, NodeId, Protocol, ProtocolFactory};
pub use observer::StreamingStats;
pub use rng::SeedSequence;
pub use slot::{Action, Feedback, Parity, SlotOutcome};

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::adversary::{
        Adversary, ArrivalProcess, BatchArrival, BurstyArrival, CompositeAdversary, Forecast,
        FrontLoadedJamming, JammingStrategy, NoArrivals, NoJamming, NullAdversary, PeriodicJamming,
        PoissonArrival, RandomJamming, SaturatedArrival, ScriptedArrival, ScriptedJamming,
        SlotDecision,
    };
    pub use crate::channel::ChannelModel;
    pub use crate::checkpoint::{Snapshot, SnapshotError};
    pub use crate::config::{Execution, SimConfig};
    pub use crate::engine::{Simulator, StopReason};
    pub use crate::history::PublicHistory;
    pub use crate::lanes::{lane_eligible, LaneRngs, LaneSimulator, LANES};
    pub use crate::metrics::{CumulativeTrace, DepartureRecord, SlotRecord, Trace};
    pub use crate::node::{
        AlwaysBroadcast, NamedFactory, NeverBroadcast, NodeId, Protocol, ProtocolFactory,
    };
    pub use crate::observer::StreamingStats;
    pub use crate::rng::SeedSequence;
    pub use crate::slot::{Action, Feedback, Parity, SlotOutcome};
}
