//! Engine microbenchmark: `advance()`-level throughput of the exact
//! (dense) engine vs the event-driven sparse engine, across population
//! sizes and jam regimes.
//!
//! Run with `cargo bench -p contention-sim`. Excluded from CI timing
//! gates (CI only builds benches); the cross-PR perf gate is the `perf`
//! binary's pinned suite.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use contention_sim::adversary::{BatchArrival, CompositeAdversary, FrontLoadedJamming, NoJamming};
use contention_sim::node::{NodeId, Protocol};
use contention_sim::{Action, Execution, Feedback, SimConfig, Simulator};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore};

/// A self-contained static-phase protocol: constant send probability
/// `p`, feedback ignored. Implements the skip-ahead hooks with the
/// closed-form geometric inversion, so the bench exercises both engines
/// without depending on higher-level crates.
struct SparseAloha {
    p: f64,
}

impl Protocol for SparseAloha {
    fn name(&self) -> &'static str {
        "bench-aloha"
    }

    fn act(&mut self, _local: u64, rng: &mut dyn RngCore) -> Action {
        if rng.gen::<f64>() < self.p {
            Action::Broadcast
        } else {
            Action::Listen
        }
    }

    fn observe(&mut self, _local: u64, _fb: Feedback) {}

    fn observes_failures(&self) -> bool {
        false
    }

    fn current_prob(&self) -> Option<f64> {
        Some(self.p)
    }

    fn static_until_feedback(&self) -> bool {
        true
    }

    fn next_send_within(&mut self, within: u64, rng: &mut SmallRng) -> Option<u64> {
        let u = 1.0 - rng.gen::<f64>(); // (0, 1]
        let gap = u.ln() / (-self.p).ln_1p();
        if gap.is_finite() && gap < within as f64 {
            Some(gap as u64)
        } else {
            None
        }
    }
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_vs_dense");
    // (population, jam-wall length, label)
    let cases = [
        (16u32, 0u64, "n16-clean"),
        (4096, 0, "n4096-clean"),
        (16, 1 << 20, "n16-jammed"),
        (4096, 1 << 20, "n4096-jammed"),
    ];
    const CHUNK: u64 = 1 << 14;
    for (n, wall, label) in cases {
        for execution in [Execution::Exact, Execution::SkipAhead] {
            // Sparse regime: p sized so a whole population averages ~1
            // broadcast every ~64 slots.
            let p = 1.0 / (64.0 * f64::from(n));
            group.bench_with_input(
                BenchmarkId::new(execution.name(), label),
                &execution,
                |b, &execution| {
                    let factory =
                        move |_: NodeId| -> Box<dyn Protocol> { Box::new(SparseAloha { p }) };
                    let adversary = CompositeAdversary::new(
                        BatchArrival::at_start(n),
                        FrontLoadedJamming::new(wall),
                    );
                    let config = SimConfig::with_seed(7)
                        .without_slot_records()
                        .with_history_retention(1024)
                        .with_execution(execution);
                    let mut sim = Simulator::new(config, factory, adversary);
                    b.iter(|| {
                        sim.run_for(CHUNK);
                        black_box(sim.current_slot())
                    });
                },
            );
        }
    }
    // The no-jamming composite on an idle population: pure engine
    // overhead floor for both strategies.
    for execution in [Execution::Exact, Execution::SkipAhead] {
        group.bench_with_input(
            BenchmarkId::new(execution.name(), "n256-quiet-floor"),
            &execution,
            |b, &execution| {
                let factory = |_: NodeId| -> Box<dyn Protocol> { Box::new(SparseAloha { p: 0.0 }) };
                let adversary = CompositeAdversary::new(BatchArrival::at_start(256), NoJamming);
                let config = SimConfig::with_seed(9)
                    .without_slot_records()
                    .with_history_retention(1024)
                    .with_execution(execution);
                let mut sim = Simulator::new(config, factory, adversary);
                b.iter(|| {
                    sim.run_for(CHUNK);
                    black_box(sim.current_slot())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
