//! Process-level tests for the service layer: `benchd`, `benchctl`,
//! `campaign`, and `perf` run as real binaries.
//!
//! The headline assertions are the crash-recovery guarantees:
//!
//! * `kill -9` a mid-campaign `benchd`, restart it over the same jobs
//!   directory, and the finished job's CSV/JSONL output is *byte
//!   identical* to an uninterrupted run;
//! * SIGINT a journaled `campaign run`, get exit code 130, rerun with
//!   `--resume`, and the streamed row files are byte identical too.
//!
//! Workloads are sized so the kill window is wide even on slow machines,
//! with a deterministic fallback (truncate the journal by hand) should a
//! run ever finish before the signal lands.

use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use contention_bench::campaign::{Axis, SweepSpec};
use contention_bench::scenario::{AlgoSpec, ScenarioSpec};
use contention_bench::service::{run_local, JobStatusInfo, LocalOptions, Request, Response};

/// A fresh scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("contention-svc-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The sweep both crash tests run: enough cells that a signal landing
/// anywhere mid-run leaves work on both sides of it, each cell heavy
/// enough (debug build included) that polling cannot miss the window.
fn crash_sweep() -> SweepSpec {
    SweepSpec::new(
        "svc-e2e",
        "Service e2e crash-recovery sweep",
        ScenarioSpec::batch(512, 0.0)
            .algos([AlgoSpec::cjz_constant_jamming()])
            .seeds(2)
            .until_drained(2_000_000),
    )
    .axis(Axis::jam([0.0, 0.05, 0.1, 0.15, 0.2, 0.25]))
}

fn spawn_benchd(jobs_dir: &Path, port_file: &Path) -> (Child, String) {
    let child = Command::new(env!("CARGO_BIN_EXE_benchd"))
        .arg("--jobs-dir")
        .arg(jobs_dir)
        .arg("--port-file")
        .arg(port_file)
        .arg("--threads")
        .arg("2")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn benchd");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if text.ends_with('\n') {
                break text.trim().to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "benchd never wrote its port file"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    (child, addr)
}

/// One request/response exchange over a fresh connection.
fn call(addr: &str, req: &Request) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect to benchd");
    stream
        .write_all(format!("{}\n", req.to_line()).as_bytes())
        .expect("send request");
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .expect("read response");
    Response::from_line(line.trim_end()).expect("parse response")
}

fn status(addr: &str, id: &str) -> JobStatusInfo {
    match call(addr, &Request::Status { id: id.to_string() }) {
        Response::Status(s) => s,
        other => panic!("unexpected status response: {other:?}"),
    }
}

fn benchctl(addr: &str, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_benchctl"))
        .arg("--addr")
        .arg(addr)
        .args(args)
        .output()
        .expect("run benchctl")
}

fn read_bytes(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Deterministic stand-in for a mid-run crash, used only if the job
/// outraces the poller: keep the journal header plus one cell, and
/// remove the completion artifacts so the restart has work to do.
fn force_partial(job_dir: &Path) {
    let journal = job_dir.join("journal.jsonl");
    let text = std::fs::read_to_string(&journal).expect("read journal");
    let kept: Vec<&str> = text.lines().take(2).collect();
    assert!(kept.len() == 2, "journal has no completed cell to keep");
    std::fs::write(&journal, format!("{}\n", kept.join("\n"))).expect("truncate journal");
    for artifact in ["state", "results.csv", "results.jsonl", "report.md"] {
        let _ = std::fs::remove_file(job_dir.join(artifact));
    }
}

#[test]
fn benchd_kill9_restart_resumes_byte_identical() {
    let dir = scratch("benchd");
    let jobs = dir.join("jobs");
    let sweep = crash_sweep();
    let spec_path = dir.join("spec.json");
    std::fs::write(&spec_path, sweep.to_json_string()).expect("write spec");

    // Uninterrupted in-process reference run, through the same writers.
    let ref_csv = dir.join("ref.csv");
    let ref_jsonl = dir.join("ref.jsonl");
    run_local(
        sweep.clone(),
        LocalOptions {
            csv: Some(ref_csv.clone()),
            jsonl: Some(ref_jsonl.clone()),
            ..LocalOptions::default()
        },
    )
    .expect("reference run");

    // Daemon #1: submit, then SIGKILL as soon as one cell is journaled.
    let (mut child, addr) = spawn_benchd(&jobs, &dir.join("port1"));
    let out = benchctl(
        &addr,
        &[
            "submit",
            "--spec",
            spec_path.to_str().unwrap(),
            "--id",
            "e2e",
        ],
    );
    assert!(out.status.success(), "submit failed: {out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("submitted e2e"));

    let deadline = Instant::now() + Duration::from_secs(120);
    let mut caught_mid_run = false;
    loop {
        let s = status(&addr, "e2e");
        if s.done_units >= 1 && s.done_units < s.total_units {
            caught_mid_run = true;
            break;
        }
        if s.state == "done" {
            break;
        }
        assert!(Instant::now() < deadline, "job never progressed");
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().expect("kill -9 benchd");
    child.wait().expect("reap benchd");
    if !caught_mid_run {
        // The grid finished before the poller saw a mid-run state; fall
        // back to a hand-made partial journal so recovery still runs.
        force_partial(&jobs.join("e2e"));
    }

    // Daemon #2 over the same jobs dir: it must pick the job back up
    // from the journal and finish it without resubmission.
    let (mut child2, addr2) = spawn_benchd(&jobs, &dir.join("port2"));
    let deadline = Instant::now() + Duration::from_secs(300);
    let final_status = loop {
        let s = status(&addr2, "e2e");
        if s.state == "done" {
            break s;
        }
        assert!(
            s.state == "queued" || s.state == "running",
            "job failed after restart: {s:?}"
        );
        assert!(Instant::now() < deadline, "resumed job never finished");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        final_status.recovered_units >= 1,
        "restart did not recover journaled cells: {final_status:?}"
    );
    assert!(
        final_status.recovered_units < final_status.total_units,
        "nothing was left to re-run: {final_status:?}"
    );

    // `watch` on a finished job prints its terminal event and exits 0.
    let out = benchctl(&addr2, &["watch", "e2e"]);
    assert!(out.status.success(), "watch failed: {out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("done"));

    // The resumed output must be byte-identical to the reference run —
    // both over the wire and as the journal directory artifacts.
    let got_csv = dir.join("got.csv");
    let out = benchctl(
        &addr2,
        &[
            "results",
            "e2e",
            "--format",
            "csv",
            "--out",
            got_csv.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "results failed: {out:?}");
    assert_eq!(
        read_bytes(&got_csv),
        read_bytes(&ref_csv),
        "CSV differs after resume"
    );
    let out = benchctl(&addr2, &["results", "e2e", "--format", "jsonl"]);
    assert!(out.status.success(), "results failed: {out:?}");
    assert_eq!(
        out.stdout,
        read_bytes(&ref_jsonl),
        "JSONL differs after resume"
    );
    assert_eq!(
        read_bytes(&jobs.join("e2e").join("results.csv")),
        read_bytes(&ref_csv),
        "on-disk results.csv differs after resume"
    );
    assert_eq!(
        read_bytes(&jobs.join("e2e").join("results.jsonl")),
        read_bytes(&ref_jsonl),
        "on-disk results.jsonl differs after resume"
    );

    // Unknown campaign names come back as suggestions over the wire.
    let out = benchctl(&addr2, &["submit", "tradeof"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("did you mean"));

    let out = benchctl(&addr2, &["shutdown"]);
    assert!(out.status.success(), "shutdown failed: {out:?}");
    let code = child2.wait().expect("reap benchd");
    assert!(code.success(), "benchd exited abnormally: {code:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_sigint_exits_130_then_resume_is_byte_identical() {
    let dir = scratch("campaign");
    let spec_path = dir.join("spec.json");
    std::fs::write(&spec_path, crash_sweep().to_json_string()).expect("write spec");
    let journal_dir = dir.join("j");
    let journal = journal_dir.join("journal.jsonl");
    let (ref_csv, ref_jsonl) = (dir.join("ref.csv"), dir.join("ref.jsonl"));
    let (out_csv, out_jsonl) = (dir.join("out.csv"), dir.join("out.jsonl"));

    // Reference: one uninterrupted run of the same binary.
    let out = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(["run", "--spec", spec_path.to_str().unwrap()])
        .args(["--csv", ref_csv.to_str().unwrap()])
        .args(["--jsonl", ref_jsonl.to_str().unwrap()])
        .output()
        .expect("reference campaign run");
    assert!(out.status.success(), "reference run failed: {out:?}");

    // Journaled run, SIGINT'd once the journal holds a completed cell.
    // `--threads 1` serializes the cells (the output is thread-count
    // independent), so after the first journal line there is a whole
    // grid's worth of wall clock left for the signal to land in — on a
    // release build a parallel run can finish the entire grid within
    // the poller's resolution.
    let mut child = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(["run", "--spec", spec_path.to_str().unwrap()])
        .args(["--journal", journal_dir.to_str().unwrap()])
        .args(["--csv", out_csv.to_str().unwrap()])
        .args(["--jsonl", out_jsonl.to_str().unwrap()])
        .args(["--threads", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn journaled campaign run");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let lines = std::fs::read_to_string(&journal)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if lines >= 2 {
            break; // header plus at least one fsync'd cell
        }
        assert!(Instant::now() < deadline, "journal never gained a cell");
        std::thread::sleep(Duration::from_millis(2));
    }
    let interrupt = Command::new("kill")
        .args(["-2", &child.id().to_string()])
        .status()
        .expect("send SIGINT");
    assert!(interrupt.success(), "kill -2 failed");
    let code = child.wait().expect("reap campaign run");
    assert_eq!(
        code.code(),
        Some(130),
        "interrupted run must exit 130 (got {code:?})"
    );

    // The journal survived the interrupt with a valid prefix; resuming
    // completes the grid and rewrites byte-identical row files.
    let out = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(["run", "--spec", spec_path.to_str().unwrap()])
        .args(["--journal", journal_dir.to_str().unwrap(), "--resume"])
        .args(["--csv", out_csv.to_str().unwrap()])
        .args(["--jsonl", out_jsonl.to_str().unwrap()])
        .output()
        .expect("resume campaign run");
    assert!(out.status.success(), "resume failed: {out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("resumed"),
        "resume did not report recovered cells: {out:?}"
    );
    assert_eq!(
        read_bytes(&out_csv),
        read_bytes(&ref_csv),
        "CSV differs after resume"
    );
    assert_eq!(
        read_bytes(&out_jsonl),
        read_bytes(&ref_jsonl),
        "JSONL differs after resume"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_unknown_names_exit_2_with_suggestions() {
    // perf: a zero-match --filter lists the suite and suggests.
    let out = Command::new(env!("CARGO_BIN_EXE_perf"))
        .args(["--filter", "bach"])
        .output()
        .expect("run perf");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("matches no suite entry"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("did you mean"), "stderr: {stderr}");
    assert!(stderr.contains("batch/64"), "stderr: {stderr}");

    // perf: nothing close still exits 2, just without suggestions.
    let out = Command::new(env!("CARGO_BIN_EXE_perf"))
        .args(["--filter", "zzzz-nothing"])
        .output()
        .expect("run perf");
    assert_eq!(out.status.code(), Some(2));
    assert!(!String::from_utf8_lossy(&out.stderr).contains("did you mean"));

    // campaign: unknown registry names get the same treatment.
    let out = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(["run", "tradeof"])
        .output()
        .expect("run campaign");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("tradeoff"), "stderr: {stderr}");
}
