//! Fault-injection regression tests for the service layer: each test
//! arms the process-global injector (via [`faults::install`], which
//! also serializes fault-using tests through the injector's scope
//! lock) and asserts one self-healing contract — journal appends heal
//! by truncation, panicking workers retry then quarantine without
//! taking the daemon down, stalled sockets time out instead of
//! wedging, and `health` answers with substance.
//!
//! The full randomized sweep lives in `tests/chaos_soak.rs`; these are
//! the targeted, one-faultpoint-at-a-time checks.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use contention_bench::campaign::{Axis, SweepSpec};
use contention_bench::scenario::{AlgoSpec, ScenarioSpec};
use contention_bench::service::{
    faults, recover, run_local, Daemon, DaemonConfig, FaultPoint, FaultSchedule, JobSource,
    Journal, LocalOptions, Request, Response, SubmitRequest,
};

/// Keep injected panics out of the test output: the scheduler catches
/// them by design, so the default hook's backtrace spam is pure noise.
fn quiet_injected_panics() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.starts_with("injected fault:"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.starts_with("injected fault:"));
            if !injected {
                previous(info);
            }
        }));
    });
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "contention-svc-faults-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Two cells, one algorithm, one seed: small enough that even a debug
/// build finishes in milliseconds, large enough to have a grid.
fn tiny_sweep() -> SweepSpec {
    SweepSpec::new(
        "faults",
        "Fault-injection test sweep",
        ScenarioSpec::batch(4, 0.0)
            .algos([AlgoSpec::cjz_constant_jamming()])
            .seeds(1)
            .until_drained(10_000),
    )
    .axis(Axis::jam([0.0, 0.1]))
}

/// One cell only — the single-task victim for quarantine tests.
fn one_cell_sweep(name: &str) -> SweepSpec {
    SweepSpec::new(
        name,
        "Single-cell fault sweep",
        ScenarioSpec::batch(4, 0.0)
            .algos([AlgoSpec::cjz_constant_jamming()])
            .seeds(1)
            .until_drained(10_000),
    )
    .axis(Axis::jam([0.0]))
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .expect("read timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn call(&mut self, req: &Request) -> Response {
        self.writer
            .write_all(format!("{}\n", req.to_line()).as_bytes())
            .expect("send");
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read");
        assert!(n > 0, "daemon closed the connection mid-call");
        Response::from_line(line.trim_end()).expect("parse response")
    }
}

fn spawn_daemon(
    jobs_dir: PathBuf,
    io_timeout: Option<Duration>,
) -> (std::thread::JoinHandle<()>, SocketAddr) {
    let daemon = Daemon::bind(DaemonConfig {
        jobs_dir,
        threads: 1,
        io_timeout,
        ..Default::default()
    })
    .expect("bind daemon");
    let addr = daemon.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || daemon.run().expect("daemon run"));
    (handle, addr)
}

fn submit_sweep(c: &mut Client, sweep: &SweepSpec, id: &str) {
    let resp = c.call(&Request::Submit(Box::new(SubmitRequest {
        source: JobSource::Sweep(sweep.clone()),
        id: Some(id.to_string()),
        priority: 0,
    })));
    assert!(matches!(resp, Response::Submitted { .. }), "{resp:?}");
}

/// Poll a job to a terminal state, bounded by a generous deadline (the
/// tests never rely on the deadline — budgets bound all injected work).
fn wait_terminal(c: &mut Client, id: &str) -> contention_bench::service::JobStatusInfo {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match c.call(&Request::Status { id: id.to_string() }) {
            Response::Status(s) => {
                if s.state == "done" || s.state == "failed" || s.state == "cancelled" {
                    return s;
                }
            }
            other => panic!("unexpected status response: {other:?}"),
        }
        assert!(
            Instant::now() < deadline,
            "job `{id}` never reached a terminal state"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn shutdown(addr: SocketAddr, server: std::thread::JoinHandle<()>) {
    let mut c = Client::connect(addr);
    assert!(matches!(c.call(&Request::Shutdown), Response::Ok));
    server.join().expect("daemon thread");
}

/// Satellite 1: a client that connects and then goes silent must not
/// wedge the daemon. Its handler hits the socket read timeout and
/// closes; other clients get answers the whole time.
#[test]
fn stalled_connection_times_out_and_does_not_wedge_status() {
    quiet_injected_panics();
    let _guard = faults::install(FaultSchedule::off());
    let dir = scratch("stall");
    let (server, addr) = spawn_daemon(dir.join("jobs"), Some(Duration::from_millis(150)));

    // Client A: half a request line, then silence.
    let mut stalled = TcpStream::connect(addr).expect("connect stalled client");
    stalled
        .write_all(b"{\"op\":\"stat")
        .expect("send partial line");

    // Client B keeps getting served while A is stalled.
    let mut b = Client::connect(addr);
    for _ in 0..3 {
        assert!(matches!(b.call(&Request::Ping), Response::Ok));
    }
    submit_sweep(&mut b, &tiny_sweep(), "during-stall");
    assert_eq!(wait_terminal(&mut b, "during-stall").state, "done");

    // A's connection is closed by the server once the timeout lapses —
    // the handler thread is released, not parked forever.
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut buf = [0u8; 16];
    let n = stalled.read(&mut buf).expect("read after server timeout");
    assert_eq!(n, 0, "server should close the stalled connection");

    shutdown(addr, server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 2a: a worker panic under the retry cap is retried and the
/// job still finishes — with results byte-identical to a fault-free
/// run, because tasks are deterministic and the journal only ever
/// records acknowledged cells.
#[test]
fn injected_panic_retries_to_done_with_identical_results() {
    quiet_injected_panics();
    let dir = scratch("panic-retry");
    let sweep = tiny_sweep();

    // Fault-free reference through the same execution path. Holding an
    // off() guard keeps concurrently-running armed tests (the injector
    // is process-global) out of the reference run.
    let ref_csv = dir.join("ref.csv");
    {
        let _quiet = faults::install(FaultSchedule::off());
        run_local(
            sweep.clone(),
            LocalOptions {
                csv: Some(ref_csv.clone()),
                ..LocalOptions::default()
            },
        )
        .expect("reference run");
    }

    // Three panics (< TASK_ATTEMPTS = 4 per task), then clean runs.
    let guard = faults::install(
        FaultSchedule::off()
            .rate(FaultPoint::SchedulerTaskPanic, 1000)
            .budget(FaultPoint::SchedulerTaskPanic, 3),
    );
    let (server, addr) = spawn_daemon(dir.join("jobs"), None);
    let mut c = Client::connect(addr);
    submit_sweep(&mut c, &sweep, "retried");
    let s = wait_terminal(&mut c, "retried");
    assert_eq!(s.state, "done", "{s:?}");
    assert_eq!(
        guard.stats().fires[9],
        3,
        "scheduler.task.panic fired thrice"
    );

    let body = match c.call(&Request::Results {
        id: "retried".into(),
        format: contention_bench::service::ResultFormat::Csv,
    }) {
        Response::Results { body, .. } => body,
        other => panic!("unexpected results response: {other:?}"),
    };
    assert_eq!(
        body,
        std::fs::read_to_string(&ref_csv).expect("read reference csv"),
        "results after panic-retries differ from the fault-free run"
    );

    guard.disarm();
    shutdown(addr, server);
    drop(guard);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 2b: a task that panics on every attempt exhausts the cap
/// and is quarantined — the job fails with a `quarantined:` reason and
/// the daemon keeps serving: a second job completes normally.
#[test]
fn persistent_panic_quarantines_job_but_daemon_keeps_serving() {
    quiet_injected_panics();
    let dir = scratch("quarantine");
    // Exactly TASK_ATTEMPTS fires: job A's single task burns all four,
    // so job B (submitted after A is terminal) runs entirely clean.
    let guard = faults::install(
        FaultSchedule::off()
            .rate(FaultPoint::SchedulerTaskPanic, 1000)
            .budget(FaultPoint::SchedulerTaskPanic, 4),
    );
    let (server, addr) = spawn_daemon(dir.join("jobs"), None);
    let mut c = Client::connect(addr);

    submit_sweep(&mut c, &one_cell_sweep("victim"), "doomed");
    let s = wait_terminal(&mut c, "doomed");
    assert_eq!(s.state, "failed", "{s:?}");
    let reason = s.error.expect("failed job carries a reason");
    assert!(reason.contains("quarantined"), "{reason}");
    assert!(reason.contains("panicked on 4 attempts"), "{reason}");

    // The quarantine is durable: the on-disk state marker names it.
    let marker = std::fs::read_to_string(dir.join("jobs").join("doomed").join("state"))
        .expect("state marker");
    assert!(marker.starts_with("failed:"), "{marker}");
    assert!(marker.contains("quarantined"), "{marker}");

    // Shared state survived the panics: a clean job still completes.
    submit_sweep(&mut c, &one_cell_sweep("survivor"), "clean");
    assert_eq!(wait_terminal(&mut c, "clean").state, "done");

    guard.disarm();
    shutdown(addr, server);
    drop(guard);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 3a: torn/failed journal appends heal by truncation. A
/// transient fault is retried to success; a persistent fault surfaces
/// an error but leaves the file at its valid prefix — recover() never
/// sees garbage before the tail.
#[test]
fn journal_append_faults_heal_by_truncation() {
    quiet_injected_panics();
    let dir = scratch("journal-heal");
    let path = dir.join("journal.jsonl");
    let sweep = tiny_sweep();
    // Compute the cells under an off() guard: the runner shares the
    // service execution path, and the injector is process-global.
    let cells = {
        let _quiet = faults::install(FaultSchedule::off());
        contention_bench::campaign::CampaignRunner::new(sweep.clone())
            .run()
            .cells
    };

    // Two torn writes, then success: append() heals and retries within
    // one call, and the journal is byte-perfect afterwards.
    {
        let guard = faults::install(
            FaultSchedule::off()
                .rate(FaultPoint::JournalAppendWrite, 1000)
                .budget(FaultPoint::JournalAppendWrite, 2),
        );
        let mut j = Journal::create(&path, &sweep, 2).expect("create journal");
        j.append(0, &cells[0]).expect("append heals torn writes");
        assert_eq!(
            guard.stats().fires[1],
            2,
            "journal.append.write fired twice"
        );
        let r = recover(&path, &sweep, 2).expect("recover").expect("some");
        assert_eq!(r.results.len(), 1);
        assert!(!r.truncated, "healed journal has no torn tail");
        drop(guard);
    }

    // Persistent fsync failure: the append errors out, but the file is
    // healed back to the acknowledged prefix — the earlier cell is
    // still recoverable and there are no torn bytes.
    {
        let guard = faults::install(
            FaultSchedule::off()
                .rate(FaultPoint::JournalAppendFsync, 1000)
                .budget(FaultPoint::JournalAppendFsync, u32::MAX),
        );
        let r = recover(&path, &sweep, 2).expect("recover").expect("some");
        let mut j = Journal::resume(&path, r.valid_len).expect("resume");
        let err = j.append(1, &cells[1]).expect_err("fsync fault persists");
        assert!(err.to_string().contains("injected fault"), "{err}");
        drop(guard);
        let r = recover(&path, &sweep, 2)
            .expect("recover after failure")
            .expect("some");
        assert_eq!(r.results.len(), 1, "failed append acknowledged nothing");
        assert!(!r.truncated, "heal leaves no torn tail");
        // And the journal is still appendable after the fault clears.
        let mut j = Journal::resume(&path, r.valid_len).expect("resume again");
        j.append(1, &cells[1]).expect("clean append");
        let r = recover(&path, &sweep, 2)
            .expect("final recover")
            .expect("some");
        assert_eq!(r.results.len(), 2);
        assert_eq!(r.results[&1], cells[1]);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 3b: a torn header is a fresh start, never corruption.
/// Transient header faults retry inside create(); a persistent fault
/// fails create() but the leftover file still recovers as `None`.
#[test]
fn torn_header_recovers_as_fresh_start() {
    quiet_injected_panics();
    let dir = scratch("journal-header");
    let path = dir.join("journal.jsonl");
    let sweep = tiny_sweep();

    {
        let _guard = faults::install(
            FaultSchedule::off()
                .rate(FaultPoint::JournalHeaderWrite, 1000)
                .budget(FaultPoint::JournalHeaderWrite, 2),
        );
        // Attempts 1 and 2 tear, attempt 3 succeeds.
        let j = Journal::create(&path, &sweep, 2).expect("create retries past torn headers");
        drop(j);
        let r = recover(&path, &sweep, 2).expect("recover");
        assert!(r.expect("some").results.is_empty());
    }
    {
        let _guard = faults::install(
            FaultSchedule::off()
                .rate(FaultPoint::JournalHeaderWrite, 1000)
                .budget(FaultPoint::JournalHeaderWrite, u32::MAX),
        );
        let err = Journal::create(&path, &sweep, 2).expect_err("persistent header fault");
        assert!(err.to_string().contains("injected fault"), "{err}");
    }
    // The torn header file acknowledged nothing: fresh start, and a
    // clean create() simply truncates over it.
    assert!(recover(&path, &sweep, 2)
        .expect("recover torn header")
        .is_none());
    let _j = Journal::create(&path, &sweep, 2).expect("clean create over torn header");
    assert!(recover(&path, &sweep, 2).expect("recover").is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 3c: recover() accepts a truncation at *every* byte offset
/// of a complete journal — the exhaustive crash sweep. Each prefix
/// yields either a fresh start or a valid sub-journal whose rows are
/// bit-identical to the originals; no offset is ever corruption.
#[test]
fn recover_accepts_every_truncation_offset() {
    quiet_injected_panics();
    let _guard = faults::install(FaultSchedule::off());
    let dir = scratch("journal-offsets");
    let path = dir.join("journal.jsonl");
    let sweep = tiny_sweep();
    let cells = contention_bench::campaign::CampaignRunner::new(sweep.clone())
        .run()
        .cells;
    let mut j = Journal::create(&path, &sweep, 2).expect("create");
    for (i, cell) in cells.iter().enumerate() {
        j.append(i, cell).expect("append");
    }
    drop(j);
    let full = std::fs::read(&path).expect("read journal");

    let cut_path = dir.join("cut.jsonl");
    for cut in 0..=full.len() {
        std::fs::write(&cut_path, &full[..cut]).expect("write prefix");
        match recover(&cut_path, &sweep, 2) {
            Ok(None) => {} // header never landed: fresh start
            Ok(Some(r)) => {
                assert!(r.valid_len as usize <= cut, "offset {cut}");
                for (unit, cell) in &r.results {
                    assert_eq!(cell, &cells[*unit], "offset {cut} unit {unit}");
                }
            }
            Err(e) => panic!("offset {cut}: a pure truncation must never be corruption: {e}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A failed atomic rename during submit is retried; when the fault is
/// persistent, the submit fails cleanly, the half-made job directory is
/// removed, and the same id submits fine once the fault clears.
#[test]
fn submit_survives_rename_faults_and_cleans_up_on_failure() {
    quiet_injected_panics();
    let dir = scratch("submit-rename");
    let sweep = one_cell_sweep("rn");

    // Transient: two failed renames, then success.
    let guard = faults::install(
        FaultSchedule::off()
            .rate(FaultPoint::AtomicWriteRename, 1000)
            .budget(FaultPoint::AtomicWriteRename, 2),
    );
    let (server, addr) = spawn_daemon(dir.join("jobs"), None);
    let mut c = Client::connect(addr);
    submit_sweep(&mut c, &sweep, "healed");
    assert_eq!(wait_terminal(&mut c, "healed").state, "done");
    drop(guard);

    // Persistent: the submit fails, but leaves no debris behind — the
    // same id is accepted as soon as the fault clears.
    let guard = faults::install(
        FaultSchedule::off()
            .rate(FaultPoint::AtomicWriteRename, 1000)
            .budget(FaultPoint::AtomicWriteRename, u32::MAX),
    );
    let resp = c.call(&Request::Submit(Box::new(SubmitRequest {
        source: JobSource::Sweep(sweep.clone()),
        id: Some("blocked".into()),
        priority: 0,
    })));
    match resp {
        Response::Error { message } => {
            assert!(message.contains("injected fault"), "{message}")
        }
        other => panic!("submit should fail under a persistent rename fault: {other:?}"),
    }
    assert!(
        !dir.join("jobs").join("blocked").exists(),
        "failed submit must clean up its job directory"
    );
    guard.disarm();
    submit_sweep(&mut c, &sweep, "blocked");
    assert_eq!(wait_terminal(&mut c, "blocked").state, "done");

    shutdown(addr, server);
    drop(guard);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The health heartbeat answers with substance: job counts and the
/// injector's cumulative fire count.
#[test]
fn health_reports_jobs_and_fault_fires() {
    quiet_injected_panics();
    let guard = faults::install(
        FaultSchedule::off()
            .rate(FaultPoint::DaemonStall, 1000)
            .budget(FaultPoint::DaemonStall, 1)
            .stall_for(Duration::from_millis(1)),
    );
    let dir = scratch("health");
    let (server, addr) = spawn_daemon(dir.join("jobs"), None);
    let mut c = Client::connect(addr);
    submit_sweep(&mut c, &one_cell_sweep("hb"), "hb");
    assert_eq!(wait_terminal(&mut c, "hb").state, "done");

    match c.call(&Request::Health) {
        Response::Health {
            jobs,
            active,
            fault_fires,
        } => {
            assert_eq!(jobs, 1);
            assert_eq!(active, 0, "the only job is terminal");
            assert!(fault_fires >= 1, "the bounded stall fired");
        }
        other => panic!("unexpected health response: {other:?}"),
    }

    guard.disarm();
    shutdown(addr, server);
    drop(guard);
    let _ = std::fs::remove_dir_all(&dir);
}
