//! The chaos-equivalence soak: 64 seeded fault schedules thrown at a
//! live daemon, each run asserting the service layer's whole-stack
//! safety contract — **every job either finishes with results
//! byte-identical to a fault-free reference run, or is cleanly
//! quarantined with a recorded reason. Never a hang, never corruption,
//! never a half-written artifact.**
//!
//! Nothing here waits unboundedly: schedules cap every faultpoint with
//! a finite budget (stalls included), socket timeouts bound reads on
//! both sides, and the client's reconnect/retry loops are bounded by
//! counts, so the zero-hang property comes from deterministic caps
//! rather than generous sleeps.
//!
//! `CHAOS_SOAK_SCHEDULES=<n>` runs the first `n` seeds only (the CI
//! smoke uses a subset); any window of 8 consecutive seeds contains a
//! forced-quarantine seed (`seed % 8 == 7`), so even short runs
//! exercise both verdicts.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use contention_bench::campaign::{Axis, SweepSpec};
use contention_bench::scenario::{AlgoSpec, ScenarioSpec};
use contention_bench::service::{
    faults, run_local, Daemon, DaemonConfig, FaultSchedule, JobSource, LocalOptions, Request,
    Response, ResultFormat, SubmitRequest,
};

/// Keep injected worker panics out of the test output (the scheduler
/// catches them by design; the default hook's spam drowns the report).
fn quiet_injected_panics() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.starts_with("injected fault:"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.starts_with("injected fault:"));
            if !injected {
                previous(info);
            }
        }));
    });
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("contention-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The soak workload: two cells, one algorithm, one seed — small
/// enough that 64 chaos runs stay fast, real enough that the journal,
/// artifacts, and results pipeline all engage.
fn soak_sweep() -> SweepSpec {
    SweepSpec::new(
        "chaos",
        "Chaos soak sweep",
        ScenarioSpec::batch(4, 0.0)
            .algos([AlgoSpec::cjz_constant_jamming()])
            .seeds(1)
            .until_drained(10_000),
    )
    .axis(Axis::jam([0.0, 0.1]))
}

/// One bounded request/response exchange over a fresh connection.
/// Chaos can drop, tear, or stall any attempt; every failure mode
/// retries up to the cap — fault budgets guarantee the daemon turns
/// clean long before the cap runs out.
fn rpc(addr: SocketAddr, req: &Request) -> Response {
    const TRIES: u32 = 60;
    let mut last = String::from("no attempt made");
    for _ in 0..TRIES {
        match try_rpc(addr, req) {
            Ok(Response::Error { message }) if message.starts_with("bad request:") => {
                // The daemon saw a torn inbound frame; resend.
                last = message;
            }
            Ok(resp) => return resp,
            Err(e) => last = e,
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("rpc failed after {TRIES} bounded attempts: {last} ({req:?})");
}

fn try_rpc(addr: SocketAddr, req: &Request) -> Result<Response, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("timeout: {e}"))?;
    stream
        .write_all(format!("{}\n", req.to_line()).as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut line = String::new();
    let n = BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("read: {e}"))?;
    if n == 0 {
        return Err("connection dropped before a response".into());
    }
    Response::from_line(line.trim_end()).map_err(|e| format!("parse: {e}"))
}

/// The terminal verdict of one chaos run.
enum Verdict {
    /// Finished; results were byte-identical to the reference.
    Done,
    /// Cleanly quarantined with the recorded reason.
    Quarantined(String),
}

/// Run one seeded chaos schedule end to end and return the verdict.
fn chaos_run(seed: u64, reference_csv: &str) -> Verdict {
    let dir = scratch(&format!("seed{seed}"));
    let guard = faults::install(FaultSchedule::chaos(seed));
    let daemon = Daemon::bind(DaemonConfig {
        jobs_dir: dir.join("jobs"),
        threads: 1,
        io_timeout: Some(Duration::from_millis(250)),
        ..Default::default()
    })
    .expect("bind daemon");
    let addr = daemon.local_addr().expect("local addr");
    let server = std::thread::spawn(move || daemon.run().expect("daemon run"));

    // Submit with an explicit id so a replay after a torn/dropped
    // acknowledgement is recognizable: `already exists` means the
    // first copy landed.
    let submit = Request::Submit(Box::new(SubmitRequest {
        source: JobSource::Sweep(soak_sweep()),
        id: Some("chaos".into()),
        priority: 0,
    }));
    const SUBMIT_TRIES: u32 = 60;
    let mut accepted = false;
    for _ in 0..SUBMIT_TRIES {
        match try_rpc(addr, &submit) {
            Ok(Response::Submitted { .. }) => {
                accepted = true;
                break;
            }
            Ok(Response::Error { message }) if message.contains("already exists") => {
                accepted = true;
                break;
            }
            Ok(Response::Error { .. }) | Ok(_) | Err(_) => {}
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(accepted, "seed {seed}: submit never accepted");

    // Poll to a terminal state, bounded by a deadline that injected
    // budgets cannot approach (stall budgets total well under a
    // second; everything else is retry-capped).
    let deadline = Instant::now() + Duration::from_secs(120);
    let status = loop {
        if let Response::Status(s) = rpc(addr, &Request::Status { id: "chaos".into() }) {
            if s.state == "done" || s.state == "failed" || s.state == "cancelled" {
                break s;
            }
        }
        assert!(
            Instant::now() < deadline,
            "seed {seed}: job never reached a terminal state"
        );
        std::thread::sleep(Duration::from_millis(2));
    };

    let verdict = match status.state.as_str() {
        "done" => {
            let body = match rpc(
                addr,
                &Request::Results {
                    id: "chaos".into(),
                    format: ResultFormat::Csv,
                },
            ) {
                Response::Results { body, .. } => body,
                other => panic!("seed {seed}: unexpected results response: {other:?}"),
            };
            assert_eq!(
                body, reference_csv,
                "seed {seed}: results differ from the fault-free reference"
            );
            // If the on-disk artifact landed (persistent artifact-write
            // faults degrade it to a log line — the journal remains the
            // source of truth), it must be byte-identical too.
            let on_disk = dir.join("jobs").join("chaos").join("results.csv");
            if let Ok(bytes) = std::fs::read_to_string(&on_disk) {
                assert_eq!(
                    bytes, reference_csv,
                    "seed {seed}: on-disk results.csv differs from the reference"
                );
            }
            Verdict::Done
        }
        "failed" => {
            let reason = status
                .error
                .unwrap_or_else(|| panic!("seed {seed}: failed without a reason"));
            assert!(
                reason.contains("quarantined"),
                "seed {seed}: failure was not a clean quarantine: {reason}"
            );
            Verdict::Quarantined(reason)
        }
        other => panic!("seed {seed}: unexpected terminal state `{other}`"),
    };

    // End the chaos window before shutdown so the daemon exits cleanly.
    guard.disarm();
    match rpc(addr, &Request::Shutdown) {
        Response::Ok => {}
        other => panic!("seed {seed}: unexpected shutdown response: {other:?}"),
    }
    server.join().expect("daemon thread");
    drop(guard);
    let _ = std::fs::remove_dir_all(&dir);
    verdict
}

#[test]
fn chaos_soak_byte_identical_or_quarantined() {
    quiet_injected_panics();
    let schedules: u64 = std::env::var("CHAOS_SOAK_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    assert!(
        schedules >= 8,
        "a soak shorter than 8 seeds misses the forced-quarantine seed"
    );

    // Fault-free reference through the same execution path (under an
    // off() guard: the injector is process-global).
    let dir = scratch("reference");
    let ref_csv_path = dir.join("ref.csv");
    {
        let _quiet = faults::install(FaultSchedule::off());
        run_local(
            soak_sweep(),
            LocalOptions {
                csv: Some(ref_csv_path.clone()),
                ..LocalOptions::default()
            },
        )
        .expect("reference run");
    }
    let reference_csv = std::fs::read_to_string(&ref_csv_path).expect("read reference");
    let _ = std::fs::remove_dir_all(&dir);

    let mut done = 0u64;
    let mut quarantines = Vec::new();
    for seed in 0..schedules {
        match chaos_run(seed, &reference_csv) {
            Verdict::Done => done += 1,
            Verdict::Quarantined(reason) => quarantines.push((seed, reason)),
        }
    }
    eprintln!(
        "chaos soak: {schedules} schedules, {done} byte-identical, {} quarantined",
        quarantines.len()
    );
    for (seed, reason) in &quarantines {
        eprintln!("  seed {seed}: {reason}");
    }
    assert_eq!(done + quarantines.len() as u64, schedules);
    assert!(done >= 1, "no schedule finished clean");
    assert!(
        !quarantines.is_empty(),
        "no schedule quarantined (seed 7 forces worker panics)"
    );
}
