//! Replay equivalence: a window materialized from checkpoints must be
//! **byte-identical** to the same slots of an uninterrupted run, for
//! every outer execution engine and across many seeds.
//!
//! The reference trajectory is collected by advancing the same simulator
//! chunk by chunk through [`ScenarioRunner::advance_chunk`] while
//! recording every slot — the single chunk-advancement primitive
//! checkpointed runs, capture passes, and window replays all share, so
//! any divergence here is a broken snapshot/resume, not a chunking
//! artifact.
//!
//! Golden fingerprints at the bottom pin specific (spec, seed, window)
//! triples across releases: if one changes, the simulator's trajectory
//! changed, and every published checkpoint handle is invalidated.

use contention_bench::forensics::{window_fingerprint, WindowReplayer};
use contention_bench::scenario::{
    AlgoSpec, ArrivalSpec, BaselineSpec, JammingSpec, ScenarioRunner, ScenarioSpec,
};
use contention_sim::{Execution, SlotRecord};

/// Every slot of the run, collected chunk by chunk — the trajectory the
/// checkpointed paths walk.
fn reference(spec: &ScenarioSpec, algo_index: usize, seed: u64) -> Vec<SlotRecord> {
    let every = spec.checkpoint.expect("spec must carry a policy").every;
    let runner = ScenarioRunner::new(spec.clone());
    let algo = spec.algos[algo_index].clone();
    let mut sim = runner.sim(&algo, seed);
    let mut all = Vec::new();
    while runner.advance_chunk(&mut sim, every, |_, rec| all.push(*rec)) > 0 {}
    all
}

/// Capture + replay `windows` of (spec, seed) and demand byte-identical
/// records against the uninterrupted reference.
fn assert_windows_exact(spec: &ScenarioSpec, seed: u64, windows: &[(u64, u64)]) {
    let all = reference(spec, 0, seed);
    let mut replayer = WindowReplayer::capture(spec.clone(), 0, seed).expect("capture");
    for res in replayer.windows(windows) {
        let win = res.expect("window replays");
        let lo = win.lo as usize;
        let hi = (win.hi as usize).min(all.len() + 1);
        assert_eq!(
            win.records[..],
            all[lo - 1..hi - 1],
            "window [{}, {}) of `{}` seed {seed} must be byte-identical \
             (SlotRecord is PartialEq: every field, outcome included)",
            win.lo,
            win.hi,
            spec.name
        );
        assert_eq!(
            win.fingerprint,
            window_fingerprint(win.lo, &win.records),
            "stored fingerprint must be the fingerprint of the stored bytes"
        );
    }
}

/// A jammed batch on the exact engine: the adversarial workload shape.
fn exact_spec() -> ScenarioSpec {
    ScenarioSpec::batch(24, 0.3)
        .algos([AlgoSpec::cjz_constant_jamming()])
        .fixed_horizon(1 << 11)
        .aggregate_only()
        .checkpoint_every(256)
        .execution(Execution::Exact)
}

/// The sparse showcase: a polynomial schedule under skip-ahead, where
/// the trajectory depends on the chunking — which the checkpoint policy
/// pins.
fn sparse_spec() -> ScenarioSpec {
    ScenarioSpec::new("sparse-replay")
        .algo(AlgoSpec::Baseline(BaselineSpec::PolySchedule(1.5)))
        .arrivals(ArrivalSpec::batch(96))
        .fixed_horizon(1 << 12)
        .aggregate_only()
        .history_retention(4096)
        .checkpoint_every(512)
        .execution(Execution::SkipAhead)
}

/// A lane-eligible workload tagged bit-parallel. The scalar capture of
/// one seed runs the exact engine, which the lane engine is bit-for-bit
/// equal to per seed — so windows replayed here describe the lane run.
fn lane_spec() -> ScenarioSpec {
    ScenarioSpec::new("lane-replay")
        .algo(AlgoSpec::Baseline(BaselineSpec::PolySchedule(1.5)))
        .arrivals(ArrivalSpec::batch(48))
        .jamming(JammingSpec::Periodic {
            period: 5,
            phase: 1,
        })
        .fixed_horizon(1 << 11)
        .aggregate_only()
        .checkpoint_every(256)
        .execution(Execution::BitParallel)
}

#[test]
fn exact_engine_windows_are_byte_identical() {
    for seed in [0, 7, 41] {
        assert_windows_exact(
            &exact_spec(),
            seed,
            &[(1, 100), (200, 300), (250, 257), (2000, 2049)],
        );
    }
}

#[test]
fn sparse_engine_windows_are_byte_identical() {
    for seed in [0, 5, 23] {
        assert_windows_exact(
            &sparse_spec(),
            seed,
            &[(1, 64), (500, 700), (511, 514), (4000, 4097)],
        );
    }
}

#[test]
fn lane_engine_windows_are_byte_identical() {
    for seed in [0, 13, 63] {
        assert_windows_exact(&lane_spec(), seed, &[(1, 64), (255, 260), (1990, 2049)]);
    }
}

/// The mega-scale sweep: 128 seeds through the adversarial exact
/// workload, one mid-run window each, every byte checked.
#[test]
fn windows_are_byte_identical_across_128_seeds() {
    let spec = ScenarioSpec::batch(12, 0.25)
        .algos([AlgoSpec::cjz_constant_jamming()])
        .fixed_horizon(768)
        .aggregate_only()
        .checkpoint_every(128);
    for seed in 0..128 {
        // Stagger the windows so every checkpoint interval gets hit.
        let lo = 1 + (seed % 6) * 128;
        assert_windows_exact(&spec, seed, &[(lo, lo + 96)]);
    }
}

/// Cross-engine agreement: the scalar replay of a bit-parallel-tagged
/// workload runs the exact engine, which the lane engine is bit-for-bit
/// equal to per seed — so its windows must fingerprint-match the same
/// spec re-tagged exact. (No such identity holds for skip-ahead, whose
/// trajectory is a *different* — equally valid, chunk-pinned — sample
/// path than exact's; its fidelity is covered by the byte-identity and
/// golden tests above.)
#[test]
fn lane_and_exact_replays_of_the_same_spec_agree() {
    let lane = lane_spec();
    let exact = lane.clone().execution(Execution::Exact);
    for seed in [1, 9] {
        let mut a = WindowReplayer::capture(lane.clone(), 0, seed).expect("lane capture");
        let mut b = WindowReplayer::capture(exact.clone(), 0, seed).expect("exact capture");
        for &(lo, hi) in &[(1u64, 200u64), (1000, 1100), (2000, 2049)] {
            let wa = a.window(lo, hi).expect("lane window");
            let wb = b.window(lo, hi).expect("exact window");
            assert_eq!(wa.records, wb.records, "window [{lo}, {hi}) seed {seed}");
            assert_eq!(wa.fingerprint, wb.fingerprint);
        }
    }
}

/// Golden fingerprints: pinned values for fixed (spec, seed, window)
/// triples. A change here means the simulator's trajectory changed —
/// bump deliberately and note it in CHANGES.md, because it invalidates
/// every persisted checkpoint handle.
#[test]
fn golden_window_fingerprints_are_stable() {
    type GoldenCase = (&'static str, ScenarioSpec, u64, (u64, u64), u64);
    let cases: [GoldenCase; 3] = [
        ("exact", exact_spec(), 0, (200, 300), GOLDEN_EXACT),
        ("sparse", sparse_spec(), 0, (500, 700), GOLDEN_SPARSE),
        ("lane", lane_spec(), 0, (255, 260), GOLDEN_LANE),
    ];
    for (label, spec, seed, (lo, hi), golden) in cases {
        let mut replayer = WindowReplayer::capture(spec, 0, seed).expect("capture");
        let win = replayer.window(lo, hi).expect("window");
        assert_eq!(
            win.fingerprint, golden,
            "{label} golden fingerprint drifted: got {:016x}, pinned {golden:016x}",
            win.fingerprint
        );
    }
}

const GOLDEN_EXACT: u64 = 0x8aa8_b24c_86a1_9208;
const GOLDEN_SPARSE: u64 = 0x400f_ab08_0e73_b196;
const GOLDEN_LANE: u64 = 0x4c17_8924_71d4_b13e;
