//! B3 — end-to-end batch drain (the E3 workload as a wall-clock bench).
//!
//! Full simulation of a jammed batch from injection to drain; tracks the
//! cost of the complete reproduction pipeline and regressions anywhere in
//! the stack.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use contention_bench::{run_batch, AlgoSpec};

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_scenario");
    group.sample_size(10);
    for &n in &[64u32, 256] {
        group.bench_with_input(BenchmarkId::new("cjz_drain_jam25", n), &n, |b, &n| {
            let algo = AlgoSpec::cjz_constant_jamming();
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let out = run_batch(&algo, n, 0.25, seed, 100_000_000);
                assert!(out.drained);
                black_box(out.slots)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
