//! B1 — raw engine slot throughput.
//!
//! Measures slots/second of the simulation engine itself: listening
//! populations (pure engine overhead: adversary call, action collection,
//! resolution, feedback fan-out, trace recording), colliding populations
//! (broadcaster scratch reuse), and the aggregate-mode hot loop the
//! endurance experiments run on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use contention_sim::adversary::NullAdversary;
use contention_sim::node::{AlwaysBroadcast, NeverBroadcast};
use contention_sim::{NodeId, Protocol, SimConfig, Simulator};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    for &population in &[0u32, 1, 16, 256] {
        group.bench_with_input(
            BenchmarkId::new("slots_with_population", population),
            &population,
            |b, &population| {
                let factory = |_: NodeId| -> Box<dyn Protocol> { Box::new(NeverBroadcast) };
                let mut sim = Simulator::new(SimConfig::with_seed(1), factory, NullAdversary);
                sim.seed_nodes(population);
                b.iter(|| black_box(sim.step()));
            },
        );
    }
    // Every node broadcasts every slot: exercises the reusable
    // broadcaster scratch (the pre-rewrite engine allocated here).
    for &population in &[16u32, 256] {
        group.bench_with_input(
            BenchmarkId::new("colliding_population", population),
            &population,
            |b, &population| {
                let factory = |_: NodeId| -> Box<dyn Protocol> { Box::new(AlwaysBroadcast) };
                let mut sim = Simulator::new(
                    SimConfig::with_seed(2).without_slot_records(),
                    factory,
                    NullAdversary,
                );
                sim.seed_nodes(population);
                b.iter(|| black_box(sim.step()));
            },
        );
    }
    // The aggregate-mode streaming loop with a bounded history window —
    // the configuration endurance runs use.
    group.bench_function("aggregate_run_for_1k", |b| {
        let factory = |_: NodeId| -> Box<dyn Protocol> { Box::new(NeverBroadcast) };
        let mut sim = Simulator::new(
            SimConfig::with_seed(3)
                .without_slot_records()
                .with_history_retention(4096),
            factory,
            NullAdversary,
        );
        sim.seed_nodes(64);
        b.iter(|| {
            sim.run_for(1_000);
            black_box(sim.current_slot())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
