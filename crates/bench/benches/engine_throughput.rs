//! B1 — raw engine slot throughput.
//!
//! Measures slots/second of the simulation engine itself with populations
//! of always-listening nodes (pure engine overhead: adversary call, action
//! collection, resolution, feedback fan-out, trace recording).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use contention_sim::adversary::NullAdversary;
use contention_sim::node::NeverBroadcast;
use contention_sim::{NodeId, Protocol, SimConfig, Simulator};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    for &population in &[0u32, 1, 16, 256] {
        group.bench_with_input(
            BenchmarkId::new("slots_with_population", population),
            &population,
            |b, &population| {
                let factory = |_: NodeId| -> Box<dyn Protocol> { Box::new(NeverBroadcast) };
                let mut sim = Simulator::new(SimConfig::with_seed(1), factory, NullAdversary);
                sim.seed_nodes(population);
                b.iter(|| black_box(sim.step()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
