//! B2 — per-slot cost of the full protocol state machines.
//!
//! Measures one engine step with a live population running each algorithm
//! (the paper's protocol vs representative baselines), capturing the
//! combined act/observe cost per slot.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use contention_bench::scenario::BaselineSpec;
use contention_bench::AlgoSpec;
use contention_sim::adversary::NullAdversary;
use contention_sim::{SimConfig, Simulator};

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_step");
    let population = 64u32;
    let algos = [
        AlgoSpec::cjz_constant_jamming(),
        AlgoSpec::Baseline(BaselineSpec::BinaryExponential),
        AlgoSpec::Baseline(BaselineSpec::SmoothedBeb),
        AlgoSpec::Baseline(BaselineSpec::Sawtooth),
    ];
    for algo in &algos {
        group.bench_with_input(
            BenchmarkId::new("step_pop64", algo.name()),
            algo,
            |b, algo| {
                let mut sim = Simulator::new(SimConfig::with_seed(7), algo.clone(), NullAdversary);
                sim.seed_nodes(population);
                // Warm the population past the synchronized burst.
                sim.run_for(256);
                b.iter(|| black_box(sim.step()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
