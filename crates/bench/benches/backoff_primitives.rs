//! B4 — per-call cost of the backoff primitives.
//!
//! The simulator calls one primitive per node per slot, so primitive cost
//! bounds achievable simulation scale. Criterion measures a single
//! `next()` call (amortized over a long sequence).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use contention_backoff::{
    FFunction, GFunction, HBackoff, HBatch, OnePerStage, Sawtooth, Schedule, WindowBackoff,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("backoff_primitives");

    group.bench_function("hbackoff_one_per_stage", |b| {
        let mut bo = HBackoff::new(OnePerStage);
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| black_box(bo.next(&mut rng)));
    });

    group.bench_function("hbackoff_f_density", |b| {
        let f = FFunction::new(GFunction::Constant(2.0), 1.0, 1.0);
        let mut bo = HBackoff::new(move |len: u64| f.backoff_send_count(len));
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| black_box(bo.next(&mut rng)));
    });

    group.bench_function("hbatch_data", |b| {
        let mut bo = HBatch::data();
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| black_box(bo.next(&mut rng)));
    });

    group.bench_function("hbatch_ctrl", |b| {
        let mut bo = HBatch::ctrl(2.0);
        let mut rng = SmallRng::seed_from_u64(4);
        b.iter(|| black_box(bo.next(&mut rng)));
    });

    group.bench_function("window_binary", |b| {
        let mut bo = WindowBackoff::binary();
        let mut rng = SmallRng::seed_from_u64(5);
        b.iter(|| black_box(bo.next(&mut rng)));
    });

    group.bench_function("sawtooth", |b| {
        let mut bo = Sawtooth::new();
        let mut rng = SmallRng::seed_from_u64(6);
        b.iter(|| black_box(bo.next(&mut rng)));
    });

    group.bench_function("schedule_eval_log_over_i", |b| {
        let s = Schedule::h_ctrl(2.0);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(s.prob(i))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
