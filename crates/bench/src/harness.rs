//! Shared experiment harness: the algorithm roster, scenario runners, and
//! multi-seed replication.

use contention_baselines::Baseline;
use contention_core::{CjzFactory, OracleParityFactory, ProtocolParams};
use contention_sim::adversary::{
    Adversary, BatchArrival, CompositeAdversary, NoJamming, RandomJamming,
};
use contention_sim::{NodeId, Protocol, ProtocolFactory, SimConfig, Simulator, Trace};

/// An algorithm under test: the paper's protocol (possibly ablated) or a
/// baseline. Doubles as a [`ProtocolFactory`].
#[derive(Debug, Clone)]
pub enum Algo {
    /// The paper's protocol with the given parameters.
    Cjz(ProtocolParams),
    /// Ablation: the protocol without the Phase-3 channel swap.
    CjzNoSwap(ProtocolParams),
    /// Oracle ablation: global-clock variant that skips Phase 1.
    CjzOracle(ProtocolParams),
    /// A baseline from the registry.
    Baseline(Baseline),
}

impl Algo {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Algo::Cjz(p) => format!("cjz[{}]", p.g().label()),
            Algo::CjzNoSwap(_) => "cjz-noswap".to_string(),
            Algo::CjzOracle(_) => "cjz-oracle".to_string(),
            Algo::Baseline(b) => b.name().to_string(),
        }
    }

    /// The paper's protocol tuned for constant-fraction jamming.
    pub fn cjz_constant_jamming() -> Self {
        Algo::Cjz(ProtocolParams::constant_jamming())
    }
}

impl ProtocolFactory for Algo {
    fn spawn(&self, id: NodeId) -> Box<dyn Protocol> {
        self.spawn_with_arrival(id, 1)
    }

    fn spawn_with_arrival(&self, id: NodeId, arrival_slot: u64) -> Box<dyn Protocol> {
        match self {
            Algo::Cjz(p) => CjzFactory::new(p.clone()).spawn(id),
            Algo::CjzNoSwap(p) => CjzFactory::new(p.clone()).without_channel_swap().spawn(id),
            Algo::CjzOracle(p) => {
                OracleParityFactory::new(p.clone()).spawn_with_arrival(id, arrival_slot)
            }
            Algo::Baseline(b) => b.spawn(id),
        }
    }

    fn algorithm_name(&self) -> &'static str {
        match self {
            Algo::Cjz(_) => "cjz",
            Algo::CjzNoSwap(_) => "cjz-noswap",
            Algo::CjzOracle(_) => "cjz-oracle",
            Algo::Baseline(_) => "baseline",
        }
    }
}

/// Outcome of one simulation trial.
#[derive(Debug, Clone)]
pub struct TrialOutcome {
    /// The recorded trace.
    pub trace: Trace,
    /// Slots actually executed.
    pub slots: u64,
    /// Whether the system drained before the slot limit.
    pub drained: bool,
}

/// Run `factory` against `adversary` until drained or `max_slots`.
pub fn run_trial<F, A>(factory: F, adversary: A, seed: u64, max_slots: u64) -> TrialOutcome
where
    F: ProtocolFactory,
    A: Adversary,
{
    let mut sim = Simulator::new(SimConfig::with_seed(seed), factory, adversary);
    let reason = sim.run_until_drained(max_slots);
    let slots = sim.current_slot();
    let drained = reason == contention_sim::StopReason::Drained;
    TrialOutcome {
        trace: sim.into_trace(),
        slots,
        drained,
    }
}

/// Run `factory` against `adversary` for exactly `slots` slots.
pub fn run_fixed<F, A>(factory: F, adversary: A, seed: u64, slots: u64) -> Trace
where
    F: ProtocolFactory,
    A: Adversary,
{
    let mut sim = Simulator::new(SimConfig::with_seed(seed), factory, adversary);
    sim.run_for(slots);
    sim.into_trace()
}

/// Batch-of-`n` scenario with random jamming probability `jam_p`.
pub fn run_batch(algo: &Algo, n: u32, jam_p: f64, seed: u64, max_slots: u64) -> TrialOutcome {
    if jam_p > 0.0 {
        run_trial(
            algo.clone(),
            CompositeAdversary::new(BatchArrival::at_start(n), RandomJamming::new(jam_p)),
            seed,
            max_slots,
        )
    } else {
        run_trial(
            algo.clone(),
            CompositeAdversary::new(BatchArrival::at_start(n), NoJamming),
            seed,
            max_slots,
        )
    }
}

/// Batch-of-`n` scenario in memory-bounded mode: no per-slot records (the
/// trace keeps aggregates and departures only), suitable for heavy-tailed
/// completion measurements where a single run may span hundreds of
/// millions of slots.
pub fn run_batch_light(
    algo: &Algo,
    n: u32,
    jam_p: f64,
    seed: u64,
    max_slots: u64,
) -> TrialOutcome {
    let config = SimConfig::with_seed(seed).without_slot_records();
    let run = |adv: Box<dyn Adversary>| {
        let mut sim = Simulator::new(config, algo.clone(), adv);
        let reason = sim.run_until_drained(max_slots);
        let slots = sim.current_slot();
        TrialOutcome {
            drained: reason == contention_sim::StopReason::Drained,
            trace: sim.into_trace(),
            slots,
        }
    };
    if jam_p > 0.0 {
        run(Box::new(CompositeAdversary::new(
            BatchArrival::at_start(n),
            RandomJamming::new(jam_p),
        )))
    } else {
        run(Box::new(CompositeAdversary::new(
            BatchArrival::at_start(n),
            NoJamming,
        )))
    }
}

/// Replicate a seeded computation across `seeds` seeds in parallel (one
/// thread per seed, bounded by available parallelism).
pub fn replicate<T, F>(seeds: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut results: Vec<Option<T>> = (0..seeds).map(|_| None).collect();
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk_start in (0..seeds).step_by(max_threads.max(1)) {
            let chunk_end = (chunk_start + max_threads as u64).min(seeds);
            for seed in chunk_start..chunk_end {
                handles.push((seed, scope.spawn(move || f(seed))));
            }
            // Join the chunk before spawning the next (bounds live threads).
            for (seed, h) in handles.drain(..) {
                let value = h.join().expect("trial thread panicked");
                results[seed as usize] = Some(value);
            }
        }
    });
    results.into_iter().map(|r| r.expect("filled")).collect()
}

/// Classical throughput of a finished trace: delivered messages per slot.
pub fn delivery_rate(outcome: &TrialOutcome) -> f64 {
    if outcome.slots == 0 {
        return 0.0;
    }
    outcome.trace.total_successes() as f64 / outcome.slots as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_names() {
        assert!(Algo::cjz_constant_jamming().name().starts_with("cjz["));
        assert_eq!(
            Algo::Baseline(Baseline::BinaryExponential).name(),
            "beb"
        );
        assert_eq!(
            Algo::CjzNoSwap(ProtocolParams::default()).name(),
            "cjz-noswap"
        );
    }

    #[test]
    fn run_batch_drains_small_instance() {
        let out = run_batch(&Algo::cjz_constant_jamming(), 8, 0.0, 1, 100_000);
        assert!(out.drained);
        assert_eq!(out.trace.total_successes(), 8);
        assert!(delivery_rate(&out) > 0.0);
    }

    #[test]
    fn run_batch_light_matches_heavy_totals() {
        let heavy = run_batch(&Algo::cjz_constant_jamming(), 8, 0.2, 9, 100_000);
        let light = run_batch_light(&Algo::cjz_constant_jamming(), 8, 0.2, 9, 100_000);
        assert_eq!(heavy.slots, light.slots);
        assert_eq!(heavy.trace.total_successes(), light.trace.total_successes());
        assert_eq!(heavy.trace.total_jammed(), light.trace.total_jammed());
        assert_eq!(light.trace.recorded_len(), 0, "light mode stores no slots");
        assert_eq!(heavy.trace.departures(), light.trace.departures());
    }

    #[test]
    fn run_fixed_runs_exact_slots() {
        let trace = run_fixed(
            Algo::Baseline(Baseline::SmoothedBeb),
            CompositeAdversary::new(BatchArrival::at_start(4), NoJamming),
            3,
            500,
        );
        assert_eq!(trace.len(), 500);
    }

    #[test]
    fn replicate_is_ordered_and_deterministic() {
        let xs = replicate(8, |seed| seed * 2);
        assert_eq!(xs, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn replicate_runs_real_trials() {
        let drains = replicate(3, |seed| {
            run_batch(&Algo::cjz_constant_jamming(), 4, 0.0, seed, 50_000).drained
        });
        assert!(drains.iter().all(|&d| d));
    }

    #[test]
    fn algo_spawns_protocols() {
        for algo in [
            Algo::cjz_constant_jamming(),
            Algo::CjzNoSwap(ProtocolParams::default()),
            Algo::Baseline(Baseline::Sawtooth),
        ] {
            let p = algo.spawn(NodeId::new(0));
            assert!(!p.name().is_empty());
        }
    }
}
