//! # contention-bench
//!
//! Experiment harness reproducing every quantitative claim of the paper as
//! a runnable binary (see EXPERIMENTS.md for the catalogue and expected
//! shapes), plus Criterion micro/meso benchmarks.
//!
//! Workloads are **data**: every binary, example and integration test
//! describes its experiment as a [`scenario::ScenarioSpec`] — the
//! algorithm roster, arrival process, jamming strategy, optional `(f,g)`
//! budgets, horizon/seed/record policy — and executes it through a
//! [`scenario::ScenarioRunner`]. Named workloads live in
//! [`scenario::registry`].
//!
//! Parameter *sweeps* are data too: a [`campaign::SweepSpec`] declares
//! axes over scenario fields, the [`campaign::CampaignRunner`] expands
//! and runs the grid with streaming aggregation, and the `campaign`
//! binary regenerates `RESULTS.md` (the paper's trade-off curves) from
//! the named campaigns in [`campaign::registry`].
//!
//! Long campaigns run as **jobs**: the [`service`] layer journals every
//! completed cell to disk (fsync'd write-ahead log, byte-identical
//! resume after a crash) and hosts them either in-process
//! ([`service::run_local`], the `campaign run --journal` path) or in the
//! `benchd` daemon, driven by `benchctl` over local TCP.
//!
//! Binaries (`cargo run --release -p contention-bench --bin <name>`):
//!
//! | Binary | Claim |
//! |---|---|
//! | `exp_tradeoff` | Theorem 1.2: `a_t ≤ n_t f(t) + d_t g(t)` across the `g` spectrum |
//! | `exp_constant_jamming` | headline: `Θ(t/log t)` successes under constant-fraction jamming |
//! | `exp_batch` | batch robustness: `Θ(n)` successes in `Θ(n)` slots despite jamming |
//! | `exp_claim_351` | Claim 3.5.1: `1/i`-batch needs `ω(n)` slots to finish |
//! | `exp_backoff_necessity` | Theorem 4.2 mechanism: prefix jamming vs schedules |
//! | `exp_smooth_latency` | Corollary 3.6: age bound under smooth adversaries |
//! | `exp_baselines` | comparison table across protocols × scenarios |
//! | `exp_energy` | channel accesses per delivered message |
//! | `exp_ablation` | channel swap / oracle clock / send density / constants |
//! | `exp_crossover` | tuning `g` to the true jamming level |
//! | `exp_impossibility` | Theorem 1.3 mechanism: forced accesses + flood |
//! | `exp_saturation` | extension: saturated capacity + fairness table |
//! | `run_all` | run everything above in sequence |
//! | `scenarios` | list/run/print the named scenario registry |
//! | `campaign` | list/run named sweeps (journaled + resumable), regenerate RESULTS.md |
//! | `perf` | pinned throughput suite, writes `BENCH_<date>.json` |
//! | `benchd` | campaign daemon: jobs over local TCP, journaled + crash-resumable |
//! | `benchctl` | client for `benchd`: submit/status/watch/results/cancel |
//!
//! All `exp_*` binaries accept `--quick`, `--seeds N`, `--t N`, `--csv`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod args;
pub mod campaign;
pub mod forensics;
pub mod scenario;
pub mod service;

pub use args::{closest_matches, first_positional, unknown_name_exit, ExpArgs};
pub use campaign::{CampaignRunner, SweepSpec};
pub use scenario::{
    replicate, run_batch, run_batch_light, AlgoSpec, ScenarioRunner, ScenarioSpec, TrialOutcome,
};
