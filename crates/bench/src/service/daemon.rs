//! The `benchd` daemon: jobs over a local TCP socket, journaled to disk.
//!
//! One [`Daemon`] owns a [`Scheduler`] and a jobs directory. Every
//! submitted job gets `jobs/<id>/` holding:
//!
//! * `job.json` — the materialized sweep + priority, fsync'd *before*
//!   the job is scheduled, so a crashed daemon knows what it was running;
//! * `journal.jsonl` — the write-ahead result journal (one synced line
//!   per completed unit);
//! * `results.csv` / `results.jsonl` / `report.md` / `state` — final
//!   artifacts, written atomically on completion.
//!
//! On startup the daemon rescans the jobs directory and resubmits every
//! job that has a `job.json` but no terminal `state` marker — so
//! `kill -9` mid-campaign costs at most the one torn journal line, and
//! the restarted daemon continues from the last completed cell.
//!
//! The protocol is line-delimited JSON ([`super::protocol`]), one thread
//! per connection. `events` switches a connection into streaming mode
//! until the watched job ends.

use std::fs;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::args::closest_matches;
use crate::campaign::{registry as campaigns, to_csv, to_jsonl, SweepSpec};
use crate::forensics::{CheckpointHandle, WindowReplayer, WindowTrace, DEFAULT_CHUNK};
use crate::scenario::Json;
use contention_sim::{Execution, SlotOutcome};

use super::faults::{self, FaultPoint};
use super::protocol::{JobSource, Request, Response, ResultFormat, SubmitRequest};
use super::scheduler::{JobSpec, Scheduler};
use super::{write_atomic_retrying, ServiceError};

/// Daemon settings.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address; default `127.0.0.1:0` (kernel-assigned port).
    pub addr: String,
    /// Directory holding one subdirectory per job.
    pub jobs_dir: PathBuf,
    /// Worker threads; 0 = available parallelism.
    pub threads: usize,
    /// Socket read/write timeout per connection (`None` = unbounded).
    /// A stalled or vanished client hits the timeout and its handler
    /// thread closes the connection instead of wedging forever; the
    /// client reconnects (`events` re-attach sends a full snapshot, so
    /// nothing is lost).
    pub io_timeout: Option<Duration>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".into(),
            jobs_dir: PathBuf::from("jobs"),
            threads: 0,
            io_timeout: Some(Duration::from_secs(30)),
        }
    }
}

struct Inner {
    sched: Scheduler,
    jobs_dir: PathBuf,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    io_timeout: Option<Duration>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("jobs_dir", &self.jobs_dir)
            .finish_non_exhaustive()
    }
}

/// A bound, resumed, ready-to-serve daemon.
#[derive(Debug)]
pub struct Daemon {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Daemon {
    /// Bind the listener, create the jobs directory, and resubmit every
    /// unfinished journaled job found there.
    pub fn bind(config: DaemonConfig) -> Result<Daemon, ServiceError> {
        let threads = if config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.threads
        };
        fs::create_dir_all(&config.jobs_dir)?;
        let listener = TcpListener::bind(&config.addr)?;
        let inner = Arc::new(Inner {
            sched: Scheduler::new(threads),
            jobs_dir: config.jobs_dir,
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            io_timeout: config.io_timeout,
        });
        inner.resume_unfinished()?;
        Ok(Daemon { listener, inner })
    }

    /// The bound address (write it to a port file for clients).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve connections until a `shutdown` request arrives. In-flight
    /// cells are journaled as they finish; an abrupt kill is equally
    /// safe, which is the point of the journal.
    pub fn run(&self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            // The shutdown check runs BEFORE the fault consult, so the
            // loopback connection that unblocks this loop can never be
            // eaten by an injected accept drop.
            if self.inner.shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            let stream = stream?;
            if faults::fire(FaultPoint::DaemonAccept).is_some() {
                // Drop the fresh connection on the floor: the client
                // sees a closed socket and reconnects with backoff.
                drop(stream);
                continue;
            }
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || {
                let _ = serve_connection(&inner, stream);
            });
        }
        Ok(())
    }
}

impl Inner {
    /// Rescan the jobs directory: anything with a `job.json` but no
    /// terminal `state` marker is resubmitted in resume mode.
    ///
    /// A job directory that cannot be recovered (torn `job.json`, corrupt
    /// journal) must not brick the daemon and strand every healthy job:
    /// it is marked `failed` in its `state` file, logged, and skipped, and
    /// startup proceeds. Only jobs-directory-level I/O errors fail bind.
    fn resume_unfinished(&self) -> Result<(), ServiceError> {
        let mut max_id = 0u64;
        let mut pending = Vec::new();
        for entry in fs::read_dir(&self.jobs_dir)? {
            let dir = entry?.path();
            if !dir.is_dir() {
                continue;
            }
            if let Some(n) = dir
                .file_name()
                .and_then(|s| s.to_str())
                .and_then(|s| s.strip_prefix("job-"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                max_id = max_id.max(n);
            }
            if dir.join("job.json").exists() && !dir.join("state").exists() {
                pending.push(dir);
            }
        }
        self.next_id.store(max_id + 1, Ordering::SeqCst);
        for dir in pending {
            if let Err(e) = self.resume_job(&dir) {
                eprintln!(
                    "benchd: skipping unrecoverable job directory {}: {e}",
                    dir.display()
                );
                let _ = write_atomic_retrying(
                    &dir.join("state"),
                    &format!("failed: unrecoverable at startup: {e}\n"),
                );
            }
        }
        Ok(())
    }

    /// Resubmit one unfinished job directory in resume mode.
    fn resume_job(&self, dir: &std::path::Path) -> Result<(), ServiceError> {
        let text = fs::read_to_string(dir.join("job.json"))?;
        let j = Json::parse(&text).map_err(|e| {
            ServiceError::new(format!(
                "unreadable {}: {e}",
                dir.join("job.json").display()
            ))
        })?;
        let id = j
            .get("id")
            .and_then(|v| v.as_str().map(String::from))
            .map_err(|e| ServiceError::new(e.to_string()))?;
        let priority = j
            .get("priority")
            .and_then(|v| v.as_i64())
            .map_err(|e| ServiceError::new(e.to_string()))?;
        let sweep = j
            .get("sweep")
            .map_err(|e| ServiceError::new(e.to_string()))
            .and_then(|v| SweepSpec::from_json(v).map_err(|e| ServiceError::new(e.to_string())))?;
        let job = self.sched.submit(JobSpec {
            id,
            sweep,
            priority,
            dir: Some(dir.to_path_buf()),
            resume: true,
        })?;
        self.sched.activate(&job);
        Ok(())
    }

    /// Resolve a submission source to a concrete sweep.
    fn materialize(&self, source: &JobSource) -> Result<SweepSpec, ServiceError> {
        match source {
            JobSource::Campaign { name, smoke } => {
                let sweep = campaigns::lookup(name).ok_or_else(|| {
                    let mut msg = format!("unknown campaign `{name}`");
                    let suggestions = closest_matches(name, campaigns::names().iter().copied());
                    if !suggestions.is_empty() {
                        msg.push_str("; did you mean: ");
                        msg.push_str(&suggestions.join(", "));
                    }
                    ServiceError::new(msg)
                })?;
                Ok(if *smoke { sweep.smoke() } else { sweep })
            }
            JobSource::Sweep(sweep) => Ok(sweep.clone()),
            JobSource::Scenario(spec) => Ok(SweepSpec::new(
                spec.name.clone(),
                spec.name.clone(),
                spec.clone(),
            )),
        }
    }

    fn submit(&self, req: &SubmitRequest) -> Result<Response, ServiceError> {
        let sweep = self.materialize(&req.source)?;
        let id = match &req.id {
            Some(id)
                if id.is_empty()
                    || !id.chars().all(|c| c.is_alphanumeric() || "-_.".contains(c)) =>
            {
                return Err(ServiceError::new(format!(
                    "job id `{id}` must be non-empty alphanumeric/dash/underscore/dot"
                )));
            }
            Some(id) => id.clone(),
            None => format!("job-{}", self.next_id.fetch_add(1, Ordering::SeqCst)),
        };
        let dir = self.jobs_dir.join(&id);
        if dir.exists() {
            return Err(ServiceError::new(format!(
                "job directory `{}` already exists; pick a fresh id (resume happens \
                 automatically at daemon startup)",
                dir.display()
            )));
        }
        fs::create_dir_all(&dir)?;
        // Persist the job spec before scheduling anything, so a crashed
        // daemon can resume this job by rescanning the directory. Written
        // atomically: a crash mid-submit leaves either no job.json (the
        // rescan skips the directory) or a complete one, never a torn
        // file that poisons every later startup.
        let manifest = Json::obj(vec![
            ("id", Json::Str(id.clone())),
            ("priority", Json::i64(req.priority)),
            ("sweep", sweep.to_json()),
        ]);
        if let Err(e) =
            write_atomic_retrying(&dir.join("job.json"), &format!("{}\n", manifest.render()))
        {
            // Remove the half-made directory so a client retry of the
            // same id is not rejected as a duplicate.
            let _ = fs::remove_dir_all(&dir);
            return Err(e.into());
        }
        let job = match self.sched.submit(JobSpec {
            id: id.clone(),
            sweep,
            priority: req.priority,
            dir: Some(dir.clone()),
            resume: false,
        }) {
            Ok(job) => job,
            Err(e) => {
                let _ = fs::remove_dir_all(&dir);
                return Err(e);
            }
        };
        self.sched.activate(&job);
        Ok(Response::Submitted {
            id,
            units: job.units.len() as u64,
        })
    }

    /// Materialize a full-fidelity slot window of one (cell, algorithm,
    /// seed) run of a job, replaying from checkpoints.
    ///
    /// The first query for a run captures its checkpoints and persists a
    /// [`CheckpointHandle`] under `jobs/<id>/checkpoints/`; later queries
    /// — including ones in a later daemon life, against a long-`done`
    /// job — rebuild from the handle, cross-checking every stored digest
    /// so a drifted binary fails loudly instead of answering with a
    /// different trajectory.
    fn window(
        &self,
        id: &str,
        cell: u64,
        algo: u64,
        seed: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Response, ServiceError> {
        // Jobs that finished in an earlier daemon life carry a terminal
        // state marker and are not re-registered with the scheduler, but
        // their manifest is still on disk — window queries against them
        // are the whole point of persisted checkpoint handles.
        let sweep = match self.sched.job(id) {
            Some(job) => job.sweep.clone(),
            None => {
                let manifest = self.jobs_dir.join(id).join("job.json");
                if !manifest.exists() {
                    return Err(ServiceError::new(format!("unknown job `{id}`")));
                }
                let text = fs::read_to_string(&manifest)?;
                let j = Json::parse(&text).map_err(|e| {
                    ServiceError::new(format!("unreadable {}: {e}", manifest.display()))
                })?;
                j.get("sweep").and_then(SweepSpec::from_json).map_err(|e| {
                    ServiceError::new(format!("unreadable {}: {e}", manifest.display()))
                })?
            }
        };
        let cells = sweep.cells();
        let cell_spec = cells.get(cell as usize).ok_or_else(|| {
            ServiceError::new(format!(
                "cell {cell} out of range (grid has {} cells)",
                cells.len()
            ))
        })?;
        let mut spec = cell_spec.spec.clone();
        if algo as usize >= spec.algos.len() {
            return Err(ServiceError::new(format!(
                "algo {algo} out of range (roster has {})",
                spec.algos.len()
            )));
        }
        if seed >= spec.seeds {
            return Err(ServiceError::new(format!(
                "seed offset {seed} out of range (cell runs {} seeds)",
                spec.seeds
            )));
        }
        if spec.checkpoint.is_none() {
            // Sparse trajectories depend on the chunking of the original
            // run; without a policy on the spec there is no chunking to
            // reproduce, so a replayed window would not correspond to
            // the run being investigated. Exact (and bit-parallel, whose
            // scalar replay runs exact) is chunk-invariant, so a default
            // policy can be attached after the fact.
            if spec.execution == Execution::SkipAhead {
                return Err(ServiceError::new(
                    "this cell ran with skip-ahead execution and no checkpoint policy; \
                     its trajectory is chunk-dependent and cannot be replayed post-hoc. \
                     Re-run the sweep with `checkpoint_every` on the base scenario.",
                ));
            }
            spec = spec.checkpoint_every(DEFAULT_CHUNK);
        }
        let run_seed = spec.seed_base + seed;
        let handle_path = self
            .jobs_dir
            .join(id)
            .join("checkpoints")
            .join(format!("cell{cell}-algo{algo}-seed{seed}.json"));
        let mut replayer = if handle_path.exists() {
            let handle = CheckpointHandle::load(&handle_path)
                .map_err(|e| ServiceError::new(e.to_string()))?;
            if handle.scenario != spec || handle.algo != algo as usize || handle.seed != run_seed {
                return Err(ServiceError::new(format!(
                    "stored checkpoint handle {} does not match the job's cell spec; \
                     delete it to re-capture",
                    handle_path.display()
                )));
            }
            handle
                .rebuild()
                .map_err(|e| ServiceError::new(e.to_string()))?
        } else {
            let replayer = WindowReplayer::capture(spec, algo as usize, run_seed)
                .map_err(|e| ServiceError::new(e.to_string()))?;
            if let Some(parent) = handle_path.parent() {
                fs::create_dir_all(parent)?;
            }
            replayer
                .handle()
                .save(&handle_path)
                .map_err(|e| ServiceError::new(e.to_string()))?;
            replayer
        };
        let win = replayer
            .window(lo, hi)
            .map_err(|e| ServiceError::new(e.to_string()))?;
        Ok(Response::Window {
            id: id.to_string(),
            lo: win.lo,
            hi: win.hi,
            slots: replayer.slots(),
            fingerprint: format!("{:016x}", win.fingerprint),
            body: window_csv(&win),
        })
    }

    fn results(&self, id: &str, format: ResultFormat) -> Result<Response, ServiceError> {
        let job = self
            .sched
            .job(id)
            .ok_or_else(|| ServiceError::new(format!("unknown job `{id}`")))?;
        // Render whatever is complete so far; a running job yields its
        // journal-backed prefix.
        let result = job.partial_result();
        let body = match format {
            ResultFormat::Csv => to_csv(&result),
            ResultFormat::Jsonl => to_jsonl(&result),
            ResultFormat::Report => crate::campaign::render_section(&result),
        };
        Ok(Response::Results {
            id: id.to_string(),
            format,
            body,
        })
    }
}

/// Render one window as CSV, one line per slot.
fn window_csv(win: &WindowTrace) -> String {
    let mut out = String::from("slot,arrivals,broadcasters,jammed,active,population,outcome\n");
    for (i, rec) in win.records.iter().enumerate() {
        let outcome = match rec.outcome {
            SlotOutcome::Silence => "silence".to_string(),
            SlotOutcome::Delivered(node) => format!("delivered:{}", node.raw()),
            SlotOutcome::Collision { broadcasters } => format!("collision:{broadcasters}"),
            SlotOutcome::Jammed { broadcasters } => format!("jammed:{broadcasters}"),
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            win.lo + i as u64,
            rec.arrivals,
            rec.broadcasters,
            u8::from(rec.jammed),
            u8::from(rec.active),
            rec.population,
            outcome
        ));
    }
    out
}

fn handle(inner: &Inner, req: &Request) -> Result<Option<Response>, ServiceError> {
    match req {
        Request::Ping => Ok(Some(Response::Ok)),
        Request::Health => {
            let jobs = inner.sched.jobs();
            let active = jobs
                .iter()
                .filter(|j| !matches!(j.status().state.as_str(), "done" | "cancelled" | "failed"))
                .count() as u64;
            Ok(Some(Response::Health {
                jobs: jobs.len() as u64,
                active,
                fault_fires: faults::fired_total(),
            }))
        }
        Request::Submit(s) => inner.submit(s).map(Some),
        Request::Status { id } => match inner.sched.job(id) {
            Some(job) => Ok(Some(Response::Status(job.status()))),
            None => Err(ServiceError::new(format!("unknown job `{id}`"))),
        },
        Request::List => Ok(Some(Response::List(
            inner.sched.jobs().iter().map(|j| j.status()).collect(),
        ))),
        Request::Results { id, format } => inner.results(id, *format).map(Some),
        Request::Window {
            id,
            cell,
            algo,
            seed,
            lo,
            hi,
        } => inner.window(id, *cell, *algo, *seed, *lo, *hi).map(Some),
        Request::Cancel { id } => match inner.sched.job(id) {
            Some(job) => {
                inner.sched.cancel(&job);
                Ok(Some(Response::Ok))
            }
            None => Err(ServiceError::new(format!("unknown job `{id}`"))),
        },
        // Events and Shutdown are connection-level; handled by the caller.
        Request::Events { .. } | Request::Shutdown => Ok(None),
    }
}

fn send(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let mut line = resp.to_line();
    line.push('\n');
    if let Some(lot) = faults::fire(FaultPoint::DaemonWriteTorn) {
        // A torn frame cannot be resynced on a line protocol, so the
        // only safe heal is dropping the connection: write a proper
        // prefix, then error out of the serve loop (the client
        // reconnects and retries).
        let _ = stream.write_all(&line.as_bytes()[..lot.cut(line.len())]);
        let _ = stream.flush();
        return Err(faults::injected_error(FaultPoint::DaemonWriteTorn));
    }
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

fn serve_connection(inner: &Arc<Inner>, stream: TcpStream) -> io::Result<()> {
    // A silent client must not pin this thread forever: reads and
    // writes both carry the configured timeout, and hitting it closes
    // the connection (clients reconnect; `events` re-attach is lossless
    // because every event carries full progress state).
    stream.set_read_timeout(inner.io_timeout)?;
    stream.set_write_timeout(inner.io_timeout)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle past the io timeout: close cleanly.
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        if let Some(lot) = faults::fire(FaultPoint::DaemonReadTorn) {
            // Torn inbound frame: keep a proper prefix. A truncated
            // JSON object can never parse as a valid request, so this
            // surfaces as a `bad request` error the client retries.
            line.truncate(lot.cut(line.len()));
        }
        faults::stall(FaultPoint::DaemonStall);
        let line = line.trim_end_matches(['\r', '\n']);
        if line.trim().is_empty() {
            continue;
        }
        let req = match Request::from_line(line) {
            Ok(r) => r,
            Err(e) => {
                send(
                    &mut writer,
                    &Response::Error {
                        message: format!("bad request: {e}"),
                    },
                )?;
                continue;
            }
        };
        match &req {
            Request::Shutdown => {
                send(&mut writer, &Response::Ok)?;
                inner.shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop with a loopback connection.
                if let Ok(addr) = writer.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                return Ok(());
            }
            Request::Events { id } => match inner.sched.job(id) {
                None => send(
                    &mut writer,
                    &Response::Error {
                        message: format!("unknown job `{id}`"),
                    },
                )?,
                Some(job) => {
                    let (snapshot, rx) = job.subscribe_events();
                    let terminal = snapshot.terminal;
                    send(&mut writer, &Response::Event(snapshot))?;
                    if !terminal {
                        for event in rx {
                            send(&mut writer, &Response::Event(event))?;
                        }
                        // The channel closes right after the terminal
                        // event, so the loop above delivered it.
                    }
                }
            },
            _ => {
                let resp = match handle(inner, &req) {
                    Ok(Some(r)) => r,
                    Ok(None) => unreachable!("connection-level requests handled above"),
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                };
                send(&mut writer, &resp)?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Axis;
    use crate::scenario::{AlgoSpec, ScenarioSpec};

    fn tiny_sweep() -> SweepSpec {
        SweepSpec::new(
            "wiretest",
            "Wire test",
            ScenarioSpec::batch(4, 0.0)
                .algos([AlgoSpec::cjz_constant_jamming()])
                .seeds(1)
                .until_drained(10_000),
        )
        .axis(Axis::jam([0.0, 0.1]))
    }

    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            Client {
                reader: BufReader::new(stream.try_clone().unwrap()),
                writer: stream,
            }
        }

        fn call(&mut self, req: &Request) -> Response {
            self.writer
                .write_all(format!("{}\n", req.to_line()).as_bytes())
                .unwrap();
            self.read()
        }

        fn read(&mut self) -> Response {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            Response::from_line(line.trim_end()).unwrap()
        }
    }

    /// A job directory that cannot be recovered must not brick startup:
    /// it is marked failed and skipped, and healthy jobs still resume.
    #[test]
    fn startup_skips_unrecoverable_job_dirs() {
        let dir = std::env::temp_dir().join(format!("daemon-badjob-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let jobs = dir.join("jobs");
        // A torn job.json, as a pre-atomic-write crash could leave.
        fs::create_dir_all(jobs.join("job-1")).unwrap();
        fs::write(
            jobs.join("job-1").join("job.json"),
            "{\"id\":\"job-1\",\"pri",
        )
        .unwrap();
        // A healthy unfinished job: complete manifest, no journal yet
        // (the daemon died right after persisting job.json).
        let sweep = tiny_sweep();
        let manifest = Json::obj(vec![
            ("id", Json::Str("job-2".into())),
            ("priority", Json::i64(0)),
            ("sweep", sweep.to_json()),
        ]);
        fs::create_dir_all(jobs.join("job-2")).unwrap();
        fs::write(
            jobs.join("job-2").join("job.json"),
            format!("{}\n", manifest.render()),
        )
        .unwrap();

        let daemon = Daemon::bind(DaemonConfig {
            jobs_dir: jobs.clone(),
            threads: 1,
            ..Default::default()
        })
        .expect("a bad job dir must not fail bind");
        let addr = daemon.local_addr().unwrap();
        let server = std::thread::spawn(move || daemon.run().unwrap());

        // The bad directory is marked failed on disk and not registered.
        let state = fs::read_to_string(jobs.join("job-1").join("state")).unwrap();
        assert!(state.starts_with("failed:"), "{state}");
        let mut c = Client::connect(addr);
        assert!(matches!(
            c.call(&Request::Status { id: "job-1".into() }),
            Response::Error { .. }
        ));

        // The healthy job resumed and runs to completion.
        let mut watcher = Client::connect(addr);
        watcher
            .writer
            .write_all(format!("{}\n", Request::Events { id: "job-2".into() }.to_line()).as_bytes())
            .unwrap();
        let mut last = match watcher.read() {
            Response::Event(e) => e,
            other => panic!("expected event, got {other:?}"),
        };
        while !last.terminal {
            last = match watcher.read() {
                Response::Event(e) => e,
                other => panic!("expected event, got {other:?}"),
            };
        }
        assert_eq!(last.state, "done");

        // Fresh ids continue past both directories, bad one included.
        let resp = c.call(&Request::Submit(Box::new(SubmitRequest {
            source: JobSource::Sweep(tiny_sweep()),
            id: None,
            priority: 0,
        })));
        match resp {
            Response::Submitted { id, .. } => assert_eq!(id, "job-3"),
            other => panic!("expected submitted, got {other:?}"),
        }
        assert_eq!(c.call(&Request::Shutdown), Response::Ok);
        server.join().unwrap();

        // A restart finds terminal markers everywhere: the failed dir is
        // skipped without a second warning, nothing re-runs.
        let daemon = Daemon::bind(DaemonConfig {
            jobs_dir: jobs,
            threads: 1,
            ..Default::default()
        })
        .unwrap();
        drop(daemon);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Window queries replay a done job's cells in full fidelity: the
    /// first query captures checkpoints and persists a handle, repeat
    /// queries (the restart path) answer byte-identically from it.
    #[test]
    fn window_queries_replay_done_jobs() {
        let dir = std::env::temp_dir().join(format!("daemon-window-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let daemon = Daemon::bind(DaemonConfig {
            jobs_dir: dir.join("jobs"),
            threads: 2,
            ..Default::default()
        })
        .unwrap();
        let addr = daemon.local_addr().unwrap();
        let server = std::thread::spawn(move || daemon.run().unwrap());
        let mut c = Client::connect(addr);

        let spec = ScenarioSpec::batch(8, 0.2)
            .algos([AlgoSpec::cjz_constant_jamming()])
            .seeds(1)
            .until_drained(10_000)
            .checkpoint_every(64);
        let resp = c.call(&Request::Submit(Box::new(SubmitRequest {
            source: JobSource::Scenario(spec),
            id: Some("winjob".into()),
            priority: 0,
        })));
        assert!(matches!(resp, Response::Submitted { .. }), "{resp:?}");
        let mut watcher = Client::connect(addr);
        watcher
            .writer
            .write_all(
                format!(
                    "{}\n",
                    Request::Events {
                        id: "winjob".into()
                    }
                    .to_line()
                )
                .as_bytes(),
            )
            .unwrap();
        loop {
            match watcher.read() {
                Response::Event(e) if e.terminal => {
                    assert_eq!(e.state, "done");
                    break;
                }
                Response::Event(_) => {}
                other => panic!("expected event, got {other:?}"),
            }
        }

        let query = Request::Window {
            id: "winjob".into(),
            cell: 0,
            algo: 0,
            seed: 0,
            lo: 10,
            hi: 42,
        };
        let first = c.call(&query);
        let (fp1, body1) = match &first {
            Response::Window {
                lo,
                hi,
                fingerprint,
                body,
                ..
            } => {
                assert_eq!((*lo, *hi), (10, 42));
                assert_eq!(body.lines().count(), 33, "header + 32 slots");
                (fingerprint.clone(), body.clone())
            }
            other => panic!("expected window, got {other:?}"),
        };
        // The first query persisted the rebuild recipe.
        assert!(dir
            .join("jobs/winjob/checkpoints/cell0-algo0-seed0.json")
            .exists());
        // A repeat query rebuilds from the handle (digest-checked) and
        // answers byte-identically.
        match c.call(&query) {
            Response::Window {
                fingerprint, body, ..
            } => {
                assert_eq!(fingerprint, fp1);
                assert_eq!(body, body1);
            }
            other => panic!("expected window, got {other:?}"),
        }
        // Out-of-range coordinates fail cleanly.
        let resp = c.call(&Request::Window {
            id: "winjob".into(),
            cell: 9,
            algo: 0,
            seed: 0,
            lo: 1,
            hi: 2,
        });
        assert!(matches!(resp, Response::Error { .. }), "{resp:?}");

        assert_eq!(c.call(&Request::Shutdown), Response::Ok);
        server.join().unwrap();

        // A new daemon life: the job is done (terminal marker, not
        // re-registered with the scheduler), yet the window query still
        // answers — manifest from disk, trajectory from the persisted,
        // digest-checked handle — byte-identical to the first life.
        let daemon = Daemon::bind(DaemonConfig {
            jobs_dir: dir.join("jobs"),
            threads: 2,
            ..Default::default()
        })
        .unwrap();
        let addr = daemon.local_addr().unwrap();
        let server = std::thread::spawn(move || daemon.run().unwrap());
        let mut c = Client::connect(addr);
        match c.call(&query) {
            Response::Window {
                fingerprint, body, ..
            } => {
                assert_eq!(fingerprint, fp1);
                assert_eq!(body, body1);
            }
            other => panic!("expected window, got {other:?}"),
        }
        assert_eq!(c.call(&Request::Shutdown), Response::Ok);
        server.join().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    /// One in-process daemon exercising the full request surface,
    /// including restart-resume. The kill -9 path is covered by the e2e
    /// binary test (`tests/service_e2e.rs`) and the CI smoke job.
    #[test]
    fn daemon_serves_submit_status_results_events_and_resume() {
        let dir = std::env::temp_dir().join(format!("daemon-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let daemon = Daemon::bind(DaemonConfig {
            jobs_dir: dir.join("jobs"),
            threads: 2,
            ..Default::default()
        })
        .unwrap();
        let addr = daemon.local_addr().unwrap();
        let server = std::thread::spawn(move || daemon.run().unwrap());

        let mut c = Client::connect(addr);
        assert_eq!(c.call(&Request::Ping), Response::Ok);

        // Unknown campaign: error with suggestions, connection survives.
        let resp = c.call(&Request::Submit(Box::new(SubmitRequest {
            source: JobSource::Campaign {
                name: "tradeoof".into(),
                smoke: true,
            },
            id: None,
            priority: 0,
        })));
        match resp {
            Response::Error { message } => {
                assert!(message.contains("did you mean"), "{message}");
                assert!(message.contains("tradeoff"), "{message}");
            }
            other => panic!("expected error, got {other:?}"),
        }

        // Submit an inline sweep and watch it to completion.
        let resp = c.call(&Request::Submit(Box::new(SubmitRequest {
            source: JobSource::Sweep(tiny_sweep()),
            id: None,
            priority: 0,
        })));
        let id = match resp {
            Response::Submitted { id, units } => {
                assert_eq!(units, 2);
                id
            }
            other => panic!("expected submitted, got {other:?}"),
        };
        assert_eq!(id, "job-1");

        let mut watcher = Client::connect(addr);
        watcher
            .writer
            .write_all(format!("{}\n", Request::Events { id: id.clone() }.to_line()).as_bytes())
            .unwrap();
        let mut last = match watcher.read() {
            Response::Event(e) => e,
            other => panic!("expected event, got {other:?}"),
        };
        while !last.terminal {
            last = match watcher.read() {
                Response::Event(e) => e,
                other => panic!("expected event, got {other:?}"),
            };
        }
        assert_eq!(last.state, "done");
        assert_eq!(last.done_units, 2);

        // Status + results reflect the finished job.
        match c.call(&Request::Status { id: id.clone() }) {
            Response::Status(s) => {
                assert_eq!(s.state, "done");
                assert_eq!(s.done_units, 2);
            }
            other => panic!("expected status, got {other:?}"),
        }
        let csv_body = match c.call(&Request::Results {
            id: id.clone(),
            format: ResultFormat::Csv,
        }) {
            Response::Results { body, .. } => body,
            other => panic!("expected results, got {other:?}"),
        };
        assert_eq!(
            csv_body,
            fs::read_to_string(dir.join("jobs").join(&id).join("results.csv")).unwrap()
        );
        match c.call(&Request::List) {
            Response::List(jobs) => assert_eq!(jobs.len(), 1),
            other => panic!("expected list, got {other:?}"),
        }

        // Duplicate job directories refuse.
        let resp = c.call(&Request::Submit(Box::new(SubmitRequest {
            source: JobSource::Sweep(tiny_sweep()),
            id: Some(id.clone()),
            priority: 0,
        })));
        assert!(matches!(resp, Response::Error { .. }));

        assert_eq!(c.call(&Request::Shutdown), Response::Ok);
        server.join().unwrap();

        // Restart over the same jobs dir: the finished job (terminal
        // marker present) is NOT resubmitted; a journal stripped of its
        // marker IS, and completes from the journal alone.
        fs::remove_file(dir.join("jobs").join(&id).join("state")).unwrap();
        let daemon = Daemon::bind(DaemonConfig {
            jobs_dir: dir.join("jobs"),
            threads: 1,
            ..Default::default()
        })
        .unwrap();
        let addr = daemon.local_addr().unwrap();
        let server = std::thread::spawn(move || daemon.run().unwrap());
        let mut c = Client::connect(addr);
        match c.call(&Request::Status { id: id.clone() }) {
            Response::Status(s) => {
                assert_eq!(s.state, "done");
                assert_eq!(s.recovered_units, 2, "resumed entirely from journal");
            }
            other => panic!("expected status, got {other:?}"),
        }
        // Fresh ids continue past recovered ones.
        let resp = c.call(&Request::Submit(Box::new(SubmitRequest {
            source: JobSource::Scenario(
                ScenarioSpec::batch(4, 0.0)
                    .algos([AlgoSpec::cjz_constant_jamming()])
                    .seeds(1)
                    .until_drained(10_000),
            ),
            id: None,
            priority: 1,
        })));
        match resp {
            Response::Submitted { id, units } => {
                assert_eq!(id, "job-2");
                assert_eq!(units, 1);
            }
            other => panic!("expected submitted, got {other:?}"),
        }
        assert_eq!(c.call(&Request::Shutdown), Response::Ok);
        server.join().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}
