//! The write-ahead result journal: crash-safe campaign progress.
//!
//! A journal is an append-only JSONL file (`journal.jsonl` inside a job
//! directory). Line 1 is a header binding the file to one exact sweep — a
//! schema id, an FNV-1a fingerprint of the sweep's canonical JSON, and
//! the unit count — and every later line is one completed unit:
//! `{"unit":i,"result":<cell row>}`, `fsync`'d before the scheduler
//! acknowledges the cell. Because every (cell × algorithm) unit is
//! deterministic and the row serialization round-trips floats exactly
//! ([`cell_result_to_json`]), a killed run resumed from its journal
//! produces byte-identical final output.
//!
//! [`recover`] is deliberately conservative about what it accepts:
//!
//! * an **empty file or lone torn header line** (the crash landed before
//!   [`Journal::create`]'s sync) acknowledged nothing and counts as no
//!   journal at all — it is recreated, not an error;
//! * a **truncated tail** (the crash landed mid-`write`) is dropped and
//!   its unit re-runs — that is the normal kill -9 case, not an error;
//! * **duplicate** unit lines (a crash after `write` but before the
//!   in-memory cursor advanced, then a resume) keep the first copy —
//!   determinism makes the copies identical anyway;
//! * a **schema/fingerprint/unit-count mismatch** means the journal
//!   belongs to a different sweep (or a different code version) and
//!   recovery refuses with an error naming the mismatch, rather than
//!   silently mixing results;
//! * garbage anywhere *before* the last line is corruption and also
//!   refuses — only the tail can be half-written by a crash.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use super::faults::{self, FaultPoint};
use super::retry::RetryPolicy;
use crate::campaign::json::{cell_result_from_json, cell_result_to_json};
use crate::campaign::{CellResult, SweepSpec};
use crate::scenario::Json;

/// Journal format id; bump on any incompatible layout change.
pub const JOURNAL_SCHEMA: &str = "contention-bench/journal-v1";

/// FNV-1a 64-bit fingerprint of the sweep's canonical JSON encoding.
///
/// Two sweeps fingerprint equal iff they serialize identically, which is
/// exactly the "same experiment" notion the journal needs: any edit to
/// the base scenario, axes, seeds or roster changes the canonical JSON.
pub fn sweep_fingerprint(sweep: &SweepSpec) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in sweep.to_json_string().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Why a journal could not be recovered.
#[derive(Debug)]
pub enum RecoverError {
    /// Filesystem failure reading the journal.
    Io(io::Error),
    /// The journal is damaged somewhere other than its final line.
    Corrupt(String),
    /// The journal belongs to a different sweep or format version.
    Mismatch(String),
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "journal I/O error: {e}"),
            RecoverError::Corrupt(m) => write!(f, "journal corrupt: {m}"),
            RecoverError::Mismatch(m) => write!(f, "journal mismatch: {m}"),
        }
    }
}

impl From<io::Error> for RecoverError {
    fn from(e: io::Error) -> Self {
        RecoverError::Io(e)
    }
}

/// What [`recover`] salvaged from an existing journal.
#[derive(Debug)]
pub struct Recovered {
    /// Completed rows by unit index (first copy wins on duplicates).
    pub results: BTreeMap<usize, CellResult>,
    /// A half-written final line was dropped (its unit will re-run).
    pub truncated: bool,
    /// Duplicate unit lines skipped.
    pub duplicates: usize,
    /// Byte length of the valid prefix; resume truncates the file here.
    pub valid_len: u64,
}

/// Parse an existing journal for `sweep`, salvaging every intact row.
///
/// Returns `Ok(None)` when no journal exists (fresh run). See the module
/// docs for the exact tolerance/refusal rules.
pub fn recover(
    path: &Path,
    sweep: &SweepSpec,
    units: usize,
) -> Result<Option<Recovered>, RecoverError> {
    let text = match File::open(path) {
        Ok(mut f) => {
            let mut bytes = Vec::new();
            f.read_to_end(&mut bytes)?;
            String::from_utf8(bytes)
                .map_err(|_| RecoverError::Corrupt("journal is not valid UTF-8".into()))?
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };

    // Split into newline-terminated lines, remembering whether the final
    // chunk was cut off mid-write.
    let mut lines: Vec<&str> = Vec::new();
    let mut tail_complete = true;
    let mut rest = text.as_str();
    while !rest.is_empty() {
        match rest.find('\n') {
            Some(i) => {
                lines.push(&rest[..i]);
                rest = &rest[i + 1..];
            }
            None => {
                lines.push(rest);
                tail_complete = false;
                rest = "";
            }
        }
    }
    // A journal that never got past its header write — empty file, or a
    // single torn/unparseable line — cannot have acknowledged any unit,
    // so it is equivalent to no journal at all: recreate it. (A crash
    // between `Journal::create`'s write and sync produces exactly these
    // files, and they must not brick later startups.)
    if lines.is_empty() {
        return Ok(None);
    }
    let header_parsed = Json::parse(lines[0]).ok();
    if lines.len() == 1 && (!tail_complete || header_parsed.is_none()) {
        return Ok(None);
    }

    // Header: refuse anything that is not exactly this sweep.
    let header =
        header_parsed.ok_or_else(|| RecoverError::Corrupt("unreadable header line".into()))?;
    let schema = header
        .get("schema")
        .and_then(|s| s.as_str().map(String::from))
        .map_err(|_| RecoverError::Corrupt("header has no schema field".into()))?;
    if schema != JOURNAL_SCHEMA {
        return Err(RecoverError::Mismatch(format!(
            "journal schema is `{schema}`, this build writes `{JOURNAL_SCHEMA}`"
        )));
    }
    let fp = header
        .get("fingerprint")
        .and_then(|s| s.as_str().map(String::from))
        .map_err(|_| RecoverError::Corrupt("header has no fingerprint field".into()))?;
    let want_fp = sweep_fingerprint(sweep);
    if fp != want_fp {
        return Err(RecoverError::Mismatch(format!(
            "journal was written for a different sweep (fingerprint {fp}, \
             this spec is {want_fp}); remove the job directory to start over"
        )));
    }
    let got_units = header
        .get("units")
        .and_then(|u| u.as_u64())
        .map_err(|_| RecoverError::Corrupt("header has no units field".into()))?
        as usize;
    if got_units != units {
        return Err(RecoverError::Mismatch(format!(
            "journal expects {got_units} units, this sweep has {units}"
        )));
    }

    let mut results = BTreeMap::new();
    let mut duplicates = 0usize;
    let mut truncated = !tail_complete;
    let mut valid_len = lines[0].len() as u64 + 1;
    for (i, line) in lines.iter().enumerate().skip(1) {
        let last = i == lines.len() - 1;
        let parsed = Json::parse(line).ok().and_then(|j| {
            let unit = j.get("unit").ok()?.as_u64().ok()? as usize;
            let cell = cell_result_from_json(j.get("result").ok()?).ok()?;
            Some((unit, cell))
        });
        match parsed {
            Some((unit, _)) if unit >= units => {
                return Err(RecoverError::Corrupt(format!(
                    "line {} names unit {unit} of {units}",
                    i + 1
                )));
            }
            Some((unit, cell)) if !last || tail_complete => {
                if let std::collections::btree_map::Entry::Vacant(e) = results.entry(unit) {
                    e.insert(cell);
                } else {
                    duplicates += 1;
                }
                valid_len += line.len() as u64 + 1;
            }
            // A parseable but unterminated final line still lacks its
            // fsync'd newline: treat it as the torn tail and re-run it.
            Some(_) => truncated = true,
            None if last => truncated = true,
            None => {
                return Err(RecoverError::Corrupt(format!(
                    "unparseable line {} (only the final line may be torn)",
                    i + 1
                )));
            }
        }
    }

    Ok(Some(Recovered {
        results,
        truncated,
        duplicates,
        valid_len,
    }))
}

/// An open journal in append mode. Every [`append`](Journal::append) is
/// written *and synced* before returning, so an acknowledged cell is
/// guaranteed to survive kill -9. Appends self-heal transient write
/// failures: the file is truncated back to its last valid length and
/// the line rewritten under the service retry policy, so a fault never
/// leaves garbage *before* the tail (the one corruption [`recover`]
/// refuses).
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Bytes of acknowledged (synced, newline-terminated) content; the
    /// truncation target when an append heals.
    len: u64,
    retry: RetryPolicy,
}

impl Journal {
    /// Create a fresh journal for `sweep` (truncating any existing file),
    /// writing and syncing the header line. A torn header write retries
    /// from scratch — `File::create` truncates, so each attempt starts
    /// clean.
    pub fn create(path: &Path, sweep: &SweepSpec, units: usize) -> io::Result<Journal> {
        let header = Json::obj(vec![
            ("schema", Json::Str(JOURNAL_SCHEMA.into())),
            ("sweep", Json::Str(sweep.name.clone())),
            ("fingerprint", Json::Str(sweep_fingerprint(sweep))),
            ("units", Json::u64(units as u64)),
        ]);
        let mut text = header.render();
        text.push('\n');
        let retry = RetryPolicy::io();
        let file = retry.run(|_| {
            let mut file = File::create(path)?;
            if let Some(lot) = faults::fire(FaultPoint::JournalHeaderWrite) {
                let _ = file.write_all(&text.as_bytes()[..lot.cut(text.len())]);
                return Err(faults::injected_error(FaultPoint::JournalHeaderWrite));
            }
            file.write_all(text.as_bytes())?;
            file.sync_data()?;
            Ok(file)
        })?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            len: text.len() as u64,
            retry,
        })
    }

    /// Reopen an existing journal after [`recover`], truncating the torn
    /// tail (if any) and positioning at the end of the valid prefix.
    pub fn resume(path: &Path, valid_len: u64) -> io::Result<Journal> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        file.sync_data()?;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            len: valid_len,
            retry: RetryPolicy::io(),
        })
    }

    /// Append one completed unit, synced to disk before returning.
    ///
    /// On a failed or torn write the file heals — truncate back to the
    /// acknowledged length, seek, rewrite — and retries under the I/O
    /// policy. If every attempt fails the journal is left healed (no
    /// torn bytes) and the error surfaces for the caller to quarantine.
    pub fn append(&mut self, unit: usize, cell: &CellResult) -> io::Result<()> {
        let line = Json::obj(vec![
            ("unit", Json::u64(unit as u64)),
            ("result", cell_result_to_json(cell)),
        ]);
        let mut text = line.render();
        text.push('\n');
        let retry = self.retry;
        let out = retry.run(|attempt| {
            if attempt > 0 {
                self.heal()?;
            }
            self.try_append(text.as_bytes())
        });
        match out {
            Ok(()) => {
                self.len += text.len() as u64;
                Ok(())
            }
            Err(e) => {
                // Best-effort final heal so the on-disk file never keeps
                // a torn line that a later successful append would bury
                // mid-file (= unrecoverable corruption).
                let _ = self.heal();
                Err(e)
            }
        }
    }

    /// One raw append attempt, with the injected-fault consults.
    fn try_append(&mut self, bytes: &[u8]) -> io::Result<()> {
        if let Some(lot) = faults::fire(FaultPoint::JournalAppendWrite) {
            let _ = self.file.write_all(&bytes[..lot.cut(bytes.len())]);
            return Err(faults::injected_error(FaultPoint::JournalAppendWrite));
        }
        self.file.write_all(bytes)?;
        if faults::fire(FaultPoint::JournalAppendFsync).is_some() {
            return Err(faults::injected_error(FaultPoint::JournalAppendFsync));
        }
        self.file.sync_data()
    }

    /// Truncate back to the acknowledged prefix and reposition.
    fn heal(&mut self) -> io::Result<()> {
        self.file.set_len(self.len)?;
        self.file.seek(SeekFrom::Start(self.len))?;
        Ok(())
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Axis, CampaignRunner};
    use crate::scenario::{AlgoSpec, ScenarioSpec};

    fn sweep() -> SweepSpec {
        SweepSpec::new(
            "jtest",
            "Journal test",
            ScenarioSpec::batch(4, 0.0)
                .algos([AlgoSpec::cjz_constant_jamming()])
                .seeds(1)
                .until_drained(10_000),
        )
        .axis(Axis::jam([0.0, 0.1]))
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// Write a complete 2-unit journal and return (path, cells).
    fn full_journal(name: &str) -> (PathBuf, Vec<CellResult>) {
        let path = tmp(name);
        let s = sweep();
        let result = CampaignRunner::new(s.clone()).run();
        let mut j = Journal::create(&path, &s, 2).unwrap();
        for (i, cell) in result.cells.iter().enumerate() {
            j.append(i, cell).unwrap();
        }
        (path, result.cells)
    }

    #[test]
    fn fingerprint_tracks_spec_identity() {
        let a = sweep();
        let mut b = sweep();
        assert_eq!(sweep_fingerprint(&a), sweep_fingerprint(&b));
        b.base.seeds = 99;
        assert_ne!(sweep_fingerprint(&a), sweep_fingerprint(&b));
    }

    #[test]
    fn missing_journal_is_a_fresh_start() {
        let r = recover(&tmp("nope.jsonl"), &sweep(), 2).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn empty_or_header_torn_journal_is_a_fresh_start() {
        // Crash after File::create, before the header write.
        let path = tmp("empty.jsonl");
        std::fs::write(&path, "").unwrap();
        assert!(recover(&path, &sweep(), 2).unwrap().is_none());
        // Crash mid-header-write: an unterminated prefix of the header.
        std::fs::write(&path, "{\"schema\":\"contention-be").unwrap();
        assert!(recover(&path, &sweep(), 2).unwrap().is_none());
        // A lone terminated-but-unparseable line also acknowledged
        // nothing: still a fresh start.
        std::fs::write(&path, "garbage\n").unwrap();
        assert!(recover(&path, &sweep(), 2).unwrap().is_none());
        // Journal::create over such a file truncates and starts over.
        let s = sweep();
        let j = Journal::create(&path, &s, 2).unwrap();
        drop(j);
        let r = recover(&path, &s, 2).unwrap().unwrap();
        assert!(r.results.is_empty());
        assert!(!r.truncated);
    }

    #[test]
    fn unreadable_header_with_results_after_it_is_corruption() {
        // Once result lines follow, a broken header can no longer be
        // dismissed as a pre-sync crash: refuse loudly.
        let (path, _) = full_journal("badheader.jsonl");
        let text = std::fs::read_to_string(&path).unwrap();
        let rest = text.split_once('\n').unwrap().1;
        std::fs::write(&path, format!("garbage\n{rest}")).unwrap();
        match recover(&path, &sweep(), 2) {
            Err(RecoverError::Corrupt(m)) => assert!(m.contains("header"), "{m}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn full_journal_recovers_every_row() {
        let (path, cells) = full_journal("full.jsonl");
        let r = recover(&path, &sweep(), 2).unwrap().unwrap();
        assert_eq!(r.results.len(), 2);
        assert!(!r.truncated);
        assert_eq!(r.duplicates, 0);
        assert_eq!(r.valid_len, std::fs::metadata(&path).unwrap().len());
        // Bit-identical recovery: the resumed rows ARE the original rows.
        assert_eq!(r.results[&0], cells[0]);
        assert_eq!(r.results[&1], cells[1]);
    }

    #[test]
    fn torn_tail_is_dropped_and_rerun() {
        let (path, cells) = full_journal("torn.jsonl");
        // Chop the last line mid-way: the kill -9 case.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.trim_end().rfind('\n').unwrap() + 10;
        std::fs::write(&path, &text[..cut]).unwrap();
        let r = recover(&path, &sweep(), 2).unwrap().unwrap();
        assert!(r.truncated);
        assert_eq!(r.results.len(), 1);
        assert_eq!(r.results[&0], cells[0]);
        // valid_len points at the end of the intact prefix.
        assert_eq!(
            text.as_bytes()[r.valid_len as usize - 1],
            b'\n',
            "valid prefix ends on a line boundary"
        );
        // Resuming truncates the tear so appends continue cleanly.
        let mut j = Journal::resume(&path, r.valid_len).unwrap();
        j.append(1, &cells[1]).unwrap();
        let r2 = recover(&path, &sweep(), 2).unwrap().unwrap();
        assert!(!r2.truncated);
        assert_eq!(r2.results.len(), 2);
        assert_eq!(r2.results[&1], cells[1]);
    }

    #[test]
    fn parseable_but_unterminated_tail_still_reruns() {
        let (path, _) = full_journal("noterm.jsonl");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.trim_end()).unwrap();
        let r = recover(&path, &sweep(), 2).unwrap().unwrap();
        assert!(r.truncated);
        assert_eq!(r.results.len(), 1, "unterminated line lacks its sync");
    }

    #[test]
    fn duplicate_lines_dedupe_keeping_first() {
        let (path, cells) = full_journal("dup.jsonl");
        let text = std::fs::read_to_string(&path).unwrap();
        let dup_line = text.lines().nth(1).unwrap();
        std::fs::write(&path, format!("{text}{dup_line}\n")).unwrap();
        let r = recover(&path, &sweep(), 2).unwrap().unwrap();
        assert_eq!(r.duplicates, 1);
        assert_eq!(r.results.len(), 2);
        assert_eq!(r.results[&0], cells[0]);
    }

    #[test]
    fn wrong_sweep_refuses_with_mismatch() {
        let (path, _) = full_journal("mismatch.jsonl");
        let mut other = sweep();
        other.base.seeds = 7;
        match recover(&path, &other, 2) {
            Err(RecoverError::Mismatch(m)) => assert!(m.contains("different sweep"), "{m}"),
            other => panic!("expected Mismatch, got {other:?}"),
        }
    }

    #[test]
    fn wrong_schema_and_units_refuse() {
        let (path, _) = full_journal("schema.jsonl");
        match recover(&path, &sweep(), 3) {
            Err(RecoverError::Mismatch(m)) => assert!(m.contains("units"), "{m}"),
            other => panic!("expected Mismatch, got {other:?}"),
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("journal-v1", "journal-v0")).unwrap();
        match recover(&path, &sweep(), 2) {
            Err(RecoverError::Mismatch(m)) => assert!(m.contains("schema"), "{m}"),
            other => panic!("expected Mismatch, got {other:?}"),
        }
    }

    #[test]
    fn garbage_before_tail_is_corruption() {
        let (path, _) = full_journal("corrupt.jsonl");
        let mut lines: Vec<String> = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        lines[1] = "{\"not\":\"a cell\"".into();
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        match recover(&path, &sweep(), 2) {
            Err(RecoverError::Corrupt(m)) => assert!(m.contains("line 2"), "{m}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
