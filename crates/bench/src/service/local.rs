//! In-process campaign execution over the service scheduler: the one
//! codepath behind `CampaignRunner::run()`, `campaign run` (with or
//! without `--journal`), and interrupted-then-resumed runs.
//!
//! [`run_local`] spins up a private [`Scheduler`], submits the sweep as
//! a single job, and streams completed rows into optional CSV/JSONL
//! files through [`OrderedLineWriter`] — each row flushed the moment its
//! grid-order turn comes, so `tail -f` follows along and a crash leaves
//! a clean prefix. With a journal directory the job is resumable; with
//! an interrupt flag (the CLI's SIGINT handler sets it) the pool drains:
//! in-flight cells finish and journal, nothing new starts, and the
//! outcome reports `interrupted` so the caller can exit distinctly.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::Duration;

use crate::campaign::{
    csv_header, csv_row, jsonl_row, CampaignResult, CellResult, OrderedLineWriter, SweepSpec,
};

use super::scheduler::{JobSpec, Scheduler};
use super::ServiceError;

/// Knobs for [`run_local`].
#[derive(Debug, Default)]
pub struct LocalOptions {
    /// Journal/artifact directory; `None` runs purely in memory.
    pub dir: Option<PathBuf>,
    /// Resume an existing journal in `dir` (error to find one otherwise).
    pub resume: bool,
    /// Checked between rows: when set, drain and return early.
    pub interrupt: Option<Arc<AtomicBool>>,
    /// Stream rows to this CSV file (header + one flushed row per cell).
    pub csv: Option<PathBuf>,
    /// Stream rows to this JSONL file (one flushed row per cell).
    pub jsonl: Option<PathBuf>,
    /// Worker threads; default = available parallelism.
    pub threads: Option<usize>,
}

/// What [`run_local`] accomplished.
#[derive(Debug)]
pub struct LocalOutcome {
    /// The complete campaign, when every unit finished.
    pub result: Option<CampaignResult>,
    /// Units completed (recovered ones included).
    pub done_units: usize,
    /// Grid size.
    pub total_units: usize,
    /// Units restored from the journal instead of executed.
    pub recovered_units: usize,
    /// The run stopped early on the interrupt flag.
    pub interrupted: bool,
}

fn writers(
    sweep: &SweepSpec,
    opts: &LocalOptions,
) -> Result<(Option<OrderedLineWriter>, Option<OrderedLineWriter>), ServiceError> {
    let axes: Vec<String> = sweep.axes.iter().map(|a| a.name.clone()).collect();
    let csv = opts
        .csv
        .as_ref()
        .map(|p| OrderedLineWriter::create(p, Some(&csv_header(&axes))))
        .transpose()?;
    let jsonl = opts
        .jsonl
        .as_ref()
        .map(|p| OrderedLineWriter::create(p, None))
        .transpose()?;
    Ok((csv, jsonl))
}

/// Run one sweep on a private scheduler, streaming rows as they
/// complete. See the module docs for journal/interrupt semantics.
pub fn run_local(sweep: SweepSpec, opts: LocalOptions) -> Result<LocalOutcome, ServiceError> {
    let threads = opts.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let (mut csv, mut jsonl) = writers(&sweep, &opts)?;
    let axes: Vec<String> = sweep.axes.iter().map(|a| a.name.clone()).collect();
    let name = sweep.name.clone();
    let mut push_row = move |unit: usize, cell: &CellResult| -> Result<(), ServiceError> {
        if let Some(w) = &mut csv {
            w.push(unit, csv_row(&name, &axes, cell))?;
        }
        if let Some(w) = &mut jsonl {
            w.push(unit, jsonl_row(&name, cell))?;
        }
        Ok(())
    };

    let sched = Scheduler::new(threads);
    let job = sched.submit(JobSpec {
        id: sweep.name.clone(),
        sweep,
        priority: 0,
        dir: opts.dir.clone(),
        resume: opts.resume,
    })?;

    // Subscribe before activation so no live row can slip between the
    // recovered snapshot and the stream.
    let (recovered, rx) = job.subscribe_results();
    for (unit, cell) in &recovered {
        push_row(*unit, cell)?;
    }
    let interrupt_set = || {
        opts.interrupt
            .as_ref()
            .is_some_and(|f| f.load(Ordering::SeqCst))
    };
    // A flag raised before we start means: recover/journal bookkeeping
    // only, schedule nothing.
    let mut interrupted = interrupt_set();
    if interrupted {
        sched.drain();
    }
    sched.activate(&job);

    loop {
        // Check the flag on every pass — including between back-to-back
        // rows, which on a fast grid arrive well inside the recv
        // timeout — so a signal always stops the run before the next
        // unclaimed cell, never only on a quiet channel.
        if !interrupted && interrupt_set() {
            interrupted = true;
            sched.drain();
        }
        if interrupted {
            // In-flight cells finish and journal; flush what arrived.
            job.wait_quiesced();
            for (unit, cell) in rx.try_iter() {
                push_row(unit, &cell)?;
            }
            break;
        }
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok((unit, cell)) => push_row(unit, &cell)?,
            Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }

    let status = job.status();
    if status.state == "failed" {
        return Err(ServiceError::new(format!(
            "campaign `{}` failed: {}",
            job.sweep.name,
            status.error.clone().unwrap_or_default()
        )));
    }

    Ok(LocalOutcome {
        result: job.result(),
        done_units: status.done_units as usize,
        total_units: status.total_units as usize,
        recovered_units: status.recovered_units as usize,
        interrupted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{to_csv, to_jsonl, Axis, CampaignRunner};
    use crate::scenario::{AlgoSpec, ScenarioSpec};
    use std::path::Path;

    fn sweep() -> SweepSpec {
        SweepSpec::new(
            "local",
            "Local test",
            ScenarioSpec::batch(4, 0.0)
                .algos([AlgoSpec::cjz_constant_jamming()])
                .seeds(2)
                .until_drained(10_000),
        )
        .axis(Axis::jam([0.0, 0.1]))
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("runlocal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn streamed_files_equal_batch_writers() {
        let csv_path = tmp("stream.csv");
        let jsonl_path = tmp("stream.jsonl");
        let outcome = run_local(
            sweep(),
            LocalOptions {
                csv: Some(csv_path.clone()),
                jsonl: Some(jsonl_path.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        let result = outcome.result.expect("complete");
        assert!(!outcome.interrupted);
        assert_eq!(outcome.done_units, 2);
        assert_eq!(
            std::fs::read_to_string(&csv_path).unwrap(),
            to_csv(&result),
            "streamed CSV is byte-equal to the batch writer"
        );
        assert_eq!(
            std::fs::read_to_string(&jsonl_path).unwrap(),
            to_jsonl(&result)
        );
    }

    #[test]
    fn journaled_run_resumes_byte_identical() {
        let dir = tmp("journaled");
        let _ = std::fs::remove_dir_all(&dir);
        let a = run_local(
            sweep(),
            LocalOptions {
                dir: Some(dir.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        let full_csv = to_csv(&a.result.unwrap());
        assert_eq!(
            std::fs::read_to_string(dir.join("results.csv")).unwrap(),
            full_csv
        );

        // Simulate a kill -9 after the first journaled unit: drop the
        // artifacts, truncate the journal after one result line, and
        // garble the tail like a torn write.
        truncate_journal(&dir, 1);
        let csv_path = tmp("resumed.csv");
        let b = run_local(
            sweep(),
            LocalOptions {
                dir: Some(dir.clone()),
                resume: true,
                csv: Some(csv_path.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(b.recovered_units, 1);
        assert_eq!(b.done_units, 2);
        assert_eq!(std::fs::read_to_string(&csv_path).unwrap(), full_csv);
        assert_eq!(
            std::fs::read_to_string(dir.join("results.csv")).unwrap(),
            full_csv,
            "resumed final artifact is byte-identical"
        );
        // Without --resume the journal refuses.
        let err = run_local(
            sweep(),
            LocalOptions {
                dir: Some(dir.clone()),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("--resume"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Keep the header + `keep` result lines, then append a torn tail.
    fn truncate_journal(dir: &Path, keep: usize) {
        let path = dir.join("journal.jsonl");
        let text = std::fs::read_to_string(&path).unwrap();
        let kept: Vec<&str> = text.lines().take(1 + keep).collect();
        std::fs::write(&path, format!("{}\n{{\"unit\":9", kept.join("\n"))).unwrap();
        for f in ["results.csv", "results.jsonl", "report.md", "state"] {
            let _ = std::fs::remove_file(dir.join(f));
        }
    }

    #[test]
    fn delegated_runner_path_matches_direct_scheduler() {
        // CampaignRunner::run() routes through run_local; sanity-check
        // equality with an explicit run_local call.
        let direct = CampaignRunner::new(sweep()).run();
        let via = run_local(sweep(), LocalOptions::default())
            .unwrap()
            .result
            .unwrap();
        assert_eq!(direct.cells, via.cells);
    }

    #[test]
    fn preset_interrupt_flag_stops_early_but_keeps_journal() {
        let dir = tmp("interrupted");
        let _ = std::fs::remove_dir_all(&dir);
        let flag = Arc::new(AtomicBool::new(true));
        let outcome = run_local(
            sweep(),
            LocalOptions {
                dir: Some(dir.clone()),
                interrupt: Some(flag),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(outcome.interrupted);
        assert_eq!(outcome.done_units, 0, "flag preset: nothing scheduled");
        // A drain is not a cancel: no terminal marker, so a restart with
        // --resume continues the job.
        assert!(!dir.join("state").exists());
        let resumed = run_local(
            sweep(),
            LocalOptions {
                dir: Some(dir.clone()),
                resume: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(resumed.done_units, 2);
        assert_eq!(
            std::fs::read_to_string(dir.join("results.csv")).unwrap(),
            to_csv(&resumed.result.unwrap())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
