//! The line-delimited JSON wire protocol between `benchctl` (or any
//! client) and the `benchd` daemon.
//!
//! Every message is one JSON object on one line. Clients send
//! [`Request`]s; the daemon answers each with exactly one [`Response`] —
//! except [`Request::Events`], which switches the connection into
//! streaming mode: the daemon emits one [`Response::Event`] line per
//! progress update until a terminal event, then resumes request/response.
//!
//! The encoding reuses the crate's hand-rolled [`Json`] layer (no serde,
//! no external deps) and round-trips exactly — property-tested below —
//! so protocol messages can embed full [`SweepSpec`]/[`ScenarioSpec`]
//! payloads with the same fidelity the journal relies on.

use crate::scenario::{Json, ScenarioSpec, SpecError};
use crate::SweepSpec;

/// What a submitted job should run.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSource {
    /// A named campaign from the campaign registry.
    Campaign {
        /// Registry key, e.g. `tradeoff`.
        name: String,
        /// Shrink to the smoke-test grid before running.
        smoke: bool,
    },
    /// An inline sweep, shipped in full.
    Sweep(SweepSpec),
    /// A single scenario (wrapped into an axis-free one-cell sweep).
    Scenario(ScenarioSpec),
}

/// A job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// What to run.
    pub source: JobSource,
    /// Client-chosen job id; the daemon assigns `job-N` when absent.
    pub id: Option<String>,
    /// Scheduling priority: higher runs first; ties run in submit order.
    pub priority: i64,
}

/// Which rendered artifact a `results` request wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultFormat {
    /// Flat CSV (the `to_csv` writer).
    Csv,
    /// JSON Lines (the `to_jsonl` writer).
    Jsonl,
    /// The markdown report section.
    Report,
}

impl ResultFormat {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            ResultFormat::Csv => "csv",
            ResultFormat::Jsonl => "jsonl",
            ResultFormat::Report => "report",
        }
    }

    /// Parse a wire name.
    pub fn by_name(name: &str) -> Option<ResultFormat> {
        match name {
            "csv" => Some(ResultFormat::Csv),
            "jsonl" => Some(ResultFormat::Jsonl),
            "report" => Some(ResultFormat::Report),
            _ => None,
        }
    }
}

/// A client request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job. Boxed: the inline-sweep payload dwarfs every other
    /// variant.
    Submit(Box<SubmitRequest>),
    /// One status snapshot of a job.
    Status {
        /// Job id.
        id: String,
    },
    /// Status snapshots of every job the daemon knows.
    List,
    /// A rendered artifact of a finished (or partially finished) job.
    Results {
        /// Job id.
        id: String,
        /// Artifact to render.
        format: ResultFormat,
    },
    /// Stop scheduling new cells of a job (in-flight cells finish and
    /// are journaled).
    Cancel {
        /// Job id.
        id: String,
    },
    /// Switch this connection into streaming progress events for a job.
    Events {
        /// Job id.
        id: String,
    },
    /// Materialize a full-fidelity slot window of one (cell, algorithm,
    /// seed) run of a job, replayed from checkpoints — works post-hoc
    /// against `done` jobs, across daemon restarts (the daemon persists
    /// a checkpoint handle per queried run and cross-checks its digests
    /// on every rebuild).
    Window {
        /// Job id.
        id: String,
        /// Grid-order cell index into the job's sweep.
        cell: u64,
        /// Roster index into the cell's algorithm list.
        algo: u64,
        /// Seed offset within the cell (`0 .. spec.seeds`).
        seed: u64,
        /// First slot of the window (1-based).
        lo: u64,
        /// One past the last slot.
        hi: u64,
    },
    /// Liveness check.
    Ping,
    /// Heartbeat with substance: job counts and fault-injection
    /// accounting, so a watchdog can distinguish "alive and idle" from
    /// "alive and wedged" at a glance.
    Health,
    /// Ask the daemon to exit (journals are already synced per cell).
    Shutdown,
}

/// One job's status snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatusInfo {
    /// Job id.
    pub id: String,
    /// `queued` / `running` / `done` / `cancelled` / `failed`.
    pub state: String,
    /// Scheduling priority.
    pub priority: i64,
    /// Total (cell × algorithm) units in the grid.
    pub total_units: u64,
    /// Units completed so far (journal-recovered ones included).
    pub done_units: u64,
    /// Units restored from the journal rather than executed.
    pub recovered_units: u64,
    /// Mean simulated slots summed over completed units × seeds — the
    /// throughput numerator clients turn into slots/s and an ETA.
    pub slots_done: f64,
    /// Failure message, when `state == "failed"`.
    pub error: Option<String>,
}

/// One streamed progress event.
#[derive(Debug, Clone, PartialEq)]
pub struct JobEvent {
    /// Job id.
    pub id: String,
    /// Job state at the time of the event.
    pub state: String,
    /// Units completed so far.
    pub done_units: u64,
    /// Total units in the grid.
    pub total_units: u64,
    /// Units restored from the journal.
    pub recovered_units: u64,
    /// Cumulative mean-slots work completed (see [`JobStatusInfo`]).
    pub slots_done: f64,
    /// Name of the cell that just completed (empty for state changes).
    pub label: String,
    /// No further events will follow.
    pub terminal: bool,
}

/// A daemon response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Acknowledged (ping, cancel, shutdown).
    Ok,
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable reason (may embed `did you mean` suggestions).
        message: String,
    },
    /// A job was accepted.
    Submitted {
        /// Assigned job id.
        id: String,
        /// Grid size, so clients can scale progress immediately.
        units: u64,
    },
    /// Status of one job.
    Status(JobStatusInfo),
    /// Status of every job.
    List(Vec<JobStatusInfo>),
    /// A rendered artifact.
    Results {
        /// Job id.
        id: String,
        /// Which artifact.
        format: ResultFormat,
        /// The artifact text, verbatim.
        body: String,
    },
    /// One streamed progress event.
    Event(JobEvent),
    /// The daemon's heartbeat.
    Health {
        /// Jobs the daemon knows about (any state).
        jobs: u64,
        /// Jobs in a non-terminal state.
        active: u64,
        /// Total injected-fault fires (0 unless chaos is armed).
        fault_fires: u64,
    },
    /// A materialized slot window.
    Window {
        /// Job id.
        id: String,
        /// First slot of the window (1-based).
        lo: u64,
        /// One past the last slot.
        hi: u64,
        /// Slots the captured run executed.
        slots: u64,
        /// The window's FNV-1a fingerprint, 16 hex digits — compare two
        /// materializations of the same window by comparing this string.
        fingerprint: String,
        /// The window as CSV (`slot,arrivals,broadcasters,jammed,active,population,outcome`).
        body: String,
    },
}

fn source_to_json(s: &JobSource) -> Json {
    match s {
        JobSource::Campaign { name, smoke } => Json::obj(vec![
            ("kind", Json::Str("campaign".into())),
            ("name", Json::Str(name.clone())),
            ("smoke", Json::Bool(*smoke)),
        ]),
        JobSource::Sweep(sweep) => Json::obj(vec![
            ("kind", Json::Str("sweep".into())),
            ("sweep", sweep.to_json()),
        ]),
        JobSource::Scenario(spec) => Json::obj(vec![
            ("kind", Json::Str("scenario".into())),
            ("scenario", spec.to_json()),
        ]),
    }
}

fn source_from_json(j: &Json) -> Result<JobSource, SpecError> {
    match j.kind()? {
        "campaign" => Ok(JobSource::Campaign {
            name: j.get("name")?.as_str()?.to_string(),
            smoke: j.get("smoke")?.as_bool()?,
        }),
        "sweep" => Ok(JobSource::Sweep(SweepSpec::from_json(j.get("sweep")?)?)),
        "scenario" => Ok(JobSource::Scenario(ScenarioSpec::from_json(
            j.get("scenario")?,
        )?)),
        other => Err(SpecError::new(format!("unknown job source `{other}`"))),
    }
}

fn opt_str(v: &Option<String>) -> Json {
    v.as_ref().map_or(Json::Null, |s| Json::Str(s.clone()))
}

fn as_opt_str(j: &Json) -> Result<Option<String>, SpecError> {
    match j {
        Json::Null => Ok(None),
        other => Ok(Some(other.as_str()?.to_string())),
    }
}

impl Request {
    /// Serialize to a [`Json`] tree.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Submit(s) => Json::obj(vec![
                ("op", Json::Str("submit".into())),
                ("source", source_to_json(&s.source)),
                ("id", opt_str(&s.id)),
                ("priority", Json::i64(s.priority)),
            ]),
            Request::Status { id } => Json::obj(vec![
                ("op", Json::Str("status".into())),
                ("id", Json::Str(id.clone())),
            ]),
            Request::List => Json::obj(vec![("op", Json::Str("list".into()))]),
            Request::Results { id, format } => Json::obj(vec![
                ("op", Json::Str("results".into())),
                ("id", Json::Str(id.clone())),
                ("format", Json::Str(format.name().into())),
            ]),
            Request::Cancel { id } => Json::obj(vec![
                ("op", Json::Str("cancel".into())),
                ("id", Json::Str(id.clone())),
            ]),
            Request::Events { id } => Json::obj(vec![
                ("op", Json::Str("events".into())),
                ("id", Json::Str(id.clone())),
            ]),
            Request::Window {
                id,
                cell,
                algo,
                seed,
                lo,
                hi,
            } => Json::obj(vec![
                ("op", Json::Str("window".into())),
                ("id", Json::Str(id.clone())),
                ("cell", Json::u64(*cell)),
                ("algo", Json::u64(*algo)),
                ("seed", Json::u64(*seed)),
                ("lo", Json::u64(*lo)),
                ("hi", Json::u64(*hi)),
            ]),
            Request::Ping => Json::obj(vec![("op", Json::Str("ping".into()))]),
            Request::Health => Json::obj(vec![("op", Json::Str("health".into()))]),
            Request::Shutdown => Json::obj(vec![("op", Json::Str("shutdown".into()))]),
        }
    }

    /// Serialize to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().render()
    }

    /// Parse one wire line.
    pub fn from_line(line: &str) -> Result<Request, SpecError> {
        let j = Json::parse(line)?;
        match j.get("op")?.as_str()? {
            "submit" => Ok(Request::Submit(Box::new(SubmitRequest {
                source: source_from_json(j.get("source")?)?,
                id: as_opt_str(j.get("id")?)?,
                priority: j.get("priority")?.as_i64()?,
            }))),
            "status" => Ok(Request::Status {
                id: j.get("id")?.as_str()?.to_string(),
            }),
            "list" => Ok(Request::List),
            "results" => {
                let name = j.get("format")?.as_str()?.to_string();
                let format = ResultFormat::by_name(&name)
                    .ok_or_else(|| SpecError::new(format!("unknown result format `{name}`")))?;
                Ok(Request::Results {
                    id: j.get("id")?.as_str()?.to_string(),
                    format,
                })
            }
            "cancel" => Ok(Request::Cancel {
                id: j.get("id")?.as_str()?.to_string(),
            }),
            "events" => Ok(Request::Events {
                id: j.get("id")?.as_str()?.to_string(),
            }),
            "window" => Ok(Request::Window {
                id: j.get("id")?.as_str()?.to_string(),
                cell: j.get("cell")?.as_u64()?,
                algo: j.get("algo")?.as_u64()?,
                seed: j.get("seed")?.as_u64()?,
                lo: j.get("lo")?.as_u64()?,
                hi: j.get("hi")?.as_u64()?,
            }),
            "ping" => Ok(Request::Ping),
            "health" => Ok(Request::Health),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(SpecError::new(format!("unknown request op `{other}`"))),
        }
    }
}

fn status_to_json(s: &JobStatusInfo) -> Json {
    Json::obj(vec![
        ("id", Json::Str(s.id.clone())),
        ("state", Json::Str(s.state.clone())),
        ("priority", Json::i64(s.priority)),
        ("total_units", Json::u64(s.total_units)),
        ("done_units", Json::u64(s.done_units)),
        ("recovered_units", Json::u64(s.recovered_units)),
        ("slots_done", Json::Num(s.slots_done)),
        ("error", opt_str(&s.error)),
    ])
}

fn status_from_json(j: &Json) -> Result<JobStatusInfo, SpecError> {
    Ok(JobStatusInfo {
        id: j.get("id")?.as_str()?.to_string(),
        state: j.get("state")?.as_str()?.to_string(),
        priority: j.get("priority")?.as_i64()?,
        total_units: j.get("total_units")?.as_u64()?,
        done_units: j.get("done_units")?.as_u64()?,
        recovered_units: j.get("recovered_units")?.as_u64()?,
        slots_done: j.get("slots_done")?.as_f64()?,
        error: as_opt_str(j.get("error")?)?,
    })
}

fn event_to_json(e: &JobEvent) -> Json {
    Json::obj(vec![
        ("id", Json::Str(e.id.clone())),
        ("state", Json::Str(e.state.clone())),
        ("done_units", Json::u64(e.done_units)),
        ("total_units", Json::u64(e.total_units)),
        ("recovered_units", Json::u64(e.recovered_units)),
        ("slots_done", Json::Num(e.slots_done)),
        ("label", Json::Str(e.label.clone())),
        ("terminal", Json::Bool(e.terminal)),
    ])
}

fn event_from_json(j: &Json) -> Result<JobEvent, SpecError> {
    Ok(JobEvent {
        id: j.get("id")?.as_str()?.to_string(),
        state: j.get("state")?.as_str()?.to_string(),
        done_units: j.get("done_units")?.as_u64()?,
        total_units: j.get("total_units")?.as_u64()?,
        recovered_units: j.get("recovered_units")?.as_u64()?,
        slots_done: j.get("slots_done")?.as_f64()?,
        label: j.get("label")?.as_str()?.to_string(),
        terminal: j.get("terminal")?.as_bool()?,
    })
}

impl Response {
    /// Serialize to a [`Json`] tree.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Ok => Json::obj(vec![("kind", Json::Str("ok".into()))]),
            Response::Error { message } => Json::obj(vec![
                ("kind", Json::Str("error".into())),
                ("message", Json::Str(message.clone())),
            ]),
            Response::Submitted { id, units } => Json::obj(vec![
                ("kind", Json::Str("submitted".into())),
                ("id", Json::Str(id.clone())),
                ("units", Json::u64(*units)),
            ]),
            Response::Status(s) => Json::obj(vec![
                ("kind", Json::Str("status".into())),
                ("status", status_to_json(s)),
            ]),
            Response::List(jobs) => Json::obj(vec![
                ("kind", Json::Str("list".into())),
                ("jobs", Json::Arr(jobs.iter().map(status_to_json).collect())),
            ]),
            Response::Results { id, format, body } => Json::obj(vec![
                ("kind", Json::Str("results".into())),
                ("id", Json::Str(id.clone())),
                ("format", Json::Str(format.name().into())),
                ("body", Json::Str(body.clone())),
            ]),
            Response::Event(e) => Json::obj(vec![
                ("kind", Json::Str("event".into())),
                ("event", event_to_json(e)),
            ]),
            Response::Health {
                jobs,
                active,
                fault_fires,
            } => Json::obj(vec![
                ("kind", Json::Str("health".into())),
                ("jobs", Json::u64(*jobs)),
                ("active", Json::u64(*active)),
                ("fault_fires", Json::u64(*fault_fires)),
            ]),
            Response::Window {
                id,
                lo,
                hi,
                slots,
                fingerprint,
                body,
            } => Json::obj(vec![
                ("kind", Json::Str("window".into())),
                ("id", Json::Str(id.clone())),
                ("lo", Json::u64(*lo)),
                ("hi", Json::u64(*hi)),
                ("slots", Json::u64(*slots)),
                ("fingerprint", Json::Str(fingerprint.clone())),
                ("body", Json::Str(body.clone())),
            ]),
        }
    }

    /// Serialize to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().render()
    }

    /// Parse one wire line.
    pub fn from_line(line: &str) -> Result<Response, SpecError> {
        let j = Json::parse(line)?;
        match j.kind()? {
            "ok" => Ok(Response::Ok),
            "error" => Ok(Response::Error {
                message: j.get("message")?.as_str()?.to_string(),
            }),
            "submitted" => Ok(Response::Submitted {
                id: j.get("id")?.as_str()?.to_string(),
                units: j.get("units")?.as_u64()?,
            }),
            "status" => Ok(Response::Status(status_from_json(j.get("status")?)?)),
            "list" => Ok(Response::List(
                j.get("jobs")?
                    .as_arr()?
                    .iter()
                    .map(status_from_json)
                    .collect::<Result<_, _>>()?,
            )),
            "results" => {
                let name = j.get("format")?.as_str()?.to_string();
                let format = ResultFormat::by_name(&name)
                    .ok_or_else(|| SpecError::new(format!("unknown result format `{name}`")))?;
                Ok(Response::Results {
                    id: j.get("id")?.as_str()?.to_string(),
                    format,
                    body: j.get("body")?.as_str()?.to_string(),
                })
            }
            "event" => Ok(Response::Event(event_from_json(j.get("event")?)?)),
            "health" => Ok(Response::Health {
                jobs: j.get("jobs")?.as_u64()?,
                active: j.get("active")?.as_u64()?,
                fault_fires: j.get("fault_fires")?.as_u64()?,
            }),
            "window" => Ok(Response::Window {
                id: j.get("id")?.as_str()?.to_string(),
                lo: j.get("lo")?.as_u64()?,
                hi: j.get("hi")?.as_u64()?,
                slots: j.get("slots")?.as_u64()?,
                fingerprint: j.get("fingerprint")?.as_str()?.to_string(),
                body: j.get("body")?.as_str()?.to_string(),
            }),
            other => Err(SpecError::new(format!("unknown response kind `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Axis;
    use crate::scenario::AlgoSpec;

    fn round_trip_request(r: Request) {
        let line = r.to_line();
        assert!(!line.contains('\n'), "wire lines are single lines");
        let parsed = Request::from_line(&line).expect("parse");
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_line(), line, "canonical encoding");
    }

    fn round_trip_response(r: Response) {
        let line = r.to_line();
        assert!(!line.contains('\n'), "wire lines are single lines");
        let parsed = Response::from_line(&line).expect("parse");
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_line(), line, "canonical encoding");
    }

    #[test]
    fn requests_round_trip() {
        let sweep = SweepSpec::new(
            "wire",
            "Wire test",
            ScenarioSpec::batch(8, 0.25).algos([AlgoSpec::cjz_constant_jamming()]),
        )
        .axis(Axis::jam([0.0, 0.5]));
        round_trip_request(Request::Submit(Box::new(SubmitRequest {
            source: JobSource::Campaign {
                name: "tradeoff".into(),
                smoke: true,
            },
            id: None,
            priority: 0,
        })));
        round_trip_request(Request::Submit(Box::new(SubmitRequest {
            source: JobSource::Sweep(sweep),
            id: Some("mine".into()),
            priority: -3,
        })));
        round_trip_request(Request::Submit(Box::new(SubmitRequest {
            source: JobSource::Scenario(ScenarioSpec::batch(16, 0.1)),
            id: None,
            priority: 7,
        })));
        round_trip_request(Request::Status { id: "job-1".into() });
        round_trip_request(Request::List);
        round_trip_request(Request::Results {
            id: "job-2".into(),
            format: ResultFormat::Jsonl,
        });
        round_trip_request(Request::Cancel { id: "job-3".into() });
        round_trip_request(Request::Events { id: "job-4".into() });
        round_trip_request(Request::Window {
            id: "job-5".into(),
            cell: 3,
            algo: 1,
            seed: 12,
            lo: 8_000_000,
            hi: 8_000_128,
        });
        round_trip_request(Request::Ping);
        round_trip_request(Request::Health);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        let info = JobStatusInfo {
            id: "job-1".into(),
            state: "running".into(),
            priority: 2,
            total_units: 12,
            done_units: 5,
            recovered_units: 3,
            slots_done: 123456.75,
            error: None,
        };
        round_trip_response(Response::Ok);
        round_trip_response(Response::Error {
            message: "unknown campaign `tradeoof`; did you mean tradeoff?".into(),
        });
        round_trip_response(Response::Submitted {
            id: "job-9".into(),
            units: 40,
        });
        round_trip_response(Response::Status(info.clone()));
        round_trip_response(Response::List(vec![
            info,
            JobStatusInfo {
                id: "job-2".into(),
                state: "failed".into(),
                priority: 0,
                total_units: 4,
                done_units: 1,
                recovered_units: 0,
                slots_done: 9.5,
                error: Some("seed panicked".into()),
            },
        ]));
        round_trip_response(Response::Results {
            id: "job-1".into(),
            format: ResultFormat::Csv,
            body: "campaign,scenario\nfake,\"a,b\"\n".into(),
        });
        round_trip_response(Response::Event(JobEvent {
            id: "job-1".into(),
            state: "running".into(),
            done_units: 6,
            total_units: 12,
            recovered_units: 3,
            slots_done: 200000.0,
            label: "batch[jam=0.25]".into(),
            terminal: false,
        }));
        round_trip_response(Response::Health {
            jobs: 4,
            active: 1,
            fault_fires: 17,
        });
        round_trip_response(Response::Window {
            id: "job-5".into(),
            lo: 8_000_000,
            hi: 8_000_128,
            slots: 16_777_216,
            fingerprint: "75032eb0a4d51143".into(),
            body: "slot,arrivals\n8000000,0\n".into(),
        });
    }

    #[test]
    fn unknown_ops_and_kinds_reject() {
        assert!(Request::from_line("{\"op\":\"destroy\"}").is_err());
        assert!(Response::from_line("{\"kind\":\"nope\"}").is_err());
        assert!(Request::from_line("not json").is_err());
    }
}
