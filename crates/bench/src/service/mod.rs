//! The campaign service layer: resumable, observable, multi-job
//! experiment execution — `benchd`, its journal, and its scheduler.
//!
//! The batch CLI runs a campaign and prays; this subsystem makes heavy
//! campaigns survivable infrastructure instead:
//!
//! * [`scheduler`] — a persistent work-stealing pool (the multi-job
//!   successor of [`replicate`](crate::scenario::replicate())'s
//!   atomic-cursor pool) that interleaves jobs by priority at (cell ×
//!   algorithm × seed) task granularity;
//! * [`journal`] — an append-only write-ahead journal: every completed
//!   cell is one fsync'd JSONL line, so `kill -9` costs at most the one
//!   torn line and a resumed campaign is **byte-identical** to an
//!   uninterrupted one (cells are deterministic; floats round-trip
//!   exactly);
//! * [`local`] — [`run_local`], the one execution path shared by
//!   `CampaignRunner::run()`, `campaign run` (streaming, journaled,
//!   SIGINT-drainable via `--journal`/`--resume`), and tests;
//! * [`protocol`] — the line-delimited JSON wire types (`submit`,
//!   `status`, `list`, `results`, `cancel`, `events`) with exact
//!   round-trip encoding;
//! * [`daemon`] — the `benchd` TCP daemon: jobs directory, crash
//!   rescan-and-resume, streaming progress events for `benchctl watch`;
//! * [`faults`] — deterministic fault injection: named faultpoints in
//!   the hot paths above, driven by a seeded wall-clock-free
//!   [`FaultSchedule`] (disabled = one relaxed atomic load);
//! * [`retry`] — capped binary-exponential retry with deterministic
//!   jitter, reusing `crates/backoff`'s window discipline for I/O
//!   self-healing.
//!
//! ```
//! use contention_bench::campaign::{Axis, SweepSpec};
//! use contention_bench::scenario::{AlgoSpec, ScenarioSpec};
//! use contention_bench::service::{run_local, LocalOptions};
//!
//! let sweep = SweepSpec::new(
//!     "demo",
//!     "Demo",
//!     ScenarioSpec::batch(8, 0.0)
//!         .algos([AlgoSpec::cjz_constant_jamming()])
//!         .seeds(2)
//!         .until_drained(100_000),
//! )
//! .axis(Axis::jam([0.0, 0.25]));
//! let outcome = run_local(sweep, LocalOptions::default()).unwrap();
//! assert_eq!(outcome.done_units, 2);
//! assert!(outcome.result.is_some());
//! ```

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

pub mod daemon;
pub mod faults;
pub mod journal;
pub mod local;
pub mod protocol;
pub mod retry;
pub mod scheduler;

pub use daemon::{Daemon, DaemonConfig};
pub use faults::{FaultGuard, FaultLot, FaultPoint, FaultSchedule, FaultStats};
pub use journal::{recover, sweep_fingerprint, Journal, RecoverError, Recovered, JOURNAL_SCHEMA};
pub use local::{run_local, LocalOptions, LocalOutcome};
pub use protocol::{
    JobEvent, JobSource, JobStatusInfo, Request, Response, ResultFormat, SubmitRequest,
};
pub use retry::RetryPolicy;
pub use scheduler::{JobHandle, JobSpec, JobState, Scheduler};

/// Write `text` to `path` via a sibling temp file + rename, so readers
/// never see a half-written file. The temp name extends the full file
/// name (`results.csv` → `results.csv.tmp`), so distinct targets in one
/// directory never share a temp file, and the parent directory is synced
/// after the rename so the swap itself survives power loss.
pub(crate) fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    // detlint::allow(atomic-writes-only): write_atomic's own temp file; renamed into place below
    let mut f = fs::File::create(&tmp)?;
    if let Some(lot) = faults::fire(FaultPoint::AtomicWriteTemp) {
        // Torn temp write: a proper prefix lands in the temp file and
        // the rename never happens, so the target is untouched.
        let _ = f.write_all(&text.as_bytes()[..lot.cut(text.len())]);
        return Err(faults::injected_error(FaultPoint::AtomicWriteTemp));
    }
    f.write_all(text.as_bytes())?;
    f.sync_data()?;
    if faults::fire(FaultPoint::AtomicWriteRename).is_some() {
        return Err(faults::injected_error(FaultPoint::AtomicWriteRename));
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::File::open(parent)?.sync_all()?;
    }
    Ok(())
}

/// [`write_atomic`] under the service I/O retry policy. Each attempt
/// rebuilds the temp file from scratch, so healing is simply
/// re-running; the target file is only ever swapped in whole.
pub(crate) fn write_atomic_retrying(path: &Path, text: &str) -> io::Result<()> {
    RetryPolicy::io().run(|_| write_atomic(path, text))
}

/// Anything the service layer can fail with, as one displayable error.
#[derive(Debug)]
pub struct ServiceError {
    message: String,
}

impl ServiceError {
    /// An error with the given message.
    pub fn new(message: impl Into<String>) -> ServiceError {
        ServiceError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ServiceError {}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::new(e.to_string())
    }
}

impl From<crate::scenario::SpecError> for ServiceError {
    fn from(e: crate::scenario::SpecError) -> Self {
        ServiceError::new(e.to_string())
    }
}
