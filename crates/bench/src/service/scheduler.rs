//! The shared multi-job scheduler: `replicate`'s atomic-cursor pool
//! lifted into a persistent service.
//!
//! One [`Scheduler`] owns a fixed set of worker threads for the life of
//! the process. Jobs (expanded sweeps) register a flat task list — one
//! task per (unit, seed), where a *unit* is a (cell × algorithm) row —
//! and workers claim tasks one at a time from the highest-priority
//! active job (ties broken by submission order), so a straggler cell
//! never idles the pool and a high-priority smoke job overtakes a
//! running mega-campaign at the next task boundary.
//!
//! Determinism is preserved exactly as in the in-process runner: tasks
//! may *execute* in any order on any number of threads, but per-seed
//! statistics fold into their [`CellResult`] in seed order, and rows
//! assemble into the final [`CampaignResult`] in unit (grid) order. When
//! a job carries a directory, every completed unit is appended to its
//! write-ahead [`Journal`] — synced before the result is visible
//! anywhere — and final artifacts (`results.csv`, `results.jsonl`,
//! `report.md`, a `state` marker) are written atomically on completion.

use std::collections::BTreeMap;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::campaign::runner::{aggregate, lane_block, run_seed, run_seed_block, SeedStats};
use crate::campaign::sweep::Cell;
use crate::campaign::{render_section, to_csv, to_jsonl, CampaignResult, CellResult, SweepSpec};

use super::faults::{self, FaultPoint};
use super::journal::{recover, Journal, RecoverError};
use super::protocol::{JobEvent, JobStatusInfo};
use super::{write_atomic_retrying, ServiceError};

/// Attempts per (unit, seed) task before quarantine: one initial run
/// plus three retries. A panicking task is requeued (self-heal) until
/// this cap, then the job fails with a `quarantined:` reason while the
/// pool keeps serving every other job.
const TASK_ATTEMPTS: u32 = 4;

/// Scheduling state of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Submitted, no task has started.
    Queued,
    /// At least one task has run.
    Running,
    /// Every unit completed; final artifacts written.
    Done,
    /// Cancelled before completion (journal still holds finished units).
    Cancelled,
    /// A task panicked or the journal could not be written.
    Failed(String),
}

impl JobState {
    /// Wire label (`queued`/`running`/`done`/`cancelled`/`failed`).
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed(_) => "failed",
        }
    }

    /// No further progress will happen.
    pub fn terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed(_)
        )
    }
}

/// What to run and where to journal it.
#[derive(Debug)]
pub struct JobSpec {
    /// Job id (unique per scheduler).
    pub id: String,
    /// The sweep to run.
    pub sweep: SweepSpec,
    /// Higher runs first; ties in submission order.
    pub priority: i64,
    /// Job directory for the journal + final artifacts (`None` = purely
    /// in-memory, the `CampaignRunner::run()` path).
    pub dir: Option<PathBuf>,
    /// Allow resuming an existing journal in `dir`. Without this flag an
    /// existing journal is an error (protects against accidental reuse
    /// of a job directory).
    pub resume: bool,
}

/// Per-unit execution state.
#[derive(Debug)]
struct UnitProgress {
    seeds_done: u64,
    /// One slot per seed, filled as tasks finish; empty for units
    /// restored from the journal (they never execute).
    stats: Vec<Option<SeedStats>>,
}

/// Everything mutable about a job, behind one mutex.
#[derive(Debug)]
struct JobProgress {
    state: JobState,
    /// Workers only claim tasks of active jobs; submission leaves a job
    /// inactive so the caller can subscribe before the first result.
    active: bool,
    cancelled: bool,
    /// Flat (unit, seed) task list for units NOT restored from the
    /// journal, unit-major so cells complete (and journal) early.
    tasks: Vec<(usize, u64)>,
    next_task: usize,
    in_flight: usize,
    units: Vec<UnitProgress>,
    /// Completed rows by unit index (journal-recovered ones included).
    results: BTreeMap<usize, CellResult>,
    /// Executions per (unit, seed) task, for retry-then-quarantine.
    attempts: BTreeMap<(usize, u64), u32>,
    recovered: usize,
    /// Σ mean_slots × seeds over completed units — work-done numerator
    /// for client-side slots/s and ETA.
    slots_done: f64,
    journal: Option<Journal>,
    result_subs: Vec<Sender<(usize, CellResult)>>,
    event_subs: Vec<Sender<JobEvent>>,
}

/// A registered job. Cheap to clone (it is handed out as `Arc`).
#[derive(Debug)]
pub struct JobHandle {
    /// Job id.
    pub id: String,
    /// Scheduling priority.
    pub priority: i64,
    /// Submission sequence number (tie-breaker).
    seq: u64,
    /// The sweep this job runs.
    pub sweep: SweepSpec,
    /// Expanded grid cells, in grid order.
    pub cells: Vec<Cell>,
    /// Unit index → (cell index, algorithm index), cell-major.
    pub units: Vec<(usize, usize)>,
    /// Job directory (journal + artifacts), when journaled.
    pub dir: Option<PathBuf>,
    progress: Mutex<JobProgress>,
    /// Signalled on every unit completion and state change.
    cv: Condvar,
}

impl JobHandle {
    /// A status snapshot.
    pub fn status(&self) -> JobStatusInfo {
        let p = self.progress.lock().expect("job progress mutex poisoned");
        self.status_locked(&p)
    }

    fn status_locked(&self, p: &JobProgress) -> JobStatusInfo {
        JobStatusInfo {
            id: self.id.clone(),
            state: p.state.label().to_string(),
            priority: self.priority,
            total_units: self.units.len() as u64,
            done_units: p.results.len() as u64,
            recovered_units: p.recovered as u64,
            slots_done: p.slots_done,
            error: match &p.state {
                JobState::Failed(m) => Some(m.clone()),
                _ => None,
            },
        }
    }

    fn event_locked(&self, p: &JobProgress, label: &str) -> JobEvent {
        JobEvent {
            id: self.id.clone(),
            state: p.state.label().to_string(),
            done_units: p.results.len() as u64,
            total_units: self.units.len() as u64,
            recovered_units: p.recovered as u64,
            slots_done: p.slots_done,
            label: label.to_string(),
            terminal: p.state.terminal(),
        }
    }

    /// Current terminal state, blocking until the job reaches one.
    pub fn wait(&self) -> JobState {
        let mut p = self.progress.lock().expect("job progress mutex poisoned");
        while !p.state.terminal() {
            p = self.cv.wait(p).expect("job progress mutex poisoned");
        }
        p.state.clone()
    }

    /// Block until no task of this job is executing (used after a drain:
    /// in-flight cells finish and journal, nothing new starts).
    pub fn wait_quiesced(&self) {
        let mut p = self.progress.lock().expect("job progress mutex poisoned");
        while p.in_flight > 0 {
            p = self.cv.wait(p).expect("job progress mutex poisoned");
        }
    }

    /// Subscribe to completed rows: atomically returns everything
    /// completed so far plus a channel for the rest. The sender side is
    /// dropped when the job reaches a terminal state.
    pub fn subscribe_results(
        &self,
    ) -> (BTreeMap<usize, CellResult>, Receiver<(usize, CellResult)>) {
        let mut p = self.progress.lock().expect("job progress mutex poisoned");
        let (tx, rx) = mpsc::channel();
        let snapshot = p.results.clone();
        if !p.state.terminal() {
            p.result_subs.push(tx);
        }
        (snapshot, rx)
    }

    /// Subscribe to progress events: atomically returns a snapshot event
    /// plus a channel for the rest (closed after the terminal event).
    pub fn subscribe_events(&self) -> (JobEvent, Receiver<JobEvent>) {
        let mut p = self.progress.lock().expect("job progress mutex poisoned");
        let (tx, rx) = mpsc::channel();
        let snapshot = self.event_locked(&p, "");
        if !p.state.terminal() {
            p.event_subs.push(tx);
        }
        (snapshot, rx)
    }

    /// The assembled campaign result, once every unit is done.
    pub fn result(&self) -> Option<CampaignResult> {
        let p = self.progress.lock().expect("job progress mutex poisoned");
        (p.results.len() == self.units.len()).then(|| self.assemble(&p.results))
    }

    /// Rows completed so far, in grid order (may be a partial grid).
    pub fn partial_result(&self) -> CampaignResult {
        let p = self.progress.lock().expect("job progress mutex poisoned");
        self.assemble(&p.results)
    }

    fn assemble(&self, results: &BTreeMap<usize, CellResult>) -> CampaignResult {
        CampaignResult {
            name: self.sweep.name.clone(),
            title: self.sweep.title.clone(),
            axes: self.sweep.axes.iter().map(|a| a.name.clone()).collect(),
            cells: results.values().cloned().collect(),
        }
    }

    /// Terminal-state bookkeeping; caller holds the progress lock and
    /// has already set `p.state`.
    fn finish_locked(&self, p: &mut JobProgress) {
        if let Some(dir) = &self.dir {
            let marker = match &p.state {
                JobState::Done => "done".to_string(),
                JobState::Cancelled => "cancelled".to_string(),
                JobState::Failed(m) => format!("failed: {m}"),
                _ => unreachable!("finish_locked requires a terminal state"),
            };
            if p.state == JobState::Done {
                let result = self.assemble(&p.results);
                for (name, text) in [
                    ("results.csv", to_csv(&result)),
                    ("results.jsonl", to_jsonl(&result)),
                    ("report.md", render_section(&result)),
                ] {
                    if let Err(e) = write_atomic_retrying(&dir.join(name), &text) {
                        // Artifacts are derivable from the journal, so a
                        // persistent write failure degrades to a log line
                        // rather than failing the finished job.
                        eprintln!("benchd: job {}: failed to write {name}: {e}", self.id);
                    }
                }
            }
            if let Err(e) = write_atomic_retrying(&dir.join("state"), &format!("{marker}\n")) {
                eprintln!("benchd: job {}: failed to write state marker: {e}", self.id);
            }
        }
        let event = self.event_locked(p, "");
        for tx in p.event_subs.drain(..) {
            let _ = tx.send(event.clone());
        }
        p.result_subs.clear();
        self.cv.notify_all();
    }
}

#[derive(Debug)]
struct SchedState {
    jobs: Vec<Arc<JobHandle>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<SchedState>,
    work_cv: Condvar,
    /// Drain mode: stop claiming new tasks (in-flight ones finish).
    stop_claims: AtomicBool,
    /// Workers exit (set on scheduler drop).
    shutdown: AtomicBool,
}

/// The persistent worker pool + job registry.
#[derive(Debug)]
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// Spawn a scheduler with `threads` workers (min 1).
    pub fn new(threads: usize) -> Scheduler {
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                jobs: Vec::new(),
                next_seq: 0,
            }),
            work_cv: Condvar::new(),
            stop_claims: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Scheduler { shared, workers }
    }

    /// Register a job (inactive). Expands the grid, sets up or recovers
    /// the journal, but schedules nothing until [`activate`].
    ///
    /// [`activate`]: Scheduler::activate
    pub fn submit(&self, spec: JobSpec) -> Result<Arc<JobHandle>, ServiceError> {
        let JobSpec {
            id,
            sweep,
            priority,
            dir,
            resume,
        } = spec;
        let cells = sweep.cells();
        let mut units = Vec::new();
        for (ci, cell) in cells.iter().enumerate() {
            for ai in 0..cell.spec.algos.len() {
                units.push((ci, ai));
            }
        }

        // Journal setup: create fresh, or recover + truncate the tear.
        let mut results = BTreeMap::new();
        let mut journal = None;
        if let Some(dir) = &dir {
            fs::create_dir_all(dir)?;
            let path = dir.join("journal.jsonl");
            match recover(&path, &sweep, units.len()) {
                Ok(None) => journal = Some(Journal::create(&path, &sweep, units.len())?),
                Ok(Some(rec)) => {
                    if !resume {
                        return Err(ServiceError::new(format!(
                            "job directory `{}` already holds a journal with {}/{} units; \
                             pass --resume to continue it or remove the directory to start over",
                            dir.display(),
                            rec.results.len(),
                            units.len()
                        )));
                    }
                    results = rec.results;
                    journal = Some(Journal::resume(&path, rec.valid_len)?);
                }
                Err(RecoverError::Io(e)) => return Err(e.into()),
                Err(e) => return Err(ServiceError::new(e.to_string())),
            }
            // A resumed directory may hold stale terminal artifacts.
            let _ = fs::remove_file(dir.join("state"));
        }

        let recovered = results.len();
        let mut tasks = Vec::new();
        let mut unit_progress = Vec::with_capacity(units.len());
        for (u, &(ci, ai)) in units.iter().enumerate() {
            let seeds = cells[ci].spec.seeds;
            if results.contains_key(&u) {
                unit_progress.push(UnitProgress {
                    seeds_done: seeds,
                    stats: Vec::new(),
                });
            } else {
                // Lane-eligible units hand out 64-seed blocks, one engine
                // pass per task; everything else one seed per task. The
                // claiming worker recomputes the same block size from the
                // unit, so layout and execution always agree.
                let block = lane_block(&cells[ci].spec, &cells[ci].spec.algos[ai]);
                let mut s = 0;
                while s < seeds {
                    tasks.push((u, s));
                    s += block;
                }
                unit_progress.push(UnitProgress {
                    seeds_done: 0,
                    stats: vec![None; seeds as usize],
                });
            }
        }
        let slots_done = results
            .values()
            .map(|c| c.mean_slots * c.seeds as f64)
            .sum();

        let mut st = self
            .shared
            .state
            .lock()
            .expect("scheduler state mutex poisoned");
        if st.jobs.iter().any(|j| j.id == id) {
            return Err(ServiceError::new(format!("duplicate job id `{id}`")));
        }
        let handle = Arc::new(JobHandle {
            id,
            priority,
            seq: st.next_seq,
            sweep,
            cells,
            units,
            dir,
            progress: Mutex::new(JobProgress {
                state: JobState::Queued,
                active: false,
                cancelled: false,
                tasks,
                next_task: 0,
                in_flight: 0,
                units: unit_progress,
                results,
                attempts: BTreeMap::new(),
                recovered,
                slots_done,
                journal,
                result_subs: Vec::new(),
                event_subs: Vec::new(),
            }),
            cv: Condvar::new(),
        });
        st.next_seq += 1;
        st.jobs.push(Arc::clone(&handle));
        Ok(handle)
    }

    /// Make a submitted job claimable. A job whose every unit was
    /// recovered finalizes immediately.
    pub fn activate(&self, job: &Arc<JobHandle>) {
        let mut p = job.progress.lock().expect("job progress mutex poisoned");
        if p.active || p.state.terminal() {
            return;
        }
        p.active = true;
        if p.tasks.is_empty() {
            p.state = if p.cancelled {
                JobState::Cancelled
            } else {
                JobState::Done
            };
            job.finish_locked(&mut p);
            return;
        }
        drop(p);
        self.shared.work_cv.notify_all();
    }

    /// Look up a job by id.
    pub fn job(&self, id: &str) -> Option<Arc<JobHandle>> {
        let st = self
            .shared
            .state
            .lock()
            .expect("scheduler state mutex poisoned");
        st.jobs.iter().find(|j| j.id == id).cloned()
    }

    /// All jobs, in submission order.
    pub fn jobs(&self) -> Vec<Arc<JobHandle>> {
        self.shared
            .state
            .lock()
            .expect("scheduler state mutex poisoned")
            .jobs
            .clone()
    }

    /// Cancel a job: unclaimed tasks are abandoned; in-flight ones
    /// finish (and journal) normally.
    pub fn cancel(&self, job: &Arc<JobHandle>) {
        let mut p = job.progress.lock().expect("job progress mutex poisoned");
        if p.state.terminal() {
            return;
        }
        p.cancelled = true;
        p.next_task = p.tasks.len();
        if p.in_flight == 0 {
            p.state = JobState::Cancelled;
            job.finish_locked(&mut p);
        }
    }

    /// Stop claiming new tasks pool-wide (SIGINT drain). In-flight tasks
    /// finish and journal; jobs stay resumable.
    pub fn drain(&self) {
        self.shared.stop_claims.store(true, Ordering::SeqCst);
        self.shared.work_cv.notify_all();
    }

    /// Whether the pool is draining.
    pub fn draining(&self) -> bool {
        self.shared.stop_claims.load(Ordering::SeqCst)
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Claim the next task from the best claimable job. Holds the scheduler
/// lock; takes each candidate's progress lock briefly (lock order is
/// always scheduler state → job progress).
fn claim(st: &SchedState) -> Option<(Arc<JobHandle>, usize, u64)> {
    let mut best: Option<&Arc<JobHandle>> = None;
    for job in &st.jobs {
        let p = job.progress.lock().expect("job progress mutex poisoned");
        if !p.active || p.state.terminal() || p.next_task >= p.tasks.len() {
            continue;
        }
        match best {
            Some(b)
                if (b.priority, std::cmp::Reverse(b.seq))
                    >= (job.priority, std::cmp::Reverse(job.seq)) => {}
            _ => best = Some(job),
        }
    }
    let job = Arc::clone(best?);
    let mut p = job.progress.lock().expect("job progress mutex poisoned");
    let (unit, seed) = p.tasks[p.next_task];
    p.next_task += 1;
    p.in_flight += 1;
    if p.state == JobState::Queued {
        p.state = JobState::Running;
    }
    drop(p);
    Some((job, unit, seed))
}

fn worker_loop(shared: &Shared) {
    loop {
        let claimed = {
            let mut st = shared.state.lock().expect("scheduler state mutex poisoned");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if !shared.stop_claims.load(Ordering::SeqCst) {
                    if let Some(c) = claim(&st) {
                        break c;
                    }
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .expect("scheduler state mutex poisoned");
            }
        };
        let (job, unit, seed) = claimed;
        let (ci, ai) = job.units[unit];
        let cell = &job.cells[ci];
        let algo = cell.spec.algos[ai].clone();
        // `seed` is the 0-based replication index of the task's first
        // seed (it also indexes the unit's stats slots); the simulator
        // seed is offset by the spec's `seed_base`, exactly like
        // `ScenarioRunner` replication. Lane-eligible units run a whole
        // block of seeds through one bit-parallel engine pass.
        let sim_seed = cell.spec.seed_base + seed;
        let block = lane_block(&cell.spec, &algo);
        // The entire task body runs under `catch_unwind`, outside every
        // lock, so a panicking protocol implementation (or an injected
        // chaos panic) can never poison scheduler or job state.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if faults::fire(FaultPoint::SchedulerTaskPanic).is_some() {
                panic!("injected fault: scheduler.task.panic");
            }
            faults::stall(FaultPoint::SchedulerTaskStall);
            if block > 1 {
                let n = block.min(cell.spec.seeds - seed);
                run_seed_block(&cell.spec, &algo, sim_seed, n)
            } else {
                vec![run_seed(&cell.spec, &algo, sim_seed)]
            }
        }));
        complete_task(&job, unit, seed, outcome);
        shared.work_cv.notify_all();
    }
}

/// Fold one finished (or panicked) task back into its job. `batch`
/// holds the task's rows starting at replication index `seed` — one row
/// for a scalar task, up to 64 for a lane-block task.
fn complete_task(
    job: &Arc<JobHandle>,
    unit: usize,
    seed: u64,
    outcome: Result<Vec<SeedStats>, Box<dyn std::any::Any + Send>>,
) {
    let mut p = job.progress.lock().expect("job progress mutex poisoned");
    p.in_flight -= 1;
    match outcome {
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "task panicked".into());
            let attempts = {
                let n = p.attempts.entry((unit, seed)).or_insert(0);
                *n += 1;
                *n
            };
            if attempts < TASK_ATTEMPTS && !p.cancelled && !p.state.terminal() {
                // Self-heal: requeue the task for another pass. The
                // caller's `notify_all` wakes a worker; determinism is
                // unaffected because a task's rows are a pure function
                // of (spec, seed).
                p.tasks.push((unit, seed));
                let event = job.event_locked(
                    &p,
                    &format!("retrying unit {unit} seed {seed} after panic (attempt {attempts})"),
                );
                p.event_subs.retain(|tx| tx.send(event.clone()).is_ok());
            } else if !p.cancelled {
                fail(
                    job,
                    &mut p,
                    format!(
                        "quarantined: unit {unit} seed {seed} panicked on \
                         {attempts} attempts: {msg}"
                    ),
                );
            }
        }
        Ok(batch) => {
            let up = &mut p.units[unit];
            up.seeds_done += batch.len() as u64;
            for (k, stats) in batch.into_iter().enumerate() {
                up.stats[seed as usize + k] = Some(stats);
            }
            if up.seeds_done == up.stats.len() as u64 {
                // Last seed of the unit: fold in seed order, journal,
                // then publish.
                let rows: Vec<SeedStats> = p.units[unit]
                    .stats
                    .drain(..)
                    .map(|s| s.expect("all seeds recorded"))
                    .collect();
                let (ci, ai) = job.units[unit];
                let cell = &job.cells[ci];
                let cr = aggregate(cell, &cell.spec.algos[ai], &rows);
                if let Some(j) = &mut p.journal {
                    // `append` already healed and retried internally; an
                    // error here is persistent, so quarantine the job
                    // (its journal is still a valid prefix).
                    if let Err(e) = j.append(unit, &cr) {
                        fail(
                            job,
                            &mut p,
                            format!("quarantined: journal write failed after retries: {e}"),
                        );
                        return;
                    }
                }
                p.slots_done += cr.mean_slots * cr.seeds as f64;
                p.results.insert(unit, cr.clone());
                p.result_subs
                    .retain(|tx| tx.send((unit, cr.clone())).is_ok());
                let event = job.event_locked(&p, &cr.spec.name);
                p.event_subs.retain(|tx| tx.send(event.clone()).is_ok());
            }
        }
    }
    if !p.state.terminal() && p.in_flight == 0 && p.next_task >= p.tasks.len() {
        if p.cancelled {
            // Journal keeps the finished units; the `cancelled` marker
            // records that the gap is intentional.
            p.state = JobState::Cancelled;
            job.finish_locked(&mut p);
            return;
        }
        if p.results.len() == job.units.len() {
            p.state = JobState::Done;
            job.finish_locked(&mut p);
            return;
        }
        // Unreachable in practice (every claimed task records its seed),
        // but falling through keeps waiters rather than wedging them.
    }
    job.cv.notify_all();
}

fn fail(job: &Arc<JobHandle>, p: &mut JobProgress, msg: String) {
    if p.state.terminal() {
        return;
    }
    p.next_task = p.tasks.len();
    p.state = JobState::Failed(msg);
    job.finish_locked(p);
    job.cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Axis;
    use crate::scenario::{AlgoSpec, ScenarioSpec};

    fn sweep(name: &str, seeds: u64) -> SweepSpec {
        SweepSpec::new(
            name,
            "Scheduler test",
            ScenarioSpec::batch(4, 0.0)
                .algos([AlgoSpec::cjz_constant_jamming()])
                .seeds(seeds)
                .until_drained(10_000),
        )
        .axis(Axis::jam([0.0, 0.1]))
    }

    fn spec(name: &str) -> JobSpec {
        JobSpec {
            id: name.to_string(),
            sweep: sweep(name, 2),
            priority: 0,
            dir: None,
            resume: false,
        }
    }

    #[test]
    fn runs_a_job_to_done() {
        let sched = Scheduler::new(2);
        let job = sched.submit(spec("a")).unwrap();
        let (snapshot, rx) = job.subscribe_results();
        assert!(snapshot.is_empty());
        sched.activate(&job);
        assert_eq!(job.wait(), JobState::Done);
        let streamed: Vec<usize> = rx.iter().map(|(u, _)| u).collect();
        assert_eq!(streamed.len(), 2, "one row per unit");
        let result = job.result().expect("complete");
        assert_eq!(result.cells.len(), 2);
        assert_eq!(job.status().done_units, 2);
        assert!(job.status().slots_done > 0.0);
    }

    #[test]
    fn rejects_duplicate_ids_and_finds_jobs() {
        let sched = Scheduler::new(1);
        let a = sched.submit(spec("a")).unwrap();
        assert!(sched.submit(spec("a")).is_err());
        assert!(Arc::ptr_eq(&sched.job("a").unwrap(), &a));
        assert!(sched.job("b").is_none());
        sched.activate(&a);
        a.wait();
    }

    #[test]
    fn multiple_jobs_share_the_pool_and_both_finish() {
        let sched = Scheduler::new(2);
        let a = sched.submit(spec("a")).unwrap();
        let b = sched
            .submit(JobSpec {
                priority: 5,
                ..spec("b")
            })
            .unwrap();
        sched.activate(&a);
        sched.activate(&b);
        assert_eq!(a.wait(), JobState::Done);
        assert_eq!(b.wait(), JobState::Done);
        // Both produce the same rows as a direct in-process run.
        let direct = crate::campaign::CampaignRunner::new(sweep("a", 2)).run();
        assert_eq!(a.result().unwrap().cells, direct.cells);
    }

    #[test]
    fn seed_base_offsets_replication_seeds() {
        // A spec with a nonzero seed_base replicates seeds
        // seed_base..seed_base+seeds. The scheduler must match
        // ScenarioRunner, the independent reference implementation.
        let base = ScenarioSpec::batch(8, 0.3)
            .algos([AlgoSpec::cjz_constant_jamming()])
            .seeds(3)
            .seed_base(100)
            .until_drained(10_000);
        let algo = base.algos[0].clone();
        let runner = crate::scenario::ScenarioRunner::new(base.clone());
        let reference: f64 = runner
            .run_algo(&algo)
            .iter()
            .map(|o| o.slots as f64)
            .sum::<f64>()
            / 3.0;
        // Sanity: the reference discriminates base 100 from base 0, so
        // a scheduler that drops seed_base cannot pass by coincidence.
        let mut zero_base = base.clone();
        zero_base.seed_base = 0;
        let zero_ref: f64 = crate::scenario::ScenarioRunner::new(zero_base)
            .run_algo(&algo)
            .iter()
            .map(|o| o.slots as f64)
            .sum::<f64>()
            / 3.0;
        assert_ne!(reference, zero_ref, "seeds 100..103 must differ from 0..3");

        let sched = Scheduler::new(2);
        let job = sched
            .submit(JobSpec {
                id: "sb".to_string(),
                sweep: SweepSpec::new("sb", "Seed base", base),
                priority: 0,
                dir: None,
                resume: false,
            })
            .unwrap();
        sched.activate(&job);
        assert_eq!(job.wait(), JobState::Done);
        let result = job.result().unwrap();
        assert_eq!(result.cells.len(), 1);
        assert_eq!(result.cells[0].mean_slots, reference);
    }

    #[test]
    fn cancel_stops_unclaimed_work() {
        let sched = Scheduler::new(1);
        let job = sched.submit(spec("c")).unwrap();
        // Cancel before activation: nothing ever runs.
        sched.cancel(&job);
        sched.activate(&job);
        assert_eq!(job.wait(), JobState::Cancelled);
        assert_eq!(job.status().done_units, 0);
        assert!(job.result().is_none());
    }

    #[test]
    fn journaled_job_writes_artifacts_and_marker() {
        let dir = std::env::temp_dir().join(format!("sched-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let sched = Scheduler::new(2);
        let job = sched
            .submit(JobSpec {
                dir: Some(dir.clone()),
                ..spec("j")
            })
            .unwrap();
        sched.activate(&job);
        assert_eq!(job.wait(), JobState::Done);
        assert_eq!(fs::read_to_string(dir.join("state")).unwrap(), "done\n");
        let csv = fs::read_to_string(dir.join("results.csv")).unwrap();
        assert_eq!(csv, to_csv(&job.result().unwrap()));
        assert!(dir.join("results.jsonl").exists());
        assert!(dir.join("report.md").exists());
        // The journal holds every unit; resubmitting with --resume
        // recovers instead of re-running.
        drop(sched);
        let sched = Scheduler::new(1);
        let job2 = sched
            .submit(JobSpec {
                dir: Some(dir.clone()),
                resume: true,
                ..spec("j")
            })
            .unwrap();
        assert_eq!(job2.status().recovered_units, 2);
        sched.activate(&job2);
        assert_eq!(job2.wait(), JobState::Done);
        assert_eq!(job2.result().unwrap().cells, job.result().unwrap().cells);
        // Without --resume, an existing journal refuses (checked before
        // ids, so the same spec is rejected for directory reuse first).
        let err = sched
            .submit(JobSpec {
                dir: Some(dir.clone()),
                ..spec("j")
            })
            .unwrap_err();
        assert!(err.to_string().contains("--resume"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_result_renders() {
        use crate::campaign::cells_table;
        let sched = Scheduler::new(1);
        let job = sched.submit(spec("p")).unwrap();
        sched.activate(&job);
        job.wait();
        let table = cells_table(&job.partial_result());
        assert!(!table.render().is_empty());
    }
}
