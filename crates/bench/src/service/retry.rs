//! Self-healing retry schedules built on the repo's own backoff
//! primitives.
//!
//! The service layer heals transient faults (torn writes, dropped
//! connections, injected chaos) by retrying under a capped binary
//! exponential backoff with deterministic jitter — the same
//! [`WindowGrowth::Binary`] window discipline the paper's protocols
//! use for contention resolution, applied to I/O contention. The k-th
//! delay is a pure function of `(seed, k)`: a uniformly drawn slot in
//! window `k` (length `2^k`), scaled by the slot unit and capped, so a
//! retried chaos run sleeps the exact same schedule every time.

use std::thread;
use std::time::Duration;

use contention_backoff::WindowGrowth;

use super::faults::mix3;

/// Capped, seeded, deterministically jittered retry policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub attempts: u32,
    /// Duration of one backoff slot.
    pub unit: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Jitter seed; delay `k` is a pure function of `(seed, k)`.
    pub seed: u64,
}

impl RetryPolicy {
    /// Journal and artifact I/O: 6 attempts, 1 ms slots, 50 ms cap.
    /// Tight enough that a quarantine decision lands in well under a
    /// second even when every attempt fails.
    pub const fn io() -> RetryPolicy {
        RetryPolicy {
            attempts: 6,
            unit: Duration::from_millis(1),
            cap: Duration::from_millis(50),
            seed: 0x10,
        }
    }

    /// Client connect/re-attach: 8 attempts, 25 ms slots, 800 ms cap.
    pub const fn connect() -> RetryPolicy {
        RetryPolicy {
            attempts: 8,
            unit: Duration::from_millis(25),
            cap: Duration::from_millis(800),
            seed: 0xc0,
        }
    }

    /// Same policy with a different jitter seed (e.g. per-process, so
    /// concurrent clients don't march in lockstep).
    pub const fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// Delay before retry `k` (0-based count of failures so far): slot
    /// `1 + draw(seed, k) mod 2^k` of binary-exponential window `k`,
    /// scaled by `unit` and capped. Always non-zero when `unit` is.
    pub fn delay(&self, k: u32) -> Duration {
        let window = WindowGrowth::Binary.window_len(k);
        let slot = 1 + mix3(self.seed, u64::from(k), 0) % window;
        let d = self
            .unit
            .saturating_mul(u32::try_from(slot).unwrap_or(u32::MAX));
        d.min(self.cap)
    }

    /// Run `op` under this policy: retry on `Err`, sleeping the
    /// jittered backoff between attempts, and return the last error
    /// once attempts are exhausted. `op` receives the 0-based attempt
    /// number (so callers can heal state before a re-attempt).
    pub fn run<T, E>(&self, mut op: impl FnMut(u32) -> Result<T, E>) -> Result<T, E> {
        let attempts = self.attempts.max(1);
        let mut k = 0;
        loop {
            match op(k) {
                Ok(v) => return Ok(v),
                Err(e) if k + 1 >= attempts => return Err(e),
                Err(_) => {
                    let d = self.delay(k);
                    if !d.is_zero() {
                        thread::sleep(d);
                    }
                    k += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic_jittered_and_capped() {
        let p = RetryPolicy::io();
        for k in 0..16 {
            assert_eq!(p.delay(k), p.delay(k), "pure function of (seed, k)");
            assert!(p.delay(k) >= p.unit, "slot index starts at 1");
            assert!(p.delay(k) <= p.cap, "capped");
        }
        // Different seeds jitter differently somewhere in the range.
        let q = p.with_seed(0x99);
        assert!((0..16).any(|k| p.delay(k) != q.delay(k)));
        // Early windows are small: delay 0 comes from window length 1.
        assert_eq!(p.delay(0), p.unit);
    }

    #[test]
    fn run_retries_until_success_and_reports_attempts() {
        let p = RetryPolicy {
            attempts: 5,
            unit: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 1,
        };
        let mut seen = Vec::new();
        let out: Result<u32, &str> = p.run(|k| {
            seen.push(k);
            if k < 3 {
                Err("transient")
            } else {
                Ok(k)
            }
        });
        assert_eq!(out, Ok(3));
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn run_returns_last_error_after_exhaustion() {
        let p = RetryPolicy {
            attempts: 3,
            unit: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 1,
        };
        let mut calls = 0;
        let out: Result<(), u32> = p.run(|k| {
            calls += 1;
            Err(k)
        });
        assert_eq!(out, Err(2), "last attempt's error surfaces");
        assert_eq!(calls, 3);
    }

    #[test]
    fn zero_attempts_still_runs_once() {
        let p = RetryPolicy {
            attempts: 0,
            unit: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 1,
        };
        let out: Result<u32, &str> = p.run(|_| Ok(7));
        assert_eq!(out, Ok(7));
    }
}
