//! Deterministic fault injection for the service layer.
//!
//! The paper treats interference as a first-class adversary; this module
//! applies the same discipline to the journal/scheduler/daemon stack. A
//! [`FaultPoint`] is a named site compiled into a service hot path
//! (journal append, `write_atomic` rename, daemon accept/read/write,
//! scheduler tasks). A [`FaultSchedule`] is a seeded, wall-clock-free
//! description of which points fire: the decision for the n-th arrival
//! at a point is a pure function of `(schedule seed, point, n)`, so a
//! chaos run is bit-reproducible given the same arrival sequence — and
//! the safety property the chaos soak asserts (results byte-identical
//! to a fault-free run, or a clean quarantine) holds under *any*
//! thread interleaving.
//!
//! Faultpoints are compiled in unconditionally but cost one relaxed
//! atomic load when no schedule is installed — the disabled-branch
//! no-op that keeps `perf --check` unaffected. Budgets cap how often
//! each point may fire, so retry loops always converge and stalls are
//! bounded: the zero-hang guarantee comes from deterministic caps, not
//! timeouts.
//!
//! detlint's `faultpoint-catalog` rule keeps [`FaultPoint::ALL`] and
//! the fire sites in sync: a variant missing from `ALL`, an unknown
//! `FaultPoint::X` use, or a declared-but-never-fired point is an
//! error.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Named faultpoints compiled into the service hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// [`Journal::create`]'s header write tears after a prefix.
    ///
    /// [`Journal::create`]: super::Journal::create
    JournalHeaderWrite,
    /// [`Journal::append`]'s line write tears after a prefix.
    ///
    /// [`Journal::append`]: super::Journal::append
    JournalAppendWrite,
    /// [`Journal::append`]'s fsync fails after a complete write.
    ///
    /// [`Journal::append`]: super::Journal::append
    JournalAppendFsync,
    /// `write_atomic`'s temp-file write tears after a prefix.
    AtomicWriteTemp,
    /// `write_atomic`'s rename into place fails (temp file left behind).
    AtomicWriteRename,
    /// The daemon drops a freshly accepted connection on the floor.
    DaemonAccept,
    /// The daemon truncates an inbound request line (torn frame).
    DaemonReadTorn,
    /// The daemon writes a response prefix, then drops the connection.
    DaemonWriteTorn,
    /// A daemon handler stalls for the schedule's bounded stall.
    DaemonStall,
    /// A scheduler worker panics mid-task.
    SchedulerTaskPanic,
    /// A scheduler worker stalls mid-task for the bounded stall.
    SchedulerTaskStall,
}

/// Number of faultpoints in the catalog.
pub const FAULT_POINT_COUNT: usize = 11;

impl FaultPoint {
    /// The catalog: every faultpoint, in declaration order. The
    /// `faultpoint-catalog` detlint rule cross-checks this list against
    /// the enum and against `FaultPoint::` uses across the service.
    pub const ALL: [FaultPoint; FAULT_POINT_COUNT] = [
        FaultPoint::JournalHeaderWrite,
        FaultPoint::JournalAppendWrite,
        FaultPoint::JournalAppendFsync,
        FaultPoint::AtomicWriteTemp,
        FaultPoint::AtomicWriteRename,
        FaultPoint::DaemonAccept,
        FaultPoint::DaemonReadTorn,
        FaultPoint::DaemonWriteTorn,
        FaultPoint::DaemonStall,
        FaultPoint::SchedulerTaskPanic,
        FaultPoint::SchedulerTaskStall,
    ];

    /// Stable dotted name, used in injected-error messages and docs.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::JournalHeaderWrite => "journal.header.write",
            FaultPoint::JournalAppendWrite => "journal.append.write",
            FaultPoint::JournalAppendFsync => "journal.append.fsync",
            FaultPoint::AtomicWriteTemp => "write_atomic.temp",
            FaultPoint::AtomicWriteRename => "write_atomic.rename",
            FaultPoint::DaemonAccept => "daemon.accept",
            FaultPoint::DaemonReadTorn => "daemon.read.torn",
            FaultPoint::DaemonWriteTorn => "daemon.write.torn",
            FaultPoint::DaemonStall => "daemon.handler.stall",
            FaultPoint::SchedulerTaskPanic => "scheduler.task.panic",
            FaultPoint::SchedulerTaskStall => "scheduler.task.stall",
        }
    }

    /// Catalog index of this point.
    fn index(self) -> usize {
        FaultPoint::ALL
            .iter()
            .position(|&p| p == self)
            .expect("FaultPoint::ALL lists every variant")
    }
}

/// A seeded, wall-clock-free description of which faultpoints fire.
///
/// Rates are parts-per-thousand; budgets cap the total fires per point
/// (the damage bound that makes retry loops converge). The stall
/// duration bounds how long the two stall points may sleep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Master seed; every fire decision derives from it.
    pub seed: u64,
    rates: [u16; FAULT_POINT_COUNT],
    budgets: [u32; FAULT_POINT_COUNT],
    stall: Duration,
}

impl FaultSchedule {
    /// A schedule that never fires (useful as a builder base).
    pub fn off() -> FaultSchedule {
        FaultSchedule {
            seed: 0,
            rates: [0; FAULT_POINT_COUNT],
            budgets: [0; FAULT_POINT_COUNT],
            stall: Duration::ZERO,
        }
    }

    /// The chaos schedule for `seed`: every point fires at a
    /// seed-derived rate in [5%, 35%) with a budget of 8 fires (stall
    /// points: 2, to bound wall time). Every eighth seed
    /// (`seed % 8 == 7`) forces the scheduler panic point to 100% with
    /// an unlimited budget, so any soak over 8 consecutive seeds
    /// deterministically exercises the quarantine path.
    pub fn chaos(seed: u64) -> FaultSchedule {
        let mut rates = [0u16; FAULT_POINT_COUNT];
        let mut budgets = [8u32; FAULT_POINT_COUNT];
        for (i, rate) in rates.iter_mut().enumerate() {
            *rate = 50 + (mix3(seed, i as u64, u64::MAX) % 300) as u16;
        }
        for p in [FaultPoint::DaemonStall, FaultPoint::SchedulerTaskStall] {
            budgets[p.index()] = 2;
        }
        if seed % 8 == 7 {
            let i = FaultPoint::SchedulerTaskPanic.index();
            rates[i] = 1000;
            budgets[i] = u32::MAX;
        }
        FaultSchedule {
            seed,
            rates,
            budgets,
            stall: Duration::from_millis(20),
        }
    }

    /// Set one point's fire rate in parts-per-thousand (1000 = always).
    pub fn rate(mut self, point: FaultPoint, per_mille: u16) -> FaultSchedule {
        self.rates[point.index()] = per_mille.min(1000);
        self
    }

    /// Set one point's fire budget (maximum total fires).
    pub fn budget(mut self, point: FaultPoint, fires: u32) -> FaultSchedule {
        self.budgets[point.index()] = fires;
        self
    }

    /// Set the bounded stall duration used by the stall points.
    pub fn stall_for(mut self, d: Duration) -> FaultSchedule {
        self.stall = d;
        self
    }

    /// Fire decision for the `ordinal`-th arrival at `point`: a pure
    /// function of `(seed, point, ordinal)`.
    fn decide(&self, point: FaultPoint, ordinal: u64) -> bool {
        let i = point.index();
        mix3(self.seed, i as u64, ordinal) % 1000 < u64::from(self.rates[i])
    }
}

/// One fired fault: a deterministic draw the site turns into a tear
/// offset, plus the schedule's bounded stall duration.
#[derive(Debug, Clone, Copy)]
pub struct FaultLot {
    /// 64-bit draw derived from `(seed, point, ordinal)`.
    pub draw: u64,
    /// Stall duration for the stall points.
    pub stall: Duration,
}

impl FaultLot {
    /// A cut offset in `0..len` — a strictly proper prefix length for
    /// torn-write sites (`0` = nothing written, never the full buffer).
    pub fn cut(&self, len: usize) -> usize {
        if len == 0 {
            0
        } else {
            (self.draw % len as u64) as usize
        }
    }
}

/// Cumulative injector accounting, in catalog order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Arrivals per point (fired or not).
    pub hits: [u64; FAULT_POINT_COUNT],
    /// Fires per point.
    pub fires: [u64; FAULT_POINT_COUNT],
}

impl FaultStats {
    /// Total fires across all points.
    pub fn total_fires(&self) -> u64 {
        self.fires.iter().sum()
    }
}

#[derive(Debug)]
struct Injector {
    schedule: FaultSchedule,
    stats: FaultStats,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static INJECTOR: Mutex<Option<Injector>> = Mutex::new(None);
/// Serializes fault-using tests: the injector is process-global.
static SCOPE: Mutex<()> = Mutex::new(());

fn lock_injector() -> MutexGuard<'static, Option<Injector>> {
    // A panic while holding the lock (there are no panics in this
    // module's locked sections, but injected panics unwind through
    // arbitrary code) must not poison fault accounting.
    INJECTOR.lock().unwrap_or_else(|e| e.into_inner())
}

/// Consult a faultpoint. Costs one relaxed atomic load when no
/// schedule is installed — the compiled-in no-op the perf gate relies
/// on. Returns the lot when the point fires.
#[inline]
pub fn fire(point: FaultPoint) -> Option<FaultLot> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    fire_armed(point)
}

#[cold]
fn fire_armed(point: FaultPoint) -> Option<FaultLot> {
    let mut g = lock_injector();
    let inj = g.as_mut()?;
    let i = point.index();
    let ordinal = inj.stats.hits[i];
    inj.stats.hits[i] += 1;
    if inj.stats.fires[i] >= u64::from(inj.schedule.budgets[i]) {
        return None;
    }
    if !inj.schedule.decide(point, ordinal) {
        return None;
    }
    inj.stats.fires[i] += 1;
    Some(FaultLot {
        draw: mix3(inj.schedule.seed, (i as u64) | (1 << 32), ordinal),
        stall: inj.schedule.stall,
    })
}

/// Sleep for the schedule's bounded stall duration if `point` fires.
pub fn stall(point: FaultPoint) {
    if let Some(lot) = fire(point) {
        if !lot.stall.is_zero() {
            std::thread::sleep(lot.stall);
        }
    }
}

/// An `io::Error` marking an injected fault; the message names the
/// point so quarantine reasons and logs stay greppable.
pub fn injected_error(point: FaultPoint) -> std::io::Error {
    std::io::Error::other(format!("injected fault: {}", point.name()))
}

/// Total fires so far (0 when no schedule is installed) — surfaced by
/// the daemon's `health` response.
pub fn fired_total() -> u64 {
    if !ARMED.load(Ordering::Relaxed) {
        return 0;
    }
    lock_injector()
        .as_ref()
        .map(|inj| inj.stats.total_fires())
        .unwrap_or(0)
}

/// Arm the process-global injector with `schedule`, returning an RAII
/// guard that serializes fault-using tests and disarms on drop.
pub fn install(schedule: FaultSchedule) -> FaultGuard {
    let scope = SCOPE.lock().unwrap_or_else(|e| e.into_inner());
    *lock_injector() = Some(Injector {
        schedule,
        stats: FaultStats::default(),
    });
    ARMED.store(true, Ordering::SeqCst);
    FaultGuard { _scope: scope }
}

/// Arm the injector for the life of the process (the `benchd
/// --chaos-seed` path); there is no guard to hold or drop.
pub fn install_global(schedule: FaultSchedule) {
    *lock_injector() = Some(Injector {
        schedule,
        stats: FaultStats::default(),
    });
    ARMED.store(true, Ordering::SeqCst);
}

/// Scope guard returned by [`install`]: holds the test-serialization
/// lock, disarms and clears the injector on drop.
#[derive(Debug)]
pub struct FaultGuard {
    _scope: MutexGuard<'static, ()>,
}

impl FaultGuard {
    /// Accounting so far (survives [`disarm`](FaultGuard::disarm)).
    pub fn stats(&self) -> FaultStats {
        lock_injector()
            .as_ref()
            .map(|inj| inj.stats.clone())
            .unwrap_or_default()
    }

    /// Stop injecting (keeps the stats readable and the test scope
    /// held); lets a test end its chaos window before clean shutdown.
    pub fn disarm(&self) {
        ARMED.store(false, Ordering::SeqCst);
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *lock_injector() = None;
    }
}

/// splitmix64 finalizer — the same construction the seed-derivation
/// paths use elsewhere in the workspace; full-avalanche, cheap, and
/// entirely deterministic.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash three words into one draw.
pub(crate) fn mix3(a: u64, b: u64, c: u64) -> u64 {
    mix(mix(mix(a) ^ b) ^ c)
}

#[cfg(test)]
mod tests {
    // These tests deliberately never call `install`: the injector is
    // process-global, and the bench lib's unit tests run concurrently
    // in one process. Armed-injector behavior is covered by the
    // dedicated integration binaries (`tests/service_faults.rs`,
    // `tests/chaos_soak.rs`), which serialize through the scope lock.
    use super::*;

    #[test]
    fn catalog_is_complete_and_names_are_unique() {
        assert_eq!(FaultPoint::ALL.len(), FAULT_POINT_COUNT);
        let mut names: Vec<&str> = FaultPoint::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FAULT_POINT_COUNT, "duplicate faultpoint names");
        for (i, p) in FaultPoint::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn disabled_injector_is_a_no_op() {
        assert!(fire(FaultPoint::JournalAppendWrite).is_none());
        assert_eq!(fired_total(), 0);
        stall(FaultPoint::DaemonStall); // returns immediately
    }

    #[test]
    fn chaos_schedules_are_deterministic_and_in_range() {
        for seed in 0..64u64 {
            let a = FaultSchedule::chaos(seed);
            let b = FaultSchedule::chaos(seed);
            assert_eq!(a, b);
            for (i, &r) in a.rates.iter().enumerate() {
                if seed % 8 == 7 && i == FaultPoint::SchedulerTaskPanic.index() {
                    assert_eq!(r, 1000, "forced quarantine seed");
                } else {
                    assert!((50..350).contains(&r), "seed {seed} point {i} rate {r}");
                }
            }
        }
        assert_ne!(
            FaultSchedule::chaos(1).rates,
            FaultSchedule::chaos(2).rates,
            "seeds derive distinct rates"
        );
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_point_ordinal() {
        let s = FaultSchedule::chaos(3);
        for point in FaultPoint::ALL {
            for ordinal in 0..100 {
                assert_eq!(s.decide(point, ordinal), s.decide(point, ordinal));
            }
        }
        // A ~20% rate actually fires sometimes and skips sometimes.
        let fires = (0..1000)
            .filter(|&n| s.decide(FaultPoint::DaemonReadTorn, n))
            .count();
        assert!(fires > 10 && fires < 990, "{fires}");
    }

    #[test]
    fn cut_is_a_proper_prefix() {
        for draw in [0u64, 1, 7, u64::MAX] {
            let lot = FaultLot {
                draw,
                stall: Duration::ZERO,
            };
            assert_eq!(lot.cut(0), 0);
            for len in 1..10usize {
                assert!(lot.cut(len) < len);
            }
        }
    }

    #[test]
    fn builders_override_points() {
        let s = FaultSchedule::off()
            .rate(FaultPoint::SchedulerTaskPanic, 1000)
            .budget(FaultPoint::SchedulerTaskPanic, 3)
            .stall_for(Duration::from_millis(1));
        assert!(s.decide(FaultPoint::SchedulerTaskPanic, 0));
        assert!(!s.decide(FaultPoint::JournalAppendWrite, 0));
        assert_eq!(s.budgets[FaultPoint::SchedulerTaskPanic.index()], 3);
        assert_eq!(s.stall, Duration::from_millis(1));
    }
}
