//! Serialization for [`ScenarioSpec`]: a small self-contained JSON
//! encoder/decoder.
//!
//! The build environment vendors no serde, so the scenario API carries its
//! own (tiny) JSON layer. Enums serialize as objects with a `"kind"`
//! discriminator; `Option` fields serialize as the value or `null`. The
//! encoding is stable — `ScenarioSpec::from_json_str(spec.to_json_string())`
//! round-trips exactly (verified by tests/scenario_api.rs).

use std::fmt;

use contention_sim::Execution;

use super::spec::{
    AdversarySpec, AlgoSpec, ArrivalSpec, BaselineSpec, BudgetSpec, ChannelSpec, CheckpointPolicy,
    CurveSpec, GSpec, HorizonSpec, JammingSpec, ParamsSpec, RecordMode, ScenarioSpec, SmoothSpec,
};

/// Error raised while parsing or interpreting a spec document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(String);

impl SpecError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        SpecError(msg.into())
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; integers below 2⁵³ are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub(crate) fn u64(v: u64) -> Json {
        debug_assert!(v <= (1 << 53), "integer too large for JSON round-trip");
        Json::Num(v as f64)
    }

    pub(crate) fn opt_u64(v: Option<u64>) -> Json {
        v.map_or(Json::Null, Json::u64)
    }

    pub(crate) fn opt_f64(v: Option<f64>) -> Json {
        v.map_or(Json::Null, Json::Num)
    }

    pub(crate) fn i64(v: i64) -> Json {
        debug_assert!(
            v.abs() <= (1 << 53),
            "integer too large for JSON round-trip"
        );
        Json::Num(v as f64)
    }

    /// Field `key` of an object, or an error for non-objects and missing
    /// keys.
    pub fn get<'a>(&'a self, key: &str) -> Result<&'a Json, SpecError> {
        match self {
            Json::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| SpecError::new(format!("missing field `{key}`"))),
            _ => Err(SpecError::new(format!("expected object with `{key}`"))),
        }
    }

    /// The numeric value, or an error for non-numbers.
    pub fn as_f64(&self) -> Result<f64, SpecError> {
        match self {
            Json::Num(x) => Ok(*x),
            _ => Err(SpecError::new("expected number")),
        }
    }

    pub(crate) fn as_u64(&self) -> Result<u64, SpecError> {
        let x = self.as_f64()?;
        if x.fract() == 0.0 && (0.0..=(1u64 << 53) as f64).contains(&x) {
            Ok(x as u64)
        } else {
            Err(SpecError::new(format!(
                "expected unsigned integer, got {x}"
            )))
        }
    }

    pub(crate) fn as_u32(&self) -> Result<u32, SpecError> {
        let x = self.as_u64()?;
        u32::try_from(x).map_err(|_| SpecError::new(format!("integer {x} exceeds u32")))
    }

    pub(crate) fn as_opt_u64(&self) -> Result<Option<u64>, SpecError> {
        match self {
            Json::Null => Ok(None),
            other => other.as_u64().map(Some),
        }
    }

    pub(crate) fn as_opt_f64(&self) -> Result<Option<f64>, SpecError> {
        match self {
            Json::Null => Ok(None),
            other => other.as_f64().map(Some),
        }
    }

    pub(crate) fn as_i64(&self) -> Result<i64, SpecError> {
        let x = self.as_f64()?;
        if x.fract() == 0.0 && x.abs() <= (1u64 << 53) as f64 {
            Ok(x as i64)
        } else {
            Err(SpecError::new(format!("expected integer, got {x}")))
        }
    }

    pub(crate) fn as_bool(&self) -> Result<bool, SpecError> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err(SpecError::new("expected boolean")),
        }
    }

    /// The string value, or an error for non-strings.
    pub fn as_str(&self) -> Result<&str, SpecError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(SpecError::new("expected string")),
        }
    }

    /// The array items, or an error for non-arrays.
    pub fn as_arr(&self) -> Result<&[Json], SpecError> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(SpecError::new("expected array")),
        }
    }

    pub(crate) fn kind(&self) -> Result<&str, SpecError> {
        self.get("kind")?.as_str()
    }

    /// Render as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if !x.is_finite() {
                    // JSON has no NaN/Infinity literals; `{x:?}` would emit
                    // text our own parser rejects. Render as null (the
                    // lossy-but-valid convention serde_json also uses).
                    out.push_str("null");
                } else if x.fract() == 0.0 && x.abs() < (1u64 << 53) as f64 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    // `{:?}` prints the shortest representation that
                    // round-trips through f64 parsing.
                    out.push_str(&format!("{x:?}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse JSON text.
    pub fn parse(text: &str) -> Result<Json, SpecError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(SpecError::new("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), SpecError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(SpecError::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, SpecError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Json::Null),
            Some(b't') if self.literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(SpecError::new("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(SpecError::new("expected `,` or `}`")),
                    }
                }
            }
            Some(_) => self.number(),
            None => Err(SpecError::new("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, SpecError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| SpecError::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| SpecError::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| SpecError::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| SpecError::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(SpecError::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s =
                        std::str::from_utf8(rest).map_err(|_| SpecError::new("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(SpecError::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, SpecError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| SpecError::new("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| SpecError::new(format!("invalid number `{text}`")))
    }
}

// ---------------------------------------------------------------------------
// Spec type <-> Json conversions.
// ---------------------------------------------------------------------------

pub(crate) fn g_to_json(g: &GSpec) -> Json {
    match g {
        GSpec::Constant(c) => Json::obj(vec![
            ("kind", Json::Str("constant".into())),
            ("c", Json::Num(*c)),
        ]),
        GSpec::Log => Json::obj(vec![("kind", Json::Str("log".into()))]),
        GSpec::PolyLog(k) => Json::obj(vec![
            ("kind", Json::Str("polylog".into())),
            ("k", Json::u64(u64::from(*k))),
        ]),
        GSpec::ExpSqrtLog(c) => Json::obj(vec![
            ("kind", Json::Str("exp-sqrt-log".into())),
            ("c", Json::Num(*c)),
        ]),
    }
}

pub(crate) fn g_from_json(j: &Json) -> Result<GSpec, SpecError> {
    match j.kind()? {
        "constant" => Ok(GSpec::Constant(j.get("c")?.as_f64()?)),
        "log" => Ok(GSpec::Log),
        "polylog" => Ok(GSpec::PolyLog(j.get("k")?.as_u32()?)),
        "exp-sqrt-log" => Ok(GSpec::ExpSqrtLog(j.get("c")?.as_f64()?)),
        other => Err(SpecError::new(format!("unknown g kind `{other}`"))),
    }
}

fn params_to_json(p: &ParamsSpec) -> Json {
    Json::obj(vec![
        ("g", g_to_json(&p.g)),
        ("a", Json::opt_f64(p.a)),
        ("c2", Json::opt_f64(p.c2)),
        ("c3", Json::opt_f64(p.c3)),
    ])
}

fn params_from_json(j: &Json) -> Result<ParamsSpec, SpecError> {
    Ok(ParamsSpec {
        g: g_from_json(j.get("g")?)?,
        a: j.get("a")?.as_opt_f64()?,
        c2: j.get("c2")?.as_opt_f64()?,
        c3: j.get("c3")?.as_opt_f64()?,
    })
}

fn baseline_to_json(b: &BaselineSpec) -> Json {
    let (kind, extra): (&str, Vec<(&str, Json)>) = match b {
        BaselineSpec::BinaryExponential => ("beb", vec![]),
        BaselineSpec::Polynomial(e) => ("poly", vec![("exponent", Json::Num(*e))]),
        BaselineSpec::Linear => ("linear", vec![]),
        BaselineSpec::SmoothedBeb => ("smoothed-beb", vec![]),
        BaselineSpec::LogBackoff(c) => ("log-backoff", vec![("c", Json::Num(*c))]),
        BaselineSpec::Aloha(p) => ("aloha", vec![("p", Json::Num(*p))]),
        BaselineSpec::PolySchedule(e) => ("poly-schedule", vec![("exponent", Json::Num(*e))]),
        BaselineSpec::Sawtooth => ("sawtooth", vec![]),
        BaselineSpec::FBackoff(g) => ("f-backoff", vec![("g", g_to_json(g))]),
        BaselineSpec::ResetBeb => ("reset-beb", vec![]),
        BaselineSpec::ResetWindowBeb => ("reset-window-beb", vec![]),
        BaselineSpec::CdBackoff => ("cd-beb", vec![]),
        BaselineSpec::CdAloha(p) => ("cd-aloha", vec![("p", Json::Num(*p))]),
    };
    let mut pairs = vec![("kind", Json::Str(kind.into()))];
    pairs.extend(extra);
    Json::obj(pairs)
}

fn baseline_from_json(j: &Json) -> Result<BaselineSpec, SpecError> {
    match j.kind()? {
        "beb" => Ok(BaselineSpec::BinaryExponential),
        "poly" => Ok(BaselineSpec::Polynomial(j.get("exponent")?.as_f64()?)),
        "linear" => Ok(BaselineSpec::Linear),
        "smoothed-beb" => Ok(BaselineSpec::SmoothedBeb),
        "log-backoff" => Ok(BaselineSpec::LogBackoff(j.get("c")?.as_f64()?)),
        "aloha" => Ok(BaselineSpec::Aloha(j.get("p")?.as_f64()?)),
        "poly-schedule" => Ok(BaselineSpec::PolySchedule(j.get("exponent")?.as_f64()?)),
        "sawtooth" => Ok(BaselineSpec::Sawtooth),
        "f-backoff" => Ok(BaselineSpec::FBackoff(g_from_json(j.get("g")?)?)),
        "reset-beb" => Ok(BaselineSpec::ResetBeb),
        "reset-window-beb" => Ok(BaselineSpec::ResetWindowBeb),
        "cd-beb" => Ok(BaselineSpec::CdBackoff),
        "cd-aloha" => Ok(BaselineSpec::CdAloha(j.get("p")?.as_f64()?)),
        other => Err(SpecError::new(format!("unknown baseline `{other}`"))),
    }
}

pub(crate) fn algo_to_json(a: &AlgoSpec) -> Json {
    match a {
        AlgoSpec::Cjz(p) => Json::obj(vec![
            ("kind", Json::Str("cjz".into())),
            ("params", params_to_json(p)),
        ]),
        AlgoSpec::CjzNoSwap(p) => Json::obj(vec![
            ("kind", Json::Str("cjz-noswap".into())),
            ("params", params_to_json(p)),
        ]),
        AlgoSpec::CjzOracle(p) => Json::obj(vec![
            ("kind", Json::Str("cjz-oracle".into())),
            ("params", params_to_json(p)),
        ]),
        AlgoSpec::Baseline(b) => Json::obj(vec![
            ("kind", Json::Str("baseline".into())),
            ("baseline", baseline_to_json(b)),
        ]),
    }
}

pub(crate) fn algo_from_json(j: &Json) -> Result<AlgoSpec, SpecError> {
    match j.kind()? {
        "cjz" => Ok(AlgoSpec::Cjz(params_from_json(j.get("params")?)?)),
        "cjz-noswap" => Ok(AlgoSpec::CjzNoSwap(params_from_json(j.get("params")?)?)),
        "cjz-oracle" => Ok(AlgoSpec::CjzOracle(params_from_json(j.get("params")?)?)),
        "baseline" => Ok(AlgoSpec::Baseline(baseline_from_json(j.get("baseline")?)?)),
        other => Err(SpecError::new(format!("unknown algo kind `{other}`"))),
    }
}

fn arrival_to_json(a: &ArrivalSpec) -> Json {
    match a {
        ArrivalSpec::None => Json::obj(vec![("kind", Json::Str("none".into()))]),
        ArrivalSpec::Batch { at, count } => Json::obj(vec![
            ("kind", Json::Str("batch".into())),
            ("at", Json::u64(*at)),
            ("count", Json::u64(u64::from(*count))),
        ]),
        ArrivalSpec::Poisson { rate, horizon } => Json::obj(vec![
            ("kind", Json::Str("poisson".into())),
            ("rate", Json::Num(*rate)),
            ("horizon", Json::opt_u64(*horizon)),
        ]),
        ArrivalSpec::Bursty {
            period,
            phase,
            size,
            bursts,
        } => Json::obj(vec![
            ("kind", Json::Str("bursty".into())),
            ("period", Json::u64(*period)),
            ("phase", Json::u64(*phase)),
            ("size", Json::u64(u64::from(*size))),
            ("bursts", Json::u64(*bursts)),
        ]),
        ArrivalSpec::Scripted { slots } => Json::obj(vec![
            ("kind", Json::Str("scripted".into())),
            (
                "slots",
                Json::Arr(
                    slots
                        .iter()
                        .map(|(s, c)| Json::Arr(vec![Json::u64(*s), Json::u64(u64::from(*c))]))
                        .collect(),
                ),
            ),
        ]),
        ArrivalSpec::UniformRandom { total, horizon } => Json::obj(vec![
            ("kind", Json::Str("uniform-random".into())),
            ("total", Json::u64(*total)),
            ("horizon", Json::u64(*horizon)),
        ]),
        ArrivalSpec::Saturated {
            target,
            budget,
            horizon,
        } => Json::obj(vec![
            ("kind", Json::Str("saturated".into())),
            ("target", Json::opt_u64(*target)),
            ("budget", Json::opt_u64(*budget)),
            ("horizon", Json::opt_u64(*horizon)),
        ]),
    }
}

fn arrival_from_json(j: &Json) -> Result<ArrivalSpec, SpecError> {
    match j.kind()? {
        "none" => Ok(ArrivalSpec::None),
        "batch" => Ok(ArrivalSpec::Batch {
            at: j.get("at")?.as_u64()?,
            count: j.get("count")?.as_u32()?,
        }),
        "poisson" => Ok(ArrivalSpec::Poisson {
            rate: j.get("rate")?.as_f64()?,
            horizon: j.get("horizon")?.as_opt_u64()?,
        }),
        "bursty" => Ok(ArrivalSpec::Bursty {
            period: j.get("period")?.as_u64()?,
            phase: j.get("phase")?.as_u64()?,
            size: j.get("size")?.as_u32()?,
            bursts: j.get("bursts")?.as_u64()?,
        }),
        "scripted" => {
            let mut slots = Vec::new();
            for item in j.get("slots")?.as_arr()? {
                let pair = item.as_arr()?;
                if pair.len() != 2 {
                    return Err(SpecError::new("scripted entries are [slot, count]"));
                }
                slots.push((pair[0].as_u64()?, pair[1].as_u32()?));
            }
            Ok(ArrivalSpec::Scripted { slots })
        }
        "uniform-random" => Ok(ArrivalSpec::UniformRandom {
            total: j.get("total")?.as_u64()?,
            horizon: j.get("horizon")?.as_u64()?,
        }),
        "saturated" => Ok(ArrivalSpec::Saturated {
            target: j.get("target")?.as_opt_u64()?,
            budget: j.get("budget")?.as_opt_u64()?,
            horizon: j.get("horizon")?.as_opt_u64()?,
        }),
        other => Err(SpecError::new(format!("unknown arrival kind `{other}`"))),
    }
}

fn jamming_to_json(j: &JammingSpec) -> Json {
    match j {
        JammingSpec::None => Json::obj(vec![("kind", Json::Str("none".into()))]),
        JammingSpec::Random { p } => Json::obj(vec![
            ("kind", Json::Str("random".into())),
            ("p", Json::Num(*p)),
        ]),
        JammingSpec::Periodic { period, phase } => Json::obj(vec![
            ("kind", Json::Str("periodic".into())),
            ("period", Json::u64(*period)),
            ("phase", Json::u64(*phase)),
        ]),
        JammingSpec::FrontLoaded { until } => Json::obj(vec![
            ("kind", Json::Str("front-loaded".into())),
            ("until", Json::u64(*until)),
        ]),
        JammingSpec::Reactive { burst } => Json::obj(vec![
            ("kind", Json::Str("reactive".into())),
            ("burst", Json::u64(*burst)),
        ]),
        JammingSpec::GilbertElliott {
            fraction,
            burst_len,
        } => Json::obj(vec![
            ("kind", Json::Str("gilbert-elliott".into())),
            ("fraction", Json::Num(*fraction)),
            ("burst_len", Json::Num(*burst_len)),
        ]),
        JammingSpec::Scripted { slots } => Json::obj(vec![
            ("kind", Json::Str("scripted".into())),
            (
                "slots",
                Json::Arr(slots.iter().map(|&s| Json::u64(s)).collect()),
            ),
        ]),
    }
}

fn jamming_from_json(j: &Json) -> Result<JammingSpec, SpecError> {
    match j.kind()? {
        "none" => Ok(JammingSpec::None),
        "random" => Ok(JammingSpec::Random {
            p: j.get("p")?.as_f64()?,
        }),
        "periodic" => Ok(JammingSpec::Periodic {
            period: j.get("period")?.as_u64()?,
            phase: j.get("phase")?.as_u64()?,
        }),
        "front-loaded" => Ok(JammingSpec::FrontLoaded {
            until: j.get("until")?.as_u64()?,
        }),
        "reactive" => Ok(JammingSpec::Reactive {
            burst: j.get("burst")?.as_u64()?,
        }),
        "gilbert-elliott" => Ok(JammingSpec::GilbertElliott {
            fraction: j.get("fraction")?.as_f64()?,
            burst_len: j.get("burst_len")?.as_f64()?,
        }),
        "scripted" => Ok(JammingSpec::Scripted {
            slots: j
                .get("slots")?
                .as_arr()?
                .iter()
                .map(|s| s.as_u64())
                .collect::<Result<_, _>>()?,
        }),
        other => Err(SpecError::new(format!("unknown jamming kind `{other}`"))),
    }
}

fn adversary_to_json(a: &AdversarySpec) -> Json {
    match a {
        AdversarySpec::Composite { arrival, jamming } => Json::obj(vec![
            ("kind", Json::Str("composite".into())),
            ("arrival", arrival_to_json(arrival)),
            ("jamming", jamming_to_json(jamming)),
        ]),
        AdversarySpec::Lemma41 {
            horizon,
            batch_per_slot,
            random_total,
        } => Json::obj(vec![
            ("kind", Json::Str("lemma-4.1".into())),
            ("horizon", Json::u64(*horizon)),
            ("batch_per_slot", Json::u64(u64::from(*batch_per_slot))),
            ("random_total", Json::u64(*random_total)),
        ]),
        AdversarySpec::Theorem13 { horizon, g_of_t } => Json::obj(vec![
            ("kind", Json::Str("theorem-1.3".into())),
            ("horizon", Json::u64(*horizon)),
            ("g_of_t", Json::Num(*g_of_t)),
        ]),
        AdversarySpec::Theorem42 {
            horizon,
            g_of_t,
            f_of_t,
        } => Json::obj(vec![
            ("kind", Json::Str("theorem-4.2".into())),
            ("horizon", Json::u64(*horizon)),
            ("g_of_t", Json::Num(*g_of_t)),
            ("f_of_t", Json::Num(*f_of_t)),
        ]),
    }
}

fn adversary_from_json(j: &Json) -> Result<AdversarySpec, SpecError> {
    match j.kind()? {
        "composite" => Ok(AdversarySpec::Composite {
            arrival: arrival_from_json(j.get("arrival")?)?,
            jamming: jamming_from_json(j.get("jamming")?)?,
        }),
        "lemma-4.1" => Ok(AdversarySpec::Lemma41 {
            horizon: j.get("horizon")?.as_u64()?,
            batch_per_slot: j.get("batch_per_slot")?.as_u32()?,
            random_total: j.get("random_total")?.as_u64()?,
        }),
        "theorem-1.3" => Ok(AdversarySpec::Theorem13 {
            horizon: j.get("horizon")?.as_u64()?,
            g_of_t: j.get("g_of_t")?.as_f64()?,
        }),
        "theorem-4.2" => Ok(AdversarySpec::Theorem42 {
            horizon: j.get("horizon")?.as_u64()?,
            g_of_t: j.get("g_of_t")?.as_f64()?,
            f_of_t: j.get("f_of_t")?.as_f64()?,
        }),
        other => Err(SpecError::new(format!("unknown adversary kind `{other}`"))),
    }
}

pub(crate) fn channel_to_json(c: &ChannelSpec) -> Json {
    Json::obj(vec![
        ("model", Json::Str(c.model.name().into())),
        ("listen_cost", Json::Num(c.listen_cost)),
    ])
}

pub(crate) fn channel_from_json(j: &Json) -> Result<ChannelSpec, SpecError> {
    let name = j.get("model")?.as_str()?;
    let base = ChannelSpec::by_name(name)
        .ok_or_else(|| SpecError::new(format!("unknown channel model `{name}`")))?;
    // Optional, like every constructor's default: hand-written specs may
    // give just the model.
    let listen_cost = match j.get("listen_cost") {
        Ok(v) => v.as_opt_f64()?.unwrap_or(0.0),
        Err(_) => 0.0,
    };
    Ok(base.with_listen_cost(listen_cost))
}

fn curve_to_json(c: &CurveSpec) -> Json {
    match c {
        CurveSpec::Unlimited => Json::obj(vec![("kind", Json::Str("unlimited".into()))]),
        CurveSpec::Constant(cap) => Json::obj(vec![
            ("kind", Json::Str("constant".into())),
            ("cap", Json::Num(*cap)),
        ]),
        CurveSpec::PerSlot(coef) => Json::obj(vec![
            ("kind", Json::Str("per-slot".into())),
            ("coef", Json::Num(*coef)),
        ]),
        CurveSpec::CriticalArrivals { scale } => Json::obj(vec![
            ("kind", Json::Str("critical-arrivals".into())),
            ("scale", Json::Num(*scale)),
        ]),
        CurveSpec::CriticalJams { scale } => Json::obj(vec![
            ("kind", Json::Str("critical-jams".into())),
            ("scale", Json::Num(*scale)),
        ]),
    }
}

fn curve_from_json(j: &Json) -> Result<CurveSpec, SpecError> {
    match j.kind()? {
        "unlimited" => Ok(CurveSpec::Unlimited),
        "constant" => Ok(CurveSpec::Constant(j.get("cap")?.as_f64()?)),
        "per-slot" => Ok(CurveSpec::PerSlot(j.get("coef")?.as_f64()?)),
        "critical-arrivals" => Ok(CurveSpec::CriticalArrivals {
            scale: j.get("scale")?.as_f64()?,
        }),
        "critical-jams" => Ok(CurveSpec::CriticalJams {
            scale: j.get("scale")?.as_f64()?,
        }),
        other => Err(SpecError::new(format!("unknown curve kind `{other}`"))),
    }
}

impl ScenarioSpec {
    /// Serialize to a [`Json`] tree.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            (
                "algos",
                Json::Arr(self.algos.iter().map(algo_to_json).collect()),
            ),
            ("adversary", adversary_to_json(&self.adversary)),
            (
                "budget",
                self.budget.as_ref().map_or(Json::Null, |b| {
                    Json::obj(vec![
                        ("params", params_to_json(&b.params)),
                        ("arrivals", curve_to_json(&b.arrivals)),
                        ("jams", curve_to_json(&b.jams)),
                    ])
                }),
            ),
            (
                "smooth",
                self.smooth.as_ref().map_or(Json::Null, |s| {
                    Json::obj(vec![
                        ("params", params_to_json(&s.params)),
                        ("ca", Json::Num(s.ca)),
                        ("cd", Json::Num(s.cd)),
                    ])
                }),
            ),
            (
                "horizon",
                match self.horizon {
                    HorizonSpec::UntilDrained { max_slots } => Json::obj(vec![
                        ("kind", Json::Str("until-drained".into())),
                        ("max_slots", Json::u64(max_slots)),
                    ]),
                    HorizonSpec::Fixed { slots } => Json::obj(vec![
                        ("kind", Json::Str("fixed".into())),
                        ("slots", Json::u64(slots)),
                    ]),
                },
            ),
            ("seeds", Json::u64(self.seeds)),
            ("seed_base", Json::u64(self.seed_base)),
            (
                "record",
                Json::Str(
                    match self.record {
                        RecordMode::Full => "full",
                        RecordMode::Aggregate => "aggregate",
                    }
                    .into(),
                ),
            ),
            ("history_retention", Json::opt_u64(self.history_retention)),
            ("channel", channel_to_json(&self.channel)),
            ("execution", Json::Str(self.execution.name().into())),
            (
                "checkpoint",
                self.checkpoint.map_or(Json::Null, |c| {
                    Json::obj(vec![("every", Json::u64(c.every))])
                }),
            ),
        ])
    }

    /// Serialize to compact JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Deserialize from a [`Json`] tree.
    pub fn from_json(j: &Json) -> Result<Self, SpecError> {
        let budget = match j.get("budget")? {
            Json::Null => None,
            b => Some(BudgetSpec {
                params: params_from_json(b.get("params")?)?,
                arrivals: curve_from_json(b.get("arrivals")?)?,
                jams: curve_from_json(b.get("jams")?)?,
            }),
        };
        let smooth = match j.get("smooth")? {
            Json::Null => None,
            s => Some(SmoothSpec {
                params: params_from_json(s.get("params")?)?,
                ca: s.get("ca")?.as_f64()?,
                cd: s.get("cd")?.as_f64()?,
            }),
        };
        let horizon = {
            let h = j.get("horizon")?;
            match h.kind()? {
                "until-drained" => HorizonSpec::UntilDrained {
                    max_slots: h.get("max_slots")?.as_u64()?,
                },
                "fixed" => HorizonSpec::Fixed {
                    slots: h.get("slots")?.as_u64()?,
                },
                other => return Err(SpecError::new(format!("unknown horizon `{other}`"))),
            }
        };
        let record = match j.get("record")?.as_str()? {
            "full" => RecordMode::Full,
            "aggregate" => RecordMode::Aggregate,
            other => return Err(SpecError::new(format!("unknown record mode `{other}`"))),
        };
        Ok(ScenarioSpec {
            name: j.get("name")?.as_str()?.to_string(),
            algos: j
                .get("algos")?
                .as_arr()?
                .iter()
                .map(algo_from_json)
                .collect::<Result<_, _>>()?,
            adversary: adversary_from_json(j.get("adversary")?)?,
            budget,
            smooth,
            horizon,
            seeds: j.get("seeds")?.as_u64()?,
            seed_base: j.get("seed_base")?.as_u64()?,
            record,
            // Absent in documents written before the knob existed.
            history_retention: match j.get("history_retention") {
                Ok(v) => v.as_opt_u64()?,
                Err(_) => None,
            },
            // Likewise: documents predating pluggable channel models get
            // the paper's default.
            channel: match j.get("channel") {
                Ok(v) => channel_from_json(v)?,
                Err(_) => ChannelSpec::default(),
            },
            // Likewise: documents predating the execution knob run exact.
            execution: match j.get("execution") {
                Ok(v) => {
                    let name = v.as_str()?;
                    Execution::by_name(name).ok_or_else(|| {
                        SpecError::new(format!("unknown execution strategy `{name}`"))
                    })?
                }
                Err(_) => Execution::Exact,
            },
            // Likewise: documents predating checkpoints have none.
            checkpoint: match j.get("checkpoint") {
                Ok(Json::Null) | Err(_) => None,
                Ok(c) => Some(CheckpointPolicy {
                    every: c.get("every")?.as_u64()?,
                }),
            },
        })
    }

    /// Deserialize from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        Self::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_value_round_trip() {
        let v = Json::Obj(vec![
            ("s".into(), Json::Str("a\"b\\c\nd".into())),
            ("n".into(), Json::Num(0.25)),
            ("i".into(), Json::Num(1048576.0)),
            ("b".into(), Json::Bool(true)),
            ("z".into(), Json::Null),
            (
                "arr".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Str("x".into())]),
            ),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn parse_accepts_whitespace() {
        let text = " { \"a\" : [ 1 , 2 ] , \"b\" : null } ";
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn float_render_round_trips() {
        for x in [0.1, 1.0 / 3.0, 1e-9, 123456789.125, 0.0] {
            let text = Json::Num(x).render();
            match Json::parse(&text).unwrap() {
                Json::Num(y) => assert_eq!(x, y, "text {text}"),
                other => panic!("expected number, got {other:?}"),
            }
        }
    }

    #[test]
    fn channel_spec_round_trips_and_rejects_unknown_models() {
        for model in contention_sim::ChannelModel::all() {
            let spec = ChannelSpec::by_name(model.name())
                .unwrap()
                .with_listen_cost(0.125);
            let parsed = channel_from_json(&channel_to_json(&spec)).unwrap();
            assert_eq!(parsed, spec);
        }
        let bad = Json::obj(vec![
            ("model", Json::Str("duplex".into())),
            ("listen_cost", Json::Num(0.0)),
        ]);
        assert!(channel_from_json(&bad).is_err());
        // Hand-written specs may give just the model: listen_cost is
        // optional and defaults to free listening.
        let bare = Json::obj(vec![("model", Json::Str("cd".into()))]);
        assert_eq!(
            channel_from_json(&bare).unwrap(),
            ChannelSpec::collision_detection()
        );
    }

    #[test]
    fn pre_channel_documents_parse_with_the_default_model() {
        // A spec serialized before the channel field existed must load as
        // the paper's model.
        let spec = ScenarioSpec::batch(4, 0.0);
        let mut json = spec.to_json();
        if let Json::Obj(pairs) = &mut json {
            pairs.retain(|(k, _)| k != "channel");
        }
        let parsed = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(parsed.channel, ChannelSpec::no_collision_detection());
        assert_eq!(parsed, spec);
    }

    #[test]
    fn non_finite_renders_as_null() {
        // Regression: `{x:?}` used to emit `NaN` / `inf` — invalid JSON
        // that our own parser rejected, breaking spec round-trips.
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let text = Json::Num(x).render();
            assert_eq!(text, "null", "non-finite {x} must render as null");
            assert_eq!(Json::parse(&text).unwrap(), Json::Null);
        }
        // Embedded in a document the output stays parseable.
        let doc = Json::Obj(vec![
            ("p".into(), Json::Num(f64::NAN)),
            ("q".into(), Json::Num(2.5)),
        ]);
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed.get("p").unwrap(), &Json::Null);
        assert_eq!(parsed.get("q").unwrap(), &Json::Num(2.5));
    }
}
