//! The named scenario registry: every workload the experiments and
//! examples use, enumerable from one place.
//!
//! Names are `base` or `base/param` (e.g. `batch/64`,
//! `constant-jamming/0.25`, `saturated-budgeted/log`): [`lookup`] parses
//! the parameter, so one registry entry covers a whole family.
//! [`names`] lists the canonical instances (what the registry smoke test
//! runs); [`entries`] adds a one-line summary per family.

use contention_sim::Execution;

use super::spec::{
    AdversarySpec, AlgoSpec, ArrivalSpec, BaselineSpec, BudgetSpec, ChannelSpec, CurveSpec, GSpec,
    JammingSpec, ParamsSpec, ScenarioSpec, SmoothSpec,
};

/// One registry family.
#[derive(Debug, Clone, Copy)]
pub struct RegistryEntry {
    /// Canonical instance name (`base` or `base/param`).
    pub name: &'static str,
    /// What the scenario exercises.
    pub summary: &'static str,
}

/// The canonical registry instances with summaries.
pub fn entries() -> Vec<RegistryEntry> {
    vec![
        RegistryEntry {
            name: "batch/32",
            summary: "n nodes arrive together on a clean channel (param: n)",
        },
        RegistryEntry {
            name: "batch-jammed/256",
            summary: "batch of n with 25% of slots jammed at random (param: n)",
        },
        RegistryEntry {
            name: "constant-jamming/0.4",
            summary: "critical offered load with fraction p of slots jammed (param: p)",
        },
        RegistryEntry {
            name: "saturated/32",
            summary: "standing backlog of n kept alive over a fixed horizon (param: n)",
        },
        RegistryEntry {
            name: "saturated-budgeted/log",
            summary: "saturated + jammed, clamped to the Definition-1.1 budget for g (param: const|log|log2|expsqrt)",
        },
        RegistryEntry {
            name: "bursty",
            summary: "periodic arrival bursts under 25% random jamming",
        },
        RegistryEntry {
            name: "poisson/0.02",
            summary: "Poisson arrivals at rate r under 25% random jamming (param: r)",
        },
        RegistryEntry {
            name: "front-loaded/4096",
            summary: "a lone node behind a J-slot jam wall (param: J)",
        },
        RegistryEntry {
            name: "reactive/4",
            summary: "arrival bursts + a jammer that jams b slots after every success (param: b)",
        },
        RegistryEntry {
            name: "gilbert-elliott/0.25",
            summary: "Poisson arrivals under two-state Markov interference bursts (param: jammed fraction)",
        },
        RegistryEntry {
            name: "smooth",
            summary: "greedy adversary constrained to Corollary-3.6 smoothness windows",
        },
        RegistryEntry {
            name: "cd-batch/64",
            summary: "jammed batch of n on a ternary collision-detection channel, CD-aware roster (param: n)",
        },
        RegistryEntry {
            name: "ack-only-batch/64",
            summary: "jammed batch of n with ack-only feedback: listeners and adversary hear nothing (param: n)",
        },
        RegistryEntry {
            name: "sparse-wall/65536",
            summary: "256 smoothed-BEB nodes behind a J-slot jam wall, skip-ahead execution (param: J)",
        },
        RegistryEntry {
            name: "sparse-batch/100000",
            summary: "mega batch of n smoothed-BEB nodes, only feasible under skip-ahead (param: n)",
        },
        RegistryEntry {
            name: "sparse-poly/1000000",
            summary: "n nodes on the polynomial schedule i^-1.5, skip-ahead mega-scale (param: n)",
        },
        RegistryEntry {
            name: "lane-batch/256",
            summary: "batch of n poly-schedule nodes, bit-parallel execution: 64 seeds per engine pass (param: n)",
        },
        RegistryEntry {
            name: "lane-batch-jammed/256",
            summary: "jammed bit-parallel batch of n; restart-on-success roster exercises lane divergence (param: n)",
        },
        RegistryEntry {
            name: "uniform-random",
            summary: "nodes injected at uniformly random slots (Lemma 4.1's random nodes)",
        },
        RegistryEntry {
            name: "staggered",
            summary: "single nodes trickling in while earlier ones still work, 20% jamming",
        },
        RegistryEntry {
            name: "lowerbound/theorem13",
            summary: "the Theorem 1.3 forced-access script against a lone node",
        },
        RegistryEntry {
            name: "lowerbound/lemma41",
            summary: "the Lemma 4.1 flood that drowns aggressive senders",
        },
        RegistryEntry {
            name: "lowerbound/theorem42",
            summary: "the Theorem 4.2 prefix-jam + crowd script against schedules",
        },
    ]
}

/// The canonical registry names.
pub fn names() -> Vec<&'static str> {
    entries().into_iter().map(|e| e.name).collect()
}

/// Resolve a scenario name (canonical or parameterized) to its spec.
pub fn lookup(name: &str) -> Option<ScenarioSpec> {
    let (base, param) = match name.split_once('/') {
        Some((base, param)) => (base, Some(param)),
        None => (name, None),
    };
    let parse_u32 =
        |default: u32| -> Option<u32> { param.map_or(Some(default), |p| p.parse().ok()) };
    let parse_u64 =
        |default: u64| -> Option<u64> { param.map_or(Some(default), |p| p.parse().ok()) };
    let parse_f64 =
        |default: f64| -> Option<f64> { param.map_or(Some(default), |p| p.parse().ok()) };

    let spec = match base {
        "batch" => {
            let n = parse_u32(32)?;
            ScenarioSpec::batch(n, 0.0)
                .until_drained(drain_cap(n))
                .seeds(5)
        }
        "batch-jammed" => {
            let n = parse_u32(256)?;
            ScenarioSpec::batch(n, 0.25)
                .until_drained(drain_cap(n))
                .seeds(5)
        }
        "constant-jamming" => {
            let p = parse_f64(0.4)?;
            ScenarioSpec::new(format!("constant-jamming/{p}"))
                .algo(AlgoSpec::cjz_constant_jamming())
                .arrivals(ArrivalSpec::saturated())
                .jamming(JammingSpec::random(p))
                .budget(BudgetSpec {
                    params: ParamsSpec::constant_jamming(),
                    arrivals: CurveSpec::CriticalArrivals { scale: 2.0 },
                    jams: CurveSpec::Unlimited,
                })
                .fixed_horizon(1 << 14)
                .seeds(5)
        }
        "saturated" => {
            let n = parse_u64(32)?;
            ScenarioSpec::new(format!("saturated/{n}"))
                .algo(AlgoSpec::cjz_constant_jamming())
                .arrivals(ArrivalSpec::Saturated {
                    target: Some(n),
                    budget: None,
                    horizon: None,
                })
                .fixed_horizon(1 << 14)
                .seeds(5)
        }
        "saturated-budgeted" => {
            let (g, jam) = match param.unwrap_or("log") {
                "const" => (GSpec::Constant(2.0), 0.4),
                "log" => (GSpec::Log, 0.25),
                "log2" => (GSpec::PolyLog(2), 0.15),
                "expsqrt" => (GSpec::ExpSqrtLog(1.0), 0.1),
                _ => return None,
            };
            let params = ParamsSpec::new(g);
            ScenarioSpec::new(format!("saturated-budgeted/{}", param.unwrap_or("log")))
                .algo(AlgoSpec::Cjz(params.clone()))
                .arrivals(ArrivalSpec::saturated())
                .jamming(JammingSpec::random(jam))
                .budget(BudgetSpec::critical(params, 4.0))
                .fixed_horizon(1 << 14)
                .seeds(5)
        }
        "bursty" => ScenarioSpec::new("bursty")
            .algo(AlgoSpec::cjz_constant_jamming())
            .arrivals(ArrivalSpec::Bursty {
                period: 512,
                phase: 1,
                size: 32,
                bursts: 16,
            })
            .jamming(JammingSpec::random(0.25))
            .fixed_horizon(1 << 14)
            .seeds(5),
        "poisson" => {
            let rate = parse_f64(0.02)?;
            ScenarioSpec::new(format!("poisson/{rate}"))
                .algo(AlgoSpec::cjz_constant_jamming())
                .arrivals(ArrivalSpec::Poisson {
                    rate,
                    horizon: None,
                })
                .jamming(JammingSpec::random(0.25))
                .fixed_horizon(1 << 14)
                .seeds(5)
        }
        "front-loaded" => {
            let j = parse_u64(4096)?;
            ScenarioSpec::new(format!("front-loaded/{j}"))
                .algo(AlgoSpec::cjz_constant_jamming())
                .arrivals(ArrivalSpec::batch(1))
                .jamming(JammingSpec::FrontLoaded { until: j })
                .until_drained(64 * j + 1_000_000)
                .seeds(5)
        }
        "reactive" => {
            let burst = parse_u64(4)?;
            ScenarioSpec::new(format!("reactive/{burst}"))
                .algo(AlgoSpec::cjz_constant_jamming())
                .arrivals(ArrivalSpec::Bursty {
                    period: 512,
                    phase: 1,
                    size: 32,
                    bursts: 16,
                })
                .jamming(JammingSpec::Reactive { burst })
                .fixed_horizon(1 << 14)
                .seeds(5)
        }
        "gilbert-elliott" => {
            let fraction = parse_f64(0.25)?;
            ScenarioSpec::new(format!("gilbert-elliott/{fraction}"))
                .algo(AlgoSpec::cjz_constant_jamming())
                .arrivals(ArrivalSpec::Poisson {
                    rate: 0.04,
                    horizon: Some(55_000),
                })
                .jamming(JammingSpec::GilbertElliott {
                    fraction,
                    burst_len: 64.0,
                })
                .fixed_horizon(60_000)
                .seeds(5)
        }
        "cd-batch" => {
            let n = parse_u32(64)?;
            ScenarioSpec::new(format!("cd-batch/{n}"))
                .algos(cross_model_roster())
                .arrivals(ArrivalSpec::batch(n))
                .jamming(JammingSpec::random(0.25))
                .channel(ChannelSpec::collision_detection().with_listen_cost(0.1))
                .until_drained(drain_cap(n))
                .seeds(5)
        }
        "ack-only-batch" => {
            let n = parse_u32(64)?;
            ScenarioSpec::new(format!("ack-only-batch/{n}"))
                .algos(cross_model_roster())
                .arrivals(ArrivalSpec::batch(n))
                .jamming(JammingSpec::random(0.25))
                .channel(ChannelSpec::ack_only())
                .until_drained(drain_cap(n))
                .seeds(5)
        }
        "smooth" => {
            let params = ParamsSpec::constant_jamming();
            ScenarioSpec::new("smooth")
                .algo(AlgoSpec::cjz_constant_jamming())
                .arrivals(ArrivalSpec::saturated())
                .jamming(JammingSpec::random(0.4))
                .smooth(SmoothSpec {
                    params,
                    ca: 1.0,
                    cd: 0.5,
                })
                .fixed_horizon(1 << 14)
                .seeds(5)
        }
        // The skip-ahead showcase: a `lowerbound/theorem13`-class sparse
        // workload (long jam wall, decaying send probabilities) that the
        // exact engine must grind through slot by slot. The perf suite
        // pins it in both execution modes to record the speedup.
        "sparse-wall" => {
            let j = parse_u64(65_536)?;
            ScenarioSpec::new(format!("sparse-wall/{j}"))
                .algo(AlgoSpec::Baseline(BaselineSpec::SmoothedBeb))
                .arrivals(ArrivalSpec::batch(256))
                .jamming(JammingSpec::FrontLoaded { until: j })
                .fixed_horizon(j.saturating_mul(4))
                .seeds(8)
                .aggregate_only()
                .execution(Execution::SkipAhead)
        }
        // Mega-scale batch: ~n·ln n broadcast events regardless of the
        // horizon, so skip-ahead drains 100k nodes in seconds where the
        // exact engine would need ~n slots of work per slot.
        "sparse-batch" => {
            let n = parse_u32(100_000)?;
            ScenarioSpec::new(format!("sparse-batch/{n}"))
                .algo(AlgoSpec::Baseline(BaselineSpec::SmoothedBeb))
                .arrivals(ArrivalSpec::batch(n))
                .until_drained(64u64.saturating_mul(u64::from(n).max(1024)))
                .seeds(3)
                .aggregate_only()
                .history_retention(4096)
                .execution(Execution::SkipAhead)
        }
        // Mega-scale polynomial schedule (`p_i = i^-1.5`): each node's
        // expected lifetime send count is ζ(1.5) ≈ 2.6, so even a
        // million-node population generates only a few million events.
        "sparse-poly" => {
            let n = parse_u32(1_000_000)?;
            ScenarioSpec::new(format!("sparse-poly/{n}"))
                .algo(AlgoSpec::Baseline(BaselineSpec::PolySchedule(1.5)))
                .arrivals(ArrivalSpec::batch(n))
                .fixed_horizon(1 << 20)
                .seeds(1)
                .aggregate_only()
                .history_retention(4096)
                .execution(Execution::SkipAhead)
        }
        // The bit-parallel showcase: a lane-eligible batch (non-adaptive
        // adversary, default channel, feedback-static schedule protocol)
        // that the lane engine advances 64 seeds at a time. The perf
        // suite pins it in both execution modes to record the speedup.
        //
        // The roster is the polynomial schedule `p_i = i^-1.5` — a
        // deliberately non-interned schedule (no ProbTable), so the
        // scalar engine re-evaluates the power law for every node in
        // every slot while the lane engine evaluates it once per cell
        // and resolves all 64 lanes against the shared threshold. A
        // fixed horizon keeps the batch population standing (ζ(1.5) is
        // finite, so the population never drains) and every cell in the
        // lockstep fast path.
        "lane-batch" => {
            let n = parse_u32(256)?;
            ScenarioSpec::new(format!("lane-batch/{n}"))
                .algo(AlgoSpec::Baseline(BaselineSpec::PolySchedule(1.5)))
                .arrivals(ArrivalSpec::batch(n))
                .fixed_horizon(1024)
                .seeds(64)
                .aggregate_only()
                .execution(Execution::BitParallel)
        }
        // Lane divergence under fire: periodic jamming (forecastable, so
        // still lane-eligible — random jamming is not) plus the
        // restart-on-success roster makes per-lane schedule positions
        // diverge, so the engine's masked resample path does real work.
        "lane-batch-jammed" => {
            let n = parse_u32(256)?;
            ScenarioSpec::new(format!("lane-batch-jammed/{n}"))
                .algo(AlgoSpec::Baseline(BaselineSpec::SmoothedBeb))
                .algo(AlgoSpec::Baseline(BaselineSpec::ResetBeb))
                .arrivals(ArrivalSpec::batch(n))
                .jamming(JammingSpec::Periodic {
                    period: 4,
                    phase: 2,
                })
                .until_drained(drain_cap(n))
                .seeds(64)
                .aggregate_only()
                .execution(Execution::BitParallel)
        }
        "uniform-random" => ScenarioSpec::new("uniform-random")
            .algo(AlgoSpec::cjz_constant_jamming())
            .arrivals(ArrivalSpec::UniformRandom {
                total: 256,
                horizon: 8192,
            })
            .until_drained(1_000_000)
            .seeds(5),
        "staggered" => ScenarioSpec::new("staggered")
            .algo(AlgoSpec::cjz_constant_jamming())
            .arrivals(ArrivalSpec::Scripted {
                slots: (0..20).map(|i| (1 + i * 37, 1)).collect(),
            })
            .jamming(JammingSpec::random(0.2))
            .until_drained(1_000_000)
            .seeds(5),
        "lowerbound" => match param? {
            "theorem13" => ScenarioSpec::new("lowerbound/theorem13")
                .algo(AlgoSpec::cjz_constant_jamming())
                .adversary(AdversarySpec::Theorem13 {
                    horizon: 4096,
                    g_of_t: 2.0,
                })
                .fixed_horizon(4096)
                .seeds(5),
            "lemma41" => ScenarioSpec::new("lowerbound/lemma41")
                .algo(AlgoSpec::Baseline(BaselineSpec::Aloha(0.3)))
                .algo(AlgoSpec::cjz_constant_jamming())
                .adversary(AdversarySpec::Lemma41 {
                    horizon: 4096,
                    batch_per_slot: 8,
                    random_total: 64,
                })
                .fixed_horizon(4096)
                .seeds(5),
            "theorem42" => ScenarioSpec::new("lowerbound/theorem42")
                .algo(AlgoSpec::Baseline(BaselineSpec::SmoothedBeb))
                .adversary(AdversarySpec::Theorem42 {
                    horizon: 4096,
                    g_of_t: 2.0,
                    f_of_t: 1.0,
                })
                .fixed_horizon(4096)
                .seeds(5),
            _ => return None,
        },
        _ => return None,
    };
    Some(spec)
}

/// Drain-cap heuristic for batch scenarios: generous multiple of the
/// worst-case `n log n` drain bound.
fn drain_cap(n: u32) -> u64 {
    4096u64.saturating_mul(u64::from(n).max(64))
}

/// The roster the cross-model scenarios (and the `cd-vs-nocd` campaigns)
/// share: the paper's protocol, an oblivious classical baseline, a
/// success-reactive baseline (blinded under ack-only), and a
/// collision-triggered one (empowered under collision detection).
pub fn cross_model_roster() -> Vec<AlgoSpec> {
    vec![
        AlgoSpec::cjz_constant_jamming(),
        AlgoSpec::Baseline(BaselineSpec::BinaryExponential),
        AlgoSpec::Baseline(BaselineSpec::ResetBeb),
        AlgoSpec::Baseline(BaselineSpec::CdBackoff),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_canonical_name_resolves() {
        for entry in entries() {
            let spec = lookup(entry.name)
                .unwrap_or_else(|| panic!("registry name {} must resolve", entry.name));
            assert!(
                !spec.algos.is_empty(),
                "{} resolves to an empty roster",
                entry.name
            );
        }
    }

    #[test]
    fn registry_has_at_least_ten_scenarios() {
        assert!(names().len() >= 10, "registry too small: {:?}", names());
    }

    #[test]
    fn parameterized_lookup_parses_values() {
        let spec = lookup("batch/64").unwrap();
        match &spec.adversary {
            AdversarySpec::Composite { arrival, .. } => {
                assert_eq!(*arrival, ArrivalSpec::Batch { at: 1, count: 64 })
            }
            other => panic!("unexpected adversary {other:?}"),
        }
        let spec = lookup("constant-jamming/0.25").unwrap();
        match &spec.adversary {
            AdversarySpec::Composite { jamming, .. } => {
                assert_eq!(*jamming, JammingSpec::Random { p: 0.25 })
            }
            other => panic!("unexpected adversary {other:?}"),
        }
        assert!(lookup("batch/not-a-number").is_none());
        assert!(lookup("no-such-scenario").is_none());
        assert!(lookup("lowerbound/unknown").is_none());
    }

    #[test]
    fn cross_model_entries_set_their_channel() {
        use contention_sim::ChannelModel;
        let cd = lookup("cd-batch/32").unwrap();
        assert_eq!(cd.channel.model, ChannelModel::CollisionDetection);
        assert!(cd.channel.listen_cost > 0.0);
        let ack = lookup("ack-only-batch/32").unwrap();
        assert_eq!(ack.channel.model, ChannelModel::AckOnly);
        // The default entries keep the paper's model.
        assert_eq!(
            lookup("batch/64").unwrap().channel.model,
            ChannelModel::NoCollisionDetection
        );
    }

    #[test]
    fn saturated_budgeted_covers_g_spectrum() {
        for g in ["const", "log", "log2", "expsqrt"] {
            let spec = lookup(&format!("saturated-budgeted/{g}")).unwrap();
            assert!(spec.budget.is_some(), "budget missing for g={g}");
        }
    }
}
