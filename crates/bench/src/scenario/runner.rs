//! Executing a [`ScenarioSpec`]: replication, record-mode policy, and
//! metric extraction.
//!
//! The runner is the only place the bench layer touches the simulator:
//! every experiment — batch binaries, examples, integration tests — goes
//! `ScenarioSpec` → [`ScenarioRunner`] → [`TrialOutcome`]s, so record-mode
//! policy (full traces vs memory-bounded aggregates), seed layout and
//! thread-bounded replication live in exactly one place.

use contention_sim::adversary::Adversary;
use contention_sim::lanes::{lane_eligible, LaneSimulator, LANES};
use contention_sim::SlotRecord;
use contention_sim::{SimConfig, Simulator, Snapshot, SnapshotError, StopReason, Trace};

use super::registry;
use super::spec::{AlgoSpec, HorizonSpec, RecordMode, ScenarioSpec};

/// Default cap on the estimated in-memory slot-record footprint of a
/// full-record run: 1 GiB. Runs estimated above the cap are refused with
/// a [`FootprintError`] pointing at window replay; raise or lower it per
/// runner with [`ScenarioRunner::record_cap_bytes`].
pub const DEFAULT_RECORD_CAP_BYTES: u64 = 1 << 30;

/// A full-record run was refused because its estimated slot-record
/// footprint exceeds the runner's cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FootprintError {
    /// Scenario name, for the message.
    pub name: String,
    /// Estimated bytes of stored slot records across the whole run.
    pub estimated: u64,
    /// The configured cap.
    pub cap: u64,
}

impl std::fmt::Display for FootprintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scenario `{}`: a full-record run would store an estimated {} MiB of slot \
             records (cap {} MiB); run aggregate-only with a checkpoint policy and \
             replay just the slots you need (`scenarios {} --window LO..HI`), or raise \
             the cap with ScenarioRunner::record_cap_bytes",
            self.name,
            self.estimated >> 20,
            self.cap >> 20,
            self.name,
        )
    }
}

impl std::error::Error for FootprintError {}

/// Outcome of one simulation trial.
#[derive(Debug, Clone)]
pub struct TrialOutcome {
    /// The recorded trace.
    pub trace: Trace,
    /// Slots actually executed.
    pub slots: u64,
    /// Whether the system drained before the slot limit.
    pub drained: bool,
}

impl TrialOutcome {
    /// Classical delivery rate: delivered messages per executed slot.
    pub fn delivery_rate(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.trace.total_successes() as f64 / self.slots as f64
        }
    }
}

/// Replicate a seeded computation across `seeds` seeds, work-stealing
/// style: `min(available_parallelism, seeds)` persistent worker threads
/// pull the next seed index from a shared atomic cursor, so a straggler
/// seed never idles the rest of the pool (the old implementation ran
/// fixed chunks with a barrier between them, stalling every chunk on its
/// slowest member). Results come back in seed order regardless of
/// completion order, and `f(i)` is called exactly once per seed — the
/// output is deterministic, only the schedule is dynamic.
///
/// No worker thread is ever spawned when it could not help: zero or one
/// job, or a single-core host, runs inline on the calling thread — even
/// smoke suites that replicate hundreds of sub-millisecond trials one
/// seed at a time never pay thread spawn/join churn. With more jobs the
/// pool is capped at `min(threads, jobs)` so no worker can sit idle from
/// the start.
pub fn replicate<T, F>(seeds: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    use std::sync::atomic::{AtomicU64, Ordering};

    let jobs = seeds;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(4);
    if jobs <= 1 || threads == 1 {
        return (0..jobs).map(f).collect();
    }
    let workers = threads.min(jobs);

    let cursor = AtomicU64::new(0);
    let mut results: Vec<Option<T>> = (0..seeds).map(|_| None).collect();
    let f = &f;
    let cursor = &cursor;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut done: Vec<(u64, T)> = Vec::new();
                    loop {
                        let seed = cursor.fetch_add(1, Ordering::Relaxed);
                        if seed >= seeds {
                            break;
                        }
                        done.push((seed, f(seed)));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (seed, value) in handle.join().expect("trial thread panicked") {
                results[seed as usize] = Some(value);
            }
        }
    });
    results.into_iter().map(|r| r.expect("filled")).collect()
}

/// Results of one algorithm across all of a scenario's seeds.
#[derive(Debug, Clone)]
pub struct AlgoReport {
    /// The algorithm that ran.
    pub algo: AlgoSpec,
    /// Its display name.
    pub name: String,
    /// One outcome per seed, in seed order.
    pub outcomes: Vec<TrialOutcome>,
}

impl AlgoReport {
    /// Mean delivered messages across seeds.
    pub fn mean_successes(&self) -> f64 {
        mean(
            self.outcomes
                .iter()
                .map(|o| o.trace.total_successes() as f64),
        )
    }

    /// Mean executed slots across seeds.
    pub fn mean_slots(&self) -> f64 {
        mean(self.outcomes.iter().map(|o| o.slots as f64))
    }

    /// Mean delivered latency across seeds (seeds without departures are
    /// skipped).
    pub fn mean_latency(&self) -> Option<f64> {
        let vals: Vec<f64> = self
            .outcomes
            .iter()
            .filter_map(|o| o.trace.mean_latency())
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(mean(vals.iter().copied()))
        }
    }

    /// Whether every seed drained.
    pub fn all_drained(&self) -> bool {
        self.outcomes.iter().all(|o| o.drained)
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u64);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Results of a full scenario run (every algorithm × every seed).
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// One report per roster algorithm, in roster order.
    pub algos: Vec<AlgoReport>,
}

/// One (algorithm, seed) trial run in checkpoint-capture mode: the
/// outcome plus every [`Snapshot`] taken along the way (slot 0 included),
/// in slot order. Produced by
/// [`ScenarioRunner::run_seed_checkpointed`]; consumed by the forensics
/// layer's window replayer.
#[derive(Debug)]
pub struct CheckpointedTrial {
    /// The seed that ran.
    pub seed: u64,
    /// The trial outcome (aggregate trace; per-slot records are never
    /// stored on the checkpointed path — replay a window instead).
    pub outcome: TrialOutcome,
    /// Snapshots at slot 0 and at every chunk boundary the run crossed.
    pub snapshots: Vec<Snapshot<AlgoSpec>>,
}

/// Executes [`ScenarioSpec`]s.
#[derive(Debug, Clone)]
pub struct ScenarioRunner {
    spec: ScenarioSpec,
    record_cap: u64,
}

impl ScenarioRunner {
    /// Runner for a spec.
    pub fn new(spec: ScenarioSpec) -> Self {
        ScenarioRunner {
            spec,
            record_cap: DEFAULT_RECORD_CAP_BYTES,
        }
    }

    /// Runner for a named registry scenario (see
    /// [`registry::lookup`]).
    pub fn from_registry(name: &str) -> Option<Self> {
        registry::lookup(name).map(Self::new)
    }

    /// The spec.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Recover the spec.
    pub fn into_spec(self) -> ScenarioSpec {
        self.spec
    }

    /// Override the full-record footprint cap
    /// ([`DEFAULT_RECORD_CAP_BYTES`] by default). `u64::MAX` disables the
    /// guard entirely.
    pub fn record_cap_bytes(mut self, bytes: u64) -> Self {
        self.record_cap = bytes;
        self
    }

    /// Estimated bytes of slot records a full roster run would store:
    /// `algos × seeds × horizon-cap × sizeof(SlotRecord)`. Zero in
    /// aggregate mode (nothing is stored). An upper-bound estimate —
    /// drained runs stop early — which is exactly what a memory guard
    /// wants.
    pub fn estimated_record_bytes(&self) -> u64 {
        match self.spec.record {
            RecordMode::Aggregate => 0,
            RecordMode::Full => self
                .spec
                .horizon
                .cap()
                .saturating_mul(std::mem::size_of::<SlotRecord>() as u64)
                .saturating_mul(self.spec.seeds)
                .saturating_mul(self.spec.algos.len().max(1) as u64),
        }
    }

    /// The guard rail: refuse full-record runs whose estimated
    /// slot-record footprint exceeds the configured cap. [`run`] and
    /// [`run_algo`] enforce this (panicking with the error's message);
    /// [`try_run`] surfaces it as a `Result` for CLIs.
    ///
    /// [`run`]: Self::run
    /// [`run_algo`]: Self::run_algo
    /// [`try_run`]: Self::try_run
    pub fn check_record_footprint(&self) -> Result<(), FootprintError> {
        let estimated = self.estimated_record_bytes();
        if estimated > self.record_cap {
            return Err(FootprintError {
                name: self.spec.name.clone(),
                estimated,
                cap: self.record_cap,
            });
        }
        Ok(())
    }

    fn config(&self, seed: u64) -> SimConfig {
        let mut config = SimConfig::with_seed(seed)
            .with_channel(self.spec.channel.model)
            .with_execution(self.spec.execution);
        if let RecordMode::Aggregate = self.spec.record {
            config = config.without_slot_records();
        }
        if let Some(cap) = self.spec.history_retention {
            config = config.with_history_retention(cap as usize);
        }
        config
    }

    /// Build the simulator for one (algorithm, seed) pair — the scenario's
    /// adversary stack fully assembled, nothing run yet. For experiments
    /// that need slot-by-slot inspection (ages, streaming stats).
    pub fn sim(&self, algo: &AlgoSpec, seed: u64) -> Simulator<AlgoSpec, Box<dyn Adversary>> {
        Simulator::new(self.config(seed), algo.clone(), self.spec.build_adversary())
    }

    /// Seeds advanced per engine instance for `algo`: [`LANES`] when the
    /// scenario is lane-eligible under [`Execution::BitParallel`]
    /// (non-adaptive forecastable adversary, default channel, feedback-static
    /// lane-capable protocol), 1 otherwise. Replication layers — [`collect`]
    /// here, the campaign scheduler — use this to decide whether seeds are
    /// handed out one at a time or in 64-wide blocks.
    ///
    /// [`Execution::BitParallel`]: contention_sim::Execution::BitParallel
    /// [`collect`]: Self::collect
    pub fn lane_block(&self, algo: &AlgoSpec) -> u64 {
        let adversary = self.spec.build_adversary();
        if lane_eligible(&self.config(self.spec.seed_base), algo, adversary.as_ref()) {
            LANES as u64
        } else {
            1
        }
    }

    /// Build the lane simulator for the seed block
    /// `first_seed .. first_seed + n` — one lane per seed, each with its
    /// own adversary instance, nothing run yet. Callers must have checked
    /// [`lane_block`](Self::lane_block) first; the lane engine itself
    /// asserts `1 <= n <= 64`.
    pub fn lane_sim(
        &self,
        algo: &AlgoSpec,
        first_seed: u64,
        n: u64,
    ) -> LaneSimulator<AlgoSpec, Box<dyn Adversary>> {
        let lane_seeds: Vec<u64> = (first_seed..first_seed + n).collect();
        let adversaries: Vec<Box<dyn Adversary>> =
            (0..n).map(|_| self.spec.build_adversary()).collect();
        LaneSimulator::new(
            self.config(first_seed),
            &lane_seeds,
            algo.clone(),
            adversaries,
        )
    }

    /// Lane counterpart of [`run_seed`](Self::run_seed): run the seed
    /// block `first_seed .. first_seed + n` in lockstep under the
    /// scenario's horizon policy and return one outcome per seed, in seed
    /// order — bit-for-bit the outcomes [`run_seed`](Self::run_seed)
    /// would produce for the same seeds one at a time.
    pub fn run_seed_block(&self, algo: &AlgoSpec, first_seed: u64, n: u64) -> Vec<TrialOutcome> {
        let mut sim = self.lane_sim(algo, first_seed, n);
        match self.spec.horizon {
            HorizonSpec::UntilDrained { max_slots } => sim.run_until_drained(max_slots),
            HorizonSpec::Fixed { slots } => sim.run_for(slots),
        }
        let per_lane: Vec<(u64, bool)> = (0..n as usize)
            .map(|j| (sim.lane_slots(j), sim.lane_drained(j)))
            .collect();
        sim.into_traces()
            .into_iter()
            .zip(per_lane)
            .map(|(trace, (slots, drained))| TrialOutcome {
                trace,
                slots,
                drained,
            })
            .collect()
    }

    /// Run one (algorithm, seed) pair under the scenario's horizon policy.
    ///
    /// With a [`CheckpointPolicy`](super::spec::CheckpointPolicy) on the spec, the run advances in
    /// `every`-slot chunks through the streaming path instead — the exact
    /// call pattern checkpoint capture and window replay use — so sparse
    /// (`SkipAhead`) trajectories are identical across plain runs,
    /// capture passes and replays. On that path per-slot records are
    /// never stored (replay a window for full fidelity) and drain is
    /// detected at chunk boundaries.
    pub fn run_seed(&self, algo: &AlgoSpec, seed: u64) -> TrialOutcome {
        if let Some(policy) = self.spec.checkpoint {
            let mut sim = self.sim(algo, seed);
            let drain_bounded = matches!(self.spec.horizon, HorizonSpec::UntilDrained { .. });
            loop {
                if self.advance_chunk(&mut sim, policy.every, |_, _| {}) == 0 {
                    break;
                }
                if drain_bounded && sim.active_count() == 0 && sim.adversary().exhausted() {
                    break;
                }
            }
            let drained = sim.active_count() == 0 && sim.adversary().exhausted();
            let slots = sim.current_slot();
            return TrialOutcome {
                trace: sim.into_trace(),
                slots,
                drained,
            };
        }
        let mut sim = self.sim(algo, seed);
        let drained = match self.spec.horizon {
            HorizonSpec::UntilDrained { max_slots } => {
                sim.run_until_drained(max_slots) == StopReason::Drained
            }
            HorizonSpec::Fixed { slots } => {
                sim.run_for(slots);
                sim.active_count() == 0 && sim.adversary().exhausted()
            }
        };
        let slots = sim.current_slot();
        TrialOutcome {
            trace: sim.into_trace(),
            slots,
            drained,
        }
    }

    /// Advance `sim` to the next checkpoint chunk boundary (the next
    /// multiple of `every`, clipped at the horizon cap), streaming each
    /// slot's record to `observe`. Returns the slots advanced; 0 means
    /// the horizon cap is reached.
    ///
    /// This is **the** chunk-advancement primitive: checkpointed runs,
    /// capture passes and window replays all route through it, which is
    /// what pins the sparse engine (whose trajectory depends on each run
    /// call's end bound) to one reproducible trajectory per (spec, seed).
    pub fn advance_chunk<A: Adversary>(
        &self,
        sim: &mut Simulator<AlgoSpec, A>,
        every: u64,
        observe: impl FnMut(u64, &SlotRecord),
    ) -> u64 {
        let cap = self.spec.horizon.cap();
        let pos = sim.current_slot();
        if pos >= cap {
            return 0;
        }
        let next = (pos / every + 1).saturating_mul(every);
        let chunk = next.min(cap) - pos;
        sim.run_for_with(chunk, observe);
        chunk
    }

    /// Run one (algorithm, seed) pair in checkpoint-capture mode: same
    /// trajectory and outcome as [`run_seed`](Self::run_seed) with the
    /// policy set, plus a [`Snapshot`] at slot 0 and at every chunk
    /// boundary crossed. Fails without side effects if any live
    /// component is not snapshot-capable.
    ///
    /// # Panics
    ///
    /// When the spec carries no [`CheckpointPolicy`](super::spec::CheckpointPolicy).
    pub fn run_seed_checkpointed(
        &self,
        algo: &AlgoSpec,
        seed: u64,
    ) -> Result<CheckpointedTrial, SnapshotError> {
        let policy = self
            .spec
            .checkpoint
            .expect("run_seed_checkpointed requires a checkpoint policy on the spec");
        let mut sim = self.sim(algo, seed);
        let mut snapshots = vec![sim.snapshot()?];
        let drain_bounded = matches!(self.spec.horizon, HorizonSpec::UntilDrained { .. });
        loop {
            if self.advance_chunk(&mut sim, policy.every, |_, _| {}) == 0 {
                break;
            }
            snapshots.push(sim.snapshot()?);
            if drain_bounded && sim.active_count() == 0 && sim.adversary().exhausted() {
                break;
            }
        }
        let drained = sim.active_count() == 0 && sim.adversary().exhausted();
        let slots = sim.current_slot();
        Ok(CheckpointedTrial {
            seed,
            outcome: TrialOutcome {
                trace: sim.into_trace(),
                slots,
                drained,
            },
            snapshots,
        })
    }

    /// Run one algorithm across all seeds (`seed_base .. seed_base+seeds`,
    /// replicated in parallel).
    ///
    /// # Panics
    ///
    /// When the full-record footprint guard trips (see
    /// [`check_record_footprint`](Self::check_record_footprint)).
    pub fn run_algo(&self, algo: &AlgoSpec) -> Vec<TrialOutcome> {
        if let Err(e) = self.check_record_footprint() {
            panic!("{e}");
        }
        self.collect(algo, |_, outcome| outcome)
    }

    /// Run the whole roster, or refuse with a [`FootprintError`] when the
    /// full-record footprint guard trips.
    pub fn try_run(&self) -> Result<ScenarioReport, FootprintError> {
        self.check_record_footprint()?;
        Ok(self.run())
    }

    /// Run the whole roster.
    ///
    /// # Panics
    ///
    /// When the full-record footprint guard trips (see
    /// [`check_record_footprint`](Self::check_record_footprint)); CLIs
    /// should prefer [`try_run`](Self::try_run).
    pub fn run(&self) -> ScenarioReport {
        if let Err(e) = self.check_record_footprint() {
            panic!("{e}");
        }
        ScenarioReport {
            name: self.spec.name.clone(),
            algos: self
                .spec
                .algos
                .iter()
                .map(|algo| AlgoReport {
                    algo: algo.clone(),
                    name: algo.name(),
                    outcomes: self.run_algo(algo),
                })
                .collect(),
        }
    }

    /// Run one algorithm across all seeds, extracting a custom metric
    /// from each outcome. `f` receives `(seed, outcome)`.
    ///
    /// Lane-eligible specs (see [`lane_block`](Self::lane_block)) are
    /// replicated in 64-seed blocks through the bit-parallel engine —
    /// same outcomes per seed, one engine pass per block; everything else
    /// replicates one scalar run per seed.
    pub fn collect<T, F>(&self, algo: &AlgoSpec, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64, TrialOutcome) -> T + Sync,
    {
        let block = self.lane_block(algo);
        if block > 1 {
            let blocks = self.spec.seeds.div_ceil(block);
            let outcomes = replicate(blocks, |b| {
                let first = self.spec.seed_base + b * block;
                let n = block.min(self.spec.seeds - b * block);
                self.run_seed_block(algo, first, n)
            });
            return outcomes
                .into_iter()
                .flatten()
                .enumerate()
                .map(|(i, outcome)| f(self.spec.seed_base + i as u64, outcome))
                .collect();
        }
        replicate(self.spec.seeds, |i| {
            let seed = self.spec.seed_base + i;
            f(seed, self.run_seed(algo, seed))
        })
    }

    /// Run one algorithm across all seeds with full control of the
    /// simulation loop: `f` receives `(seed, simulator)` with the
    /// scenario's adversary stack assembled but no slots executed.
    pub fn collect_sim<T, F>(&self, algo: &AlgoSpec, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64, Simulator<AlgoSpec, Box<dyn Adversary>>) -> T + Sync,
    {
        replicate(self.spec.seeds, |i| {
            let seed = self.spec.seed_base + i;
            f(seed, self.sim(algo, seed))
        })
    }
}

/// One-call convenience: run the classical batch scenario (`n` nodes at
/// slot 1, jam probability `jam_p`) for one algorithm and seed, until
/// drained or `max_slots`.
pub fn run_batch(algo: &AlgoSpec, n: u32, jam_p: f64, seed: u64, max_slots: u64) -> TrialOutcome {
    ScenarioRunner::new(
        ScenarioSpec::batch(n, jam_p)
            .algos([algo.clone()])
            .until_drained(max_slots),
    )
    .run_seed(algo, seed)
}

/// [`run_batch`] in memory-bounded mode (aggregates and departures only,
/// adversary history window capped), for heavy-tailed completion
/// measurements spanning hundreds of millions of slots. The batch
/// adversary never reads per-slot history, so the cap cannot change its
/// behaviour.
pub fn run_batch_light(
    algo: &AlgoSpec,
    n: u32,
    jam_p: f64,
    seed: u64,
    max_slots: u64,
) -> TrialOutcome {
    ScenarioRunner::new(
        ScenarioSpec::batch(n, jam_p)
            .algos([algo.clone()])
            .until_drained(max_slots)
            .aggregate_only()
            .history_retention(4096),
    )
    .run_seed(algo, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ArrivalSpec, BaselineSpec, JammingSpec};

    #[test]
    fn run_batch_drains_small_instance() {
        let algo = AlgoSpec::cjz_constant_jamming();
        let out = run_batch(&algo, 8, 0.0, 1, 100_000);
        assert!(out.drained);
        assert_eq!(out.trace.total_successes(), 8);
        assert!(out.delivery_rate() > 0.0);
    }

    #[test]
    fn run_batch_light_matches_heavy_totals() {
        let algo = AlgoSpec::cjz_constant_jamming();
        let heavy = run_batch(&algo, 8, 0.2, 9, 100_000);
        let light = run_batch_light(&algo, 8, 0.2, 9, 100_000);
        assert_eq!(heavy.slots, light.slots);
        assert_eq!(heavy.trace.total_successes(), light.trace.total_successes());
        assert_eq!(heavy.trace.total_jammed(), light.trace.total_jammed());
        assert_eq!(light.trace.recorded_len(), 0, "light mode stores no slots");
        assert_eq!(heavy.trace.departures(), light.trace.departures());
    }

    #[test]
    fn fixed_horizon_runs_exact_slots() {
        let algo = AlgoSpec::Baseline(BaselineSpec::SmoothedBeb);
        let runner = ScenarioRunner::new(
            ScenarioSpec::new("fixed")
                .algo(algo.clone())
                .arrivals(ArrivalSpec::batch(4))
                .fixed_horizon(500),
        );
        let out = runner.run_seed(&algo, 3);
        assert_eq!(out.trace.len(), 500);
        assert_eq!(out.slots, 500);
    }

    #[test]
    fn replicate_is_ordered_and_deterministic() {
        let xs = replicate(8, |seed| seed * 2);
        assert_eq!(xs, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn replicate_runs_single_jobs_inline() {
        // Zero or one job must never leave the calling thread (no pool
        // spawn/join churn on smoke runs).
        let caller = std::thread::current().id();
        let ran_on = replicate(1, |_| std::thread::current().id());
        assert_eq!(ran_on, vec![caller]);
        assert!(replicate(0, |seed| seed).is_empty());
    }

    #[test]
    fn runner_replicates_with_seed_base() {
        let algo = AlgoSpec::cjz_constant_jamming();
        let runner = ScenarioRunner::new(
            ScenarioSpec::batch(4, 0.0)
                .algos([algo.clone()])
                .seeds(3)
                .seed_base(100)
                .until_drained(50_000),
        );
        let outs = runner.run_algo(&algo);
        assert_eq!(outs.len(), 3);
        assert!(outs.iter().all(|o| o.drained));
        // collect() sees the absolute seeds.
        let seeds = runner.collect(&algo, |seed, _| seed);
        assert_eq!(seeds, vec![100, 101, 102]);
    }

    #[test]
    fn report_aggregates_roster() {
        let spec = ScenarioSpec::new("mini")
            .algo(AlgoSpec::cjz_constant_jamming())
            .algo(AlgoSpec::Baseline(BaselineSpec::BinaryExponential))
            .arrivals(ArrivalSpec::batch(8))
            .jamming(JammingSpec::random(0.1))
            .seeds(2)
            .until_drained(1_000_000);
        let report = ScenarioRunner::new(spec).run();
        assert_eq!(report.name, "mini");
        assert_eq!(report.algos.len(), 2);
        for algo in &report.algos {
            assert!(algo.all_drained(), "{} failed to drain", algo.name);
            assert_eq!(algo.mean_successes(), 8.0);
            assert!(algo.mean_latency().is_some());
            assert!(algo.mean_slots() > 0.0);
        }
    }

    #[test]
    fn footprint_guard_refuses_oversized_full_record_runs() {
        let algo = AlgoSpec::cjz_constant_jamming();
        let runner = ScenarioRunner::new(
            ScenarioSpec::batch(8, 0.0)
                .algos([algo.clone()])
                .until_drained(1 << 40),
        );
        let err = runner.check_record_footprint().unwrap_err();
        assert!(err.estimated > err.cap);
        assert!(err.to_string().contains("--window"), "{err}");
        assert!(runner.try_run().is_err());
        // Aggregate mode stores nothing and always passes.
        let aggregate = ScenarioRunner::new(
            ScenarioSpec::batch(8, 0.0)
                .until_drained(1 << 40)
                .aggregate_only(),
        );
        assert_eq!(aggregate.estimated_record_bytes(), 0);
        assert!(aggregate.check_record_footprint().is_ok());
        // Raising the cap clears the refusal.
        assert!(runner
            .record_cap_bytes(u64::MAX)
            .check_record_footprint()
            .is_ok());
    }

    #[test]
    fn checkpointed_run_matches_chunked_plain_run() {
        let algo = AlgoSpec::cjz_constant_jamming();
        let base = ScenarioSpec::batch(16, 0.2)
            .algos([algo.clone()])
            .until_drained(100_000)
            .aggregate_only();
        let plain = ScenarioRunner::new(base.clone()).run_seed(&algo, 5);
        let chunked = ScenarioRunner::new(base.clone().checkpoint_every(64)).run_seed(&algo, 5);
        // The exact engine is chunk-invariant, so totals agree; the
        // chunked run only overshoots the drain slot to its boundary.
        assert!(plain.drained && chunked.drained);
        assert_eq!(
            plain.trace.total_successes(),
            chunked.trace.total_successes()
        );
        assert_eq!(chunked.slots % 64, 0, "drain detected at a chunk boundary");
        assert!(chunked.slots >= plain.slots);

        let trial = ScenarioRunner::new(base.checkpoint_every(64))
            .run_seed_checkpointed(&algo, 5)
            .expect("capture");
        assert_eq!(trial.outcome.slots, chunked.slots);
        assert_eq!(
            trial.outcome.trace.total_successes(),
            chunked.trace.total_successes()
        );
        assert!(trial.snapshots.len() >= 2);
        assert_eq!(trial.snapshots[0].slot(), 0);
        assert_eq!(trial.snapshots[1].slot(), 64);
    }

    #[test]
    fn collect_sim_exposes_raw_simulator() {
        let algo = AlgoSpec::cjz_constant_jamming();
        let runner =
            ScenarioRunner::new(ScenarioSpec::batch(4, 0.0).algos([algo.clone()]).seeds(2));
        let counts = runner.collect_sim(&algo, |_, mut sim| {
            sim.run_for(1);
            sim.active_count()
        });
        // Slot 1 injects the batch; at most 4 remain after one slot.
        assert_eq!(counts.len(), 2);
        assert!(counts.iter().all(|&c| c <= 4));
    }
}
