//! The declarative scenario specification: experiments as data.
//!
//! A [`ScenarioSpec`] captures everything the paper's result statements
//! quantify over — *protocol P against adversary class A at budget B* —
//! as plain serializable data:
//!
//! * the algorithm roster ([`AlgoSpec`]);
//! * the arrival process ([`ArrivalSpec`]) and jamming strategy
//!   ([`JammingSpec`]), or a scripted lower-bound adversary
//!   ([`AdversarySpec`]);
//! * optional `(f,g)` budget clamps ([`BudgetSpec`]) and smoothness
//!   constraints ([`SmoothSpec`]);
//! * horizon, replication, and record-mode policy.
//!
//! Specs are pure data: building one performs no simulation. The
//! [`ScenarioRunner`](crate::scenario::ScenarioRunner) turns a spec into
//! traces; [`to_json_string`](ScenarioSpec::to_json_string) /
//! [`from_json_str`](ScenarioSpec::from_json_str) round-trip specs as
//! JSON.

use contention_backoff::GFunction;
use contention_baselines::Baseline;
use contention_core::{CjzFactory, OracleParityFactory, ProtocolParams};
use contention_sim::adversary::lowerbound::{
    Lemma41Adversary, Theorem13Adversary, Theorem42Adversary,
};
use contention_sim::adversary::{
    Adversary, ArrivalBudget, ArrivalProcess, BatchArrival, BudgetedAdversary, BurstyArrival,
    CompositeAdversary, FrontLoadedJamming, GilbertElliottJamming, JamBudget, JammingStrategy,
    NoArrivals, NoJamming, PeriodicJamming, PoissonArrival, RandomJamming, ReactiveJamming,
    SaturatedArrival, ScriptedArrival, ScriptedJamming, SmoothAdversary, SmoothConfig,
    UniformRandomArrival,
};
use contention_sim::{ChannelModel, Execution, NodeId, Protocol, ProtocolFactory};

/// A serializable jamming-tolerance function `g` — the closed-form family
/// of [`GFunction`] (everything except `Custom`).
#[derive(Debug, Clone, PartialEq)]
pub enum GSpec {
    /// `g(x) = c`.
    Constant(f64),
    /// `g(x) = log₂ x`.
    Log,
    /// `g(x) = (log₂ x)^k`.
    PolyLog(u32),
    /// `g(x) = 2^(c·√(log₂ x))`.
    ExpSqrtLog(f64),
}

impl GSpec {
    /// Materialize the [`GFunction`].
    pub fn build(&self) -> GFunction {
        match self {
            GSpec::Constant(c) => GFunction::Constant(*c),
            GSpec::Log => GFunction::Log,
            GSpec::PolyLog(k) => GFunction::PolyLog(*k),
            GSpec::ExpSqrtLog(c) => GFunction::ExpSqrtLog(*c),
        }
    }

    /// Short label, matching [`GFunction::label`].
    pub fn label(&self) -> String {
        self.build().label()
    }
}

/// Serializable [`ProtocolParams`]: the `g` choice plus optional constant
/// overrides (`None` keeps the calibrated default).
#[derive(Debug, Clone, PartialEq)]
pub struct ParamsSpec {
    /// The jamming-tolerance function.
    pub g: GSpec,
    /// Override for the global constant `a`.
    pub a: Option<f64>,
    /// Override for the backoff density constant `c₂`.
    pub c2: Option<f64>,
    /// Override for the control-batch constant `c₃`.
    pub c3: Option<f64>,
}

impl ParamsSpec {
    /// Parameters for jamming tolerance `g`, defaults for the constants.
    pub fn new(g: GSpec) -> Self {
        ParamsSpec {
            g,
            a: None,
            c2: None,
            c3: None,
        }
    }

    /// The worst-case tuning (`g` constant), mirroring
    /// [`ProtocolParams::constant_jamming`].
    pub fn constant_jamming() -> Self {
        Self::new(GSpec::Constant(2.0))
    }

    /// The clean-channel tuning (`g = 2^√log`), mirroring
    /// [`ProtocolParams::constant_throughput`].
    pub fn constant_throughput() -> Self {
        Self::new(GSpec::ExpSqrtLog(1.0))
    }

    /// Override `a`.
    pub fn with_a(mut self, a: f64) -> Self {
        self.a = Some(a);
        self
    }

    /// Override `c₂`.
    pub fn with_c2(mut self, c2: f64) -> Self {
        self.c2 = Some(c2);
        self
    }

    /// Override `c₃`.
    pub fn with_c3(mut self, c3: f64) -> Self {
        self.c3 = Some(c3);
        self
    }

    /// Materialize the [`ProtocolParams`].
    pub fn build(&self) -> ProtocolParams {
        let mut p = ProtocolParams::new(self.g.build());
        if let Some(a) = self.a {
            p = p.with_a(a);
        }
        if let Some(c2) = self.c2 {
            p = p.with_c2(c2);
        }
        if let Some(c3) = self.c3 {
            p = p.with_c3(c3);
        }
        p
    }
}

/// A serializable baseline identifier — the closed-form subset of
/// [`Baseline`] (everything except `NonAdaptive`, which carries an
/// arbitrary schedule object).
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineSpec {
    /// Windowed binary exponential backoff.
    BinaryExponential,
    /// Windowed polynomial backoff.
    Polynomial(f64),
    /// Windowed linear backoff.
    Linear,
    /// Smoothed BEB: `p_i = 1/i`.
    SmoothedBeb,
    /// Log backoff: `p_i = c·log i / i`.
    LogBackoff(f64),
    /// Slotted ALOHA with fixed probability.
    Aloha(f64),
    /// Polynomially decaying schedule `p_i = i^(−e)`.
    PolySchedule(f64),
    /// Sawtooth backoff.
    Sawtooth,
    /// The paper's `(f/a)`-backoff standalone, tuned for `g`.
    FBackoff(GSpec),
    /// Smoothed BEB restarting its schedule on every heard success.
    ResetBeb,
    /// Windowed BEB resetting its window on every heard success.
    ResetWindowBeb,
    /// Collision-triggered MIMD window (informative only under the
    /// collision-detection channel model).
    CdBackoff,
    /// Collision-aware MIMD slotted ALOHA starting at probability `p`.
    CdAloha(f64),
}

impl BaselineSpec {
    /// Materialize the [`Baseline`].
    pub fn build(&self) -> Baseline {
        match self {
            BaselineSpec::BinaryExponential => Baseline::BinaryExponential,
            BaselineSpec::Polynomial(e) => Baseline::Polynomial(*e),
            BaselineSpec::Linear => Baseline::Linear,
            BaselineSpec::SmoothedBeb => Baseline::SmoothedBeb,
            BaselineSpec::LogBackoff(c) => Baseline::LogBackoff(*c),
            BaselineSpec::Aloha(p) => Baseline::Aloha(*p),
            BaselineSpec::PolySchedule(e) => Baseline::PolySchedule(*e),
            BaselineSpec::Sawtooth => Baseline::Sawtooth,
            BaselineSpec::FBackoff(g) => Baseline::FBackoff(g.build()),
            BaselineSpec::ResetBeb => Baseline::ResetBeb,
            BaselineSpec::ResetWindowBeb => Baseline::ResetWindowBeb,
            BaselineSpec::CdBackoff => Baseline::CdBackoff,
            BaselineSpec::CdAloha(p) => Baseline::CdAloha(*p),
        }
    }

    /// The default comparison roster (mirrors [`Baseline::roster`]).
    pub fn roster() -> Vec<BaselineSpec> {
        vec![
            BaselineSpec::BinaryExponential,
            BaselineSpec::Polynomial(2.0),
            BaselineSpec::SmoothedBeb,
            BaselineSpec::LogBackoff(2.0),
            BaselineSpec::Aloha(0.1),
            BaselineSpec::Sawtooth,
            BaselineSpec::FBackoff(GSpec::Constant(2.0)),
            BaselineSpec::ResetBeb,
        ]
    }
}

/// An algorithm under test: the paper's protocol (possibly ablated) or a
/// baseline. Serializable, and doubles as a [`ProtocolFactory`] — this is
/// the roster type every scenario runs.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgoSpec {
    /// The paper's protocol with the given parameters.
    Cjz(ParamsSpec),
    /// Ablation: the protocol without the Phase-3 channel swap.
    CjzNoSwap(ParamsSpec),
    /// Oracle ablation: global-clock variant that skips Phase 1.
    CjzOracle(ParamsSpec),
    /// A baseline from the registry.
    Baseline(BaselineSpec),
}

impl AlgoSpec {
    /// The paper's protocol tuned for constant-fraction jamming.
    pub fn cjz_constant_jamming() -> Self {
        AlgoSpec::Cjz(ParamsSpec::constant_jamming())
    }

    /// The paper's protocol tuned for a clean channel.
    pub fn cjz_constant_throughput() -> Self {
        AlgoSpec::Cjz(ParamsSpec::constant_throughput())
    }

    /// Display name (stable across runs; used in report tables).
    pub fn name(&self) -> String {
        match self {
            AlgoSpec::Cjz(p) => format!("cjz[{}]", p.g.label()),
            AlgoSpec::CjzNoSwap(_) => "cjz-noswap".to_string(),
            AlgoSpec::CjzOracle(_) => "cjz-oracle".to_string(),
            AlgoSpec::Baseline(b) => b.build().name().to_string(),
        }
    }

    /// The materialized protocol parameters, when this is a protocol
    /// variant (`None` for baselines).
    pub fn params(&self) -> Option<ProtocolParams> {
        match self {
            AlgoSpec::Cjz(p) | AlgoSpec::CjzNoSwap(p) | AlgoSpec::CjzOracle(p) => Some(p.build()),
            AlgoSpec::Baseline(_) => None,
        }
    }
}

impl ProtocolFactory for AlgoSpec {
    fn spawn(&self, id: NodeId) -> Box<dyn Protocol> {
        self.spawn_with_arrival(id, 1)
    }

    fn spawn_with_arrival(&self, id: NodeId, arrival_slot: u64) -> Box<dyn Protocol> {
        match self {
            AlgoSpec::Cjz(p) => CjzFactory::new(p.build()).spawn(id),
            AlgoSpec::CjzNoSwap(p) => CjzFactory::new(p.build()).without_channel_swap().spawn(id),
            AlgoSpec::CjzOracle(p) => {
                OracleParityFactory::new(p.build()).spawn_with_arrival(id, arrival_slot)
            }
            AlgoSpec::Baseline(b) => b.build().spawn(id),
        }
    }

    fn algorithm_name(&self) -> String {
        self.name()
    }
}

/// A serializable arrival process.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSpec {
    /// No arrivals (pre-seeded or lower-bound scenarios).
    None,
    /// `count` nodes at slot `at`.
    Batch {
        /// Injection slot (1-based).
        at: u64,
        /// Batch size.
        count: u32,
    },
    /// Poisson arrivals at `rate` per slot, stopping after `horizon`.
    Poisson {
        /// Expected arrivals per slot.
        rate: f64,
        /// Stop injecting after this slot (`None` = never).
        horizon: Option<u64>,
    },
    /// `size` nodes every `period` slots from `phase`, `bursts` times.
    Bursty {
        /// Slots between bursts.
        period: u64,
        /// First burst slot (1-based).
        phase: u64,
        /// Nodes per burst.
        size: u32,
        /// Number of bursts.
        bursts: u64,
    },
    /// Explicit `(slot, count)` schedule.
    Scripted {
        /// The schedule; duplicate slots accumulate.
        slots: Vec<(u64, u32)>,
    },
    /// `total` nodes at uniformly random slots of `[1, horizon]`.
    UniformRandom {
        /// Total nodes.
        total: u64,
        /// Allocation horizon.
        horizon: u64,
    },
    /// Keep `target` nodes outstanding (`None` = unbounded backlog),
    /// optionally capped at `budget` total injections / `horizon` slots.
    Saturated {
        /// Standing backlog target (`None` = u64::MAX, i.e. inject as
        /// much as any budget wrapper allows).
        target: Option<u64>,
        /// Total injection cap (`None` = unlimited).
        budget: Option<u64>,
        /// Stop injecting after this slot (`None` = never).
        horizon: Option<u64>,
    },
}

impl ArrivalSpec {
    /// Convenience: batch at slot 1.
    pub fn batch(count: u32) -> Self {
        ArrivalSpec::Batch { at: 1, count }
    }

    /// Convenience: unbounded saturation.
    pub fn saturated() -> Self {
        ArrivalSpec::Saturated {
            target: None,
            budget: None,
            horizon: None,
        }
    }

    /// Materialize the arrival process.
    pub fn build(&self) -> Box<dyn ArrivalProcess> {
        match self {
            ArrivalSpec::None => Box::new(NoArrivals),
            ArrivalSpec::Batch { at, count } => Box::new(BatchArrival::new(*at, *count)),
            ArrivalSpec::Poisson { rate, horizon } => {
                let mut p = PoissonArrival::new(*rate);
                if let Some(h) = horizon {
                    p = p.with_horizon(*h);
                }
                Box::new(p)
            }
            ArrivalSpec::Bursty {
                period,
                phase,
                size,
                bursts,
            } => Box::new(BurstyArrival::new(*period, *phase, *size, *bursts)),
            ArrivalSpec::Scripted { slots } => {
                Box::new(ScriptedArrival::new(slots.iter().copied()))
            }
            ArrivalSpec::UniformRandom { total, horizon } => {
                Box::new(UniformRandomArrival::new(*total, *horizon))
            }
            ArrivalSpec::Saturated {
                target,
                budget,
                horizon,
            } => {
                let mut s = SaturatedArrival::new(target.unwrap_or(u64::MAX));
                if let Some(b) = budget {
                    s = s.with_budget(*b);
                }
                if let Some(h) = horizon {
                    s = s.with_horizon(*h);
                }
                Box::new(s)
            }
        }
    }
}

/// A serializable jamming strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum JammingSpec {
    /// Never jam.
    None,
    /// Jam each slot independently with probability `p`.
    Random {
        /// Per-slot jam probability.
        p: f64,
    },
    /// Jam slots `phase, phase+period, …`.
    Periodic {
        /// Slots between jams.
        period: u64,
        /// First jammed slot (1-based).
        phase: u64,
    },
    /// Jam every slot in `[1, until]` (the prefix attack).
    FrontLoaded {
        /// Last jammed slot.
        until: u64,
    },
    /// Jam `burst` slots after every observed success.
    Reactive {
        /// Burst length.
        burst: u64,
    },
    /// Two-state Markov (Gilbert–Elliott) bursts: long-run jammed
    /// `fraction`, mean burst length `burst_len`.
    GilbertElliott {
        /// Long-run jammed fraction.
        fraction: f64,
        /// Mean burst length in slots.
        burst_len: f64,
    },
    /// Jam exactly the scripted slots.
    Scripted {
        /// Slots to jam.
        slots: Vec<u64>,
    },
}

impl JammingSpec {
    /// Random jamming, treating `p == 0` as no jamming.
    pub fn random(p: f64) -> Self {
        if p > 0.0 {
            JammingSpec::Random { p }
        } else {
            JammingSpec::None
        }
    }

    /// Materialize the jamming strategy.
    pub fn build(&self) -> Box<dyn JammingStrategy> {
        match self {
            JammingSpec::None => Box::new(NoJamming),
            JammingSpec::Random { p } => Box::new(RandomJamming::new(*p)),
            JammingSpec::Periodic { period, phase } => {
                Box::new(PeriodicJamming::new(*period, *phase))
            }
            JammingSpec::FrontLoaded { until } => Box::new(FrontLoadedJamming::new(*until)),
            JammingSpec::Reactive { burst } => Box::new(ReactiveJamming::new(*burst)),
            JammingSpec::GilbertElliott {
                fraction,
                burst_len,
            } => Box::new(GilbertElliottJamming::bursts(*fraction, *burst_len)),
            JammingSpec::Scripted { slots } => {
                Box::new(ScriptedJamming::new(slots.iter().copied()))
            }
        }
    }
}

/// The base adversary: either a composable arrival × jamming pair, or one
/// of the scripted lower-bound constructions from Section 4.
#[derive(Debug, Clone, PartialEq)]
pub enum AdversarySpec {
    /// [`CompositeAdversary`] of an arrival process and a jamming
    /// strategy.
    Composite {
        /// The arrival half.
        arrival: ArrivalSpec,
        /// The jamming half.
        jamming: JammingSpec,
    },
    /// The Lemma 4.1 flood: heavy batches in the first `√horizon` slots
    /// plus uniformly scattered nodes.
    Lemma41 {
        /// Construction horizon `t`.
        horizon: u64,
        /// Nodes per slot during the batch window.
        batch_per_slot: u32,
        /// Random-injected nodes over `[1, t]`.
        random_total: u64,
    },
    /// The Theorem 1.3 script: one node, jammed prefix + random jams +
    /// jammed last slot.
    Theorem13 {
        /// Construction horizon `t`.
        horizon: u64,
        /// `g(t)` (prefix and random-jam counts are `t/(4g(t))`).
        g_of_t: f64,
    },
    /// The Theorem 4.2 script: jammed prefix, two nodes at slot 1, a
    /// crowd at the last slot.
    Theorem42 {
        /// Construction horizon `t`.
        horizon: u64,
        /// `g(t)` (prefix is `t/(4g(t))`).
        g_of_t: f64,
        /// `f(t)` (final crowd is `t/(4f(t))`).
        f_of_t: f64,
    },
}

impl AdversarySpec {
    /// An idle adversary (no arrivals, no jamming).
    pub fn idle() -> Self {
        AdversarySpec::Composite {
            arrival: ArrivalSpec::None,
            jamming: JammingSpec::None,
        }
    }

    /// Materialize the adversary.
    pub fn build(&self) -> Box<dyn Adversary> {
        match self {
            AdversarySpec::Composite { arrival, jamming } => {
                Box::new(CompositeAdversary::new(arrival.build(), jamming.build()))
            }
            AdversarySpec::Lemma41 {
                horizon,
                batch_per_slot,
                random_total,
            } => Box::new(Lemma41Adversary::new(
                *horizon,
                *batch_per_slot,
                *random_total,
            )),
            AdversarySpec::Theorem13 { horizon, g_of_t } => {
                Box::new(Theorem13Adversary::new(*horizon, *g_of_t))
            }
            AdversarySpec::Theorem42 {
                horizon,
                g_of_t,
                f_of_t,
            } => Box::new(Theorem42Adversary::new(*horizon, *g_of_t, *f_of_t)),
        }
    }
}

/// A serializable cumulative budget curve (Definition 1.1 shapes).
#[derive(Debug, Clone, PartialEq)]
pub enum CurveSpec {
    /// No cap.
    Unlimited,
    /// Flat cap: at most `cap` events, ever.
    Constant(f64),
    /// Linear cap: at most `coef · t` events by slot `t`.
    PerSlot(f64),
    /// The critical arrival density: `t / (scale · f(t))`, with `f`
    /// derived from the budget's [`ParamsSpec`].
    CriticalArrivals {
        /// Denominator scale (the paper's "4" in `t/(4f(t))`).
        scale: f64,
    },
    /// The critical jamming density: `t / (scale · g(t))`.
    CriticalJams {
        /// Denominator scale.
        scale: f64,
    },
}

impl CurveSpec {
    fn curve(&self, params: &ProtocolParams) -> Box<dyn Fn(u64) -> f64 + Send + Sync> {
        match self {
            CurveSpec::Unlimited => Box::new(|_| f64::INFINITY),
            CurveSpec::Constant(cap) => {
                let cap = *cap;
                Box::new(move |_| cap)
            }
            CurveSpec::PerSlot(coef) => {
                let coef = *coef;
                Box::new(move |t| coef * t as f64)
            }
            CurveSpec::CriticalArrivals { scale } => {
                let f = params.f();
                let scale = *scale;
                Box::new(move |t| t as f64 / (scale * f.at(t)))
            }
            CurveSpec::CriticalJams { scale } => {
                let g = params.g().clone();
                let scale = *scale;
                Box::new(move |t| t as f64 / (scale * g.at(t)))
            }
        }
    }
}

/// Budget clamps for the adversary (the `n_t`/`d_t` curves of
/// Definition 1.1), wrapping the base adversary in a
/// [`BudgetedAdversary`].
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetSpec {
    /// Parameters defining `f`/`g` for the critical-density curves.
    pub params: ParamsSpec,
    /// Cumulative injection cap.
    pub arrivals: CurveSpec,
    /// Cumulative jam cap.
    pub jams: CurveSpec,
}

impl BudgetSpec {
    /// The critical (f,g) budget: arrivals `t/(scale·f)`, jams
    /// `t/(scale·g)`.
    pub fn critical(params: ParamsSpec, scale: f64) -> Self {
        BudgetSpec {
            params,
            arrivals: CurveSpec::CriticalArrivals { scale },
            jams: CurveSpec::CriticalJams { scale },
        }
    }

    /// Materialize the budget pair.
    pub fn build(&self) -> (ArrivalBudget, JamBudget) {
        let params = self.params.build();
        let a = self.arrivals.curve(&params);
        let j = self.jams.curve(&params);
        (ArrivalBudget::new(a), JamBudget::new(j))
    }
}

/// Windowed smoothness constraints (Corollary 3.6), wrapping the base
/// adversary in a [`SmoothAdversary`].
#[derive(Debug, Clone, PartialEq)]
pub struct SmoothSpec {
    /// Parameters defining `f`/`g` for the window curves.
    pub params: ParamsSpec,
    /// Arrival constant: arrivals ≤ `ca·j/f(j)` per window of length `j`.
    pub ca: f64,
    /// Jam constant: jams ≤ `cd·j/g(j)` per window.
    pub cd: f64,
}

impl SmoothSpec {
    /// Materialize the [`SmoothConfig`].
    pub fn build(&self) -> SmoothConfig {
        let params = self.params.build();
        let f = params.f();
        let g = params.g().clone();
        SmoothConfig::from_fg(move |j| f.at(j), move |j| g.at(j), self.ca, self.cd)
    }
}

/// A serializable channel-feedback model plus its energy accounting: the
/// scenario-level face of [`ChannelModel`].
///
/// The paper's model ([`ChannelModel::NoCollisionDetection`]) is the
/// default, with free listening — so energy reduces to the classical
/// channel-access count and every pre-existing spec is unchanged.
/// `listen_cost` prices one listening slot relative to one broadcast
/// (cost 1): collision-detection radios that must decode every slot set
/// it positive; ack-only radios that sleep between attempts keep it at 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelSpec {
    /// The feedback model the engine applies per slot.
    pub model: ChannelModel,
    /// Energy cost of one listening slot (a broadcast costs 1).
    pub listen_cost: f64,
}

impl Default for ChannelSpec {
    fn default() -> Self {
        Self::no_collision_detection()
    }
}

impl ChannelSpec {
    /// The paper's model: binary feedback, free listening.
    pub fn no_collision_detection() -> Self {
        ChannelSpec {
            model: ChannelModel::NoCollisionDetection,
            listen_cost: 0.0,
        }
    }

    /// Ternary collision-detection feedback (silence / success / noise),
    /// free listening.
    pub fn collision_detection() -> Self {
        ChannelSpec {
            model: ChannelModel::CollisionDetection,
            listen_cost: 0.0,
        }
    }

    /// Acknowledgement-only feedback: listeners hear nothing.
    pub fn ack_only() -> Self {
        ChannelSpec {
            model: ChannelModel::AckOnly,
            listen_cost: 0.0,
        }
    }

    /// Price listening slots at `cost` broadcasts each (energy metrics
    /// only; the simulation dynamics are unchanged).
    pub fn with_listen_cost(mut self, cost: f64) -> Self {
        self.listen_cost = cost;
        self
    }

    /// The spec for a model by its stable name (`no-cd`, `cd`,
    /// `ack-only`), as printed by [`ChannelModel::name`].
    pub fn by_name(name: &str) -> Option<Self> {
        ChannelModel::all()
            .into_iter()
            .find(|m| m.name() == name)
            .map(|model| ChannelSpec {
                model,
                listen_cost: 0.0,
            })
    }

    /// Stable short name (the model's name).
    pub fn name(&self) -> &'static str {
        self.model.name()
    }
}

/// When a run stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HorizonSpec {
    /// Run until the system drains, with a safety slot cap.
    UntilDrained {
        /// Hard slot cap.
        max_slots: u64,
    },
    /// Run exactly this many slots.
    Fixed {
        /// Slot count.
        slots: u64,
    },
}

impl HorizonSpec {
    /// The slot cap (fixed length or the drain safety cap).
    pub fn cap(&self) -> u64 {
        match self {
            HorizonSpec::UntilDrained { max_slots } => *max_slots,
            HorizonSpec::Fixed { slots } => *slots,
        }
    }
}

/// How much per-slot state a run stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordMode {
    /// One [`SlotRecord`](contention_sim::SlotRecord) per slot (memory
    /// linear in the horizon).
    Full,
    /// Aggregates and departures only (O(1) trace memory) — for
    /// endurance runs with heavy-tailed lengths.
    Aggregate,
}

/// Checkpoint cadence for post-hoc window replay (the forensics layer).
///
/// With a policy set, the runner snapshots the complete simulator state
/// every `every` slots while running in fast aggregate mode, and — to keep
/// sparse-engine trajectories reproducible — advances every run in
/// `every`-slot chunks. Any `[lo, hi)` slot window can then be
/// rematerialized in full record fidelity by replaying from the nearest
/// checkpoint (see `forensics::WindowReplayer`), bit-identical to an
/// uninterrupted full-record run of the same seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Snapshot cadence in slots (also the chunk size runs advance in).
    pub every: u64,
}

impl CheckpointPolicy {
    /// Snapshot every `every` slots.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn every(every: u64) -> Self {
        assert!(every > 0, "checkpoint cadence must be positive");
        CheckpointPolicy { every }
    }

    /// The checkpoint slot at or below `slot` (0 = the pristine start).
    pub fn floor(&self, slot: u64) -> u64 {
        slot - slot % self.every
    }
}

/// A complete, serializable experiment description.
///
/// Build one with the constructors and builder methods, hand it to a
/// [`ScenarioRunner`](crate::scenario::ScenarioRunner), or fetch a named
/// one from the [`registry`](crate::scenario::registry).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (registry key or free-form description).
    pub name: String,
    /// The algorithms to run.
    pub algos: Vec<AlgoSpec>,
    /// The base adversary.
    pub adversary: AdversarySpec,
    /// Optional Definition-1.1 budget clamps.
    pub budget: Option<BudgetSpec>,
    /// Optional Corollary-3.6 smoothness constraints.
    pub smooth: Option<SmoothSpec>,
    /// Stop policy.
    pub horizon: HorizonSpec,
    /// Number of replications (seeds `seed_base .. seed_base + seeds`).
    pub seeds: u64,
    /// First seed.
    pub seed_base: u64,
    /// Trace record policy.
    pub record: RecordMode,
    /// Cap on the adversary-visible per-slot history window (`None` =
    /// unlimited). A *model* knob, independent of [`RecordMode`]: bound it
    /// explicitly for endurance runs that need O(1) history memory, knowing
    /// it limits how far back adaptive adversaries can look.
    pub history_retention: Option<u64>,
    /// The channel-feedback model (default: the paper's
    /// no-collision-detection channel with free listening).
    pub channel: ChannelSpec,
    /// The execution strategy (default [`Execution::Exact`]).
    /// [`Execution::SkipAhead`] engages the event-driven sparse engine
    /// for static-phase workloads and falls back to exact automatically
    /// when the adversary, channel model, or protocol is slot-adaptive.
    pub execution: Execution,
    /// Optional checkpoint cadence for post-hoc window replay (`None` =
    /// no snapshots). See [`CheckpointPolicy`].
    pub checkpoint: Option<CheckpointPolicy>,
}

impl ScenarioSpec {
    /// A new scenario with an idle adversary, one seed, full recording,
    /// and a 1M-slot drain cap; compose the rest with the builder
    /// methods.
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioSpec {
            name: name.into(),
            algos: Vec::new(),
            adversary: AdversarySpec::idle(),
            budget: None,
            smooth: None,
            horizon: HorizonSpec::UntilDrained {
                max_slots: 1_000_000,
            },
            seeds: 1,
            seed_base: 0,
            record: RecordMode::Full,
            history_retention: None,
            channel: ChannelSpec::no_collision_detection(),
            execution: Execution::Exact,
            checkpoint: None,
        }
    }

    /// The classical batch scenario: `n` nodes at slot 1, jamming
    /// probability `jam_p`, run until drained.
    pub fn batch(n: u32, jam_p: f64) -> Self {
        Self::new(format!("batch/{n}"))
            .algo(AlgoSpec::cjz_constant_jamming())
            .arrivals(ArrivalSpec::batch(n))
            .jamming(JammingSpec::random(jam_p))
    }

    /// Add one algorithm to the roster.
    pub fn algo(mut self, algo: AlgoSpec) -> Self {
        self.algos.push(algo);
        self
    }

    /// Replace the roster.
    pub fn algos(mut self, algos: impl IntoIterator<Item = AlgoSpec>) -> Self {
        self.algos = algos.into_iter().collect();
        self
    }

    /// Set the arrival half (keeps the jamming half; replaces a
    /// lower-bound adversary with a composite one).
    pub fn arrivals(mut self, arrival: ArrivalSpec) -> Self {
        self.adversary = match self.adversary {
            AdversarySpec::Composite { jamming, .. } => {
                AdversarySpec::Composite { arrival, jamming }
            }
            _ => AdversarySpec::Composite {
                arrival,
                jamming: JammingSpec::None,
            },
        };
        self
    }

    /// Set the jamming half (keeps the arrival half; replaces a
    /// lower-bound adversary with a composite one).
    pub fn jamming(mut self, jamming: JammingSpec) -> Self {
        self.adversary = match self.adversary {
            AdversarySpec::Composite { arrival, .. } => {
                AdversarySpec::Composite { arrival, jamming }
            }
            _ => AdversarySpec::Composite {
                arrival: ArrivalSpec::None,
                jamming,
            },
        };
        self
    }

    /// Replace the whole adversary.
    pub fn adversary(mut self, adversary: AdversarySpec) -> Self {
        self.adversary = adversary;
        self
    }

    /// Clamp the adversary to Definition-1.1 budgets.
    pub fn budget(mut self, budget: BudgetSpec) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Constrain the adversary to Corollary-3.6 smoothness.
    pub fn smooth(mut self, smooth: SmoothSpec) -> Self {
        self.smooth = Some(smooth);
        self
    }

    /// Run for exactly `slots` slots.
    pub fn fixed_horizon(mut self, slots: u64) -> Self {
        self.horizon = HorizonSpec::Fixed { slots };
        self
    }

    /// Run until drained (cap `max_slots`).
    pub fn until_drained(mut self, max_slots: u64) -> Self {
        self.horizon = HorizonSpec::UntilDrained { max_slots };
        self
    }

    /// Replicate over `seeds` seeds.
    pub fn seeds(mut self, seeds: u64) -> Self {
        self.seeds = seeds.max(1);
        self
    }

    /// Start replication at `seed_base`.
    pub fn seed_base(mut self, seed_base: u64) -> Self {
        self.seed_base = seed_base;
        self
    }

    /// Memory-bounded mode: aggregates and departures only.
    pub fn aggregate_only(mut self) -> Self {
        self.record = RecordMode::Aggregate;
        self
    }

    /// Bound the adversary-visible history window to `cap` slots (see
    /// [`ScenarioSpec::history_retention`]).
    pub fn history_retention(mut self, cap: u64) -> Self {
        self.history_retention = Some(cap);
        self
    }

    /// Select the channel-feedback model (see [`ChannelSpec`]).
    pub fn channel(mut self, channel: ChannelSpec) -> Self {
        self.channel = channel;
        self
    }

    /// Select the execution strategy (default [`Execution::Exact`]).
    pub fn execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }

    /// Convenience: request the event-driven sparse engine
    /// ([`Execution::SkipAhead`]); always safe, falls back to exact for
    /// slot-adaptive workloads.
    pub fn skip_ahead(self) -> Self {
        self.execution(Execution::SkipAhead)
    }

    /// Snapshot the simulator every `every` slots for post-hoc window
    /// replay (see [`CheckpointPolicy`]).
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint = Some(CheckpointPolicy::every(every));
        self
    }

    /// Materialize the fully wrapped adversary
    /// (budget ∘ smooth ∘ base).
    pub fn build_adversary(&self) -> Box<dyn Adversary> {
        let mut adv: Box<dyn Adversary> = self.adversary.build();
        if let Some(smooth) = &self.smooth {
            adv = Box::new(SmoothAdversary::new(adv, smooth.build()));
        }
        if let Some(budget) = &self.budget {
            let (arrivals, jams) = budget.build();
            adv = Box::new(BudgetedAdversary::new(adv, arrivals, jams));
        }
        adv
    }

    /// Shrink the scenario to smoke-test scale: one seed, horizons capped
    /// at a few thousand slots, populations capped at 32. Keeps the
    /// structure (adversary class, budgets, roster) intact.
    pub fn smoke(mut self) -> Self {
        const HORIZON_CAP: u64 = 2_048;
        const DRAIN_CAP: u64 = 200_000;
        self.seeds = 1;
        self.horizon = match self.horizon {
            HorizonSpec::Fixed { slots } => HorizonSpec::Fixed {
                slots: slots.min(HORIZON_CAP),
            },
            HorizonSpec::UntilDrained { max_slots } => HorizonSpec::UntilDrained {
                max_slots: max_slots.min(DRAIN_CAP),
            },
        };
        self.adversary = match self.adversary {
            AdversarySpec::Composite { arrival, jamming } => {
                let arrival = match arrival {
                    ArrivalSpec::Batch { at, count } => ArrivalSpec::Batch {
                        at,
                        count: count.min(32),
                    },
                    ArrivalSpec::Bursty {
                        period,
                        phase,
                        size,
                        bursts,
                    } => ArrivalSpec::Bursty {
                        period,
                        phase,
                        size: size.min(8),
                        bursts: bursts.min(8),
                    },
                    ArrivalSpec::UniformRandom { total, horizon } => ArrivalSpec::UniformRandom {
                        total: total.min(32),
                        horizon: horizon.min(HORIZON_CAP),
                    },
                    ArrivalSpec::Saturated {
                        target,
                        budget,
                        horizon,
                    } => ArrivalSpec::Saturated {
                        target: target.map(|t| t.min(16)),
                        budget,
                        horizon,
                    },
                    ArrivalSpec::Poisson { rate, horizon } => ArrivalSpec::Poisson {
                        rate,
                        horizon: Some(horizon.unwrap_or(HORIZON_CAP).min(HORIZON_CAP)),
                    },
                    other => other,
                };
                let jamming = match jamming {
                    JammingSpec::FrontLoaded { until } => JammingSpec::FrontLoaded {
                        until: until.min(256),
                    },
                    other => other,
                };
                AdversarySpec::Composite { arrival, jamming }
            }
            AdversarySpec::Lemma41 {
                horizon,
                batch_per_slot,
                random_total,
            } => AdversarySpec::Lemma41 {
                horizon: horizon.min(HORIZON_CAP),
                batch_per_slot: batch_per_slot.min(4),
                random_total: random_total.min(32),
            },
            AdversarySpec::Theorem13 { horizon, g_of_t } => AdversarySpec::Theorem13 {
                horizon: horizon.min(HORIZON_CAP),
                g_of_t,
            },
            AdversarySpec::Theorem42 {
                horizon,
                g_of_t,
                f_of_t,
            } => AdversarySpec::Theorem42 {
                horizon: horizon.min(HORIZON_CAP),
                g_of_t,
                f_of_t,
            },
        };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_spec_names() {
        assert!(AlgoSpec::cjz_constant_jamming().name().starts_with("cjz["));
        assert_eq!(
            AlgoSpec::Baseline(BaselineSpec::BinaryExponential).name(),
            "beb"
        );
        assert_eq!(
            AlgoSpec::CjzNoSwap(ParamsSpec::constant_jamming()).name(),
            "cjz-noswap"
        );
        assert_eq!(
            AlgoSpec::cjz_constant_jamming().algorithm_name(),
            AlgoSpec::cjz_constant_jamming().name()
        );
    }

    #[test]
    fn algo_spec_spawns_protocols() {
        for algo in [
            AlgoSpec::cjz_constant_jamming(),
            AlgoSpec::CjzNoSwap(ParamsSpec::constant_jamming()),
            AlgoSpec::CjzOracle(ParamsSpec::constant_jamming()),
            AlgoSpec::Baseline(BaselineSpec::Sawtooth),
        ] {
            let p = algo.spawn(NodeId::new(0));
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn baseline_spec_roster_mirrors_baseline_roster() {
        // BaselineSpec::roster() must stay in lockstep with
        // Baseline::roster(): a baseline added to one list but not the
        // other would silently vanish from spec-driven experiments.
        let spec_names: Vec<String> = BaselineSpec::roster()
            .iter()
            .map(|b| b.build().name().to_string())
            .collect();
        let baseline_names: Vec<String> = Baseline::roster()
            .iter()
            .map(|b| b.name().to_string())
            .collect();
        assert_eq!(spec_names, baseline_names);
    }

    #[test]
    fn params_spec_overrides_constants() {
        let p = ParamsSpec::constant_jamming()
            .with_c2(4.0)
            .with_c3(8.0)
            .build();
        assert_eq!(p.c2(), 4.0);
        assert_eq!(p.c3(), 8.0);
        let d = ParamsSpec::constant_jamming().build();
        assert_eq!(d, ProtocolParams::constant_jamming());
        assert_eq!(
            ParamsSpec::constant_throughput().build(),
            ProtocolParams::constant_throughput()
        );
    }

    #[test]
    fn builder_composes_composite_halves() {
        let spec = ScenarioSpec::batch(16, 0.25);
        match &spec.adversary {
            AdversarySpec::Composite { arrival, jamming } => {
                assert_eq!(*arrival, ArrivalSpec::Batch { at: 1, count: 16 });
                assert_eq!(*jamming, JammingSpec::Random { p: 0.25 });
            }
            other => panic!("unexpected adversary {other:?}"),
        }
        // Zero probability collapses to no jamming.
        let clean = ScenarioSpec::batch(16, 0.0);
        match &clean.adversary {
            AdversarySpec::Composite { jamming, .. } => {
                assert_eq!(*jamming, JammingSpec::None)
            }
            other => panic!("unexpected adversary {other:?}"),
        }
    }

    #[test]
    fn jamming_builder_preserves_arrivals() {
        let spec = ScenarioSpec::new("x")
            .arrivals(ArrivalSpec::batch(4))
            .jamming(JammingSpec::Reactive { burst: 2 });
        match &spec.adversary {
            AdversarySpec::Composite { arrival, jamming } => {
                assert_eq!(*arrival, ArrivalSpec::Batch { at: 1, count: 4 });
                assert_eq!(*jamming, JammingSpec::Reactive { burst: 2 });
            }
            other => panic!("unexpected adversary {other:?}"),
        }
    }

    #[test]
    fn smoke_shrinks_scale() {
        let spec = ScenarioSpec::batch(4096, 0.25)
            .seeds(10)
            .until_drained(1_000_000_000)
            .smoke();
        assert_eq!(spec.seeds, 1);
        assert_eq!(
            spec.horizon,
            HorizonSpec::UntilDrained { max_slots: 200_000 }
        );
        match &spec.adversary {
            AdversarySpec::Composite { arrival, .. } => {
                assert_eq!(*arrival, ArrivalSpec::Batch { at: 1, count: 32 })
            }
            other => panic!("unexpected adversary {other:?}"),
        }
    }

    #[test]
    fn channel_defaults_to_no_cd_with_free_listening() {
        let spec = ScenarioSpec::batch(8, 0.0);
        assert_eq!(spec.channel, ChannelSpec::no_collision_detection());
        assert_eq!(spec.channel.model, ChannelModel::NoCollisionDetection);
        assert_eq!(spec.channel.listen_cost, 0.0);
        let cd = ScenarioSpec::batch(8, 0.0)
            .channel(ChannelSpec::collision_detection().with_listen_cost(0.25));
        assert_eq!(cd.channel.model, ChannelModel::CollisionDetection);
        assert_eq!(cd.channel.listen_cost, 0.25);
    }

    #[test]
    fn channel_spec_by_name_covers_every_model() {
        for model in ChannelModel::all() {
            let spec = ChannelSpec::by_name(model.name())
                .unwrap_or_else(|| panic!("{} must resolve", model.name()));
            assert_eq!(spec.model, model);
            assert_eq!(spec.name(), model.name());
        }
        assert_eq!(ChannelSpec::by_name("simplex"), None);
    }

    #[test]
    fn build_adversary_wraps_budget() {
        let spec = ScenarioSpec::new("budgeted")
            .arrivals(ArrivalSpec::saturated())
            .jamming(JammingSpec::Random { p: 1.0 })
            .budget(BudgetSpec::critical(ParamsSpec::constant_jamming(), 4.0));
        let adv = spec.build_adversary();
        assert_eq!(adv.name(), "budgeted");
    }
}
