//! The declarative scenario API: experiments are data, not binaries.
//!
//! The paper's results all have the shape *protocol P against adversary
//! class A at budget B*; this module makes that shape a first-class,
//! serializable value:
//!
//! ```
//! use contention_bench::scenario::{
//!     AlgoSpec, ArrivalSpec, JammingSpec, ScenarioRunner, ScenarioSpec,
//! };
//!
//! // 64 nodes arrive together; 25% of slots are jammed at random.
//! let spec = ScenarioSpec::batch(64, 0.25).seeds(3);
//! let algo = AlgoSpec::cjz_constant_jamming();
//! let outcomes = ScenarioRunner::new(spec).run_algo(&algo);
//! assert!(outcomes.iter().all(|o| o.drained));
//!
//! // Scenarios serialize: the same experiment as data.
//! let spec = ScenarioSpec::batch(64, 0.25);
//! let json = spec.to_json_string();
//! assert_eq!(ScenarioSpec::from_json_str(&json).unwrap(), spec);
//!
//! // Or fetch a named workload from the registry.
//! let runner = ScenarioRunner::from_registry("bursty").unwrap();
//! assert_eq!(runner.spec().name, "bursty");
//! # let _ = (outcomes, runner);
//! ```
//!
//! * [`spec`] — the data model ([`ScenarioSpec`] and its parts);
//! * [`runner`] — execution: replication, record-mode policy, metrics;
//! * [`registry`] — named workloads (`batch/32`, `constant-jamming/0.4`,
//!   `lowerbound/theorem13`, …);
//! * [`json`] — serialization (self-contained JSON; no external deps).

pub mod json;
pub mod registry;
pub mod runner;
pub mod spec;

pub use json::{Json, SpecError};
pub use registry::{entries, lookup, names, RegistryEntry};
pub use runner::{
    replicate, run_batch, run_batch_light, AlgoReport, CheckpointedTrial, FootprintError,
    ScenarioReport, ScenarioRunner, TrialOutcome, DEFAULT_RECORD_CAP_BYTES,
};
pub use spec::{
    AdversarySpec, AlgoSpec, ArrivalSpec, BaselineSpec, BudgetSpec, ChannelSpec, CheckpointPolicy,
    CurveSpec, GSpec, HorizonSpec, JammingSpec, ParamsSpec, RecordMode, ScenarioSpec, SmoothSpec,
};
