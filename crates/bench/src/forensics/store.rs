//! Durable checkpoint handles: the rebuild recipe for a replayer.
//!
//! Snapshots themselves never touch disk — they hold live RNG cores and
//! boxed protocol state, and determinism makes persisting them
//! unnecessary. What persists is the *recipe*: the scenario spec (policy
//! included), the roster index, the seed, and the capture pass's
//! `(slot, digest)` fingerprint trail. [`CheckpointHandle::rebuild`]
//! re-runs the capture and cross-checks every digest, so a handle
//! written by one daemon life answers window queries in the next — or
//! fails loudly if the code has drifted out from under it.

use std::io;
use std::path::Path;

use crate::scenario::{Json, ScenarioSpec, SpecError};

use super::replay::{ReplayError, WindowReplayer};

/// Why a handle could not be saved, loaded, or rebuilt.
#[derive(Debug)]
pub enum HandleError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file is not a handle (or was written by an incompatible
    /// version).
    Spec(SpecError),
    /// The rebuilt capture diverged from the stored fingerprint trail.
    Replay(ReplayError),
    /// The rebuilt capture ran a different shape (slot count, drain
    /// status, or checkpoint count) than the handle recorded.
    Shape {
        /// What the handle recorded.
        expected: String,
        /// What the rebuild produced.
        actual: String,
    },
}

impl std::fmt::Display for HandleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandleError::Io(e) => write!(f, "checkpoint handle I/O: {e}"),
            HandleError::Spec(e) => write!(f, "malformed checkpoint handle: {e}"),
            HandleError::Replay(e) => write!(f, "checkpoint handle rebuild: {e}"),
            HandleError::Shape { expected, actual } => write!(
                f,
                "checkpoint handle rebuild produced a different run shape: \
                 handle recorded {expected}, rebuild produced {actual}"
            ),
        }
    }
}

impl std::error::Error for HandleError {}

impl From<io::Error> for HandleError {
    fn from(e: io::Error) -> Self {
        HandleError::Io(e)
    }
}

impl From<SpecError> for HandleError {
    fn from(e: SpecError) -> Self {
        HandleError::Spec(e)
    }
}

impl From<ReplayError> for HandleError {
    fn from(e: ReplayError) -> Self {
        HandleError::Replay(e)
    }
}

/// The durable rebuild recipe for one (scenario, algorithm, seed)
/// capture: everything needed to reconstruct a [`WindowReplayer`] in a
/// fresh process and prove the reconstruction walks the same trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointHandle {
    /// The scenario, checkpoint policy included.
    pub scenario: ScenarioSpec,
    /// Roster index into `scenario.algos`.
    pub algo: usize,
    /// The seed of the captured run.
    pub seed: u64,
    /// Slots the captured run executed.
    pub slots: u64,
    /// Whether the captured run drained.
    pub drained: bool,
    /// `(slot, digest)` per checkpoint, ascending.
    pub digests: Vec<(u64, u64)>,
}

/// u64 as a fixed-width hex string. Digests (and seeds) use the full
/// 64-bit range; the JSON layer's f64-backed numbers only cover 2⁵³.
fn hex(v: u64) -> Json {
    Json::Str(format!("{v:016x}"))
}

fn from_hex(j: &Json) -> Result<u64, SpecError> {
    let s = j.as_str()?;
    u64::from_str_radix(s, 16).map_err(|_| SpecError::new(format!("expected hex u64, got `{s}`")))
}

impl CheckpointHandle {
    /// Serialize to the hand-rolled JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::Str("checkpoint-handle".into())),
            ("scenario", self.scenario.to_json()),
            ("algo", Json::u64(self.algo as u64)),
            ("seed", hex(self.seed)),
            ("slots", Json::u64(self.slots)),
            ("drained", Json::Bool(self.drained)),
            (
                "digests",
                Json::Arr(
                    self.digests
                        .iter()
                        .map(|&(slot, digest)| Json::Arr(vec![Json::u64(slot), hex(digest)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse back from [`to_json`](Self::to_json) output.
    pub fn from_json(j: &Json) -> Result<CheckpointHandle, SpecError> {
        if j.kind()? != "checkpoint-handle" {
            return Err(SpecError::new("expected kind `checkpoint-handle`"));
        }
        let digests = j
            .get("digests")?
            .as_arr()?
            .iter()
            .map(|pair| {
                let pair = pair.as_arr()?;
                if pair.len() != 2 {
                    return Err(SpecError::new("digest entry must be [slot, digest]"));
                }
                Ok((pair[0].as_u64()?, from_hex(&pair[1])?))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CheckpointHandle {
            scenario: ScenarioSpec::from_json(j.get("scenario")?)?,
            algo: j.get("algo")?.as_u64()? as usize,
            seed: from_hex(j.get("seed")?)?,
            slots: j.get("slots")?.as_u64()?,
            drained: j.get("drained")?.as_bool()?,
            digests,
        })
    }

    /// Write atomically (temp file + rename), the service layer's
    /// durability discipline.
    pub fn save(&self, path: &Path) -> Result<(), HandleError> {
        let mut text = self.to_json().render();
        text.push('\n');
        crate::service::write_atomic(path, &text)?;
        Ok(())
    }

    /// Load a handle previously [`save`](Self::save)d.
    pub fn load(path: &Path) -> Result<CheckpointHandle, HandleError> {
        let text = std::fs::read_to_string(path)?;
        Ok(CheckpointHandle::from_json(&Json::parse(&text)?)?)
    }

    /// Re-run the capture pass and verify it reproduces this handle's
    /// trajectory — every checkpoint digest, the slot count, and the
    /// drain status must match. Returns the live replayer on success.
    pub fn rebuild(&self) -> Result<WindowReplayer, HandleError> {
        let replayer = WindowReplayer::capture(self.scenario.clone(), self.algo, self.seed)?;
        let shape = |slots: u64, drained: bool, checkpoints: usize| {
            format!("{slots} slots, drained={drained}, {checkpoints} checkpoints")
        };
        if replayer.slots() != self.slots
            || replayer.drained() != self.drained
            || replayer.digests().len() != self.digests.len()
        {
            return Err(HandleError::Shape {
                expected: shape(self.slots, self.drained, self.digests.len()),
                actual: shape(
                    replayer.slots(),
                    replayer.drained(),
                    replayer.digests().len(),
                ),
            });
        }
        for (&(slot, expected), &(reslot, actual)) in self.digests.iter().zip(replayer.digests()) {
            if slot != reslot || expected != actual {
                return Err(HandleError::Replay(ReplayError::FingerprintMismatch {
                    slot,
                    expected,
                    actual,
                }));
            }
        }
        Ok(replayer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::AlgoSpec;

    fn handle() -> CheckpointHandle {
        let spec = ScenarioSpec::batch(8, 0.2)
            .algos([AlgoSpec::cjz_constant_jamming()])
            .fixed_horizon(300)
            .aggregate_only()
            .checkpoint_every(100);
        WindowReplayer::capture(spec, 0, 5)
            .expect("capture")
            .handle()
    }

    #[test]
    fn handle_round_trips_through_json() {
        let h = handle();
        let text = h.to_json().render();
        let back = CheckpointHandle::from_json(&Json::parse(&text).expect("parse")).expect("from");
        assert_eq!(back, h);
    }

    #[test]
    fn handle_persists_and_rebuilds() {
        let h = handle();
        let dir = std::env::temp_dir().join(format!("ckpt-handle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("cell0-algo0-seed5.json");
        h.save(&path).expect("save");
        let loaded = CheckpointHandle::load(&path).expect("load");
        assert_eq!(loaded, h);
        let replayer = loaded
            .rebuild()
            .expect("rebuild must reproduce the trajectory");
        assert_eq!(replayer.slots(), h.slots);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rebuild_detects_tampered_digests() {
        let mut h = handle();
        let last = h.digests.len() - 1;
        h.digests[last].1 ^= 1;
        match h.rebuild() {
            Err(HandleError::Replay(ReplayError::FingerprintMismatch { .. })) => {}
            other => panic!("tampered handle must fail rebuild, got {other:?}"),
        }
    }
}
