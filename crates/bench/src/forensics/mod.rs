//! Post-hoc forensics: full-fidelity slot windows at mega scale, on
//! demand.
//!
//! An aggregate-mode campaign run at 10⁶ nodes × 10⁷ slots keeps totals
//! and departures but throws per-slot records away — storing them would
//! cost tens of gigabytes. When such a run then shows an anomaly
//! ("drain stalled around slot 8M"), this layer materializes any
//! requested `[lo, hi)` slot window in **full record fidelity** without
//! rerunning from slot 0:
//!
//! * a checkpoint-capture pass
//!   ([`ScenarioRunner::run_seed_checkpointed`]) snapshots the complete
//!   simulator state every `K` slots while running in fast aggregate
//!   mode;
//! * a [`WindowReplayer`] resumes from the nearest checkpoint at or
//!   before `lo` and replays forward, streaming the window's
//!   [`SlotRecord`]s into a [`WindowTrace`] — seconds of work for any
//!   window, wherever it sits in the run;
//! * replayed windows land in a byte-bounded LRU [`WindowCache`], and
//!   independent windows replay in parallel on the existing
//!   work-stealing pool ([`replicate`](crate::scenario::replicate()));
//! * [`CheckpointHandle`]s persist the rebuild recipe (spec + seed +
//!   checkpoint digests) through the service layer's atomic-write
//!   discipline, so `benchctl window` answers queries against jobs that
//!   finished in an earlier daemon life.
//!
//! # Fidelity contract
//!
//! Determinism does the heavy lifting: a run is a pure function of its
//! spec and seed, checkpointed runs always advance chunk by chunk
//! ([`ScenarioRunner::advance_chunk`]), and a resumed simulator is
//! bit-identical to the uninterrupted original under that chunking. On
//! top of that the layer *verifies* rather than trusts: every checkpoint
//! carries an FNV-1a state digest, replays cross-check the digest at
//! each checkpoint boundary they pass
//! ([`ReplayError::FingerprintMismatch`] on divergence), and every
//! window carries a [`window_fingerprint`] so two materializations of
//! the same window can be compared byte-for-byte by comparing one u64.
//!
//! [`ScenarioRunner::run_seed_checkpointed`]: crate::scenario::ScenarioRunner::run_seed_checkpointed
//! [`ScenarioRunner::advance_chunk`]: crate::scenario::ScenarioRunner::advance_chunk
//! [`SlotRecord`]: contention_sim::SlotRecord

use contention_sim::{SlotOutcome, SlotRecord};

pub mod cache;
pub mod replay;
pub mod store;

pub use cache::WindowCache;
pub use replay::{ReplayError, WindowReplayer, WindowTrace};
pub use store::CheckpointHandle;

/// Default checkpoint spacing when a spec carries no policy of its own:
/// 64k slots, so a window replay costs at most one chunk of overshoot.
pub const DEFAULT_CHUNK: u64 = 1 << 16;

/// Default byte budget for a replayer's window cache (64 MiB).
pub const DEFAULT_CACHE_BYTES: u64 = 64 << 20;

/// FNV-1a over a stream of u64s, folded little-endian byte by byte —
/// the same folding [`Snapshot::digest`](contention_sim::Snapshot::digest)
/// uses for simulator state.
pub(crate) fn fnv1a(values: impl Iterator<Item = u64>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// FNV-1a fingerprint of a slot window: folds the starting slot and
/// every field of every record (outcome included), so two windows agree
/// on the fingerprint iff they are byte-identical and cover the same
/// slots.
pub fn window_fingerprint(lo: u64, records: &[SlotRecord]) -> u64 {
    fnv1a(std::iter::once(lo).chain(records.iter().flat_map(|r| {
        let (tag, payload) = match r.outcome {
            SlotOutcome::Silence => (0, 0),
            SlotOutcome::Delivered(id) => (1, id.raw()),
            SlotOutcome::Collision { broadcasters } => (2, u64::from(broadcasters)),
            SlotOutcome::Jammed { broadcasters } => (3, u64::from(broadcasters)),
        };
        [
            u64::from(r.arrivals),
            u64::from(r.broadcasters),
            u64::from(r.jammed),
            u64::from(r.active),
            r.population,
            tag,
            payload,
        ]
    })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_sim::NodeId;

    fn rec(arrivals: u32, outcome: SlotOutcome) -> SlotRecord {
        SlotRecord {
            arrivals,
            broadcasters: 1,
            jammed: false,
            active: true,
            population: 3,
            outcome,
        }
    }

    #[test]
    fn fingerprint_distinguishes_offset_and_content() {
        let a = [
            rec(1, SlotOutcome::Silence),
            rec(0, SlotOutcome::Delivered(NodeId::new(7))),
        ];
        let b = [
            rec(1, SlotOutcome::Silence),
            rec(0, SlotOutcome::Delivered(NodeId::new(8))),
        ];
        assert_eq!(window_fingerprint(10, &a), window_fingerprint(10, &a));
        assert_ne!(window_fingerprint(10, &a), window_fingerprint(11, &a));
        assert_ne!(window_fingerprint(10, &a), window_fingerprint(10, &b));
        assert_ne!(
            window_fingerprint(10, &a[..1]),
            window_fingerprint(10, &a),
            "length is part of the fingerprint"
        );
    }
}
