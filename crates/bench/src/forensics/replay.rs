//! The [`WindowReplayer`]: materialize any `[lo, hi)` slot window of a
//! checkpointed run in full record fidelity.

use std::sync::{Arc, Mutex};

use contention_sim::{Simulator, SlotRecord, Snapshot, SnapshotError};

use crate::scenario::{replicate, AlgoSpec, ScenarioRunner, ScenarioSpec};

use super::cache::WindowCache;
use super::{window_fingerprint, DEFAULT_CACHE_BYTES, DEFAULT_CHUNK};

/// The outcome of one window request: the shared trace, or why it
/// could not be materialized.
pub type WindowResult = Result<Arc<WindowTrace>, ReplayError>;

/// Hand-off cell moving one owned base snapshot (plus its `[lo, hi)`
/// request) into a replay worker; each cell is taken exactly once.
type ReplayJob = Mutex<Option<(Snapshot<AlgoSpec>, u64, u64)>>;

/// Why a window could not be replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The capture pass could not snapshot a component.
    Snapshot(SnapshotError),
    /// `lo >= hi`, or `lo == 0` (slots are numbered from 1).
    BadWindow {
        /// Requested window start.
        lo: u64,
        /// Requested window end (exclusive).
        hi: u64,
    },
    /// The window reaches past the scenario's horizon cap.
    OutOfRange {
        /// Requested window end (exclusive).
        hi: u64,
        /// The horizon cap; valid windows satisfy `hi <= cap + 1`.
        cap: u64,
    },
    /// The roster has no algorithm at the requested index.
    NoSuchAlgo {
        /// Requested roster index.
        index: usize,
        /// Roster size.
        roster: usize,
    },
    /// A replay reached a checkpointed slot with different state than the
    /// capture pass recorded there — the determinism contract is broken
    /// (or the handle belongs to a different build of the code).
    FingerprintMismatch {
        /// The checkpoint slot where the digests diverged.
        slot: u64,
        /// The digest the capture pass recorded.
        expected: u64,
        /// The digest the replay computed.
        actual: u64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Snapshot(e) => write!(f, "checkpoint capture failed: {e}"),
            ReplayError::BadWindow { lo, hi } => {
                write!(f, "bad window [{lo}, {hi}): need 1 <= lo < hi")
            }
            ReplayError::OutOfRange { hi, cap } => write!(
                f,
                "window end {hi} reaches past the horizon cap {cap} (valid slots are 1..={cap})"
            ),
            ReplayError::NoSuchAlgo { index, roster } => {
                write!(
                    f,
                    "no algorithm at roster index {index} (roster has {roster})"
                )
            }
            ReplayError::FingerprintMismatch {
                slot,
                expected,
                actual,
            } => write!(
                f,
                "fingerprint mismatch at checkpoint slot {slot}: capture recorded \
                 {expected:016x}, replay computed {actual:016x} — replay is not walking \
                 the captured trajectory"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<SnapshotError> for ReplayError {
    fn from(e: SnapshotError) -> Self {
        ReplayError::Snapshot(e)
    }
}

/// One materialized window: full-fidelity [`SlotRecord`]s for the global
/// slots `lo..hi` (1-based, `hi` exclusive), plus the window's FNV-1a
/// fingerprint ([`window_fingerprint`]).
///
/// `records[i]` is slot `lo + i`. A window that reaches past the slots
/// the horizon allowed holds fewer than `hi - lo` records.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowTrace {
    /// First slot in the window.
    pub lo: u64,
    /// One past the last slot in the window.
    pub hi: u64,
    /// One record per replayed slot, in slot order.
    pub records: Vec<SlotRecord>,
    /// FNV-1a over `lo` and every record — equal iff the windows are
    /// byte-identical.
    pub fingerprint: u64,
}

impl WindowTrace {
    /// The record for global slot `s`, when inside the window.
    pub fn slot(&self, s: u64) -> Option<&SlotRecord> {
        s.checked_sub(self.lo)
            .and_then(|i| self.records.get(i as usize))
    }

    /// Approximate heap footprint, for the byte-bounded cache.
    pub fn approx_bytes(&self) -> u64 {
        (self.records.len() * std::mem::size_of::<SlotRecord>()) as u64 + 64
    }
}

/// Replays full-fidelity windows of one (scenario, algorithm, seed) run
/// from its checkpoints.
///
/// Built by [`capture`](Self::capture), which runs the scenario once in
/// fast aggregate mode, snapshotting at every chunk boundary. Window
/// queries then resume from the nearest checkpoint at or before the
/// window and replay forward; results are cached (byte-bounded LRU) and
/// independent windows replay in parallel ([`windows`](Self::windows)).
#[derive(Debug)]
pub struct WindowReplayer {
    runner: ScenarioRunner,
    algo_index: usize,
    algo: AlgoSpec,
    seed: u64,
    every: u64,
    snapshots: Vec<Snapshot<AlgoSpec>>,
    /// `(slot, digest)` per snapshot, ascending — the trajectory's
    /// fingerprint trail.
    digests: Vec<(u64, u64)>,
    slots: u64,
    drained: bool,
    cache: WindowCache,
}

impl WindowReplayer {
    /// Run the capture pass for `spec.algos[algo_index]` under `seed` and
    /// build a replayer over its checkpoints.
    ///
    /// A spec without a checkpoint policy gets [`DEFAULT_CHUNK`]; note
    /// that for `SkipAhead` execution the policy must match the one the
    /// run being investigated actually used (sparse trajectories are
    /// chunk-dependent — see the module docs).
    pub fn capture(
        spec: ScenarioSpec,
        algo_index: usize,
        seed: u64,
    ) -> Result<WindowReplayer, ReplayError> {
        let algo = spec
            .algos
            .get(algo_index)
            .cloned()
            .ok_or(ReplayError::NoSuchAlgo {
                index: algo_index,
                roster: spec.algos.len(),
            })?;
        let spec = if spec.checkpoint.is_none() {
            spec.checkpoint_every(DEFAULT_CHUNK)
        } else {
            spec
        };
        let every = spec.checkpoint.expect("policy just ensured").every;
        let runner = ScenarioRunner::new(spec);
        let trial = runner.run_seed_checkpointed(&algo, seed)?;
        let digests = trial
            .snapshots
            .iter()
            .map(|s| (s.slot(), s.digest()))
            .collect();
        Ok(WindowReplayer {
            runner,
            algo_index,
            algo,
            seed,
            every,
            snapshots: trial.snapshots,
            digests,
            slots: trial.outcome.slots,
            drained: trial.outcome.drained,
            cache: WindowCache::new(DEFAULT_CACHE_BYTES),
        })
    }

    /// Replace the window cache with one bounded at `bytes`.
    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.cache = WindowCache::new(bytes);
        self
    }

    /// Slots the capture run executed.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Whether the capture run drained.
    pub fn drained(&self) -> bool {
        self.drained
    }

    /// The seed this replayer covers.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The roster index this replayer covers.
    pub fn algo_index(&self) -> usize {
        self.algo_index
    }

    /// The algorithm this replayer covers.
    pub fn algo(&self) -> &AlgoSpec {
        &self.algo
    }

    /// The scenario (checkpoint policy included).
    pub fn spec(&self) -> &ScenarioSpec {
        self.runner.spec()
    }

    /// The `(slot, digest)` fingerprint trail, one entry per checkpoint.
    pub fn digests(&self) -> &[(u64, u64)] {
        &self.digests
    }

    /// The window cache (bytes held, entry count).
    pub fn cache(&self) -> &WindowCache {
        &self.cache
    }

    fn validate(&self, lo: u64, hi: u64) -> Result<(), ReplayError> {
        if lo == 0 || lo >= hi {
            return Err(ReplayError::BadWindow { lo, hi });
        }
        let cap = self.runner.spec().horizon.cap();
        if hi > cap + 1 {
            return Err(ReplayError::OutOfRange { hi, cap });
        }
        Ok(())
    }

    /// Duplicate the nearest checkpoint at or before `lo` (a snapshot at
    /// slot `s` can replay slots `s+1..`). The duplicate's digest is
    /// asserted against the original's — a divergence here is a bug in a
    /// component's `try_clone_box`, not user error.
    fn base_snapshot(&self, lo: u64) -> Snapshot<AlgoSpec> {
        let idx = self.snapshots.partition_point(|s| s.slot() < lo) - 1;
        let dup = self.snapshots[idx].duplicate();
        assert_eq!(
            dup.digest(),
            self.digests[idx].1,
            "snapshot duplicate changed the state digest"
        );
        dup
    }

    /// Materialize the window `[lo, hi)` (global slots, 1-based),
    /// serving from cache when possible.
    pub fn window(&mut self, lo: u64, hi: u64) -> Result<Arc<WindowTrace>, ReplayError> {
        self.validate(lo, hi)?;
        if let Some(win) = self.cache.get(lo, hi) {
            return Ok(win);
        }
        let base = self.base_snapshot(lo);
        let win = Arc::new(replay_window(
            &self.runner,
            self.every,
            base,
            &self.digests,
            lo,
            hi,
        )?);
        self.cache.insert(Arc::clone(&win));
        Ok(win)
    }

    /// Materialize several windows, replaying cache misses **in
    /// parallel** on the work-stealing pool. Results come back in
    /// request order; duplicate requests share one replay.
    pub fn windows(
        &mut self,
        requests: &[(u64, u64)],
    ) -> Vec<Result<Arc<WindowTrace>, ReplayError>> {
        let mut results: Vec<Option<Result<Arc<WindowTrace>, ReplayError>>> =
            requests.iter().map(|_| None).collect();
        let mut misses: Vec<(u64, u64)> = Vec::new();
        for (i, &(lo, hi)) in requests.iter().enumerate() {
            if let Err(e) = self.validate(lo, hi) {
                results[i] = Some(Err(e));
            } else if let Some(win) = self.cache.get(lo, hi) {
                results[i] = Some(Ok(win));
            } else if !misses.contains(&(lo, hi)) {
                misses.push((lo, hi));
            }
        }
        // Duplicating base snapshots is cheap next to replaying chunks;
        // do it serially here, then fan the replays out. The Mutex is
        // only the hand-off cell that moves each owned snapshot into its
        // worker.
        let jobs: Vec<ReplayJob> = misses
            .iter()
            .map(|&(lo, hi)| Mutex::new(Some((self.base_snapshot(lo), lo, hi))))
            .collect();
        let runner = &self.runner;
        let digests = &self.digests;
        let every = self.every;
        let replayed: Vec<Result<WindowTrace, ReplayError>> = replicate(jobs.len() as u64, |i| {
            let (snap, lo, hi) = jobs[i as usize]
                .lock()
                .expect("job cell")
                .take()
                .expect("each job runs exactly once");
            replay_window(runner, every, snap, digests, lo, hi)
        });
        let mut fresh: Vec<((u64, u64), WindowResult)> = Vec::new();
        for (key, res) in misses.into_iter().zip(replayed) {
            let res = res.map(Arc::new);
            if let Ok(win) = &res {
                self.cache.insert(Arc::clone(win));
            }
            fresh.push((key, res));
        }
        results
            .into_iter()
            .zip(requests)
            .map(|(slot, req)| {
                slot.unwrap_or_else(|| {
                    fresh
                        .iter()
                        .find(|(k, _)| k == req)
                        .expect("every miss was replayed")
                        .1
                        .clone()
                })
            })
            .collect()
    }

    /// The durable rebuild recipe for this replayer (see
    /// [`CheckpointHandle`](super::store::CheckpointHandle)).
    pub fn handle(&self) -> super::store::CheckpointHandle {
        super::store::CheckpointHandle {
            scenario: self.runner.spec().clone(),
            algo: self.algo_index,
            seed: self.seed,
            slots: self.slots,
            drained: self.drained,
            digests: self.digests.clone(),
        }
    }
}

/// Resume from `base` and replay forward, collecting the records of
/// slots `lo..hi`. Advancement is strictly chunk-by-chunk — the same
/// call pattern the capture pass used — and the simulator's state digest
/// is cross-checked at every checkpointed boundary the replay passes.
fn replay_window(
    runner: &ScenarioRunner,
    every: u64,
    base: Snapshot<AlgoSpec>,
    digests: &[(u64, u64)],
    lo: u64,
    hi: u64,
) -> Result<WindowTrace, ReplayError> {
    let mut sim = Simulator::resume_from(base);
    let mut records = Vec::with_capacity((hi - lo) as usize);
    while sim.current_slot() + 1 < hi {
        let advanced = runner.advance_chunk(&mut sim, every, |s, rec| {
            if s >= lo && s < hi {
                records.push(*rec);
            }
        });
        if advanced == 0 {
            break;
        }
        let slot = sim.current_slot();
        if slot.is_multiple_of(every) {
            if let Ok(idx) = digests.binary_search_by_key(&slot, |d| d.0) {
                let actual = sim.state_digest();
                let expected = digests[idx].1;
                if actual != expected {
                    return Err(ReplayError::FingerprintMismatch {
                        slot,
                        expected,
                        actual,
                    });
                }
            }
        }
    }
    let fingerprint = window_fingerprint(lo, &records);
    Ok(WindowTrace {
        lo,
        hi,
        records,
        fingerprint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSpec;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::batch(12, 0.25)
            .algos([AlgoSpec::cjz_constant_jamming()])
            .fixed_horizon(600)
            .aggregate_only()
            .checkpoint_every(100)
    }

    /// Reference: the same trajectory recorded in full, chunk by chunk.
    fn reference(spec: &ScenarioSpec, seed: u64) -> Vec<SlotRecord> {
        let runner = ScenarioRunner::new(spec.clone());
        let algo = spec.algos[0].clone();
        let mut sim = runner.sim(&algo, seed);
        let mut all = Vec::new();
        while runner.advance_chunk(&mut sim, 100, |_, rec| all.push(*rec)) > 0 {}
        all
    }

    #[test]
    fn window_matches_uninterrupted_reference() {
        let all = reference(&spec(), 3);
        let mut replayer = WindowReplayer::capture(spec(), 0, 3).expect("capture");
        assert_eq!(replayer.slots(), 600);
        for (lo, hi) in [(1, 50), (95, 210), (100, 101), (599, 601), (1, 601)] {
            let win = replayer.window(lo, hi).expect("window");
            assert_eq!(win.records.len(), (hi - lo) as usize);
            assert_eq!(
                win.records[..],
                all[(lo - 1) as usize..(hi - 1) as usize],
                "window [{lo},{hi}) must be byte-identical to the reference"
            );
            assert_eq!(win.fingerprint, window_fingerprint(lo, &win.records));
            assert_eq!(win.slot(lo).unwrap(), &all[(lo - 1) as usize]);
        }
    }

    #[test]
    fn windows_replay_in_parallel_and_cache() {
        let all = reference(&spec(), 9);
        let mut replayer = WindowReplayer::capture(spec(), 0, 9).expect("capture");
        let reqs = [(1, 64), (201, 280), (401, 470), (201, 280)];
        let wins = replayer.windows(&reqs);
        assert_eq!(wins.len(), 4);
        for (res, &(lo, hi)) in wins.iter().zip(&reqs) {
            let win = res.as_ref().expect("window");
            assert_eq!(win.records[..], all[(lo - 1) as usize..(hi - 1) as usize]);
        }
        // Duplicate requests share one replay; all land in the cache.
        assert_eq!(replayer.cache().len(), 3);
        let again = replayer.window(201, 280).expect("cached");
        assert_eq!(again.fingerprint, wins[1].as_ref().unwrap().fingerprint);
    }

    #[test]
    fn replay_rejects_bad_windows() {
        let mut replayer = WindowReplayer::capture(spec(), 0, 1).expect("capture");
        assert!(matches!(
            replayer.window(0, 10),
            Err(ReplayError::BadWindow { .. })
        ));
        assert!(matches!(
            replayer.window(10, 10),
            Err(ReplayError::BadWindow { .. })
        ));
        assert!(matches!(
            replayer.window(1, 1000), // cap is 600
            Err(ReplayError::OutOfRange { .. })
        ));
        assert!(matches!(
            WindowReplayer::capture(spec(), 7, 1),
            Err(ReplayError::NoSuchAlgo {
                index: 7,
                roster: 1
            })
        ));
    }
}
