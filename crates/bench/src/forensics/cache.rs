//! A byte-bounded LRU cache of replayed windows.
//!
//! Replaying a window is seconds of work; re-reading one should be free.
//! The cache is keyed by `(lo, hi)` and bounded by **bytes**, not entry
//! count — windows vary from dozens to millions of records, so an entry
//! cap would either starve big windows or let small ones balloon memory.
//! Windows larger than the whole budget are returned to the caller but
//! never cached (caching one would evict everything for a single-use
//! entry).

use std::sync::Arc;

use super::replay::WindowTrace;

/// Byte-bounded LRU store of [`WindowTrace`]s, keyed by `(lo, hi)`.
#[derive(Debug)]
pub struct WindowCache {
    cap: u64,
    bytes: u64,
    /// Insertion/recency order: the back is the most recently used.
    entries: Vec<((u64, u64), Arc<WindowTrace>)>,
}

impl WindowCache {
    /// An empty cache bounded at `cap_bytes`.
    pub fn new(cap_bytes: u64) -> Self {
        WindowCache {
            cap: cap_bytes,
            bytes: 0,
            entries: Vec::new(),
        }
    }

    /// The byte budget.
    pub fn cap_bytes(&self) -> u64 {
        self.cap
    }

    /// Bytes currently held.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Cached windows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a window, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, lo: u64, hi: u64) -> Option<Arc<WindowTrace>> {
        let idx = self.entries.iter().position(|(k, _)| *k == (lo, hi))?;
        let entry = self.entries.remove(idx);
        let win = Arc::clone(&entry.1);
        self.entries.push(entry);
        Some(win)
    }

    /// Insert a window, evicting least-recently-used entries until the
    /// budget holds. A window exceeding the whole budget is not cached.
    pub fn insert(&mut self, win: Arc<WindowTrace>) {
        let cost = win.approx_bytes();
        if cost > self.cap {
            return;
        }
        let key = (win.lo, win.hi);
        if let Some(idx) = self.entries.iter().position(|(k, _)| *k == key) {
            let (_, old) = self.entries.remove(idx);
            self.bytes -= old.approx_bytes();
        }
        while self.bytes + cost > self.cap {
            let (_, evicted) = self.entries.remove(0);
            self.bytes -= evicted.approx_bytes();
        }
        self.bytes += cost;
        self.entries.push((key, win));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(lo: u64, hi: u64) -> Arc<WindowTrace> {
        let records = (lo..hi)
            .map(|_| contention_sim::SlotRecord {
                arrivals: 0,
                broadcasters: 0,
                jammed: false,
                active: false,
                population: 0,
                outcome: contention_sim::SlotOutcome::Silence,
            })
            .collect::<Vec<_>>();
        let fingerprint = crate::forensics::window_fingerprint(lo, &records);
        Arc::new(WindowTrace {
            lo,
            hi,
            records,
            fingerprint,
        })
    }

    #[test]
    fn evicts_least_recently_used_by_bytes() {
        let unit = window(0, 10).approx_bytes();
        let mut cache = WindowCache::new(unit * 3);
        cache.insert(window(0, 10));
        cache.insert(window(10, 20));
        cache.insert(window(20, 30));
        assert_eq!(cache.len(), 3);
        // Touch the oldest so it survives the next eviction.
        assert!(cache.get(0, 10).is_some());
        cache.insert(window(30, 40));
        assert_eq!(cache.len(), 3);
        assert!(cache.get(10, 20).is_none(), "LRU entry evicted");
        assert!(cache.get(0, 10).is_some(), "promoted entry survived");
        assert!(cache.bytes() <= cache.cap_bytes());
    }

    #[test]
    fn oversized_windows_are_not_cached() {
        let unit = window(0, 10).approx_bytes();
        let mut cache = WindowCache::new(unit - 1);
        cache.insert(window(0, 10));
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn reinserting_a_key_replaces_it() {
        let unit = window(0, 10).approx_bytes();
        let mut cache = WindowCache::new(unit * 4);
        cache.insert(window(0, 10));
        cache.insert(window(0, 10));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), unit);
    }
}
