//! **E10 — tuning `g` to the true jamming level: the crossover.**
//!
//! The algorithm takes `g` as an input parameter — a *promise* about how
//! much jamming it must survive. The trade-off theorem says this promise
//! has a price: tolerating more jamming (smaller effective `f` denominator…
//! i.e. larger `f`) costs throughput. So:
//!
//! * tuned for heavy jamming (`g` constant ⇒ `f = Θ(log t)`, dense
//!   backoff), the protocol is slower when the channel is actually clean;
//! * tuned for a clean channel (`g = 2^√log` ⇒ `f = Θ(1)`, sparse backoff),
//!   it is faster when clean but degrades under heavy jamming.
//!
//! The experiment sweeps the actual jamming rate over the registry's
//! `batch` family and reports drain time for both tunings; the curves
//! should cross.

use contention_analysis::{fnum, Figure, Series, Summary, Table};
use contention_bench::scenario::{
    AlgoSpec, ArrivalSpec, JammingSpec, ScenarioRunner, ScenarioSpec,
};
use contention_bench::ExpArgs;

fn main() {
    let args = ExpArgs::from_env();
    let n = if args.quick { 128 } else { 512 };
    let jams = [0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5];

    println!("E10: batch drain time vs actual jamming rate, two tunings (n = {n})");
    println!("seeds = {}\n", args.seeds);

    let tunings = [
        ("tuned-heavy (g=const)", AlgoSpec::cjz_constant_jamming()),
        (
            "tuned-clean (g=2^sqrt(log))",
            AlgoSpec::cjz_constant_throughput(),
        ),
    ];

    let mut table = Table::new(["jam rate", tunings[0].0, tunings[1].0, "heavy/clean"])
        .with_title("E10: mean drain slots");
    let mut fig = Figure::new("E10: drain slots vs jam rate", "jam rate", "slots");
    let mut curves: Vec<Vec<f64>> = vec![Vec::new(); tunings.len()];

    for &jam in &jams {
        let runner = ScenarioRunner::new(
            ScenarioSpec::batch(n, jam)
                .until_drained(1_000_000_000)
                .seeds(args.seeds),
        );
        let mut means = Vec::new();
        for (ti, (_, algo)) in tunings.iter().enumerate() {
            let outs = runner.collect(algo, |_seed, out| {
                assert!(out.drained, "undrained at jam={jam}");
                out.slots as f64
            });
            let s = Summary::of(&outs).unwrap();
            curves[ti].push(s.mean);
            means.push(s.mean);
        }
        table.row([
            format!("{jam}"),
            fnum(means[0]),
            fnum(means[1]),
            fnum(means[0] / means[1]),
        ]);
    }
    println!("{}", table.render());

    for (ti, (name, _)) in tunings.iter().enumerate() {
        let s = Series::from_points(*name, jams.iter().zip(&curves[ti]).map(|(&x, &y)| (x, y)));
        fig.add(s);
    }
    println!("{}", fig.to_ascii(72, 16));
    if args.csv {
        println!("--- CSV ---\n{}", fig.to_csv());
    }

    // E10b: the adversarial jamming pattern — a jam wall in front of a lone
    // node — is what the heavy tuning's dense backoff is for. Random
    // uniform jamming (above) barely distinguishes the tunings; the wall
    // does, because recovery scales with the backoff density f.
    println!("E10b: single node behind a jam wall of J slots — recovery time");
    let walls: Vec<u64> = if args.quick {
        vec![1 << 8, 1 << 10, 1 << 12]
    } else {
        vec![1 << 10, 1 << 12, 1 << 14, 1 << 16]
    };
    let mut wall_table = Table::new(["J", tunings[0].0, tunings[1].0, "clean/heavy"])
        .with_title("E10b: mean recovery slots");
    let mut heavy_last = 0.0;
    let mut clean_last = 0.0;
    for &j in &walls {
        let wall = ScenarioRunner::new(
            ScenarioSpec::new(format!("front-loaded/{j}"))
                .arrivals(ArrivalSpec::batch(1))
                .jamming(JammingSpec::FrontLoaded { until: j })
                .until_drained(64 * j)
                .seeds(args.seeds),
        );
        let mut means = Vec::new();
        for (_, algo) in &tunings {
            let recs = wall.collect(algo, |_seed, out| {
                out.trace
                    .departures()
                    .first()
                    .map(|d| (d.departure_slot - j) as f64)
                    .unwrap_or((63 * j) as f64)
            });
            means.push(Summary::of(&recs).unwrap().mean);
        }
        heavy_last = means[0];
        clean_last = means[1];
        wall_table.row([
            format!("{j}"),
            fnum(means[0]),
            fnum(means[1]),
            fnum(means[1] / means[0]),
        ]);
    }
    println!("{}", wall_table.render());

    // Verdicts: each tuning wins its own regime — that's the crossover.
    let clean_wins_at_zero = curves[1][0] <= curves[0][0];
    println!(
        "clean-tuned faster on the clean channel: {} ({} vs {})",
        if clean_wins_at_zero { "PASS" } else { "FAIL" },
        fnum(curves[1][0]),
        fnum(curves[0][0])
    );
    println!(
        "heavy-tuned recovers faster from the adversarial jam wall: {} ({} vs {})",
        if heavy_last < clean_last {
            "PASS"
        } else {
            "FAIL"
        },
        fnum(heavy_last),
        fnum(clean_last)
    );
    println!(
        "(The g parameter is a real dial: robustness is bought with throughput, and \
         the winner flips with the adversary — the tight trade-off in action. Note \
         uniform random jamming is benign; the lower-bound constructions use \
         concentrated jamming, and that is exactly where the heavy tuning pays off.)"
    );
}
