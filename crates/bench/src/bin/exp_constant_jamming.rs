//! **E2 — the headline figure: `Θ(t/log t)` under constant-fraction
//! jamming.**
//!
//! Thin wrapper over the registry campaign `constant-jamming-growth`:
//! arrivals offered at the critical density `n_t = t/(2f(t))` with 25% of
//! slots jammed, the paper's algorithm against three classical baselines.
//! The campaign's dyadic checkpoint curve is the deliveries-vs-t figure;
//! the growth-model fit on it should rank `c·t/log t` above both `c·t`
//! and `c·t/log² t` (Theorems 1.2 + 1.3: nothing can do asymptotically
//! better). The same campaign renders the headline section of RESULTS.md.

use contention_analysis::{best_fit, fnum, GrowthModel, Table};
use contention_bench::campaign::{self, CampaignRunner};
use contention_bench::ExpArgs;

fn main() {
    let args = ExpArgs::from_env();
    let mut sweep = campaign::lookup("constant-jamming-growth").expect("registry campaign");
    if args.quick {
        sweep = sweep.smoke();
    }
    sweep = sweep.seeds(args.seeds);
    if let Some(t) = args.horizon {
        sweep.base = sweep.base.fixed_horizon(t);
    }

    println!("E2: messages delivered in t slots, 25% of slots jammed");
    println!(
        "offered load n_t = t/(2 f(t)), f = Θ(log t); t = {}; seeds = {}\n",
        sweep.base.horizon.cap(),
        sweep.base.seeds
    );
    let result = CampaignRunner::new(sweep).run();
    print!("{}", campaign::render_section(&result));
    if args.csv {
        println!("\n--- CSV ---\n{}", campaign::to_csv(&result));
    }

    // Growth fit on the paper algorithm's delivery curve (asymptotic tail:
    // checkpoints from t = 256 on).
    let cjz = result.cells.first().expect("roster is non-empty");
    let points: Vec<(f64, f64)> = cjz
        .checkpoints
        .iter()
        .filter(|c| c.t >= 256)
        .map(|c| (c.t as f64, c.mean_successes.max(1.0)))
        .collect();
    if points.len() < 2 {
        println!(
            "\n(horizon {} leaves {} checkpoint(s) past t = 256 — too few for a growth fit; \
             rerun with --t 1024 or larger)",
            cjz.spec.horizon.cap(),
            points.len()
        );
        return;
    }
    let ranked = best_fit(&points);
    let mut fit_table = Table::new(["model", "scale", "rel residual"])
        .with_title("E2c: growth-model ranking for deliveries(t)");
    for f in &ranked {
        fit_table.row([f.model.to_string(), fnum(f.scale), fnum(f.rel_residual)]);
    }
    println!("\n{}", fit_table.render());

    let tlog_beats_linear = ranked
        .iter()
        .position(|f| f.model == GrowthModel::LinearOverLog)
        < ranked.iter().position(|f| f.model == GrowthModel::Linear);
    let backlog = cjz.mean_arrivals - cjz.mean_delivered;
    let keeps_up = backlog <= 0.05 * cjz.mean_arrivals.max(1.0);
    println!(
        "best fit: {}   |   t/log t above t: {}   |   paper algorithm keeps up: {}",
        ranked[0].model,
        if tlog_beats_linear { "PASS" } else { "FAIL" },
        if keeps_up { "PASS" } else { "FAIL" },
    );
}
