//! **E2 — the headline figure: `Θ(t/log t)` under constant-fraction
//! jamming.**
//!
//! With `g` constant (Eve jams a constant fraction of all slots — the
//! worst-case regime), the best possible throughput is `Θ(1/log t)`
//! (Theorems 1.2 + 1.3): the paper's algorithm delivers `Θ(t/log t)`
//! messages in `t` slots, and nothing can do asymptotically better.
//!
//! Setup: the registry's `constant-jamming` scenario — arrivals offered at
//! exactly the critical density `n_t = t/(2f(t))` with `f = Θ(log t)`, and
//! 25% of slots jammed at random. A working algorithm *keeps up*:
//! deliveries track arrivals (`Θ(t/log t)`) and the backlog stays bounded.
//! Baselines run under the identical offered load for contrast — they fall
//! behind, accumulating backlog. The growth-model fit on the paper
//! algorithm's delivery curve should rank `c·t/log t` above both `c·t` and
//! `c·t/log² t`.

use contention_analysis::{best_fit, fnum, Figure, GrowthModel, Series, Summary, Table};
use contention_bench::scenario::{
    AlgoSpec, ArrivalSpec, BaselineSpec, BudgetSpec, CurveSpec, JammingSpec, ParamsSpec,
    ScenarioRunner, ScenarioSpec,
};
use contention_bench::ExpArgs;

struct AlgoRun {
    name: String,
    /// successes at dyadic checkpoints, mean over seeds
    successes: Vec<f64>,
    success_ci: Vec<f64>,
    /// arrivals at final checkpoint (mean)
    final_arrivals: f64,
    /// backlog (arrivals - successes) at final checkpoint (mean)
    final_backlog: f64,
}

/// The E2 workload: saturated arrivals clamped to the critical density
/// `t/(2f(t))`, `jam` of all slots jammed, fixed horizon.
fn scenario(jam: f64, horizon: u64, seeds: u64) -> ScenarioSpec {
    ScenarioSpec::new(format!("constant-jamming/{jam}"))
        .arrivals(ArrivalSpec::saturated())
        .jamming(JammingSpec::random(jam))
        .budget(BudgetSpec {
            params: ParamsSpec::constant_jamming(),
            arrivals: CurveSpec::CriticalArrivals { scale: 2.0 },
            jams: CurveSpec::Unlimited,
        })
        .fixed_horizon(horizon)
        .seeds(seeds)
}

fn run_algo(algo: &AlgoSpec, jam: f64, min_pow: u32, max_pow: u32, seeds: u64) -> AlgoRun {
    let horizon = 1u64 << max_pow;
    let runner = ScenarioRunner::new(scenario(jam, horizon, seeds));
    let runs = runner.collect(algo, |_seed, out| {
        let cum = out.trace.cumulative();
        let succ: Vec<u64> = (min_pow..=max_pow)
            .map(|p| cum.successes(1u64 << p))
            .collect();
        (succ, cum.arrivals(horizon))
    });
    let checkpoints = (max_pow - min_pow + 1) as usize;
    let mut successes = Vec::with_capacity(checkpoints);
    let mut success_ci = Vec::with_capacity(checkpoints);
    for idx in 0..checkpoints {
        let vals: Vec<f64> = runs.iter().map(|r| r.0[idx] as f64).collect();
        let s = Summary::of(&vals).unwrap();
        successes.push(s.mean);
        success_ci.push(s.ci95());
    }
    let arr: Vec<f64> = runs.iter().map(|r| r.1 as f64).collect();
    let final_arrivals = Summary::of(&arr).unwrap().mean;
    let final_backlog = final_arrivals - successes.last().copied().unwrap_or(0.0);
    AlgoRun {
        name: algo.name(),
        successes,
        success_ci,
        final_arrivals,
        final_backlog,
    }
}

fn main() {
    let args = ExpArgs::from_env();
    let max_pow = if args.quick { 12 } else { 17 };
    let min_pow = 8;
    let jam = 0.25;

    println!("E2: messages delivered in t slots, 25% of slots jammed");
    println!(
        "offered load n_t = t/(2 f(t)), f = Θ(log t); t up to 2^{max_pow}; seeds = {}\n",
        args.seeds
    );

    let algos = [
        AlgoSpec::cjz_constant_jamming(),
        AlgoSpec::Baseline(BaselineSpec::SmoothedBeb),
        AlgoSpec::Baseline(BaselineSpec::BinaryExponential),
        AlgoSpec::Baseline(BaselineSpec::Sawtooth),
    ];
    let results: Vec<AlgoRun> = algos
        .iter()
        .map(|a| run_algo(a, jam, min_pow, max_pow, args.seeds))
        .collect();

    // Delivery table per checkpoint for the paper algorithm.
    let cjz = &results[0];
    let mut table = Table::new(["t", "delivered", "t/log2(t)", "deliv·log(t)/t"])
        .with_title("E2a: paper algorithm deliveries vs t");
    let mut points: Vec<(f64, f64)> = Vec::new();
    for (idx, p) in (min_pow..=max_pow).enumerate() {
        let t = (1u64 << p) as f64;
        let m = cjz.successes[idx];
        table.row([
            format!("2^{p}"),
            format!("{} ± {}", fnum(m), fnum(cjz.success_ci[idx])),
            fnum(t / t.log2()),
            fnum(m * t.log2() / t),
        ]);
        points.push((t, m.max(1.0)));
    }
    println!("{}", table.render());

    // Keep-up comparison at the final horizon.
    let mut cmp = Table::new(["algorithm", "arrivals", "delivered", "backlog", "kept up?"])
        .with_title("E2b: same offered load, final horizon");
    for r in &results {
        let kept = r.final_backlog <= 0.05 * r.final_arrivals.max(1.0);
        cmp.row([
            r.name.clone(),
            fnum(r.final_arrivals),
            fnum(*r.successes.last().unwrap()),
            fnum(r.final_backlog),
            if kept { "yes".into() } else { "NO".to_string() },
        ]);
    }
    println!("{}", cmp.render());

    // Growth fit for the paper algorithm.
    let ranked = best_fit(&points);
    let mut fit_table = Table::new(["model", "scale", "rel residual"])
        .with_title("E2c: growth-model ranking for deliveries(t)");
    for f in &ranked {
        fit_table.row([f.model.to_string(), fnum(f.scale), fnum(f.rel_residual)]);
    }
    println!("{}", fit_table.render());

    let mut fig = Figure::new("E2: deliveries(t) per algorithm", "t", "messages");
    for r in &results {
        let mut s = Series::new(r.name.clone());
        for (idx, p) in (min_pow..=max_pow).enumerate() {
            s.push((1u64 << p) as f64, r.successes[idx]);
        }
        fig.add(s);
    }
    println!("{}", fig.to_ascii(72, 18));
    if args.csv {
        println!("--- CSV ---\n{}", fig.to_csv());
    }

    let best = ranked.first().expect("fits exist");
    let tlog_beats_linear = ranked
        .iter()
        .position(|f| f.model == GrowthModel::LinearOverLog)
        < ranked.iter().position(|f| f.model == GrowthModel::Linear);
    let cjz_keeps_up = cjz.final_backlog <= 0.05 * cjz.final_arrivals.max(1.0);
    println!(
        "best fit: {}   |   t/log t above t: {}   |   paper algorithm keeps up: {}",
        best.model,
        if tlog_beats_linear { "PASS" } else { "FAIL" },
        if cjz_keeps_up { "PASS" } else { "FAIL" },
    );
    println!(
        "(paper: with constant-fraction jamming, Θ(t/log t) messages in t slots; \
         the channel sustains the critical offered load with bounded backlog.)"
    );
}
