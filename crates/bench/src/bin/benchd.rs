//! `benchd` — the long-running campaign daemon.
//!
//! Accepts `ScenarioSpec`/`SweepSpec` jobs over a local TCP socket
//! (line-delimited JSON; see `contention_bench::service::protocol`),
//! schedules their cells on one shared priority work pool, and journals
//! every completed cell to `<jobs-dir>/<id>/journal.jsonl` — fsync'd per
//! line, so `kill -9` mid-campaign costs at most one torn line and a
//! restarted daemon resumes each unfinished job at its last completed
//! cell with byte-identical final output.
//!
//! ```sh
//! # Start on an OS-assigned port, advertise it via a port file.
//! cargo run --release -p contention-bench --bin benchd -- --jobs-dir jobs --port-file benchd.port
//!
//! # Fixed address, explicit worker count.
//! cargo run --release -p contention-bench --bin benchd -- --addr 127.0.0.1:7341 --threads 8
//! ```
//!
//! Drive it with `benchctl` (`submit`, `status`, `list`, `results`,
//! `cancel`, `watch`, `health`, `shutdown`).

use std::path::PathBuf;
use std::time::Duration;

use contention_bench::service::{faults, Daemon, DaemonConfig, FaultSchedule};

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let grab = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let config = DaemonConfig {
        addr: grab("--addr").unwrap_or_else(|| "127.0.0.1:0".into()),
        jobs_dir: PathBuf::from(grab("--jobs-dir").unwrap_or_else(|| "jobs".into())),
        threads: grab("--threads")
            .map(|t| {
                t.parse()
                    .unwrap_or_else(|_| fail(&format!("--threads `{t}` is not a number")))
            })
            .unwrap_or(0),
        // --io-timeout-ms 0 disables the socket timeouts entirely.
        io_timeout: match grab("--io-timeout-ms") {
            None => DaemonConfig::default().io_timeout,
            Some(ms) => {
                let ms: u64 = ms
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--io-timeout-ms `{ms}` is not a number")));
                (ms > 0).then(|| Duration::from_millis(ms))
            }
        },
    };
    // Operational chaos mode: arm the deterministic fault injector for
    // the daemon's whole life (used by the CI chaos smoke and for
    // manual resilience drills; never on by default).
    if let Some(seed) = grab("--chaos-seed") {
        let seed: u64 = seed
            .parse()
            .unwrap_or_else(|_| fail(&format!("--chaos-seed `{seed}` is not a number")));
        faults::install_global(FaultSchedule::chaos(seed));
        eprintln!("benchd: CHAOS MODE armed with seed {seed} — faults will be injected");
    }
    let jobs_dir = config.jobs_dir.clone();
    let daemon =
        Daemon::bind(config).unwrap_or_else(|e| fail(&format!("benchd failed to start: {e}")));
    let addr = daemon
        .local_addr()
        .unwrap_or_else(|e| fail(&format!("benchd has no local address: {e}")));
    if let Some(path) = grab("--port-file") {
        if let Err(e) = std::fs::write(&path, format!("{addr}\n")) {
            fail(&format!("cannot write port file {path}: {e}"));
        }
    }
    eprintln!(
        "benchd listening on {addr}, journaling to {}",
        jobs_dir.display()
    );
    if let Err(e) = daemon.run() {
        fail(&format!("benchd terminated: {e}"));
    }
}
